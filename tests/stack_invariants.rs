//! Whole-stack invariants under randomized workloads: no scheduler
//! deadlocks, accounting is conserved, determinism holds. Driven by
//! `SimRng` so the case set is deterministic and dependency-free.

use sim_core::rng::SimRng;
use split_level_io::prelude::*;

const MB: u64 = 1 << 20;

#[derive(Debug, Clone)]
enum Wl {
    SeqRead { req_kb: u64 },
    RandRead { seed: u64 },
    SeqWrite { req_kb: u64 },
    RandWrite { seed: u64 },
    FsyncAppend,
    CreatLoop,
}

fn rand_wl(rng: &mut SimRng) -> Wl {
    match rng.gen_range(6) {
        0 => Wl::SeqRead {
            req_kb: 1 + rng.gen_range(511),
        },
        1 => Wl::RandRead {
            seed: rng.next_u64(),
        },
        2 => Wl::SeqWrite {
            req_kb: 1 + rng.gen_range(511),
        },
        3 => Wl::RandWrite {
            seed: rng.next_u64(),
        },
        4 => Wl::FsyncAppend,
        _ => Wl::CreatLoop,
    }
}

fn build_sched(tag: u8) -> Box<dyn IoSched> {
    match tag {
        0 => Box::new(BlockOnly::new(Noop::new())),
        1 => Box::new(BlockOnly::new(Cfq::new())),
        2 => Box::new(BlockOnly::new(BlockDeadline::new())),
        3 => Box::new(Afq::new()),
        4 => Box::new(SplitDeadline::new()),
        _ => Box::new(SplitToken::new()),
    }
}

fn run_mix(tag: u8, wls: &[Wl]) -> (u64, u64, u64) {
    let mut world = World::new();
    let cfg = KernelConfig {
        pdflush: tag != 4, // SplitDeadline owns writeback
        ..Default::default()
    };
    let k = world.add_kernel(cfg, DeviceKind::hdd(), build_sched(tag));
    let mut pids = Vec::new();
    for (i, wl) in wls.iter().enumerate() {
        let pid = match wl {
            Wl::SeqRead { req_kb } => {
                let f = world.prealloc_file(k, 512 * MB, true);
                world.spawn(k, Box::new(SeqReader::new(f, 512 * MB, req_kb * 1024)))
            }
            Wl::RandRead { seed } => {
                let f = world.prealloc_file(k, 512 * MB, false);
                world.spawn(k, Box::new(RandReader::new(f, 512 * MB, 4096, *seed)))
            }
            Wl::SeqWrite { req_kb } => {
                let f = world.prealloc_file(k, 512 * MB, true);
                world.spawn(k, Box::new(SeqWriter::new(f, 512 * MB, req_kb * 1024)))
            }
            Wl::RandWrite { seed } => {
                let f = world.prealloc_file(k, 512 * MB, false);
                world.spawn(k, Box::new(RandWriter::new(f, 512 * MB, 4096, *seed)))
            }
            Wl::FsyncAppend => {
                let f = world.prealloc_file(k, 64 * MB, true);
                world.spawn(
                    k,
                    Box::new(FsyncAppender::new(f, 4096, SimDuration::from_millis(2))),
                )
            }
            Wl::CreatLoop => world.spawn(
                k,
                Box::new(CreatFsyncLoop::new(SimDuration::from_millis(5))),
            ),
        };
        // A spread of priorities / settings so scheduler state is varied.
        world.set_ioprio(k, pid, IoPrio::best_effort((i % 8) as u8));
        if tag == 5 && i % 2 == 0 {
            world.configure(k, pid, SchedAttr::TokenRate(8 * MB));
        }
        pids.push(pid);
    }
    world.run_for(SimDuration::from_secs(2));
    let stats = &world.kernel(k).stats;
    let total_ops: u64 = pids
        .iter()
        .filter_map(|p| stats.proc(*p))
        .map(|s| s.reads + s.writes + s.fsyncs.len() as u64 + s.meta_ops.len() as u64)
        .sum();
    (total_ops, stats.requests_dispatched, stats.device_bytes)
}

/// Any mix of workloads on any scheduler makes progress and never
/// wedges the event loop.
#[test]
fn no_scheduler_deadlocks() {
    let mut rng = SimRng::seed_from_u64(0xDEAD10C);
    for case in 0..12 {
        let tag = rng.gen_range(6) as u8;
        let n = 1 + rng.gen_range(4) as usize;
        let wls: Vec<Wl> = (0..n).map(|_| rand_wl(&mut rng)).collect();
        let (ops, dispatched, bytes) = run_mix(tag, &wls);
        assert!(ops > 0, "case {case}: workloads must complete syscalls");
        // If anything did I/O, bytes moved match dispatches sanely.
        if dispatched > 0 {
            assert!(bytes >= dispatched * 4096, "case {case}");
        }
    }
}

/// Same inputs, same result: the whole stack is deterministic.
#[test]
fn determinism() {
    let mut rng = SimRng::seed_from_u64(0x5A5A);
    for _ in 0..4 {
        let tag = rng.gen_range(6) as u8;
        let n = 1 + rng.gen_range(3) as usize;
        let wls: Vec<Wl> = (0..n).map(|_| rand_wl(&mut rng)).collect();
        let a = run_mix(tag, &wls);
        let b = run_mix(tag, &wls);
        assert_eq!(a, b);
    }
}

/// Throughput conservation: with a single sequential reader, the device's
/// byte counter ≈ the process's completed bytes (no lost or invented I/O).
#[test]
fn device_bytes_match_completed_reads() {
    let mut world = World::new();
    let k = world.add_kernel(
        KernelConfig::default(),
        DeviceKind::hdd(),
        Box::new(BlockOnly::new(Noop::new())),
    );
    let f = world.prealloc_file(k, 2 << 30, true);
    let pid = world.spawn(k, Box::new(SeqReader::new(f, 2 << 30, MB)));
    world.run_for(SimDuration::from_secs(2));
    let st = world.kernel(k).stats.proc(pid).unwrap();
    let dev = world.kernel(k).stats.device_bytes;
    // Device may be one request ahead (in flight at the cutoff).
    assert!(dev >= st.read_bytes);
    assert!(
        dev <= st.read_bytes + 2 * MB,
        "dev {dev} vs proc {}",
        st.read_bytes
    );
}

/// Disk-time accounting sums to (at most) the elapsed window.
#[test]
fn disk_time_is_conserved() {
    let mut world = World::new();
    let k = world.add_kernel(
        KernelConfig::default(),
        DeviceKind::hdd(),
        Box::new(BlockOnly::new(Cfq::new())),
    );
    for seed in 0..3u64 {
        let f = world.prealloc_file(k, 512 * MB, false);
        world.spawn(k, Box::new(RandReader::new(f, 512 * MB, 4096, seed)));
    }
    let window = SimDuration::from_secs(2);
    world.run_for(window);
    let total: f64 = world.kernel(k).stats.disk_time.values().sum();
    assert!(total > 0.5 * window.as_secs_f64(), "disk was busy: {total}");
    assert!(
        total <= 1.05 * window.as_secs_f64(),
        "cannot charge more time than elapsed: {total}"
    );
}
