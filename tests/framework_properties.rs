//! Table 1 of the paper, as executable assertions: which framework
//! supports cause mapping, cost estimation, and reordering.
//!
//! | need            | block | syscall | split |
//! |-----------------|-------|---------|-------|
//! | cause mapping   |  ✖    |   ✔     |  ✔    |
//! | cost estimation |  ✔    |   ✖     |  ✔    |
//! | reordering      |  ✖    |   ✔     |  ✔    |

use std::cell::RefCell;
use std::rc::Rc;

use split_level_io::block::{Dispatch, Request};
use split_level_io::framework::{IoSched, SchedCtx};
use split_level_io::prelude::*;

const MB: u64 = 1 << 20;

/// A probe scheduler that records what the framework shows it.
struct Probe {
    fifo: std::collections::VecDeque<Request>,
    log: Rc<RefCell<Vec<Request>>>,
}

impl IoSched for Probe {
    fn name(&self) -> &'static str {
        "probe"
    }
    fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
        self.log.borrow_mut().push(req.clone());
        self.fifo.push_back(req);
        ctx.kick_dispatch();
    }
    fn block_dispatch(&mut self, _ctx: &mut SchedCtx<'_>) -> Dispatch {
        match self.fifo.pop_front() {
            Some(r) => Dispatch::Issue(r),
            None => Dispatch::Idle,
        }
    }
    fn queued(&self) -> usize {
        self.fifo.len()
    }
}

/// Cause mapping: delegated writeback I/O reaches the block level with
/// the *dirtier's* pid in its cause set, even though the submitter is the
/// writeback task — information a block-only scheduler does not have.
#[test]
fn split_framework_maps_delegated_writes_to_their_causes() {
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut world = World::new();
    // Small memory so the background-writeback threshold is crossed
    // quickly and the writeback task actually delegates.
    let mut cfg = KernelConfig::default();
    cfg.cache.mem_bytes = 128 * MB;
    let k = world.add_kernel(
        cfg,
        DeviceKind::hdd(),
        Box::new(Probe {
            fifo: Default::default(),
            log: log.clone(),
        }),
    );
    let file = world.prealloc_file(k, 256 * MB, true);
    let writer = world.spawn(k, Box::new(SeqWriter::new(file, 256 * MB, MB)));
    world.run_for(SimDuration::from_secs(3));

    let wb_pid = world.kernel(k).writeback_pid();
    let delegated: Vec<Request> = log
        .borrow()
        .iter()
        .filter(|r| !r.is_read() && r.submitter == wb_pid)
        .cloned()
        .collect();
    assert!(!delegated.is_empty(), "writeback must have submitted data");
    for r in &delegated {
        assert!(
            r.causes.contains(writer),
            "delegated write must carry the dirtier's cause tag: {r:?}"
        );
        assert!(
            !r.causes.contains(wb_pid),
            "the proxy itself is not a cause: {r:?}"
        );
    }
}

/// Cost estimation: the same number of bytes, radically different device
/// cost — visible only below the file system. The split framework lets a
/// scheduler see true device times; a syscall-level scheduler sees bytes.
#[test]
fn block_level_costs_differ_per_pattern_while_bytes_do_not() {
    let measure = |contiguous: bool| {
        let mut world = World::new();
        let k = world.add_kernel(
            KernelConfig::default(),
            DeviceKind::hdd(),
            Box::new(BlockOnly::new(Noop::new())),
        );
        let file = world.prealloc_file(k, 1 << 30, contiguous);
        let pid = if contiguous {
            world.spawn(k, Box::new(SeqReader::new(file, 1 << 30, 256 * 1024)))
        } else {
            world.spawn(k, Box::new(RandReader::new(file, 1 << 30, 4096, 5)))
        };
        world.run_for(SimDuration::from_secs(2));
        let st = world.kernel(k).stats.proc(pid).unwrap();
        let disk = world
            .kernel(k)
            .stats
            .disk_time
            .get(&pid)
            .copied()
            .unwrap_or(0.0);
        (st.read_bytes, disk)
    };
    let (seq_bytes, seq_time) = measure(true);
    let (rand_bytes, rand_time) = measure(false);
    // Per-byte device cost differs by orders of magnitude…
    let seq_cost = seq_time / seq_bytes as f64;
    let rand_cost = rand_time / rand_bytes as f64;
    assert!(
        rand_cost > 50.0 * seq_cost,
        "per-byte cost must differ wildly: {rand_cost:e} vs {seq_cost:e}"
    );
}

/// Reordering: the syscall-level gate lets a split scheduler reorder
/// *writes before the journal entangles them* — a held fsync never forces
/// others to wait. Demonstrated by Split-Deadline keeping A's fsyncs fast
/// while a block-level scheduler cannot (the Figure 12 effect).
#[test]
fn syscall_gating_reorders_what_the_block_level_cannot() {
    let run = |split: bool| {
        let mut world = World::new();
        let sched: Box<dyn IoSched> = if split {
            Box::new(SplitDeadline::new())
        } else {
            Box::new(BlockOnly::new(BlockDeadline::new()))
        };
        let cfg = KernelConfig {
            pdflush: !split,
            ..Default::default()
        };
        let k = world.add_kernel(cfg, DeviceKind::hdd(), sched);
        let fa = world.prealloc_file(k, 64 * MB, true);
        let fb = world.prealloc_file(k, 1 << 30, true);
        let a = world.spawn(
            k,
            Box::new(FsyncAppender::new(fa, 4096, SimDuration::from_millis(10))),
        );
        let _b = world.spawn(
            k,
            Box::new(BatchRandFsyncer::new(
                fb,
                1 << 30,
                1024,
                SimDuration::from_millis(50),
                3,
            )),
        );
        if split {
            world.configure(
                k,
                a,
                SchedAttr::FsyncDeadline(SimDuration::from_millis(100)),
            );
        }
        world.run_for(SimDuration::from_secs(10));
        let st = world.kernel(k).stats.proc(a).unwrap();
        let lat: Vec<f64> = st.fsyncs.iter().map(|(_, d)| d.as_millis_f64()).collect();
        split_level_io::core::stats::percentile(&lat, 95.0)
    };
    let block_p95 = run(false);
    let split_p95 = run(true);
    assert!(
        block_p95 > 2.0 * split_p95,
        "split gating must beat block-level reordering: {split_p95} vs {block_p95} ms"
    );
}

/// The memory-level hooks exist and fire: a split scheduler learns about
/// writes the moment buffers are dirtied, ~seconds before writeback.
#[test]
fn memory_hooks_report_dirtying_promptly() {
    struct DirtyCounter {
        fifo: std::collections::VecDeque<Request>,
        dirtied: Rc<RefCell<u64>>,
    }
    impl IoSched for DirtyCounter {
        fn name(&self) -> &'static str {
            "dirty-counter"
        }
        fn buffer_dirtied(
            &mut self,
            ev: &split_level_io::framework::BufferDirtied,
            _ctx: &mut SchedCtx<'_>,
        ) {
            *self.dirtied.borrow_mut() += ev.new_bytes;
        }
        fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
            self.fifo.push_back(req);
            ctx.kick_dispatch();
        }
        fn block_dispatch(&mut self, _ctx: &mut SchedCtx<'_>) -> Dispatch {
            match self.fifo.pop_front() {
                Some(r) => Dispatch::Issue(r),
                None => Dispatch::Idle,
            }
        }
        fn queued(&self) -> usize {
            self.fifo.len()
        }
    }
    let dirtied = Rc::new(RefCell::new(0u64));
    let mut world = World::new();
    let k = world.add_kernel(
        KernelConfig::default(),
        DeviceKind::hdd(),
        Box::new(DirtyCounter {
            fifo: Default::default(),
            dirtied: dirtied.clone(),
        }),
    );
    let file = world.prealloc_file(k, 64 * MB, true);
    world.spawn(k, Box::new(SeqWriter::new(file, 64 * MB, MB)));
    // Well under the writeback delay: the scheduler already knows.
    world.run_for(SimDuration::from_millis(50));
    assert!(
        *dirtied.borrow() > 8 * MB,
        "buffer-dirty hooks must fire at write time, got {} bytes",
        *dirtied.borrow()
    );
}
