#![warn(missing_docs)]
//! # split-level-io
//!
//! A reproduction of *Split-Level I/O Scheduling* (Yang et al., SOSP
//! 2015) as a deterministic storage-stack simulator plus the paper's
//! scheduling framework and schedulers.
//!
//! The paper's contribution is a set of scheduling hooks at three layers
//! of the storage stack — system call, page cache, and block — together
//! with cross-layer *cause tags* that let a scheduler at any layer map
//! I/O back to the processes responsible for it. Since the original is a
//! Linux kernel patch, this crate reproduces the entire surrounding
//! stack in simulation: device models, block layer with pluggable
//! elevators (CFQ, deadline, noop), a tagged page cache with writeback,
//! journaling file systems (ext4-like, XFS-like), a syscall layer with
//! process and CPU models, the split framework, and the paper's three
//! schedulers (AFQ, Split-Deadline, Split-Token) plus the SCS-Token
//! baseline.
//!
//! ## Quick start
//!
//! ```
//! use split_level_io::prelude::*;
//!
//! // A machine: HDD, ext4, Split-Token scheduling.
//! let mut world = World::new();
//! let kernel = world.add_kernel(
//!     KernelConfig::default(),
//!     DeviceKind::hdd(),
//!     Box::new(SplitToken::new()),
//! );
//!
//! // An unthrottled sequential reader and a throttled random writer.
//! let big = world.prealloc_file(kernel, 1 << 30, true);
//! let reader = world.spawn(kernel, Box::new(SeqReader::new(big, 1 << 30, 1 << 20)));
//! let scratch = world.prealloc_file(kernel, 1 << 30, false);
//! let writer = world.spawn(kernel, Box::new(RandWriter::new(scratch, 1 << 30, 4096, 7)));
//! world.configure(kernel, writer, SchedAttr::TokenRate(1 << 20)); // 1 MB/s
//!
//! world.run_for(SimDuration::from_secs(2));
//! let a = world.kernel(kernel).stats.read_mbps(reader, SimDuration::from_secs(2));
//! assert!(a > 50.0, "the reader is protected: {a:.0} MB/s");
//! ```
//!
//! See `examples/` for complete scenarios and `crates/sim-experiments`
//! for the figure-by-figure reproduction of the paper's evaluation.

pub use sim_apps as apps;
pub use sim_block as block;
pub use sim_cache as cache;
pub use sim_core as core;
pub use sim_device as device;
pub use sim_experiments as experiments;
pub use sim_fs as fs;
pub use sim_kernel as kernel;
pub use sim_workloads as workloads;
pub use split_core as framework;
pub use split_schedulers as schedulers;

/// The most common imports for building simulations.
pub mod prelude {
    pub use sim_block::{BlockDeadline, Cfq, IoPrio, Noop, PrioClass};
    pub use sim_core::{CauseSet, FileId, KernelId, Pid, SimDuration, SimTime, PAGE_SIZE};
    pub use sim_device::{DiskModel, HddModel, SsdModel};
    pub use sim_kernel::{
        DeviceKind, FsChoice, KernelConfig, Outcome, ProcAction, ProcessLogic, World,
    };
    pub use sim_workloads::{
        BatchRandFsyncer, BurstWriter, CreatFsyncLoop, FsyncAppender, MemOverwriter, RandReader,
        RandWriter, RunPattern, SeqReader, SeqWriter, Spinner,
    };
    pub use split_core::{BlockOnly, Gate, IoSched, SchedAttr, SyscallKind};
    pub use split_schedulers::{Afq, ScsToken, SplitDeadline, SplitNoop, SplitToken};
}
