//! Chrome trace-event JSON and CSV exporters. The JSON is hand-rolled
//! (the container builds offline; no serde) and targets the subset of
//! the trace-event format that Perfetto and `chrome://tracing` load:
//! complete ("X") events for spans, counter ("C") events for gauges,
//! and metadata ("M") events naming the process and task tracks.
//!
//! Events are emitted sorted by timestamp so consumers that stream the
//! array (and our own tests) see monotone time.

use crate::metrics::Registry;
use crate::span::SpanRecord;
use sim_core::{CauseSet, Pid, SimTime};
use std::collections::HashMap;

/// Escape a string for a JSON string literal (no surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number. Rust's `Display` for finite
/// floats is already valid JSON (digits, optional `-`/`.`, no
/// exponent), but `NaN`/`inf` would come out as bare words and corrupt
/// the document — a poisoned gauge (e.g. a mean over zero samples)
/// must not take the whole trace down with it, so those pin to `0`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn micros(t: SimTime) -> f64 {
    t.as_nanos() as f64 / 1000.0
}

fn causes_tag(causes: &CauseSet) -> String {
    let v: Vec<String> = causes.iter().map(|p| p.raw().to_string()).collect();
    v.join("|")
}

/// Render spans + gauges as a Chrome trace-event JSON document.
pub fn chrome_json(
    process: u32,
    spans: &[SpanRecord],
    task_labels: &HashMap<Pid, &'static str>,
    registry: &Registry,
) -> String {
    // (sort key in ns, rendered event) — metadata first (key 0).
    let mut events: Vec<(u64, String)> = Vec::new();

    events.push((
        0,
        format!(
            r#"{{"ph":"M","name":"process_name","pid":{process},"tid":0,"args":{{"name":"kernel{process}"}}}}"#
        ),
    ));
    let mut named: Vec<Pid> = Vec::new();
    for s in spans {
        if !named.contains(&s.pid) {
            named.push(s.pid);
        }
    }
    named.sort_unstable();
    for pid in named {
        let label = match task_labels.get(&pid) {
            Some(l) => format!("{l} (pid {pid})"),
            None => format!("pid {pid}"),
        };
        events.push((
            0,
            format!(
                r#"{{"ph":"M","name":"thread_name","pid":{process},"tid":{},"args":{{"name":"{}"}}}}"#,
                pid.raw(),
                escape_json(&label)
            ),
        ));
    }

    for s in spans {
        let Some(end) = s.end else {
            // Open spans (cut off at the end of the run) are skipped;
            // a complete event needs a duration.
            continue;
        };
        let ts = micros(s.start);
        let dur = micros(end) - ts;
        let arg = match s.arg {
            Some(a) => format!(r#","arg":{a}"#),
            None => String::new(),
        };
        events.push((
            s.start.as_nanos(),
            format!(
                r#"{{"name":"{}","cat":"{}","ph":"X","ts":{ts:.3},"dur":{dur:.3},"pid":{process},"tid":{},"args":{{"span":{},"parent":{},"causes":"{}"{arg}}}}}"#,
                escape_json(s.name),
                s.layer.name(),
                s.pid.raw(),
                s.id.raw(),
                s.parent.raw(),
                causes_tag(&s.causes),
            ),
        ));
    }

    for (name, series) in registry.gauges() {
        for &(t, v) in series {
            events.push((
                t.as_nanos(),
                format!(
                    r#"{{"name":"{}","ph":"C","ts":{:.3},"pid":{process},"tid":0,"args":{{"value":{}}}}}"#,
                    escape_json(name),
                    micros(t),
                    json_num(v),
                ),
            ));
        }
    }

    events.sort_by_key(|(t, _)| *t);
    let body: Vec<String> = events.into_iter().map(|(_, e)| e).collect();
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        body.join(",\n")
    )
}

/// Render spans as CSV
/// (`span,parent,layer,name,pid,start_s,end_s,dur_ms,causes,arg`).
pub fn spans_csv(spans: &[SpanRecord]) -> String {
    let mut out = String::from("span,parent,layer,name,pid,start_s,end_s,dur_ms,causes,arg\n");
    for s in spans {
        let (end_s, dur_ms) = match s.end {
            Some(e) => (
                format!("{:.6}", e.as_secs_f64()),
                format!("{:.3}", e.since(s.start).as_millis_f64()),
            ),
            None => (String::new(), String::new()),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{:.6},{},{},{},{}\n",
            s.id.raw(),
            s.parent.raw(),
            s.layer.name(),
            s.name,
            s.pid.raw(),
            s.start.as_secs_f64(),
            end_s,
            dur_ms,
            causes_tag(&s.causes),
            s.arg.map(|a| a.to_string()).unwrap_or_default(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Layer, SpanId};

    fn span(id: u64, parent: u64, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: SpanId(parent),
            layer: Layer::Syscall,
            name: "fsync",
            pid: Pid(4),
            causes: CauseSet::from_pids([Pid(4), Pid(5)]),
            start: SimTime::from_nanos(start),
            end: Some(SimTime::from_nanos(end)),
            arg: Some(9),
        }
    }

    #[test]
    fn chrome_json_is_valid_and_tagged() {
        let spans = vec![span(1, 0, 1000, 5000), span(2, 1, 2000, 3000)];
        let mut reg = Registry::new();
        reg.gauge("cache.dirty_pages", SimTime::from_nanos(1500), 42.0);
        let json = chrome_json(0, &spans, &HashMap::new(), &reg);
        crate::json::validate(&json).expect("exporter must emit well-formed JSON");
        assert!(json.contains(r#""causes":"4|5""#));
        assert!(json.contains(r#""cat":"syscall""#));
        assert!(json.contains(r#""ph":"C""#));
        assert!(json.contains(r#""arg":9"#));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_json_round_trips_hostile_names_and_values() {
        // Gauge names with quotes/backslashes/control chars must come
        // back intact through a real parse, and non-finite values must
        // not corrupt the document.
        let hostile = "sched.\"q\\u\\o\\t'd\"\ttokens/3\n";
        let mut reg = Registry::new();
        reg.gauge(hostile, SimTime::from_nanos(1_000), f64::NAN);
        reg.gauge(hostile, SimTime::from_nanos(2_000), f64::INFINITY);
        reg.gauge(hostile, SimTime::from_nanos(3_000), -2.5);
        let json = chrome_json(7, &[], &HashMap::new(), &reg);
        let doc = crate::json::parse(&json).expect("exporter emits parseable JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 3);
        for c in &counters {
            assert_eq!(c.get("name").and_then(|n| n.as_str()), Some(hostile));
        }
        let values: Vec<f64> = counters
            .iter()
            .map(|c| {
                c.get("args")
                    .unwrap()
                    .get("value")
                    .unwrap()
                    .as_f64()
                    .unwrap()
            })
            .collect();
        assert_eq!(values, vec![0.0, 0.0, -2.5], "non-finite pins to 0");
    }

    #[test]
    fn csv_has_one_row_per_span() {
        let csv = spans_csv(&[span(1, 0, 0, 10)]);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("syscall,fsync,4"));
    }
}
