//! Cross-layer observability for the simulated storage stack.
//!
//! The split-level scheduling paper's diagnosis is that layers can't
//! *see* across each other: the block scheduler doesn't know which
//! process caused a delegated write, and an application can't tell
//! which layer its fsync latency came from. This crate is the
//! explanation side of that story for the simulator:
//!
//! * [`Tracer`] — a cheap-to-clone handle every layer shares. Each
//!   logical I/O (syscall, writeback pass, journal commit, block
//!   queue, device service) opens a timed [`SpanRecord`] tagged with
//!   pid, [`CauseSet`](sim_core::CauseSet), and [`Layer`], linked
//!   parent→child across layers.
//! * [`Registry`] — counters, simulated-clock gauge series, and
//!   fixed-bucket latency [`Histogram`]s.
//! * [`chrome`] — hand-rolled Chrome trace-event JSON (loadable in
//!   Perfetto / `chrome://tracing`) and CSV exporters.
//! * [`breakdown`] — per-layer fsync latency decomposition whose
//!   components sum to the end-to-end latency by construction.
//! * [`RequestTrace`] — the flat per-request block trace (with an
//!   optional keep-newest ring mode), folded into the same handle.
//!
//! Everything is timestamped on the simulated clock, so traces and
//! metrics are deterministic outputs of a run, byte-for-byte.

pub mod block;
pub mod breakdown;
pub mod chrome;
pub mod json;
pub mod metrics;
pub mod prof_export;
pub mod span;
pub mod tracer;

pub use block::{RequestTrace, TraceRecord};
pub use breakdown::{fsync_breakdown, layer_totals, FsyncBreakdown, FSYNC_COMPONENTS};
pub use metrics::{Histogram, Registry};
pub use prof_export::export_profile;
pub use span::{slot_name, Layer, SpanId, SpanRecord};
pub use tracer::Tracer;
