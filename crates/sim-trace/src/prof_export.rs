//! Fold a [`ProfSnapshot`](sim_core::prof::ProfSnapshot) into a
//! [`Registry`], so the self-profiler's host-side numbers travel
//! through the same export paths (summary CSV, Chrome JSON) as the
//! simulated-clock metrics. The profiler reads wall-clock time, so
//! unlike every other registry entry these values differ run to run —
//! they are kept under a distinct `prof.` prefix and must never be
//! part of a golden comparison.

use crate::metrics::Registry;
use sim_core::prof::ProfSnapshot;
use sim_core::SimTime;

/// Export `snap` into `reg` under the `prof.` prefix: per-phase
/// `prof.<phase>.calls` / `prof.<phase>.nanos` counters plus event
/// queue and MQ occupancy gauges (stamped at `t = 0`; the profiler has
/// no simulated timeline).
pub fn export_profile(reg: &mut Registry, snap: &ProfSnapshot) {
    for ps in &snap.phases {
        reg.add(&format!("prof.{}.calls", ps.phase.name()), ps.calls);
        reg.add(&format!("prof.{}.nanos", ps.phase.name()), ps.nanos);
    }
    let t0 = SimTime::ZERO;
    reg.gauge("prof.queue.depth_max", t0, snap.depth_max as f64);
    reg.gauge("prof.queue.depth_mean", t0, snap.depth_mean);
    reg.gauge("prof.mq.staged_max", t0, snap.mq_staged_max as f64);
    reg.gauge("prof.mq.inflight_max", t0, snap.mq_inflight_max as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::prof::{Phase, Profiler};

    #[test]
    fn exports_phases_and_gauges() {
        let p = Profiler::new();
        p.set_enabled(true);
        let t0 = p.start().unwrap();
        p.record(Phase::Sched, t0);
        p.sample_depth(17);
        let mut reg = Registry::new();
        export_profile(&mut reg, &p.snapshot());
        assert_eq!(reg.counter("prof.sched.calls"), 1);
        assert_eq!(reg.counter("prof.event_push.calls"), 0);
        let depth = reg.gauge_series("prof.queue.depth_max");
        assert_eq!(depth.len(), 1);
        assert_eq!(depth[0].1, 17.0);
    }
}
