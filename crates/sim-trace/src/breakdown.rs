//! Latency-breakdown analysis: decompose each fsync's end-to-end
//! latency into per-layer segments using the span tree. This is the
//! paper's Figure 5 dependency story as a table — how much of an
//! fsync's wait is the syscall gate, how much is flushing its own
//! (and, entangled, everyone else's) data, and how much is waiting on
//! the journal transaction.
//!
//! The decomposition is milestone-based so the segments tile the
//! `[enter, complete]` interval exactly and always sum to the
//! end-to-end latency: gate-exit, data-flush start/end, and journal
//! resolution are clamped into monotone order and the five gaps
//! between them are the components.

use crate::span::{Layer, SpanRecord};

/// Component labels, in timeline order.
pub const FSYNC_COMPONENTS: [&str; 5] = [
    "gate_wait",
    "cpu_cache",
    "data_flush",
    "journal_wait",
    "completion",
];

/// The layer each component is charged to (for per-layer tables).
pub const FSYNC_COMPONENT_LAYERS: [Layer; 5] = [
    Layer::Gate,
    Layer::Cache,
    Layer::Writeback,
    Layer::Journal,
    Layer::Syscall,
];

/// Aggregated fsync latency decomposition.
#[derive(Debug, Clone, Default)]
pub struct FsyncBreakdown {
    /// Completed fsync spans analyzed.
    pub count: usize,
    /// Sum of end-to-end latencies (ms).
    pub total_ms: f64,
    /// Per-component totals (ms), indexed like [`FSYNC_COMPONENTS`].
    pub components: [f64; 5],
}

impl FsyncBreakdown {
    /// Mean end-to-end latency (ms).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms / self.count as f64
        }
    }

    /// Sum of the component totals (ms) — equals `total_ms` up to
    /// float rounding, by construction.
    pub fn components_sum_ms(&self) -> f64 {
        self.components.iter().sum()
    }
}

/// Decompose every completed fsync syscall span in `spans`.
///
/// Milestones per fsync (each clamped to be ≥ the previous one):
/// end of the `gate_wait` child, start and end of the `fsync_data`
/// child, end of the `journal_wait` child. The five gaps between
/// `[enter, m1, m2, m3, m4, complete]` are the components.
pub fn fsync_breakdown(spans: &[SpanRecord]) -> FsyncBreakdown {
    let mut out = FsyncBreakdown::default();
    for s in spans {
        if s.layer != Layer::Syscall || s.name != "fsync" {
            continue;
        }
        let Some(end) = s.end else { continue };
        let t0 = s.start.as_nanos();
        let t_end = end.as_nanos();

        let mut gate_end = None;
        let mut data = None;
        let mut journal_end = None;
        for c in spans {
            if c.parent != s.id {
                continue;
            }
            match c.name {
                "gate_wait" => gate_end = c.end.map(|e| e.as_nanos()),
                "fsync_data" => data = Some((c.start.as_nanos(), c.end.map(|e| e.as_nanos()))),
                "journal_wait" => journal_end = c.end.map(|e| e.as_nanos()),
                _ => {}
            }
        }

        let clamp = |t: u64, lo: u64| t.clamp(lo, t_end);
        let m1 = clamp(gate_end.unwrap_or(t0), t0);
        let (data_start, data_end) = match data {
            Some((ds, de)) => (ds, de.unwrap_or(ds)),
            None => (m1, m1),
        };
        let m2 = clamp(data_start, m1);
        let m3 = clamp(data_end, m2);
        let m4 = clamp(journal_end.unwrap_or(m3), m3);

        let marks = [t0, m1, m2, m3, m4, t_end];
        for (i, w) in marks.windows(2).enumerate() {
            out.components[i] += (w[1] - w[0]) as f64 / 1e6;
        }
        out.count += 1;
        out.total_ms += (t_end - t0) as f64 / 1e6;
    }
    out
}

/// Total closed-span time per layer (ms), in [`Layer::ALL`] order.
/// Unlike the fsync decomposition these overlap (a queue span nests
/// inside a journal commit), so this is a per-layer activity profile,
/// not a partition.
pub fn layer_totals(spans: &[SpanRecord]) -> [(Layer, f64); 7] {
    let mut out = Layer::ALL.map(|l| (l, 0.0));
    for s in spans {
        if let Some(d) = s.duration() {
            // Every layer is in ALL today, but a span from a newer layer
            // must degrade to "unprofiled", not panic the report.
            if let Some(slot) = Layer::ALL.iter().position(|&l| l == s.layer) {
                out[slot].1 += d.as_millis_f64();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;
    use sim_core::{CauseSet, Pid, SimTime};

    fn span(
        id: u64,
        parent: u64,
        layer: Layer,
        name: &'static str,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: SpanId(parent),
            layer,
            name,
            pid: Pid(1),
            causes: CauseSet::of(Pid(1)),
            start: SimTime::from_nanos(start),
            end: Some(SimTime::from_nanos(end)),
            arg: None,
        }
    }

    #[test]
    fn components_tile_the_interval_exactly() {
        let ms = 1_000_000u64;
        let spans = vec![
            span(1, 0, Layer::Syscall, "fsync", 0, 20 * ms),
            span(2, 1, Layer::Gate, "gate_wait", 0, 2 * ms),
            span(3, 1, Layer::Writeback, "fsync_data", 3 * ms, 10 * ms),
            span(4, 1, Layer::Journal, "journal_wait", 3 * ms, 18 * ms),
        ];
        let b = fsync_breakdown(&spans);
        assert_eq!(b.count, 1);
        assert!((b.total_ms - 20.0).abs() < 1e-9);
        assert!((b.components_sum_ms() - b.total_ms).abs() < 1e-9);
        // gate 2, cpu/cache 1, data 7, journal 8, completion 2.
        let expect = [2.0, 1.0, 7.0, 8.0, 2.0];
        for (got, want) in b.components.iter().zip(expect) {
            assert!(
                (got - want).abs() < 1e-9,
                "{:?} vs {expect:?}",
                b.components
            );
        }
    }

    #[test]
    fn missing_children_collapse_to_completion() {
        let spans = vec![span(1, 0, Layer::Syscall, "fsync", 0, 5_000_000)];
        let b = fsync_breakdown(&spans);
        assert_eq!(b.count, 1);
        assert!((b.components_sum_ms() - 5.0).abs() < 1e-9);
        assert_eq!(b.components[0], 0.0);
        assert!((b.components[4] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn milestones_clamp_monotone() {
        // Journal resolved before the data flush ended: journal segment
        // clamps to zero rather than going negative.
        let ms = 1_000_000u64;
        let spans = vec![
            span(1, 0, Layer::Syscall, "fsync", 0, 10 * ms),
            span(3, 1, Layer::Writeback, "fsync_data", ms, 9 * ms),
            span(4, 1, Layer::Journal, "journal_wait", ms, 4 * ms),
        ];
        let b = fsync_breakdown(&spans);
        assert!((b.components_sum_ms() - 10.0).abs() < 1e-9);
        assert_eq!(b.components[3], 0.0, "journal clamps: {:?}", b.components);
    }

    #[test]
    fn layer_totals_accumulate() {
        let spans = vec![
            span(1, 0, Layer::Block, "queue", 0, 2_000_000),
            span(2, 0, Layer::Block, "queue", 0, 3_000_000),
            span(3, 0, Layer::Device, "service", 0, 1_000_000),
        ];
        let t = layer_totals(&spans);
        let block = t.iter().find(|(l, _)| *l == Layer::Block).unwrap().1;
        assert!((block - 5.0).abs() < 1e-9);
    }
}
