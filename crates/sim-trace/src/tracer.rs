//! The shared tracing handle. One [`Tracer`] is created per kernel and
//! cloned into every layer (page cache, filesystem, scheduler context);
//! all clones share one span store and metrics registry, so a request
//! crossing layers stays one connected tree.
//!
//! The handle is built to cost nothing when tracing is off: every entry
//! point first reads a shared `Cell<bool>` and returns before touching
//! the `RefCell` state, formatting a key, or cloning a cause set.

use crate::block::RequestTrace;
use crate::metrics::Registry;
use crate::span::{Layer, SpanId, SpanRecord};
use sim_block::Request;
use sim_core::{CauseSet, Pid, SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Retained-span cap; past it new spans are counted as dropped.
const DEFAULT_SPAN_CAP: usize = 1 << 20;

#[derive(Debug, Default)]
struct Inner {
    process: u32,
    spans: Vec<SpanRecord>,
    current: HashMap<Pid, SpanId>,
    task_labels: HashMap<Pid, &'static str>,
    registry: Registry,
    block: Option<RequestTrace>,
    span_cap: usize,
    spans_dropped: u64,
}

/// Cheap-to-clone handle onto one kernel's trace state.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: Rc<Cell<bool>>,
    block_on: Rc<Cell<bool>>,
    inner: Rc<RefCell<Inner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A disabled tracer for process (kernel) 0.
    pub fn new() -> Self {
        Tracer::for_kernel(0)
    }

    /// A disabled tracer whose Chrome-trace `pid` field is `process`
    /// (one track group per kernel instance in multi-machine worlds).
    pub fn for_kernel(process: u32) -> Self {
        Tracer {
            enabled: Rc::new(Cell::new(false)),
            block_on: Rc::new(Cell::new(false)),
            inner: Rc::new(RefCell::new(Inner {
                process,
                span_cap: DEFAULT_SPAN_CAP,
                ..Default::default()
            })),
        }
    }

    /// Is span/metric recording on? All clones observe the same flag.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Turn span/metric recording on or off (for every clone).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.set(on);
    }

    /// Override the retained-span cap.
    pub fn set_span_cap(&self, cap: usize) {
        self.inner.borrow_mut().span_cap = cap.max(1);
    }

    /// Name a task for exports ("journal", "writeback").
    pub fn label_task(&self, pid: Pid, label: &'static str) {
        self.inner.borrow_mut().task_labels.insert(pid, label);
    }

    // ---- spans -----------------------------------------------------

    /// Open a span whose parent is `pid`'s current span (if any).
    #[inline]
    pub fn begin(
        &self,
        layer: Layer,
        name: &'static str,
        pid: Pid,
        causes: &CauseSet,
        now: SimTime,
    ) -> SpanId {
        if !self.enabled.get() {
            return SpanId::NONE;
        }
        let mut inner = self.inner.borrow_mut();
        let parent = inner.current.get(&pid).copied().unwrap_or(SpanId::NONE);
        inner.push_span(layer, name, pid, causes, now, parent)
    }

    /// Open a span with an explicit parent.
    #[inline]
    pub fn begin_child(
        &self,
        parent: SpanId,
        layer: Layer,
        name: &'static str,
        pid: Pid,
        causes: &CauseSet,
        now: SimTime,
    ) -> SpanId {
        if !self.enabled.get() {
            return SpanId::NONE;
        }
        self.inner
            .borrow_mut()
            .push_span(layer, name, pid, causes, now, parent)
    }

    /// Open a span and make it `pid`'s current span, so lower layers
    /// instrumented later in the same logical operation parent to it.
    #[inline]
    pub fn begin_current(
        &self,
        layer: Layer,
        name: &'static str,
        pid: Pid,
        causes: &CauseSet,
        now: SimTime,
    ) -> SpanId {
        if !self.enabled.get() {
            return SpanId::NONE;
        }
        let mut inner = self.inner.borrow_mut();
        let parent = inner.current.get(&pid).copied().unwrap_or(SpanId::NONE);
        let id = inner.push_span(layer, name, pid, causes, now, parent);
        if !id.is_none() {
            inner.current.insert(pid, id);
        }
        id
    }

    /// Close a span. No-op for [`SpanId::NONE`] or unknown ids, so
    /// callers never need to re-check whether tracing was on at open.
    #[inline]
    pub fn end(&self, id: SpanId, now: SimTime) {
        if id.is_none() {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        if let Some(s) = inner.span_mut(id) {
            s.end = Some(now);
        }
    }

    /// Close a span opened with [`Tracer::begin_current`], restoring
    /// `pid`'s current span to the closed span's parent.
    #[inline]
    pub fn end_current(&self, pid: Pid, id: SpanId, now: SimTime) {
        if id.is_none() {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let parent = match inner.span_mut(id) {
            Some(s) => {
                s.end = Some(now);
                s.parent
            }
            None => return,
        };
        if inner.current.get(&pid) == Some(&id) {
            if parent.is_none() {
                inner.current.remove(&pid);
            } else {
                inner.current.insert(pid, parent);
            }
        }
    }

    /// `pid`'s current span ([`SpanId::NONE`] when tracing is off or no
    /// span is open).
    #[inline]
    pub fn current(&self, pid: Pid) -> SpanId {
        if !self.enabled.get() {
            return SpanId::NONE;
        }
        self.inner
            .borrow()
            .current
            .get(&pid)
            .copied()
            .unwrap_or(SpanId::NONE)
    }

    /// A recorded span's parent.
    pub fn parent_of(&self, id: SpanId) -> SpanId {
        if id.is_none() {
            return SpanId::NONE;
        }
        self.inner
            .borrow()
            .span(id)
            .map(|s| s.parent)
            .unwrap_or(SpanId::NONE)
    }

    /// Attach a correlation value (txn id, request id) to a span.
    pub fn set_arg(&self, id: SpanId, arg: u64) {
        if id.is_none() {
            return;
        }
        if let Some(s) = self.inner.borrow_mut().span_mut(id) {
            s.arg = Some(arg);
        }
    }

    // ---- metrics ---------------------------------------------------

    /// Bump a counter.
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if !self.enabled.get() {
            return;
        }
        self.inner.borrow_mut().registry.add(name, delta);
    }

    /// Sample a gauge on the simulated clock.
    #[inline]
    pub fn gauge(&self, name: &'static str, now: SimTime, value: f64) {
        if !self.enabled.get() {
            return;
        }
        self.inner.borrow_mut().registry.gauge(name, now, value);
    }

    /// Sample a per-key gauge (`name/key`), e.g. per-pid token levels.
    #[inline]
    pub fn gauge_key(&self, name: &'static str, key: u64, now: SimTime, value: f64) {
        if !self.enabled.get() {
            return;
        }
        self.inner
            .borrow_mut()
            .registry
            .gauge(&format!("{name}/{key}"), now, value);
    }

    /// Record a latency observation in a fixed-bucket histogram.
    #[inline]
    pub fn observe(&self, name: &'static str, d: SimDuration) {
        if !self.enabled.get() {
            return;
        }
        self.inner
            .borrow_mut()
            .registry
            .observe_ms(name, d.as_millis_f64());
    }

    // ---- block-request trace --------------------------------------

    /// Install a flat block-request table (see [`RequestTrace`]); it
    /// records independently of the span/metric flag, preserving the
    /// original `Kernel::enable_trace` behavior.
    pub fn install_block_trace(&self, trace: RequestTrace) {
        self.inner.borrow_mut().block = Some(trace);
        self.block_on.set(true);
    }

    /// Is a block-request table installed?
    #[inline]
    pub fn block_trace_on(&self) -> bool {
        self.block_on.get()
    }

    /// Record one dispatched block request into the flat table (if
    /// installed) — the single entry point for block-layer tracing.
    #[inline]
    pub fn record_block(&self, req: &Request, service: SimDuration, now: SimTime) {
        if !self.block_on.get() {
            return;
        }
        if let Some(t) = self.inner.borrow_mut().block.as_mut() {
            t.record(req, service, now);
        }
    }

    /// Read the flat block table, if installed.
    pub fn with_block_trace<R>(&self, f: impl FnOnce(&RequestTrace) -> R) -> Option<R> {
        self.inner.borrow().block.as_ref().map(f)
    }

    // ---- export / inspection --------------------------------------

    /// Snapshot every recorded span, in open order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.borrow().spans.clone()
    }

    /// Number of spans dropped past the cap.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.borrow().spans_dropped
    }

    /// Read the metrics registry.
    pub fn with_registry<R>(&self, f: impl FnOnce(&Registry) -> R) -> R {
        f(&self.inner.borrow().registry)
    }

    /// Snapshot the metrics registry.
    pub fn registry(&self) -> Registry {
        self.inner.borrow().registry.clone()
    }

    /// Export spans + gauges as Chrome trace-event JSON (Perfetto-loadable).
    pub fn chrome_json(&self) -> String {
        let inner = self.inner.borrow();
        crate::chrome::chrome_json(
            inner.process,
            &inner.spans,
            &inner.task_labels,
            &inner.registry,
        )
    }

    /// Export spans as CSV.
    pub fn spans_csv(&self) -> String {
        crate::chrome::spans_csv(&self.inner.borrow().spans)
    }
}

impl Inner {
    fn push_span(
        &mut self,
        layer: Layer,
        name: &'static str,
        pid: Pid,
        causes: &CauseSet,
        now: SimTime,
        parent: SpanId,
    ) -> SpanId {
        if self.spans.len() >= self.span_cap {
            self.spans_dropped += 1;
            return SpanId::NONE;
        }
        let id = SpanId(self.spans.len() as u64 + 1);
        self.spans.push(SpanRecord {
            id,
            parent,
            layer,
            name,
            pid,
            causes: causes.clone(),
            start: now,
            end: None,
            arg: None,
        });
        id
    }

    fn span(&self, id: SpanId) -> Option<&SpanRecord> {
        self.spans.get(id.0 as usize - 1)
    }

    fn span_mut(&mut self, id: SpanId) -> Option<&mut SpanRecord> {
        self.spans.get_mut(id.0 as usize - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tr = Tracer::new();
        let id = tr.begin_current(Layer::Syscall, "write", Pid(1), &CauseSet::of(Pid(1)), t(0));
        assert!(id.is_none());
        tr.end_current(Pid(1), id, t(5));
        tr.count("x", 1);
        tr.gauge("g", t(1), 1.0);
        tr.observe("h", SimDuration::from_millis(1));
        assert!(tr.spans().is_empty());
        assert_eq!(tr.with_registry(|r| r.counter("x")), 0);
    }

    #[test]
    fn current_span_parents_nested_work() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        let causes = CauseSet::of(Pid(1));
        let sys = tr.begin_current(Layer::Syscall, "fsync", Pid(1), &causes, t(0));
        let child = tr.begin(Layer::Journal, "journal_wait", Pid(1), &causes, t(10));
        assert_eq!(tr.parent_of(child), sys);
        tr.end(child, t(20));
        tr.end_current(Pid(1), sys, t(30));
        assert_eq!(tr.current(Pid(1)), SpanId::NONE);
        let spans = tr.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].end, Some(t(30)));
        assert_eq!(spans[1].parent, sys);
    }

    #[test]
    fn end_current_restores_parent() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        let causes = CauseSet::of(Pid(2));
        let outer = tr.begin_current(Layer::Journal, "journal_commit", Pid(2), &causes, t(0));
        let inner = tr.begin_current(Layer::Journal, "write_log", Pid(2), &causes, t(1));
        assert_eq!(tr.current(Pid(2)), inner);
        tr.end_current(Pid(2), inner, t(2));
        assert_eq!(tr.current(Pid(2)), outer);
        tr.end_current(Pid(2), outer, t(3));
        assert_eq!(tr.current(Pid(2)), SpanId::NONE);
    }

    #[test]
    fn clones_share_state() {
        let a = Tracer::new();
        let b = a.clone();
        b.set_enabled(true);
        assert!(a.enabled());
        let id = a.begin(Layer::Block, "queue", Pid(3), &CauseSet::of(Pid(3)), t(0));
        b.end(id, t(7));
        let spans = b.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].duration(), Some(SimDuration::from_nanos(7)));
    }

    #[test]
    fn span_cap_counts_drops() {
        let tr = Tracer::new();
        tr.set_enabled(true);
        tr.set_span_cap(2);
        let causes = CauseSet::of(Pid(1));
        for i in 0..5 {
            tr.begin(Layer::Block, "queue", Pid(1), &causes, t(i));
        }
        assert_eq!(tr.spans().len(), 2);
        assert_eq!(tr.spans_dropped(), 3);
    }
}
