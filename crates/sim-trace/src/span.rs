//! Span records: one timed interval per logical operation, tagged with
//! the layer it ran in, the task that ran it, and the cause set it
//! carried. Parent/child links let a single fsync decompose into
//! gate-wait / cache / journal-entanglement / queue / device segments.

use sim_core::{CauseSet, Pid, SimDuration, SimTime};

/// The stack layer a span belongs to. Exported as the Chrome-trace
/// category, so Perfetto can filter per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// Syscall entry to completion, as the process experiences it.
    Syscall,
    /// Waiting at the split framework's syscall gate.
    Gate,
    /// Page-cache work: dirty throttling waits, fills.
    Cache,
    /// Writeback passes (delegated dirty-page flushing).
    Writeback,
    /// Journal commits and fsync entanglement waits.
    Journal,
    /// Block-layer queueing (submit to dispatch).
    Block,
    /// Device service (dispatch to completion).
    Device,
}

impl Layer {
    /// Every layer, in stack order.
    pub const ALL: [Layer; 7] = [
        Layer::Syscall,
        Layer::Gate,
        Layer::Cache,
        Layer::Writeback,
        Layer::Journal,
        Layer::Block,
        Layer::Device,
    ];

    /// Stable lowercase name (Chrome-trace `cat`, CSV column).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Syscall => "syscall",
            Layer::Gate => "gate",
            Layer::Cache => "cache",
            Layer::Writeback => "writeback",
            Layer::Journal => "journal",
            Layer::Block => "block",
            Layer::Device => "device",
        }
    }
}

/// Static span names for hardware-queue slots, so per-slot device
/// spans stay alloc-free (`begin` takes `&'static str`). Slots past
/// the table share a generic name — queue depths above 32 are outside
/// the modeled NCQ/NVMe range anyway.
pub fn slot_name(slot: u32) -> &'static str {
    const NAMES: [&str; 32] = [
        "slot00", "slot01", "slot02", "slot03", "slot04", "slot05", "slot06", "slot07", "slot08",
        "slot09", "slot10", "slot11", "slot12", "slot13", "slot14", "slot15", "slot16", "slot17",
        "slot18", "slot19", "slot20", "slot21", "slot22", "slot23", "slot24", "slot25", "slot26",
        "slot27", "slot28", "slot29", "slot30", "slot31",
    ];
    NAMES.get(slot as usize).copied().unwrap_or("slot")
}

/// A stable span identifier. Zero is the reserved "no span" value so a
/// disabled tracer can hand out ids without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// The absent span (disabled tracer, or no parent).
    pub const NONE: SpanId = SpanId(0);

    /// True for [`SpanId::NONE`].
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Raw integer value (0 means none).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One recorded span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// This span's id (never [`SpanId::NONE`] once recorded).
    pub id: SpanId,
    /// Enclosing span, or [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// Stack layer.
    pub layer: Layer,
    /// Operation name ("fsync", "queue", "journal_commit", ...).
    pub name: &'static str,
    /// The task the span ran on (proxy tasks keep their own pids, which
    /// is what makes write delegation visible in a trace).
    pub pid: Pid,
    /// Responsible processes, per the split framework's cause tags.
    pub causes: CauseSet,
    /// Span open time.
    pub start: SimTime,
    /// Span close time; `None` while still open (e.g. cut off at the
    /// end of a run).
    pub end: Option<SimTime>,
    /// Optional correlation value: transaction id for journal spans,
    /// request id for block/device spans.
    pub arg: Option<u64>,
}

impl SpanRecord {
    /// Elapsed time, if the span closed.
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e.since(self.start))
    }
}
