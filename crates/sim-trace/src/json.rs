//! A minimal JSON well-formedness checker and value parser (RFC 8259
//! grammar). The exporters hand-roll their JSON, so tests use
//! [`validate`] to prove the output parses without pulling a JSON
//! crate into the offline build, and the bench harness uses [`parse`]
//! to read committed baselines back. [`validate`] walks the bytes once
//! and reports the first syntax error with its offset; [`parse`]
//! builds a [`Value`] tree on top of the same grammar.

/// Validate that `s` is a single well-formed JSON value.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Checker {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

/// A parsed JSON value. Objects keep their keys in document order;
/// lookups are linear scans, which is fine at the sizes the harness
/// reads (bench reports, trace documents in tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse `s` into a single [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, String> {
    // Validate first: the tree builder can then assume well-formed
    // input, keeping it simple, and callers get the checker's precise
    // byte-offset errors.
    validate(s)?;
    let mut p = Checker {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    p.parse_value()
}

struct Checker<'a> {
    b: &'a [u8],
    i: usize,
}

impl Checker<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            Err(self.err("expected digits"))
        } else {
            Ok(())
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.i += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero"));
                }
            }
            Some(c) if c.is_ascii_digit() => self.digits()?,
            _ => return Err(self.err("expected a number")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            self.digits()?;
        }
        Ok(())
    }

    // ---- value-tree building --------------------------------------------
    // These run on input [`validate`] already accepted, so they only
    // need to follow the grammar, not re-diagnose errors.

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'n') => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            _ => self.parse_number(),
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.ws();
            let key = self.parse_string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.parse_value()?;
            members.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                _ => {
                    self.expect(b'}')?;
                    return Ok(Value::Obj(members));
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(elems));
        }
        loop {
            self.ws();
            elems.push(self.parse_value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                _ => {
                    self.expect(b']')?;
                    return Ok(Value::Arr(elems));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: pair with a following
                                // \uXXXX low surrogate if present.
                                if self.b[self.i + 1..].starts_with(b"\\u") {
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits after `\u`; leaves `self.i` on the last digit
    /// (the caller's shared `+= 1` steps past it).
    fn hex4(&mut self) -> Result<u32, String> {
        let s = self
            .b
            .get(self.i + 1..self.i + 5)
            .ok_or_else(|| self.err("bad \\u escape"))?;
        let s = std::str::from_utf8(s).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.i += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.i;
        self.number()?;
        let s = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("unparseable number {s:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::{parse, validate, Value};

    #[test]
    fn parse_builds_the_value_tree() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"s":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_obj().unwrap().len(), 3);
    }

    #[test]
    fn parse_decodes_escapes() {
        let v = parse(r#""a\"b\\c\n\tAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\tA\u{e9}"));
        // Surrogate pair: U+1F600 as 😀.
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // ... and as an escaped \u surrogate pair.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Lone high surrogate degrades to the replacement char.
        let v = parse(r#""\ud83dx""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{FFFD}x"));
        // Raw multi-byte UTF-8 passes through.
        let v = parse("\"héllo\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo"));
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn as_u64_requires_a_nonnegative_integer() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn accepts_valid_documents() {
        for s in [
            "null",
            "true",
            "-12.5e-3",
            r#""a\né""#,
            r#"{"a":[1,2,{"b":null}],"c":"d"}"#,
            "{ }",
            "[\n]",
            r#"{"traceEvents":[{"ph":"X","ts":0.001}]}"#,
        ] {
            validate(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for s in [
            "",
            "{",
            "[1,]",
            r#"{"a":}"#,
            r#"{"a" 1}"#,
            "01",
            "1.",
            "\"unterminated",
            "\"bad\\q\"",
            "nul",
            "{} extra",
            "\"raw\tcontrol\"",
        ] {
            assert!(validate(s).is_err(), "should reject: {s:?}");
        }
    }
}
