//! A minimal JSON well-formedness checker (RFC 8259 grammar, no value
//! tree). The exporters hand-roll their JSON, so tests use this to
//! prove the output parses without pulling a JSON crate into the
//! offline build. It is a validator, not a parser: it walks the bytes
//! once and reports the first syntax error with its offset.

/// Validate that `s` is a single well-formed JSON value.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Checker {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Checker<'a> {
    b: &'a [u8],
    i: usize,
}

impl Checker<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            Err(self.err("expected digits"))
        } else {
            Ok(())
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.i += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero"));
                }
            }
            Some(c) if c.is_ascii_digit() => self.digits()?,
            _ => return Err(self.err("expected a number")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_valid_documents() {
        for s in [
            "null",
            "true",
            "-12.5e-3",
            r#""a\né""#,
            r#"{"a":[1,2,{"b":null}],"c":"d"}"#,
            "{ }",
            "[\n]",
            r#"{"traceEvents":[{"ph":"X","ts":0.001}]}"#,
        ] {
            validate(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for s in [
            "",
            "{",
            "[1,]",
            r#"{"a":}"#,
            r#"{"a" 1}"#,
            "01",
            "1.",
            "\"unterminated",
            "\"bad\\q\"",
            "nul",
            "{} extra",
            "\"raw\tcontrol\"",
        ] {
            assert!(validate(s).is_err(), "should reject: {s:?}");
        }
    }
}
