//! Request-level block tracing: when enabled, every dispatched block
//! request is recorded with its submitter, cause tags, location and
//! service time. Experiments use it to export the raw series behind the
//! figures (e.g. Figure 12's latency timeline) and tests use it to
//! assert on exact I/O interleavings.
//!
//! This lives alongside the span layer so block-layer tracing is one
//! code path: the kernel records each dispatch once through the
//! [`Tracer`](crate::Tracer), which feeds both the span store and this
//! flat table.

use sim_block::{ReqKind, Request};
use sim_core::{CauseSet, FileId, Pid, SimDuration, SimTime};
use sim_device::IoDir;
use std::collections::VecDeque;

/// One traced block request.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// When the request was dispatched to the device.
    pub dispatched_at: SimTime,
    /// When it entered the block layer.
    pub submitted_at: SimTime,
    /// Device service time (zero for virtual devices).
    pub service: SimDuration,
    /// Direction.
    pub dir: IoDir,
    /// Data / journal / metadata.
    pub kind: ReqKind,
    /// Submitting task.
    pub submitter: Pid,
    /// Responsible processes.
    pub causes: CauseSet,
    /// Start block.
    pub start: u64,
    /// Blocks.
    pub nblocks: u64,
    /// Owning file, if known.
    pub file: Option<FileId>,
}

impl TraceRecord {
    /// Queueing delay: dispatch minus submission.
    pub fn queue_delay(&self) -> SimDuration {
        self.dispatched_at.since(self.submitted_at)
    }
}

/// What to do once the capacity is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Overflow {
    /// Keep the oldest records, count the rest as dropped.
    #[default]
    KeepOldest,
    /// Ring buffer: evict the oldest record to admit the newest.
    KeepNewest,
}

/// A bounded in-memory trace of dispatched requests.
#[derive(Debug, Default)]
pub struct RequestTrace {
    records: VecDeque<TraceRecord>,
    cap: usize,
    overflow: Overflow,
    dropped: u64,
}

impl RequestTrace {
    /// A trace holding at most `cap` records; once full, *older* records
    /// are kept and overflow is counted, not silently ignored. Use
    /// [`RequestTrace::ring`] to keep the newest instead.
    pub fn with_capacity(cap: usize) -> Self {
        RequestTrace {
            records: VecDeque::new(),
            cap: cap.max(1),
            overflow: Overflow::KeepOldest,
            dropped: 0,
        }
    }

    /// A ring buffer holding the `cap` *newest* records; each eviction
    /// is counted in [`RequestTrace::dropped`].
    pub fn ring(cap: usize) -> Self {
        RequestTrace {
            records: VecDeque::new(),
            cap: cap.max(1),
            overflow: Overflow::KeepNewest,
            dropped: 0,
        }
    }

    /// Record one dispatched request.
    pub fn record(&mut self, req: &Request, service: SimDuration, now: SimTime) {
        if self.records.len() >= self.cap {
            self.dropped += 1;
            match self.overflow {
                Overflow::KeepOldest => return,
                Overflow::KeepNewest => {
                    self.records.pop_front();
                }
            }
        }
        self.records.push_back(TraceRecord {
            dispatched_at: now,
            submitted_at: req.submitted_at,
            service,
            dir: req.dir,
            kind: req.kind,
            submitter: req.submitter,
            causes: req.causes.clone(),
            start: req.start.raw(),
            nblocks: req.nblocks,
            file: req.file,
        });
    }

    /// The recorded requests, in dispatch order.
    pub fn records(&self) -> Vec<&TraceRecord> {
        self.records.iter().collect()
    }

    /// Iterate the records in dispatch order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Requests that did not fit in the capacity (dropped or evicted).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Export as CSV (header + one row per record).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "dispatched_s,submitted_s,service_ms,queue_ms,dir,kind,submitter,causes,start,nblocks,file\n",
        );
        for r in &self.records {
            let causes: Vec<String> = r.causes.iter().map(|p| p.raw().to_string()).collect();
            out.push_str(&format!(
                "{:.6},{:.6},{:.3},{:.3},{:?},{:?},{},{},{},{},{}\n",
                r.dispatched_at.as_secs_f64(),
                r.submitted_at.as_secs_f64(),
                r.service.as_millis_f64(),
                r.queue_delay().as_millis_f64(),
                r.dir,
                r.kind,
                r.submitter.raw(),
                causes.join("|"),
                r.start,
                r.nblocks,
                r.file.map(|f| f.raw().to_string()).unwrap_or_default(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{BlockNo, RequestId};

    fn req(id: u64, start: u64) -> Request {
        Request {
            id: RequestId(id),
            dir: IoDir::Write,
            start: BlockNo(start),
            nblocks: 4,
            submitter: Pid(7),
            causes: CauseSet::from_pids([Pid(1), Pid(2)]),
            sync: false,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::from_nanos(1_000_000),
            file: Some(FileId(9)),
            kind: ReqKind::Data,
        }
    }

    #[test]
    fn records_and_exports_csv() {
        let mut t = RequestTrace::with_capacity(10);
        t.record(
            &req(1, 100),
            SimDuration::from_millis(5),
            SimTime::from_nanos(3_000_000),
        );
        assert_eq!(t.len(), 1);
        let r = &t.records()[0];
        assert_eq!(r.queue_delay(), SimDuration::from_millis(2));
        let csv = t.to_csv();
        assert!(csv.starts_with("dispatched_s,"));
        assert!(csv.contains("1|2"), "cause list exported: {csv}");
        assert!(csv.contains(",9\n"), "file id exported");
    }

    #[test]
    fn capacity_is_respected_and_counted() {
        let mut t = RequestTrace::with_capacity(2);
        for i in 0..5 {
            t.record(&req(i, i * 10), SimDuration::ZERO, SimTime::from_nanos(i));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        // KeepOldest: the first two dispatches survive.
        assert_eq!(t.records()[0].dispatched_at, SimTime::from_nanos(0));
        assert_eq!(t.records()[1].dispatched_at, SimTime::from_nanos(1));
    }

    #[test]
    fn ring_keeps_newest() {
        let mut t = RequestTrace::ring(2);
        for i in 0..5 {
            t.record(&req(i, i * 10), SimDuration::ZERO, SimTime::from_nanos(i));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        // KeepNewest: the last two dispatches survive, still in order.
        assert_eq!(t.records()[0].dispatched_at, SimTime::from_nanos(3));
        assert_eq!(t.records()[1].dispatched_at, SimTime::from_nanos(4));
    }
}
