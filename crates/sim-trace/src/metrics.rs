//! A small metrics registry: named counters, time-series gauges, and
//! fixed-bucket latency histograms. Everything is sampled on the
//! simulated clock, so two runs of the same workload produce identical
//! registries — metrics are part of the deterministic output, not a
//! wall-clock side channel.

use sim_core::SimTime;
use std::collections::BTreeMap;

/// Upper bounds (milliseconds) of the fixed histogram buckets; one
/// implicit overflow bucket sits above the last bound.
pub const LATENCY_BUCKETS_MS: [f64; 14] = [
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
];

/// A fixed-bucket latency histogram (milliseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; LATENCY_BUCKETS_MS.len() + 1],
    count: u64,
    sum_ms: f64,
    max_ms: f64,
    dropped: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; LATENCY_BUCKETS_MS.len() + 1],
            count: 0,
            sum_ms: 0.0,
            max_ms: 0.0,
            dropped: 0,
        }
    }
}

impl Histogram {
    /// Record one observation. Non-finite values would poison `sum_ms`
    /// and every derived mean, so they are dropped and counted instead
    /// (see [`Histogram::dropped`]). Counters saturate rather than
    /// wrap: a metrics plane must never panic the run it observes.
    pub fn observe_ms(&mut self, ms: f64) {
        if !ms.is_finite() {
            self.dropped = self.dropped.saturating_add(1);
            return;
        }
        let idx = LATENCY_BUCKETS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        self.counts[idx] = self.counts[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum_ms += ms;
        if ms > self.max_ms {
            self.max_ms = ms;
        }
    }

    /// Observations discarded for being non-finite.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (ms).
    pub fn sum_ms(&self) -> f64 {
        self.sum_ms
    }

    /// Mean observation (ms); zero when empty.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms / self.count as f64
        }
    }

    /// Largest observation (ms).
    pub fn max_ms(&self) -> f64 {
        self.max_ms
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate quantile (0..=1) as the upper bound of the bucket the
    /// rank falls into; the overflow bucket reports the observed max.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < LATENCY_BUCKETS_MS.len() {
                    LATENCY_BUCKETS_MS[i]
                } else {
                    self.max_ms
                };
            }
        }
        self.max_ms
    }
}

/// Cap on retained samples per gauge; overflow is counted, not kept.
const GAUGE_SAMPLE_CAP: usize = 1 << 16;

/// Named counters, gauges, and histograms. Names are dotted paths
/// (`block.dispatched`, `cache.dirty_pages`); per-key variants append
/// `/key` (`sched.tokens/3` for pid 3's token level).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Vec<(SimTime, f64)>>,
    hists: BTreeMap<String, Histogram>,
    gauge_dropped: u64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name`, creating it at zero. Saturates at
    /// `u64::MAX` instead of overflowing.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v = v.saturating_add(delta);
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Append one gauge sample. Samples past the per-gauge cap are
    /// dropped (and counted) so long runs stay bounded.
    pub fn gauge(&mut self, name: &str, now: SimTime, value: f64) {
        let series = if let Some(s) = self.gauges.get_mut(name) {
            s
        } else {
            self.gauges.entry(name.to_string()).or_default()
        };
        if series.len() >= GAUGE_SAMPLE_CAP {
            self.gauge_dropped += 1;
            return;
        }
        series.push((now, value));
    }

    /// Record one histogram observation (milliseconds).
    pub fn observe_ms(&mut self, name: &str, ms: f64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.observe_ms(ms);
        } else {
            self.hists
                .entry(name.to_string())
                .or_default()
                .observe_ms(ms);
        }
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's sample series, oldest first.
    pub fn gauge_series(&self, name: &str) -> &[(SimTime, f64)] {
        self.gauges.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// A histogram, if any observation was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &[(SimTime, f64)])> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Gauge samples discarded past the cap.
    pub fn gauge_dropped(&self) -> u64 {
        self.gauge_dropped
    }

    /// Counters and histogram summaries as CSV
    /// (`kind,name,count,sum_ms,mean_ms,max_ms,p50_ms,p99_ms`).
    pub fn summary_csv(&self) -> String {
        let mut out = String::from("kind,name,count,sum_ms,mean_ms,max_ms,p50_ms,p99_ms\n");
        for (name, v) in self.counters() {
            out.push_str(&format!("counter,{name},{v},,,,,\n"));
        }
        for (name, h) in self.histograms() {
            out.push_str(&format!(
                "histogram,{name},{},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
                h.count(),
                h.sum_ms(),
                h.mean_ms(),
                h.max_ms(),
                h.quantile_ms(0.50),
                h.quantile_ms(0.99),
            ));
        }
        out
    }

    /// Every gauge sample as CSV (`name,t_s,value`).
    pub fn gauges_csv(&self) -> String {
        let mut out = String::from("name,t_s,value\n");
        for (name, series) in self.gauges() {
            for (t, v) in series {
                out.push_str(&format!("{name},{:.6},{v}\n", t.as_secs_f64()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.observe_ms(0.3); // bucket ≤0.5
        }
        for _ in 0..10 {
            h.observe_ms(40.0); // bucket ≤50
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ms(0.5), 0.5);
        assert_eq!(h.quantile_ms(0.95), 50.0);
        assert!((h.mean_ms() - (90.0 * 0.3 + 10.0 * 40.0) / 100.0).abs() < 1e-9);
        h.observe_ms(5000.0); // overflow bucket reports max
        assert_eq!(h.quantile_ms(1.0), 5000.0);
    }

    #[test]
    fn registry_counters_gauges_hists() {
        let mut r = Registry::new();
        r.add("block.dispatched", 2);
        r.add("block.dispatched", 3);
        assert_eq!(r.counter("block.dispatched"), 5);
        assert_eq!(r.counter("missing"), 0);

        r.gauge("cache.dirty_pages", SimTime::from_nanos(1_000_000), 10.0);
        r.gauge("cache.dirty_pages", SimTime::from_nanos(2_000_000), 12.0);
        assert_eq!(r.gauge_series("cache.dirty_pages").len(), 2);

        r.observe_ms("syscall.fsync_ms", 3.0);
        assert_eq!(r.histogram("syscall.fsync_ms").unwrap().count(), 1);

        let csv = r.summary_csv();
        assert!(csv.contains("counter,block.dispatched,5"));
        assert!(csv.contains("histogram,syscall.fsync_ms,1"));
        assert!(r.gauges_csv().contains("cache.dirty_pages,"));
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut r = Registry::new();
        r.add("c", u64::MAX - 1);
        r.add("c", 5);
        assert_eq!(r.counter("c"), u64::MAX);

        let mut h = Histogram::default();
        h.counts[0] = u64::MAX;
        h.count = u64::MAX;
        h.observe_ms(0.01);
        assert_eq!(h.count(), u64::MAX, "saturates, no panic in debug");
    }

    #[test]
    fn non_finite_observations_are_dropped_and_counted() {
        let mut h = Histogram::default();
        h.observe_ms(f64::NAN);
        h.observe_ms(f64::INFINITY);
        h.observe_ms(f64::NEG_INFINITY);
        h.observe_ms(1.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.dropped(), 3);
        assert!((h.mean_ms() - 1.0).abs() < 1e-12, "mean stays finite");
    }

    #[test]
    fn empty_histogram_quantiles_are_defined() {
        let h = Histogram::default();
        assert_eq!(h.quantile_ms(0.0), 0.0);
        assert_eq!(h.quantile_ms(0.5), 0.0);
        assert_eq!(h.quantile_ms(1.0), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.max_ms(), 0.0);
    }

    #[test]
    fn gauge_cap_counts_drops() {
        let mut r = Registry::new();
        for i in 0..(GAUGE_SAMPLE_CAP + 5) {
            r.gauge("g", SimTime::from_nanos(i as u64), i as f64);
        }
        assert_eq!(r.gauge_series("g").len(), GAUGE_SAMPLE_CAP);
        assert_eq!(r.gauge_dropped(), 5);
    }
}
