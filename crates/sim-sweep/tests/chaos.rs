//! Chaos-plane batteries: determinism, legality, and fairness under
//! adversarial timing.
//!
//! The chaos plane follows the repo's `Option<plane>` idiom — absent, it
//! must leave every run byte-identical (the figure goldens in
//! sim-experiments enforce that end-to-end); present, it perturbs
//! writeback wakeups, CPU slices, journal commit timing, and queued
//! completion order *within legal bounds*, so every invariant the
//! auditors check — cause-tag conservation, Split-Token ledger caps, CFQ
//! weight accounting, `(time, seq)` event FIFO, the no-late-schedules
//! drain gate — must keep holding no matter the seed.

use sim_check::{generate, GenConfig, ProgramSpec};
use sim_core::{ChaosClass, ChaosConfig, SimRng};
use sim_experiments::{DeviceChoice, SchedChoice};
use sim_sweep::{check_program_chaos, run_one, run_one_chaos, run_one_queued};

fn program(idx: u64) -> ProgramSpec {
    generate(&mut SimRng::stream(0xCA05, idx), &GenConfig::default())
}

#[test]
fn chaos_config_with_no_classes_is_byte_identical_to_no_chaos() {
    // Present-but-all-disabled is the sharpest byte-identity probe: the
    // plane is installed, its RNG streams exist, yet no draw may happen
    // and no timing may move. The serial and queued planes must both
    // fingerprint identically to a plain run.
    let empty = ChaosConfig::only(7, &[]);
    for idx in 0..4u64 {
        let spec = program(idx);
        for sched in [SchedChoice::Cfq, SchedChoice::SplitToken] {
            for device in [DeviceChoice::Hdd, DeviceChoice::Ssd] {
                let plain = run_one(&spec, sched, device, None);
                let shaken = run_one_chaos(&spec, sched, device, None, empty);
                assert_eq!(
                    plain.fingerprint, shaken.fingerprint,
                    "serial byte-identity, program {idx}, {sched:?}/{device:?}"
                );
                let plain_q = run_one_queued(&spec, sched, device, 8);
                let shaken_q = run_one_chaos(&spec, sched, device, Some(8), empty);
                assert_eq!(
                    plain_q.fingerprint, shaken_q.fingerprint,
                    "queued byte-identity, program {idx}, {sched:?}/{device:?}"
                );
            }
        }
    }
}

#[test]
fn same_chaos_seed_same_bytes() {
    // Chaos is adversarial, not random: a chaos batch is as replayable
    // as a plain one. Identical seed, identical perturbations,
    // identical fingerprint and outcomes.
    let cfg = ChaosConfig::with_seed(42);
    for idx in 0..4u64 {
        let spec = program(idx);
        let a = run_one_chaos(
            &spec,
            SchedChoice::SplitToken,
            DeviceChoice::Ssd,
            Some(8),
            cfg,
        );
        let b = run_one_chaos(
            &spec,
            SchedChoice::SplitToken,
            DeviceChoice::Ssd,
            Some(8),
            cfg,
        );
        assert_eq!(a.fingerprint, b.fingerprint, "program {idx}");
        assert_eq!(a.per_proc, b.per_proc, "program {idx}");
    }
}

#[test]
fn chaos_actually_perturbs_timing() {
    // Sanity check on the other direction: with classes enabled the
    // perturbation must be real. At least one program in the set must
    // fingerprint differently from its plain run (fsync latencies and
    // dispatch counts move when timing moves).
    let cfg = ChaosConfig::with_seed(1);
    let mut diverged = false;
    for idx in 0..4u64 {
        let spec = program(idx);
        let plain = run_one_queued(&spec, SchedChoice::Cfq, DeviceChoice::Ssd, 8);
        let shaken = run_one_chaos(&spec, SchedChoice::Cfq, DeviceChoice::Ssd, Some(8), cfg);
        if plain.fingerprint != shaken.fingerprint {
            diverged = true;
        }
    }
    assert!(
        diverged,
        "chaos with every class on never moved a fingerprint"
    );
}

#[test]
fn single_class_chaos_stays_legal_everywhere() {
    // Property battery per perturbation class: each class alone, on the
    // serial and queued planes, must quiesce with zero violations —
    // wakeups never schedule into the past (the event core's hard
    // late-schedule error would fail the run), `(time, seq)` FIFO holds,
    // and completion reorder stays inside the device's in-flight window
    // (anything else would break the auditors' accounting).
    let spec = program(0);
    for class in ChaosClass::ALL {
        let cfg = ChaosConfig::only(3, &[class]);
        for qd in [None, Some(8)] {
            let out = run_one_chaos(&spec, SchedChoice::SplitToken, DeviceChoice::Hdd, qd, cfg);
            assert_eq!(
                out.violations,
                Vec::<String>::new(),
                "class {:?}, qd {qd:?}",
                class
            );
        }
    }
}

#[test]
fn full_differential_matrix_holds_under_chaos() {
    // The whole differential oracle — every scheduler against the noop
    // reference on both devices, auditors installed — under full chaos.
    // Schedulers may see adversarial timing but must never change
    // syscall results.
    for idx in 0..3u64 {
        let spec = program(idx);
        let violations = check_program_chaos(&spec, Some(8), ChaosConfig::with_seed(idx + 1));
        assert_eq!(violations, Vec::<String>::new(), "program {idx}");
    }
}

#[test]
fn fairness_holds_under_chaos_for_token_and_cfq() {
    // The headline battery: 25 fuzzed programs, split-token and CFQ,
    // full chaos on the queued plane. The auditors include the
    // Split-Token ledger (per-pid cap accounting) and CFQ weight
    // bookkeeping, so zero violations means the fairness machinery
    // survives adversarial timing, not just the happy path.
    for idx in 0..25u64 {
        let spec = program(idx);
        let cfg = ChaosConfig::with_seed(idx);
        for sched in [SchedChoice::SplitToken, SchedChoice::Cfq] {
            let out = run_one_chaos(&spec, sched, DeviceChoice::Ssd, Some(8), cfg);
            assert_eq!(
                out.violations,
                Vec::<String>::new(),
                "program {idx}, {sched:?}"
            );
        }
    }
}
