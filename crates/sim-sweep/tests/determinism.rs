//! Parallel execution must not change results: the whole point of
//! per-cell seed streams is that a scenario's numbers depend only on
//! its request, never on which worker ran it or in what order.

use sim_experiments::registry::{FigureId, Profile};
use sim_sweep::{run_figures, run_sweep, SweepSpec};

fn concat_summaries(figs: &[FigureId], jobs: usize) -> String {
    run_figures(figs, Profile::Quick, 0, jobs)
        .iter()
        .map(|o| o.summary.as_str())
        .collect()
}

/// A cross-section of the suite cheap enough for tier-1: a plain table
/// (fig03), the fig06 family (sched-axis figures), the tag-memory sweep
/// (fig10), and the three-block ablation summary.
const SUBSET: [FigureId; 4] = [
    FigureId::Fig03,
    FigureId::Fig06,
    FigureId::Fig10,
    FigureId::Ablations,
];

#[test]
fn parallel_figures_match_sequential_bytes() {
    let seq = concat_summaries(&SUBSET, 1);
    let par = concat_summaries(&SUBSET, 4);
    assert_eq!(seq, par, "jobs=4 must reproduce jobs=1 byte-for-byte");
}

/// The full `runner all` equivalence. Multiple minutes of simulation —
/// run explicitly with `cargo test -p sim-sweep -- --ignored`.
#[test]
#[ignore = "minutes-long; the 4-figure subset covers tier-1"]
fn parallel_all_matches_sequential_bytes() {
    let seq = concat_summaries(&FigureId::ALL, 1);
    let par = concat_summaries(&FigureId::ALL, 4);
    assert_eq!(seq, par);
}

#[test]
fn sweep_report_is_independent_of_jobs() {
    let mut spec = SweepSpec::new(vec![FigureId::Fig03, FigureId::Fig06]);
    spec.replicates = 3;
    spec.root_seed = 42;
    let (seq, n_seq) = run_sweep(&spec, 1);
    let (par, n_par) = run_sweep(&spec, 4);
    assert_eq!(n_seq, n_par);
    assert_eq!(seq.to_csv(), par.to_csv());
    assert_eq!(seq.to_json(), par.to_json());
}

#[test]
fn replicates_actually_vary() {
    // Seed replication is pointless if every seed produces the same
    // numbers; fig06's workload RNG and the fs-layout seed must both
    // feed through.
    let mut spec = SweepSpec::new(vec![FigureId::Fig06]);
    spec.replicates = 3;
    let (report, _) = run_sweep(&spec, 2);
    let row = report
        .rows
        .iter()
        .find(|r| r.metric == "a_mean_mbps")
        .expect("fig06 must report a_mean_mbps");
    assert_eq!(row.summary.n, 3);
    assert!(
        row.summary.stddev > 0.0,
        "three distinct seeds must not produce identical throughput"
    );
}

#[test]
fn zero_seed_cell_reproduces_the_historical_run() {
    // The registry path at seed 0 must match the figure module's own
    // default-config output — the compatibility contract that keeps
    // `runner all` bit-identical to the pre-registry runner.
    let direct = format!(
        "{}\n\n",
        sim_experiments::fig03_cfq_async_unfair::run(
            &sim_experiments::fig03_cfq_async_unfair::Config::quick()
        )
    );
    let via_registry = run_figures(&[FigureId::Fig03], Profile::Quick, 0, 1)
        .pop()
        .unwrap()
        .summary;
    assert_eq!(direct, via_registry);
}
