//! Mutation check for the chaos plane: a scheduler with a planted
//! *timing-dependent* bug must sleep through plain `runner check`
//! batches — serial and queued — and be caught (and shrunk) by a chaos
//! batch.
//!
//! The planted bug ([`TimingSabotaged`]) is a latency assumption tuned
//! to the happy path: a cause-tag handoff table that loses entries when
//! a data request dwells in the device past a fixed horizon, corrupting
//! every cause set submitted afterwards. With chaos off, device service
//! is a pure function of request and device model, so the dwell
//! distribution over this seed set stays under the horizon and the bug
//! is unreachable; the chaos plane's completion class stretches service
//! times (and queue depth compounds the stretch into extra queueing
//! wait), pushing dwell past the horizon. This is the end-to-end proof
//! that the chaos plane has teeth: a bug class exists that only an
//! adversarially-timed batch can flush out.

use sim_check::{generate, shrink, GenConfig, ProgramSpec};
use sim_core::{ChaosConfig, SimDuration, SimRng};
use sim_experiments::{DeviceChoice, SchedChoice};
use sim_sweep::{run_one_chaos, run_one_timing_sabotaged};

/// The dwell horizon, calibrated so that over the fixed seed set below
/// the plain arms (deterministic service times) never reach it while
/// the chaos arm (stretched service + compounded queueing) does.
const DWELL: SimDuration = SimDuration::from_micros(4400);

/// The chaos configuration of the catching batch.
fn chaos() -> ChaosConfig {
    ChaosConfig::with_seed(1)
}

fn program(idx: u64) -> ProgramSpec {
    generate(&mut SimRng::stream(0xD1CE, idx), &GenConfig::default())
}

/// The predicate handed to the shrinker: replay under the same chaos
/// batch shape (queue depth 8, chaos seed 1) with the timing-sabotaged
/// scheduler, and report whether any auditor fired.
fn chaos_catches(spec: &ProgramSpec) -> bool {
    !run_one_timing_sabotaged(
        spec,
        SchedChoice::SplitToken,
        DeviceChoice::Ssd,
        Some(8),
        Some(chaos()),
        DWELL,
    )
    .violations
    .is_empty()
}

#[test]
fn plain_batches_miss_the_timing_bug() {
    // Both plain arms — the serial device plane and queue depth 8 —
    // run the full seed set over the sabotaged scheduler without a
    // single auditor firing: deterministic timing never opens the race.
    for idx in 0..12u64 {
        let spec = program(idx);
        for sched in [SchedChoice::Cfq, SchedChoice::SplitToken] {
            let serial =
                run_one_timing_sabotaged(&spec, sched, DeviceChoice::Ssd, None, None, DWELL);
            assert_eq!(
                serial.violations,
                Vec::<String>::new(),
                "plain serial, program {idx}, {sched:?}"
            );
            let queued =
                run_one_timing_sabotaged(&spec, sched, DeviceChoice::Ssd, Some(8), None, DWELL);
            assert_eq!(
                queued.violations,
                Vec::<String>::new(),
                "plain qd8, program {idx}, {sched:?}"
            );
        }
    }
}

#[test]
fn chaos_batch_catches_the_timing_bug_and_shrinks_it() {
    // The same seed set under the same scheduler, now with adversarial
    // timing: the chaos batch flushes the bug out.
    let mut culprit = None;
    for idx in 0..12u64 {
        let spec = program(idx);
        if chaos_catches(&spec) {
            culprit = Some(spec);
            break;
        }
    }
    let spec = culprit.expect("timing bug evaded the chaos batch over 12 programs");

    // And the reproducer shrinks: delta debugging replays each
    // candidate under the identical chaos configuration, so the
    // minimised program still opens the race.
    let shrunk = shrink(&spec, chaos_catches);
    assert!(
        chaos_catches(&shrunk),
        "shrunk program must still reproduce"
    );
    assert!(
        shrunk.syscall_count() < spec.syscall_count(),
        "shrinker should make progress: {} -> {} syscalls",
        spec.syscall_count(),
        shrunk.syscall_count()
    );
    assert!(
        shrunk.syscall_count() <= 10,
        "reproducer should be tiny, got {} syscalls:\n{}",
        shrunk.syscall_count(),
        shrunk
    );
}

#[test]
fn healthy_scheduler_passes_the_same_chaos_batch() {
    // Control arm: the identical programs under the identical chaos
    // configuration but with no planted bug are clean, so the catch
    // above is detecting the injected race and not a chaos-plane
    // artefact.
    for idx in 0..12u64 {
        let spec = program(idx);
        for sched in [SchedChoice::Cfq, SchedChoice::SplitToken] {
            let out = run_one_chaos(&spec, sched, DeviceChoice::Ssd, Some(8), chaos());
            assert_eq!(
                out.violations,
                Vec::<String>::new(),
                "healthy chaos run, program {idx}, {sched:?}"
            );
        }
    }
}
