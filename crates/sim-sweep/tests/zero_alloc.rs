//! Steady-state allocation audit (build with `--features alloc-count`).
//!
//! The event core's claim is a zero-allocation steady state: once the
//! fig01 world is warm — wheel slots, slab queues, cache tables, and
//! scratch buffers all grown to their working size — processing events
//! should recycle capacity instead of touching the allocator. This test
//! holds the stack to that with the counting global allocator: run
//! fig01 through its write burst and writeback drain, snapshot the
//! process-wide allocation counter, run several more simulated seconds
//! of the steady mixed read/writeback phase, and require the counter
//! not to move.
//!
//! The file contains exactly one test on purpose: the counters are
//! process-wide, so a concurrently running test in the same binary
//! would pollute the window.

#![cfg(feature = "alloc-count")]

use sim_core::{alloc_count, SimDuration, SimTime};
use sim_experiments::fig01_write_burst::{build_burst_world, Config};
use sim_experiments::setup::SchedChoice;

#[test]
fn fig01_steady_state_allocates_nothing() {
    let cfg = Config::quick();
    let (mut w, _k, _a) = build_burst_world(&cfg, SchedChoice::Cfq, None);
    // Warm up: pre-burst streaming, the 1 s write burst at t = 5 s, and
    // the writeback drain that follows. By t = 25 s every arena has hit
    // its high-water mark.
    w.run_until(SimTime::ZERO + SimDuration::from_secs(25));
    let before = alloc_count::snapshot();
    w.run_until(SimTime::ZERO + SimDuration::from_secs(29));
    let after = alloc_count::snapshot();
    assert_eq!(
        after.allocs - before.allocs,
        0,
        "steady-state window allocated (allocs {} -> {}, frees {} -> {})",
        before.allocs,
        after.allocs,
        before.frees,
        after.frees
    );
}
