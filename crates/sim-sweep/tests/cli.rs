//! End-to-end tests of the `runner` binary: argument validation (a
//! misspelled target must not silently run nothing and exit 0) and the
//! sweep's on-disk artifacts.

use std::path::Path;
use std::process::Command;

fn runner() -> Command {
    Command::new(env!("CARGO_BIN_EXE_runner"))
}

#[test]
fn unknown_target_is_rejected_with_usage_and_exit_2() {
    let out = runner().arg("fig99").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty(), "nothing must run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown target: fig99"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn unknown_flag_is_rejected_with_exit_2() {
    let out = runner().arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag: --frobnicate"));
}

#[test]
fn bad_jobs_value_is_rejected_with_exit_2() {
    for bad in [
        &["--jobs", "0"][..],
        &["--jobs", "many"][..],
        &["--jobs"][..],
    ] {
        let out = runner().args(bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args: {bad:?}");
    }
}

#[test]
fn single_figure_runs_and_prints_its_table() {
    let out = runner().arg("fig03").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Figure 3"), "{stdout}");
    assert!(stdout.ends_with("\n\n"), "legacy spacing must survive");
}

#[test]
fn bench_and_profile_reject_unknown_flags_with_exit_2() {
    for args in [
        &["bench", "--frobnicate"][..],
        &["profile", "fig01", "--frobnicate"][..],
    ] {
        let out = runner().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("unknown flag: --frobnicate"), "{stderr}");
        assert!(stderr.contains("usage:"), "{stderr}");
    }
}

#[test]
fn bench_flags_outside_bench_and_bad_combinations_exit_2() {
    for args in [
        // bench-only flags leaking onto other targets
        &["fig01", "--reps", "2"][..],
        &["check", "--out", "somewhere"][..],
        // profile needs exactly one figure
        &["profile"][..],
        &["profile", "fig01", "fig03"][..],
        &["profile", "check"][..],
        // bench stands alone
        &["bench", "fig01"][..],
        &["bench", "--paper"][..],
        &["bench", "--reps", "0"][..],
    ] {
        let out = runner().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
    }
}

#[test]
fn profile_prints_the_phase_table_and_matches_an_unprofiled_run() {
    let tmp = std::env::temp_dir().join(format!("sim-prof-cli-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let profiled = runner()
        .current_dir(&tmp)
        .args(["profile", "fig03"])
        .output()
        .unwrap();
    assert_eq!(
        profiled.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&profiled.stderr)
    );
    let stdout = String::from_utf8_lossy(&profiled.stdout);
    assert!(stdout.contains("profile: fig03"), "{stdout}");
    assert!(stdout.contains("event_pop"), "{stdout}");

    // The profiler is host-side only: the figure's simulated output must
    // be byte-identical to a run without it.
    let plain = runner().arg("fig03").output().unwrap();
    let plain_stdout = String::from_utf8_lossy(&plain.stdout);
    let table = stdout.split("profile: fig03").next().unwrap();
    assert_eq!(table, plain_stdout, "profiling must not perturb the sim");

    // Sidecars: JSON parses and carries the phase map; CSV comes from
    // the metrics Registry.
    let json = std::fs::read_to_string(tmp.join("results/profile_fig03.json")).unwrap();
    let doc = sim_trace::json::parse(&json).unwrap();
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("profile-v1")
    );
    assert!(doc.get("phases").and_then(|v| v.get("sched")).is_some());
    let csv = std::fs::read_to_string(tmp.join("results/profile_fig03.csv")).unwrap();
    assert!(csv.contains("prof.sched.calls"), "{csv}");

    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn bench_writes_parseable_panel_json_and_baseline_round_trips() {
    let tmp = std::env::temp_dir().join(format!("sim-bench-cli-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let common = [
        "bench",
        "--reps",
        "1",
        "--check-programs",
        "1",
        "--out",
        "results/bench",
        "--baseline",
        "baseline.json",
    ];

    // First run: no baseline yet — still exits 0 and writes the report.
    let out = runner()
        .current_dir(&tmp)
        .env("BENCH_GIT_SHA", "cafe")
        .args(common)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("no baseline"));
    let json = std::fs::read_to_string(tmp.join("results/bench/BENCH_cafe.json")).unwrap();
    let doc = sim_trace::json::parse(&json).unwrap();
    assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("bench-v1"));
    let targets = doc.get("targets").unwrap();
    for name in [
        "fig01",
        "fig01_layered",
        "fig01_qd_d1",
        "fig01_qd_d8",
        "fig01_qd_d32",
        "check",
        "fig_layers",
        "cluster_small",
        "cluster_small_j4",
    ] {
        let t = targets
            .get(name)
            .unwrap_or_else(|| panic!("missing {name}"));
        assert!(t.get("events").and_then(|v| v.as_u64()).unwrap() > 0);
        assert!(t
            .get("events_per_sec")
            .and_then(|v| v.get("mean"))
            .is_some());
        assert!(t.get("phases").and_then(|v| v.get("event_pop")).is_some());
        assert!(t.get("fsync_ms").and_then(|v| v.get("p99")).is_some());
    }

    // Record a baseline, then compare against it: same binary, same
    // deterministic event counts — no model-shift warnings, exit 0.
    let rec = runner()
        .current_dir(&tmp)
        .env("UPDATE_BASELINE", "1")
        .args(common)
        .output()
        .unwrap();
    assert_eq!(rec.status.code(), Some(0));
    assert!(tmp.join("baseline.json").exists());
    let cmp = runner().current_dir(&tmp).args(common).output().unwrap();
    let stdout = String::from_utf8_lossy(&cmp.stdout);
    assert!(
        stdout.contains("ok: fig01") || stdout.contains("REGRESSION"),
        "comparison must be printed: {stdout}"
    );
    assert!(
        !stdout.contains("model shift"),
        "event counts are deterministic: {stdout}"
    );

    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn cluster_flag_validation_exits_2() {
    for args in [
        // cluster-only flags leaking onto other targets
        &["fig01", "--kernels", "4"][..],
        &["check", "--arrival", "poisson"][..],
        &["sweep", "--duration", "2"][..],
        // bad values
        &["cluster", "--kernels", "0"][..],
        &["cluster", "--arrival", "bursty"][..],
        &["cluster", "--rate", "-3"][..],
        &["cluster", "--duration", "zero"][..],
        &["cluster", "--sched", "noop"][..],
        &["cluster", "--sched", "split-token", "--sched", "cfq"][..],
        // cluster stands alone
        &["cluster", "fig01"][..],
        &["cluster", "--paper"][..],
    ] {
        let out = runner().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
    }
}

#[test]
fn chaos_flag_validation_exits_2() {
    for args in [
        // chaos flags are check-only
        &["fig01", "--chaos"][..],
        &["bench", "--chaos"][..],
        &["sweep", "--chaos-seed", "1"][..],
        &["cluster", "--chaos-classes", "wb"][..],
        // the sub-flags require --chaos itself
        &["check", "--chaos-seed", "1"][..],
        &["check", "--chaos-classes", "wb"][..],
        // bad values
        &["check", "--chaos", "--chaos-seed", "many"][..],
        &["check", "--chaos", "--chaos-classes", "wb,flux"][..],
        &["check", "--chaos", "--chaos-classes", ""][..],
        &["check", "--chaos", "--chaos-seed"][..],
    ] {
        let out = runner().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
    }
    let out = runner()
        .args(["check", "--chaos", "--chaos-classes", "wb,flux"])
        .output()
        .unwrap();
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown chaos class: flux"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn layers_flag_validation_exits_2() {
    for args in [
        // --layers is check-only
        &["fig01", "--layers", "a:default:share:noop"][..],
        &["bench", "--layers", "a:default:share:noop"][..],
        &["sweep", "--layers", "a:default:share:noop"][..],
        // malformed specs: unknown policy, zero cap, duplicate layer
        // name, unknown rule, unknown child, missing default, no value
        &["check", "--layers", "a:default:turbo:noop"][..],
        &["check", "--layers", "a:default:cap=0:noop"][..],
        &[
            "check",
            "--layers",
            "a:pidmod=2,1:share:noop;a:default:share:cfq",
        ][..],
        &["check", "--layers", "a:vibes=9:share:noop"][..],
        &["check", "--layers", "a:default:share:warp-drive"][..],
        &["check", "--layers", "a:pidmod=2,1:share:noop"][..],
        &["check", "--layers", "a:default:share:layered"][..],
        &["check", "--layers"][..],
    ] {
        let out = runner().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        assert!(out.stdout.is_empty(), "nothing must run for {args:?}");
    }
    // The error message names what is wrong, not just "bad spec".
    let cases = [
        ("a:default:turbo:noop", "turbo"),
        ("a:default:cap=0:noop", "cap must be > 0"),
        ("a:pidmod=2,1:share:noop;a:default:share:cfq", "duplicate"),
        ("a:default:share:warp-drive", "warp-drive"),
    ];
    for (spec, needle) in cases {
        let out = runner().args(["check", "--layers", spec]).output().unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "spec {spec:?}: expected {needle:?} in {stderr}"
        );
    }
}

#[test]
fn check_accepts_a_valid_layer_tree() {
    let out = runner()
        .args([
            "check",
            "--programs",
            "1",
            "--layers",
            "lat:pidmod=2,1:latency:block-deadline;rest:default:share+weight=2:split-token",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn check_under_chaos_runs_clean_and_reports_the_seed() {
    let out = runner()
        .args([
            "check",
            "--programs",
            "2",
            "--chaos",
            "--chaos-seed",
            "9",
            "--chaos-classes",
            "wb,complete",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("chaos seed 9 [wb,complete]"), "{stderr}");
}

#[test]
fn cluster_runs_and_is_byte_identical_across_jobs() {
    let common = [
        "cluster",
        "--kernels",
        "9",
        "--arrival",
        "flash",
        "--rate",
        "15",
        "--duration",
        "1",
        "--seed",
        "3",
    ];
    let seq = runner()
        .args(common)
        .args(["--jobs", "1"])
        .output()
        .unwrap();
    assert_eq!(
        seq.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&seq.stderr)
    );
    let stdout = String::from_utf8_lossy(&seq.stdout);
    assert!(stdout.contains("Cluster SLO"), "{stdout}");
    assert!(stdout.contains("flash arrivals"), "{stdout}");

    let par = runner()
        .args(common)
        .args(["--jobs", "4"])
        .output()
        .unwrap();
    assert_eq!(par.status.code(), Some(0));
    assert_eq!(
        seq.stdout, par.stdout,
        "--jobs must not change simulated output"
    );
}

#[test]
fn cluster_csv_writes_request_samples() {
    let tmp = std::env::temp_dir().join(format!("sim-cluster-cli-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let out = runner()
        .current_dir(&tmp)
        .args(["cluster", "--kernels", "3", "--duration", "1", "--csv"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read_to_string(tmp.join("results/cluster_samples.csv")).unwrap();
    assert!(
        csv.starts_with("req,shard,kind,arrival_s,done_s,e2e_ms,service_ms,repl_ms\n"),
        "{csv}"
    );
    assert!(csv.lines().count() > 1, "samples must be written");
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn sweep_writes_csv_and_json_under_results_sweeps() {
    let tmp = std::env::temp_dir().join(format!("sim-sweep-cli-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let out = runner()
        .current_dir(&tmp)
        .args([
            "sweep",
            "fig03",
            "--seeds",
            "2",
            "--jobs",
            "2",
            "--root-seed",
            "7",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fig03"), "{stdout}");
    assert!(
        stdout.contains("±"),
        "report must show mean ± ci95: {stdout}"
    );

    let csv = std::fs::read_to_string(tmp.join(Path::new("results/sweeps/sweep.csv"))).unwrap();
    assert!(
        csv.starts_with("cell,metric,n,dropped,mean,stddev,ci95\n"),
        "{csv}"
    );
    assert!(csv.contains("fig03,deviation,2,"), "{csv}");
    let json = std::fs::read_to_string(tmp.join(Path::new("results/sweeps/sweep.json"))).unwrap();
    assert!(json.contains("\"cell\": \"fig03\""), "{json}");

    std::fs::remove_dir_all(&tmp).ok();
}
