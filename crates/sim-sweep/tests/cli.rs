//! End-to-end tests of the `runner` binary: argument validation (a
//! misspelled target must not silently run nothing and exit 0) and the
//! sweep's on-disk artifacts.

use std::path::Path;
use std::process::Command;

fn runner() -> Command {
    Command::new(env!("CARGO_BIN_EXE_runner"))
}

#[test]
fn unknown_target_is_rejected_with_usage_and_exit_2() {
    let out = runner().arg("fig99").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty(), "nothing must run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown target: fig99"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn unknown_flag_is_rejected_with_exit_2() {
    let out = runner().arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag: --frobnicate"));
}

#[test]
fn bad_jobs_value_is_rejected_with_exit_2() {
    for bad in [
        &["--jobs", "0"][..],
        &["--jobs", "many"][..],
        &["--jobs"][..],
    ] {
        let out = runner().args(bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args: {bad:?}");
    }
}

#[test]
fn single_figure_runs_and_prints_its_table() {
    let out = runner().arg("fig03").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Figure 3"), "{stdout}");
    assert!(stdout.ends_with("\n\n"), "legacy spacing must survive");
}

#[test]
fn sweep_writes_csv_and_json_under_results_sweeps() {
    let tmp = std::env::temp_dir().join(format!("sim-sweep-cli-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let out = runner()
        .current_dir(&tmp)
        .args([
            "sweep",
            "fig03",
            "--seeds",
            "2",
            "--jobs",
            "2",
            "--root-seed",
            "7",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fig03"), "{stdout}");
    assert!(
        stdout.contains("±"),
        "report must show mean ± ci95: {stdout}"
    );

    let csv = std::fs::read_to_string(tmp.join(Path::new("results/sweeps/sweep.csv"))).unwrap();
    assert!(
        csv.starts_with("cell,metric,n,dropped,mean,stddev,ci95\n"),
        "{csv}"
    );
    assert!(csv.contains("fig03,deviation,2,"), "{csv}");
    let json = std::fs::read_to_string(tmp.join(Path::new("results/sweeps/sweep.json"))).unwrap();
    assert!(json.contains("\"cell\": \"fig03\""), "{json}");

    std::fs::remove_dir_all(&tmp).ok();
}
