//! Mutation test for the layer auditor: plant the cap-leak bug in the
//! layered arbiter (`LayeredConfig::cap_leak_every` skips every Nth
//! token-bucket charge, so a capped layer admits writes it never pays
//! for) and prove the `LayerAuditor`'s cap-envelope check catches it —
//! then shrink the failing program to a minimal reproducer that still
//! trips the same check. The identical run without the planted bug must
//! stay clean, so the auditor's bound is tight enough to catch leaks
//! without false-positives on honest throttling.

use sim_check::{shrink, ProgramSpec};
use sim_experiments::setup::DeviceChoice;
use sim_sweep::check::run_one_layered;
use split_layered::{parse_layers, LayerSpec};

/// One capped layer over noop: 256 KiB/s, so the auditor's envelope is
/// `262144·t + 262144` bytes. The tree keeps a cap on the (only)
/// default layer — every write in the program is subject to it.
fn capped_tree() -> Vec<LayerSpec> {
    parse_layers("capped:default:cap=262144:noop").unwrap()
}

/// Write-heavy program: 768 KiB of buffered writes then an fsync. An
/// honest 256 KiB/s bucket paces this over ~2 simulated seconds; a
/// leaky bucket admits roughly twice the envelope's rate and crosses
/// the bound within the first second.
fn write_heavy() -> ProgramSpec {
    let mut text = String::from("program shared=1 bytes=1048576\nproc\n");
    for k in 0..96u64 {
        text.push_str(&format!("write s0 {} 8192\n", k * 8192));
    }
    text.push_str("fsync s0\nend\n");
    ProgramSpec::parse(&text).unwrap()
}

fn leak_violations(spec: &ProgramSpec) -> Vec<String> {
    run_one_layered(spec, DeviceChoice::Ssd, capped_tree(), Some(2))
        .violations
        .into_iter()
        .filter(|v| v.contains("cap envelope"))
        .collect()
}

#[test]
fn clean_capped_run_passes_the_layer_auditor() {
    let r = run_one_layered(&write_heavy(), DeviceChoice::Ssd, capped_tree(), None);
    assert_eq!(
        r.violations,
        Vec::<String>::new(),
        "honest throttling must stay inside the auditor's cap envelope"
    );
}

#[test]
fn planted_cap_leak_is_caught_and_shrunk() {
    let spec = write_heavy();
    let caught = leak_violations(&spec);
    assert!(
        !caught.is_empty(),
        "the planted cap leak must trip the layer auditor"
    );
    assert!(
        caught[0].contains("layer 'capped'"),
        "violation names the leaking layer: {}",
        caught[0]
    );

    // Delta-debug the program down while the leak stays visible: the
    // reproducer must be strictly smaller and still trip the auditor.
    let small = shrink(&spec, |p| !leak_violations(p).is_empty());
    assert!(
        small.syscall_count() < spec.syscall_count(),
        "shrinker made no progress ({} syscalls)",
        small.syscall_count()
    );
    assert!(
        !leak_violations(&small).is_empty(),
        "minimized reproducer no longer trips the auditor:\n{small}"
    );
}
