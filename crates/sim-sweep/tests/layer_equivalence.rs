//! Degenerate-layer equivalence: a single-layer tree with no cap and no
//! dirty budget wrapping scheduler S must be *byte-identical* to flat S
//! — same syscall outcomes, same auditor verdicts, same end-of-run
//! kernel counters — for every scheduler on both device models. The
//! wrapper forwards every hook verbatim in that configuration, so any
//! drift means the layer plane changed simulation semantics rather than
//! just adding a (disabled) policy shell around the child.

use sim_check::{generate, GenConfig, ProgramSpec};
use sim_core::SimRng;
use sim_sweep::check::{run_one, run_one_single_layer, ALL_DEVICES, ALL_SCHEDS};

fn assert_identical(label: &str, spec: &ProgramSpec) {
    for &device in &ALL_DEVICES {
        for &sched in &ALL_SCHEDS {
            let flat = run_one(spec, sched, device, None);
            let wrapped = run_one_single_layer(spec, sched, device);
            let cell = format!("{label}, {} on {device:?}", sched.name());
            assert_eq!(
                flat.per_proc, wrapped.per_proc,
                "{cell}: syscall outcomes diverge under the single-layer wrapper"
            );
            assert_eq!(
                flat.violations, wrapped.violations,
                "{cell}: auditor verdicts diverge under the single-layer wrapper"
            );
            assert_eq!(
                flat.io_errors, wrapped.io_errors,
                "{cell}: io_errors diverge under the single-layer wrapper"
            );
            assert_eq!(
                flat.fingerprint, wrapped.fingerprint,
                "{cell}: kernel counters diverge under the single-layer wrapper"
            );
            assert_eq!(
                flat.fsync_ms, wrapped.fsync_ms,
                "{cell}: fsync latencies diverge under the single-layer wrapper"
            );
        }
    }
}

#[test]
fn golden_program_is_byte_identical_under_a_single_layer() {
    // A fixed program touching every hook class: buffered writes (dirty
    // accounting), fsync (journal entanglement), reads, metadata, and
    // an unlink (buffer_freed).
    let spec = ProgramSpec::parse(
        "program shared=2 bytes=131072\n\
         proc\n\
         write s0 0 16384\n\
         fsync s0\n\
         read s0 0 8192\n\
         creat\n\
         write o0 0 4096\n\
         fsync o0\n\
         unlink o0\n\
         end\n\
         proc\n\
         write s1 8192 8192\n\
         read s1 0 16384\n\
         mkdir\n\
         fsync s1\n\
         end\n",
    )
    .unwrap();
    assert_identical("golden", &spec);
}

#[test]
fn fuzzed_programs_are_byte_identical_under_a_single_layer() {
    // Each program replays 2 × |scheds| × 2 times; keep the count CI-sized.
    for idx in 0..3u64 {
        let spec = generate(&mut SimRng::stream(0x1a7e6, idx), &GenConfig::default());
        assert_identical(&format!("program {idx}"), &spec);
    }
}
