//! Mutation check for the audit plane: a deliberately sabotaged
//! scheduler (cause tags corrupted on the block queue) must be caught
//! by the auditors, and the failing fuzzer program must shrink to a
//! tiny replayable reproducer.
//!
//! This is the end-to-end proof that the checker has teeth — if this
//! test passes, a real cause-tag bookkeeping bug in a scheduler cannot
//! slip through `runner check` silently.

use sim_check::{generate, shrink, GenConfig, ProgramSpec};
use sim_core::SimRng;
use sim_experiments::{DeviceChoice, SchedChoice};
use sim_sweep::run_one;

/// The predicate handed to the shrinker: replay under CFQ with the
/// sabotage shim armed from the very first block add, and report
/// whether any auditor fired.
fn caught(spec: &ProgramSpec) -> bool {
    !run_one(spec, SchedChoice::Cfq, DeviceChoice::Ssd, Some(0))
        .violations
        .is_empty()
}

#[test]
fn sabotaged_scheduler_is_caught_and_shrinks_small() {
    // Fuzz until a generated program trips the auditors under the
    // sabotaged scheduler. Any program that reaches the block layer
    // qualifies, so this terminates almost immediately; the loop is a
    // guard against a pathological all-cached draw.
    let cfg = GenConfig::default();
    let mut culprit = None;
    for idx in 0..32u64 {
        let spec = generate(&mut SimRng::stream(0xC0FFEE, idx), &cfg);
        if caught(&spec) {
            culprit = Some(spec);
            break;
        }
    }
    let spec = culprit.expect("sabotaged scheduler evaded 32 fuzzed programs");

    let shrunk = shrink(&spec, caught);
    assert!(caught(&shrunk), "shrunk program must still reproduce");
    assert!(
        shrunk.syscall_count() <= 10,
        "reproducer should be tiny, got {} syscalls:\n{}",
        shrunk.syscall_count(),
        shrunk
    );
}

#[test]
fn clean_scheduler_passes_the_same_programs() {
    // Control arm: the identical programs with no sabotage are clean,
    // so the mutation test above is detecting the injected bug and not
    // a pre-existing violation.
    let cfg = GenConfig::default();
    for idx in 0..4u64 {
        let spec = generate(&mut SimRng::stream(0xC0FFEE, idx), &cfg);
        let out = run_one(&spec, SchedChoice::Cfq, DeviceChoice::Ssd, None);
        assert_eq!(out.violations, Vec::<String>::new(), "program {idx}");
    }
}
