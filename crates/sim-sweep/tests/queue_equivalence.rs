//! Queued-device equivalence: at hardware queue depth 1 the queued
//! plane admits one request at a time, so it must replay *exactly* the
//! serial device's event schedule — same syscall outcomes, same auditor
//! verdicts, same end-of-run kernel counters — for every scheduler on
//! both device models. Any drift here means the queued plane changed
//! simulation semantics rather than just generalizing the device.

use sim_check::{generate, GenConfig};
use sim_core::SimRng;
use sim_sweep::check::{run_one, run_one_queued, ALL_DEVICES, ALL_SCHEDS};

/// Programs fuzzed per scheduler × device cell. Each program replays
/// 2 × 9 × 2 = 36 times; keep the count small enough for CI.
const PROGRAMS: u64 = 4;

#[test]
fn depth_1_is_byte_identical_to_the_serial_device() {
    for idx in 0..PROGRAMS {
        let spec = generate(&mut SimRng::stream(0xd1, idx), &GenConfig::default());
        for &device in &ALL_DEVICES {
            for &sched in &ALL_SCHEDS {
                let serial = run_one(&spec, sched, device, None);
                let queued = run_one_queued(&spec, sched, device, 1);
                let label = format!("program {idx}, {} on {device:?}", sched.name());
                assert_eq!(
                    serial.per_proc, queued.per_proc,
                    "{label}: syscall outcomes diverge at depth 1"
                );
                assert_eq!(
                    serial.violations, queued.violations,
                    "{label}: auditor verdicts diverge at depth 1"
                );
                assert_eq!(
                    serial.io_errors, queued.io_errors,
                    "{label}: io_errors diverge at depth 1"
                );
                assert_eq!(
                    serial.fingerprint, queued.fingerprint,
                    "{label}: kernel counters diverge at depth 1"
                );
            }
        }
    }
}

#[test]
fn deep_queues_preserve_syscall_results() {
    // Depth 8 may reorder device service arbitrarily, but the
    // differential oracle still holds: results match the serial noop
    // reference and no auditor (including the in-flight accounting
    // auditor) trips.
    for idx in 0..2 {
        let spec = generate(&mut SimRng::stream(0xd8, idx), &GenConfig::default());
        for &device in &ALL_DEVICES {
            let reference = run_one(&spec, ALL_SCHEDS[0], device, None);
            for &sched in &ALL_SCHEDS {
                let deep = run_one_queued(&spec, sched, device, 8);
                let label = format!("program {idx}, {} on {device:?}", sched.name());
                assert_eq!(
                    deep.violations,
                    Vec::<String>::new(),
                    "{label}: auditor violation at depth 8"
                );
                assert_eq!(
                    deep.per_proc, reference.per_proc,
                    "{label}: depth 8 changed syscall results"
                );
            }
        }
    }
}
