//! sim-fault × sim-check composition: injected device faults must
//! surface as observable I/O errors — in syscall outcomes and in the
//! kernel's `io_errors` counter — and must never trip a cross-layer
//! auditor. A fault that corrupts silently (no error anywhere) or one
//! that breaks journal ordering / cause accounting would fail here.

use sim_check::{generate, GenConfig, ProgramSpec};
use sim_core::SimRng;
use sim_experiments::{DeviceChoice, SchedChoice};
use sim_fault::DeviceFaultPlane;
use sim_sweep::run_one_faulted;

fn write_fsync_program() -> ProgramSpec {
    ProgramSpec::parse(
        "program shared=1 bytes=65536\n\
         proc\n\
         write s0 0 8192\n\
         fsync s0\n\
         write s0 8192 8192\n\
         fsync s0\n\
         end\n",
    )
    .unwrap()
}

#[test]
fn a_failed_write_surfaces_as_an_error_not_silence() {
    let spec = write_fsync_program();
    let plane = DeviceFaultPlane::with_seed(11).fail_write(0);
    let out = run_one_faulted(&spec, SchedChoice::SplitDeadline, DeviceChoice::Ssd, plane);
    assert_eq!(
        out.violations,
        Vec::<String>::new(),
        "a transient device failure must not break cross-layer invariants"
    );
    assert!(
        out.io_errors >= 1,
        "the injected write failure vanished: io_errors = 0"
    );
}

#[test]
fn a_torn_write_surfaces_as_an_error_not_silence() {
    let spec = write_fsync_program();
    // Tear the first write: zero blocks become durable, and the device
    // reports failure. The kernel must propagate that as an I/O error
    // (journal abort or failed fsync) rather than pretending the data
    // landed.
    let plane = DeviceFaultPlane::with_seed(12).tear_write(0, 0);
    let out = run_one_faulted(&spec, SchedChoice::Cfq, DeviceChoice::Hdd, plane);
    assert_eq!(
        out.violations,
        Vec::<String>::new(),
        "a torn write must not break cross-layer invariants"
    );
    assert!(
        out.io_errors >= 1,
        "the injected torn write vanished: io_errors = 0"
    );
}

#[test]
fn random_torn_writes_never_violate_auditors_on_fuzzed_programs() {
    // Fuzzed programs under a 20% torn-write rate: whatever the fault
    // plane does, the auditors must stay quiet. Across the batch at
    // least one fault should land and be visible as an error.
    let cfg = GenConfig::default();
    let mut total_errors = 0u64;
    for idx in 0..6u64 {
        let spec = generate(&mut SimRng::stream(0xFA17, idx), &cfg);
        let plane = DeviceFaultPlane::with_seed(idx).torn_rate(0.2);
        let out = run_one_faulted(&spec, SchedChoice::SplitToken, DeviceChoice::Ssd, plane);
        assert_eq!(out.violations, Vec::<String>::new(), "program {idx}");
        total_errors += out.io_errors;
    }
    assert!(
        total_errors >= 1,
        "20% torn-write rate over 6 programs injected nothing visible"
    );
}
