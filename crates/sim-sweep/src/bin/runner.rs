//! Experiment runner: regenerates the paper's tables and figures, and
//! drives parameter sweeps.
//!
//! ```text
//! runner [--paper] [--csv] [--trace] [--faults] [--jobs N] [TARGET...]
//! runner sweep [FIGURE...] [--seeds N] [--jobs N] [--root-seed N]
//!              [--sched NAME]... [--device NAME]... [--paper]
//! runner check [--programs N] [--jobs N] [--root-seed N] [--shrink]
//!              [--queue-depth N] [--chaos] [--chaos-seed N]
//!              [--chaos-classes LIST] [--layers SPEC] [--replay FILE]
//! runner cluster [--kernels N] [--jobs N] [--arrival NAME] [--rate R]
//!                [--duration SECS] [--seed N] [--sched NAME] [--csv]
//! ```
//!
//! Targets are `fig01 … fig21`, `ablations`, `breakdown`, `faults`,
//! `all` (the default), or `sweep`. `--paper` uses the longer
//! paper-scale configurations; the default quick profiles finish in
//! seconds each (release build recommended). `--csv` additionally
//! writes raw per-figure series under `results/`. `--trace` runs fig12
//! with span tracing on and writes Chrome trace-event JSON (open in
//! Perfetto / `chrome://tracing`) under `results/`. `--faults` (or the
//! `faults` target) runs the fault-injection sweep; it is *not* part of
//! `all` — the figures stay a fault-free, bit-reproducible baseline.
//!
//! `--jobs N` runs figures on N worker threads. Scenarios are seeded
//! per cell, not per thread, so the output is byte-identical to
//! `--jobs 1`.
//!
//! `sweep` replicates each selected figure across `--seeds N` seeds
//! (default 3) split deterministically from `--root-seed` (default 0),
//! aggregates every metric to mean / stddev / 95% CI, prints the table,
//! and writes `results/sweeps/sweep.{csv,json}`. `--sched` / `--device`
//! add grid axes, applied to the figures that support them.
//!
//! `check` fuzzes `--programs N` generated syscall programs (default 50)
//! through every scheduler on both devices with the invariant auditors
//! installed, comparing outcomes against the noop reference. `--shrink`
//! minimizes any failure to a small replayable spec; `--replay FILE`
//! re-checks a previously printed spec instead of generating.
//! `--queue-depth N` replays the matrix on the queued-device plane at
//! hardware queue depth N instead of the legacy serial device.
//! `--chaos` installs the chaos plane: every run's writeback wakeups,
//! CPU slices, journal commit timing, and queued-device completion
//! order are perturbed within legal bounds, seeded by `--chaos-seed N`
//! (default 0) so a failing batch replays identically.
//! `--chaos-classes wb,cpu,journal,complete` restricts perturbation to
//! the listed classes (each draws from an independent seed stream, so
//! the others' draws are unchanged). The differential oracle is
//! unchanged under chaos: the noop reference runs under the same chaos
//! config, and shrinking replays candidates under it too.
//! `--inject-late` plants one deliberately-late event per run, proving
//! the event-queue late-schedule gate fails the run (the exit code must
//! be 1 with it, 0 without). `--layers SPEC` replaces the layered arm's
//! default 3-layer tree with a custom one (grammar:
//! `NAME:RULE:POLICY:CHILD` joined by `;`, see `split-layered`);
//! malformed specs — unknown policy, zero cap, duplicate layer name,
//! unknown child scheduler — are a usage error (exit code 2).
//! Exit code 1 on any violation.
//!
//! `profile FIGURE` runs one figure with the DES self-profiler on,
//! prints the per-phase wall-clock table, and writes
//! `results/profile_<fig>.{json,csv}`. Profiling reads host time only;
//! the figure's simulated output is byte-identical to an unprofiled
//! run.
//!
//! `cluster` runs the sharded serving fleet: `--kernels N` simulated
//! kernels (default 16) in replication groups of 3, open-loop
//! `--arrival poisson|diurnal|flash` traffic at `--rate R` req/s per
//! group, for `--duration SECS` simulated seconds, under
//! `--sched split-token|cfq`, and prints the fleet-wide SLO table.
//! `--jobs N` drives shards on N worker threads through the
//! conservative parallel-DES executor; the output is byte-identical to
//! `--jobs 1` (CI diffs the two). `--csv` writes the raw per-request
//! samples under `results/`.
//!
//! `bench` runs the standard panel (fig01, fig01_qd at depths 1/8/32,
//! a `check` fuzz batch, the `cluster_small` fleet at 1 and 4 jobs)
//! `--reps` times each and writes
//! `BENCH_<git-sha>.json` under `--out` (default `results/bench`). If a
//! committed baseline exists (`--baseline`, default
//! `BENCH_baseline.json`) the run is compared against it and exit code
//! 1 signals an events/sec regression beyond 15% outside the CIs.
//! `UPDATE_BASELINE=1` rewrites the baseline instead of comparing.
//! Build with `--features alloc-count` to include peak allocations.
//!
//! Unknown targets or flags are an error: usage goes to stderr and the
//! exit code is 2, so a misspelled `fig99` can't silently run nothing
//! and exit 0.

use sim_experiments as exp;

use exp::registry::{FigureId, Profile};
use exp::setup::{DeviceChoice, SchedChoice};
use sim_core::alloc_count;
use sim_core::prof::{self, Phase, Profiler};
use sim_core::{ChaosClass, ChaosConfig};
use sim_sweep::{
    bench_batch, run_check, run_figures_with, run_replay, run_sweep, CheckConfig, SweepSpec,
};

const USAGE: &str = "\
usage: runner [--paper] [--csv] [--trace] [--faults] [--jobs N] [TARGET...]
       runner sweep [FIGURE...] [--seeds N] [--jobs N] [--root-seed N]
                    [--sched NAME]... [--device NAME]... [--paper]
       runner check [--programs N] [--jobs N] [--root-seed N] [--shrink]
                    [--queue-depth N] [--chaos] [--chaos-seed N]
                    [--chaos-classes LIST] [--inject-late] [--layers SPEC]
                    [--replay FILE]
       runner profile FIGURE [--paper]
       runner bench [--reps N] [--check-programs N] [--root-seed N]
                    [--out DIR] [--baseline FILE]
       runner cluster [--kernels N] [--jobs N] [--arrival NAME] [--rate R]
                      [--duration SECS] [--seed N] [--sched NAME] [--csv]

targets: fig01 fig03 fig05 fig06 fig09 fig10 fig11 fig12 fig13 fig14
         fig15 fig16 fig17 fig18 fig19 fig20 fig21 fig_cluster fig_layers
         ablations breakdown faults all sweep check profile bench cluster
scheds:  noop cfq block-deadline scs-token afq split-deadline
         split-pdflush split-token split-noop layered
devices: hdd ssd
arrivals: poisson diurnal flash
chaos classes: wb cpu journal complete";

fn die(msg: &str) -> ! {
    eprintln!("runner: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Write a raw artifact (CSV series, Chrome trace) under `dir`.
fn write_result(dir: &str, name: &str, content: &str) {
    let dir = std::path::Path::new(dir);
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(name);
        if std::fs::write(&path, content).is_ok() {
            eprintln!("wrote {}", path.display());
        }
    }
}

fn parse_sched(name: &str) -> Option<SchedChoice> {
    Some(match name {
        "noop" => SchedChoice::Noop,
        "cfq" => SchedChoice::Cfq,
        "block-deadline" => SchedChoice::BlockDeadline,
        "scs-token" => SchedChoice::ScsToken,
        "afq" => SchedChoice::Afq,
        "split-deadline" => SchedChoice::SplitDeadline,
        "split-pdflush" => SchedChoice::SplitPdflush,
        "split-token" => SchedChoice::SplitToken,
        "split-noop" => SchedChoice::SplitNoop,
        "layered" => SchedChoice::Layered,
        _ => return None,
    })
}

/// Parse and fully validate a `--layers` spec: grammar, tree-level
/// invariants (unique names, positive caps/weights, trailing default),
/// and child-scheduler resolution all fail as usage errors (exit 2).
fn parse_layers_arg(spec: &str) -> Vec<split_layered::LayerSpec> {
    let specs = split_layered::parse_layers(spec)
        .unwrap_or_else(|e| die(&format!("invalid --layers spec: {e}")));
    for s in &specs {
        if exp::setup::resolve_layer_child(&s.child).is_none() {
            die(&format!(
                "invalid --layers spec: layer '{}' names unknown child scheduler '{}'",
                s.name, s.child
            ));
        }
    }
    specs
}

fn parse_device(name: &str) -> Option<DeviceChoice> {
    Some(match name {
        "hdd" => DeviceChoice::Hdd,
        "ssd" => DeviceChoice::Ssd,
        _ => return None,
    })
}

#[derive(Default)]
struct Cli {
    paper: bool,
    csv: bool,
    trace: bool,
    faults: bool,
    jobs: Option<usize>,
    seeds: Option<u32>,
    root_seed: u64,
    programs: Option<usize>,
    queue_depth: Option<u32>,
    inject_late: bool,
    chaos: bool,
    chaos_seed: Option<u64>,
    chaos_classes: Option<Vec<ChaosClass>>,
    shrink: bool,
    layers: Option<Vec<split_layered::LayerSpec>>,
    replay: Option<String>,
    reps: Option<usize>,
    check_programs: Option<usize>,
    out: Option<String>,
    baseline: Option<String>,
    kernels: Option<usize>,
    arrival: Option<String>,
    rate: Option<f64>,
    duration_s: Option<f64>,
    seed: Option<u64>,
    scheds: Vec<SchedChoice>,
    devices: Vec<DeviceChoice>,
    targets: Vec<String>,
}

fn parse_cli(args: &[String]) -> Cli {
    let mut cli = Cli::default();
    let mut it = args.iter().peekable();
    // Accept both `--flag value` and `--flag=value`.
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str,
                 inline: Option<&str>|
     -> String {
        if let Some(v) = inline {
            return v.to_string();
        }
        match it.next() {
            Some(v) if !v.starts_with("--") => v.clone(),
            _ => die(&format!("{flag} requires a value")),
        }
    };
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v)),
            None => (arg.as_str(), None),
        };
        match flag {
            "--paper" => cli.paper = true,
            "--csv" => cli.csv = true,
            "--trace" => cli.trace = true,
            "--faults" => cli.faults = true,
            "--jobs" => {
                let v = value(&mut it, "--jobs", inline);
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => cli.jobs = Some(n),
                    _ => die(&format!("invalid --jobs value: {v}")),
                }
            }
            "--seeds" => {
                let v = value(&mut it, "--seeds", inline);
                match v.parse::<u32>() {
                    Ok(n) if n >= 1 => cli.seeds = Some(n),
                    _ => die(&format!("invalid --seeds value: {v}")),
                }
            }
            "--root-seed" => {
                let v = value(&mut it, "--root-seed", inline);
                match v.parse::<u64>() {
                    Ok(n) => cli.root_seed = n,
                    _ => die(&format!("invalid --root-seed value: {v}")),
                }
            }
            "--programs" => {
                let v = value(&mut it, "--programs", inline);
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => cli.programs = Some(n),
                    _ => die(&format!("invalid --programs value: {v}")),
                }
            }
            "--queue-depth" => {
                let v = value(&mut it, "--queue-depth", inline);
                match v.parse::<u32>() {
                    Ok(n) if n >= 1 => cli.queue_depth = Some(n),
                    _ => die(&format!("invalid --queue-depth value: {v}")),
                }
            }
            "--inject-late" => cli.inject_late = true,
            "--chaos" => cli.chaos = true,
            "--chaos-seed" => {
                let v = value(&mut it, "--chaos-seed", inline);
                match v.parse::<u64>() {
                    Ok(n) => cli.chaos_seed = Some(n),
                    _ => die(&format!("invalid --chaos-seed value: {v}")),
                }
            }
            "--chaos-classes" => {
                let v = value(&mut it, "--chaos-classes", inline);
                let classes: Vec<ChaosClass> = v
                    .split(',')
                    .map(|c| {
                        ChaosClass::parse(c.trim())
                            .unwrap_or_else(|| die(&format!("unknown chaos class: {c}")))
                    })
                    .collect();
                cli.chaos_classes = Some(classes);
            }
            "--shrink" => cli.shrink = true,
            "--layers" => {
                let v = value(&mut it, "--layers", inline);
                cli.layers = Some(parse_layers_arg(&v));
            }
            "--replay" => {
                let v = value(&mut it, "--replay", inline);
                cli.replay = Some(v);
            }
            "--reps" => {
                let v = value(&mut it, "--reps", inline);
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => cli.reps = Some(n),
                    _ => die(&format!("invalid --reps value: {v}")),
                }
            }
            "--check-programs" => {
                let v = value(&mut it, "--check-programs", inline);
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => cli.check_programs = Some(n),
                    _ => die(&format!("invalid --check-programs value: {v}")),
                }
            }
            "--out" => {
                let v = value(&mut it, "--out", inline);
                cli.out = Some(v);
            }
            "--baseline" => {
                let v = value(&mut it, "--baseline", inline);
                cli.baseline = Some(v);
            }
            "--kernels" => {
                let v = value(&mut it, "--kernels", inline);
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => cli.kernels = Some(n),
                    _ => die(&format!("invalid --kernels value: {v}")),
                }
            }
            "--arrival" => {
                let v = value(&mut it, "--arrival", inline);
                if sim_cluster::ArrivalKind::parse(&v, 1.0).is_none() {
                    die(&format!("unknown arrival process: {v}"));
                }
                cli.arrival = Some(v);
            }
            "--rate" => {
                let v = value(&mut it, "--rate", inline);
                match v.parse::<f64>() {
                    Ok(r) if r > 0.0 && r.is_finite() => cli.rate = Some(r),
                    _ => die(&format!("invalid --rate value: {v}")),
                }
            }
            "--duration" => {
                let v = value(&mut it, "--duration", inline);
                match v.parse::<f64>() {
                    Ok(s) if s > 0.0 && s.is_finite() => cli.duration_s = Some(s),
                    _ => die(&format!("invalid --duration value: {v}")),
                }
            }
            "--seed" => {
                let v = value(&mut it, "--seed", inline);
                match v.parse::<u64>() {
                    Ok(n) => cli.seed = Some(n),
                    _ => die(&format!("invalid --seed value: {v}")),
                }
            }
            "--sched" => {
                let v = value(&mut it, "--sched", inline);
                match parse_sched(&v) {
                    Some(s) => cli.scheds.push(s),
                    None => die(&format!("unknown scheduler: {v}")),
                }
            }
            "--device" => {
                let v = value(&mut it, "--device", inline);
                match parse_device(&v) {
                    Some(d) => cli.devices.push(d),
                    None => die(&format!("unknown device: {v}")),
                }
            }
            f if f.starts_with("--") => die(&format!("unknown flag: {f}")),
            name => {
                let known = FigureId::parse(name).is_some()
                    || matches!(
                        name,
                        "all" | "faults" | "sweep" | "check" | "profile" | "bench" | "cluster"
                    );
                if !known {
                    die(&format!("unknown target: {name}"));
                }
                cli.targets.push(name.to_string());
            }
        }
    }
    cli
}

fn run_faults(cli: &Cli) {
    let cfg = if cli.paper {
        exp::fault_sweep::Config::paper()
    } else {
        exp::fault_sweep::Config::quick()
    };
    let r = exp::fault_sweep::run(&cfg);
    println!("{r}\n");
    if cli.csv {
        let mut out = String::from("nth_write,io_errors,journal_aborts,fsyncs_ok,fsyncs_eio\n");
        for p in &r.fault_points {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                p.nth_write, p.io_errors, p.journal_aborts, p.fsyncs_ok, p.fsyncs_failed
            ));
        }
        write_result("results", "fault_sweep.csv", &out);
    }
    if r.total_violations() > 0 {
        eprintln!("FAIL: {} consistency violation(s)", r.total_violations());
        std::process::exit(1);
    }
}

fn sweep_main(cli: &Cli) {
    let figures: Vec<FigureId> = if cli.targets.is_empty() {
        FigureId::ALL.to_vec()
    } else {
        cli.targets
            .iter()
            .map(|t| {
                FigureId::parse(t)
                    .unwrap_or_else(|| die(&format!("sweep expects figure targets, got: {t}")))
            })
            .collect()
    };
    let mut spec = SweepSpec::new(figures);
    spec.profile = if cli.paper {
        Profile::Paper
    } else {
        Profile::Quick
    };
    spec.replicates = cli.seeds.unwrap_or(3);
    spec.root_seed = cli.root_seed;
    if !cli.scheds.is_empty() {
        spec.scheds = std::iter::once(None)
            .chain(cli.scheds.iter().map(|&s| Some(s)))
            .collect();
    }
    if !cli.devices.is_empty() {
        spec.devices = std::iter::once(None)
            .chain(cli.devices.iter().map(|&d| Some(d)))
            .collect();
    }
    let jobs = cli.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let n_cells = spec.cells().len();
    eprintln!(
        "sweep: {} cell(s) x {} seed(s) on {} job(s), root seed {}",
        n_cells / spec.replicates.max(1) as usize,
        spec.replicates,
        jobs,
        spec.root_seed
    );
    let (report, _) = run_sweep(&spec, jobs);
    print!("{}", report.render());
    write_result("results/sweeps", "sweep.csv", &report.to_csv());
    write_result("results/sweeps", "sweep.json", &report.to_json());
}

/// The chaos configuration the CLI flags describe, `None` without
/// `--chaos`.
fn chaos_config(cli: &Cli) -> Option<ChaosConfig> {
    if !cli.chaos {
        return None;
    }
    let seed = cli.chaos_seed.unwrap_or(0);
    Some(match &cli.chaos_classes {
        Some(classes) => ChaosConfig::only(seed, classes),
        None => ChaosConfig::with_seed(seed),
    })
}

fn check_main(cli: &Cli) {
    let chaos = chaos_config(cli);
    let report = match &cli.replay {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            run_replay(&text, cli.shrink, chaos)
                .unwrap_or_else(|e| die(&format!("bad replay spec: {e}")))
        }
        None => {
            let cfg = CheckConfig {
                programs: cli.programs.unwrap_or(50),
                jobs: cli.jobs.unwrap_or(1),
                root_seed: cli.root_seed,
                shrink: cli.shrink,
                queue_depth: cli.queue_depth,
                inject_late: cli.inject_late,
                chaos,
                layers: cli.layers.clone(),
            };
            let plane = match cfg.queue_depth {
                Some(d) => format!("queued device, depth {d}"),
                None => "serial device".to_string(),
            };
            let shaken = match &cfg.chaos {
                Some(c) => {
                    let names: Vec<&str> = c.classes().iter().map(|cl| cl.name()).collect();
                    format!(", chaos seed {} [{}]", c.seed, names.join(","))
                }
                None => String::new(),
            };
            eprintln!(
                "check: {} program(s) on {} job(s), root seed {}, {plane}{shaken}",
                cfg.programs, cfg.jobs, cfg.root_seed
            );
            run_check(&cfg)
        }
    };
    print!("{}", report.render(cli.root_seed));
    if !report.failures.is_empty() {
        std::process::exit(1);
    }
}

fn cluster_main(cli: &Cli) {
    let mut cfg = sim_cluster::ClusterConfig {
        kernels: cli.kernels.unwrap_or(16),
        seed: cli.seed.unwrap_or(0),
        ..Default::default()
    };
    if let Some(secs) = cli.duration_s {
        cfg.duration = sim_core::SimDuration::from_nanos((secs * 1e9) as u64);
    }
    let rate = cli.rate.unwrap_or(20.0);
    let arrival = cli.arrival.as_deref().unwrap_or("poisson");
    cfg.arrival = sim_cluster::ArrivalKind::parse(arrival, rate)
        .unwrap_or_else(|| die(&format!("unknown arrival process: {arrival}")));
    match cli.scheds.as_slice() {
        [] => {}
        [s] => {
            cfg.sched = match s {
                SchedChoice::SplitToken => sim_cluster::ClusterSched::SplitToken,
                SchedChoice::Cfq => sim_cluster::ClusterSched::Cfq,
                _ => die("cluster supports --sched split-token or cfq"),
            }
        }
        _ => die("cluster takes at most one --sched"),
    }
    let jobs = cli.jobs.unwrap_or(1);
    eprintln!(
        "cluster: {} kernel(s) on {} job(s), {} arrivals at {} req/s per group, seed {}",
        cfg.kernels,
        jobs,
        cfg.arrival.name(),
        rate,
        cfg.seed
    );
    let report = sim_cluster::run_cluster(&cfg, jobs);
    print!("{}", report.render());
    if cli.csv {
        let mut out = String::from("req,shard,kind,arrival_s,done_s,e2e_ms,service_ms,repl_ms\n");
        for s in &report.samples {
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6},{:.3},{:.3},{:.3}\n",
                s.req,
                s.shard,
                match s.kind {
                    sim_cluster::ReqKind::Put => "put",
                    sim_cluster::ReqKind::Get => "get",
                },
                s.arrival.as_secs_f64(),
                s.done.as_secs_f64(),
                s.e2e_ms,
                s.service_ms,
                s.repl_ms
            ));
        }
        write_result("results", "cluster_samples.csv", &out);
    }
}

/// One fig01 write-burst panel entry at a given queue depth.
fn burst_target(name: &'static str, depth: Option<u32>) -> bench::BenchTarget {
    bench::BenchTarget {
        name,
        run: Box::new(move || {
            let r = exp::fig01_qd::bench_run(depth);
            bench::RunOutput {
                events: r.events,
                fsync_ms: r.fsync_ms,
            }
        }),
    }
}

/// One serving-fleet panel entry at a given worker count. Simulated
/// output is identical across `jobs`; the panel exists to track
/// events/sec of the sequential and parallel executors separately.
fn cluster_target(name: &'static str, jobs: usize) -> bench::BenchTarget {
    bench::BenchTarget {
        name,
        run: Box::new(move || {
            let r = sim_cluster::run_cluster(&sim_cluster::ClusterConfig::bench_small(), jobs);
            bench::RunOutput {
                events: r.events,
                fsync_ms: r
                    .samples
                    .iter()
                    .filter(|s| s.kind == sim_cluster::ReqKind::Put)
                    .map(|s| s.service_ms)
                    .collect(),
            }
        }),
    }
}

fn bench_main(cli: &Cli) {
    let reps = cli.reps.unwrap_or(5);
    let programs = cli.check_programs.unwrap_or(3);
    let root_seed = cli.root_seed;
    let targets = vec![
        burst_target("fig01", None),
        // The same burst world under a single catch-all layer wrapping
        // CFQ: byte-identical simulation, so fig01 vs fig01_layered
        // events/sec is the layer plane's pure dispatch overhead (the
        // <10% acceptance bar; the delta is printed after the panel).
        bench::BenchTarget {
            name: "fig01_layered",
            run: Box::new(|| {
                let r = exp::fig01_qd::bench_run_layered(None);
                bench::RunOutput {
                    events: r.events,
                    fsync_ms: r.fsync_ms,
                }
            }),
        },
        burst_target("fig01_qd_d1", Some(1)),
        burst_target("fig01_qd_d8", Some(8)),
        burst_target("fig01_qd_d32", Some(32)),
        bench::BenchTarget {
            name: "check",
            run: Box::new(move || {
                let b = bench_batch(programs, root_seed);
                bench::RunOutput {
                    events: b.events,
                    fsync_ms: b.fsync_ms,
                }
            }),
        },
        // The full three-tenant layer plane (SSD serial): prices the
        // arbiter's whole hot path, auditor replay included.
        bench::BenchTarget {
            name: "fig_layers",
            run: Box::new(|| {
                let r = exp::fig_layers::bench_run();
                bench::RunOutput {
                    events: r.events,
                    fsync_ms: r.fsync_ms,
                }
            }),
        },
        cluster_target("cluster_small", 1),
        cluster_target("cluster_small_j4", 4),
    ];
    eprintln!(
        "bench: {} target(s) x {reps} rep(s), check batch of {programs} program(s), root seed {root_seed}",
        targets.len()
    );
    let report = bench::run_panel(&targets, reps, bench::git_sha());
    print!("{}", report.render());
    // The single-layer overhead number the layer plane is held to:
    // both targets simulate the identical history, so best-of-reps
    // events/sec is a clean wall-clock comparison.
    if let (Some(flat), Some(layered)) = (
        report.targets.iter().find(|t| t.name == "fig01"),
        report.targets.iter().find(|t| t.name == "fig01_layered"),
    ) {
        if layered.best_eps > 0.0 {
            println!(
                "single-layer dispatch overhead (fig01 flat vs layered): {:+.1}%",
                100.0 * (flat.best_eps / layered.best_eps - 1.0)
            );
        }
    }
    let out_dir = cli.out.as_deref().unwrap_or("results/bench");
    write_result(
        out_dir,
        &format!("BENCH_{}.json", report.git_sha),
        &report.to_json(),
    );

    let baseline = cli.baseline.as_deref().unwrap_or("BENCH_baseline.json");
    if std::env::var("UPDATE_BASELINE")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        match std::fs::write(baseline, report.to_json()) {
            Ok(()) => eprintln!("wrote baseline {baseline}"),
            Err(e) => die(&format!("cannot write {baseline}: {e}")),
        }
        return;
    }
    match std::fs::read_to_string(baseline) {
        Err(_) => {
            eprintln!("bench: no baseline at {baseline}; set UPDATE_BASELINE=1 to record one");
        }
        Ok(text) => {
            let doc = sim_trace::json::parse(&text)
                .unwrap_or_else(|e| die(&format!("bad baseline {baseline}: {e}")));
            let cmp = bench::compare(&report, &doc);
            print!("{}", cmp.render());
            if !cmp.passed() {
                eprintln!("bench: FAIL — events/sec regression vs {baseline}");
                std::process::exit(1);
            }
        }
    }
}

fn profile_main(cli: &Cli) {
    let figs: Vec<&String> = cli.targets.iter().filter(|t| *t != "profile").collect();
    let name = match figs.as_slice() {
        [one] => one.as_str(),
        _ => die("profile expects exactly one figure target"),
    };
    let fig = FigureId::parse(name)
        .unwrap_or_else(|| die(&format!("profile expects a figure target, got: {name}")));
    let profile = if cli.paper {
        Profile::Paper
    } else {
        Profile::Quick
    };

    let p = Profiler::new();
    p.set_enabled(true);
    prof::install_thread(&p);
    let t0 = std::time::Instant::now();
    // jobs=1 keeps the figure on this thread, so every world it builds
    // picks up the installed profiler.
    let outputs = run_figures_with(&[fig], profile, 0, 1, false, false);
    let wall_s = t0.elapsed().as_secs_f64();
    prof::uninstall_thread();
    let snap = p.snapshot();
    let alloc = alloc_count::snapshot();

    for out in &outputs {
        print!("{}", out.summary);
    }
    print!("{}", bench::render_profile(fig.name(), &snap, &alloc));
    // Every pop is one processed event, summed across the figure's worlds.
    let events = snap
        .phases
        .iter()
        .find(|ps| ps.phase == Phase::EventPop)
        .map(|ps| ps.calls)
        .unwrap_or(0);
    // The counters also ride the standard metrics plumbing: export into
    // a Registry and write its summary CSV next to the JSON sidecar.
    let mut reg = sim_trace::Registry::new();
    sim_trace::export_profile(&mut reg, &snap);
    write_result(
        "results",
        &format!("profile_{}.csv", fig.name()),
        &reg.summary_csv(),
    );
    write_result(
        "results",
        &format!("profile_{}.json", fig.name()),
        &bench::profile_json(fig.name(), &snap, &alloc, events, wall_s),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_cli(&args);

    let check_mode = cli.targets.iter().any(|t| t == "check");
    if !check_mode && (cli.chaos || cli.chaos_seed.is_some() || cli.chaos_classes.is_some()) {
        die("--chaos/--chaos-seed/--chaos-classes only apply to the check target");
    }
    if !cli.chaos && (cli.chaos_seed.is_some() || cli.chaos_classes.is_some()) {
        die("--chaos-seed/--chaos-classes require --chaos");
    }
    if !check_mode && cli.layers.is_some() {
        die("--layers only applies to the check target");
    }

    let bench_mode = cli.targets.iter().any(|t| t == "bench");
    if !bench_mode
        && (cli.reps.is_some()
            || cli.check_programs.is_some()
            || cli.out.is_some()
            || cli.baseline.is_some())
    {
        die("--reps/--check-programs/--out/--baseline only apply to the bench target");
    }
    if bench_mode {
        if cli.targets.len() > 1 {
            die("bench does not combine with other targets");
        }
        if cli.paper || cli.csv || cli.trace || cli.faults || cli.jobs.is_some() {
            die("bench does not combine with --paper/--csv/--trace/--faults/--jobs");
        }
        bench_main(&cli);
        return;
    }

    let cluster_mode = cli.targets.iter().any(|t| t == "cluster");
    if !cluster_mode
        && (cli.kernels.is_some()
            || cli.arrival.is_some()
            || cli.rate.is_some()
            || cli.duration_s.is_some()
            || cli.seed.is_some())
    {
        die("--kernels/--arrival/--rate/--duration/--seed only apply to the cluster target");
    }
    if cluster_mode {
        if cli.targets.len() > 1 {
            die("cluster does not combine with other targets");
        }
        if cli.paper || cli.trace || cli.faults {
            die("cluster does not combine with --paper/--trace/--faults");
        }
        cluster_main(&cli);
        return;
    }

    if cli.targets.iter().any(|t| t == "check") {
        if cli.faults || cli.trace || cli.csv || cli.paper {
            die("check does not combine with --faults/--csv/--trace/--paper");
        }
        if cli.targets.len() > 1 {
            die("check does not combine with other targets");
        }
        check_main(&cli);
        return;
    }
    if cli.queue_depth.is_some() {
        die("--queue-depth only applies to the check target");
    }
    if cli.inject_late {
        die("--inject-late only applies to the check target");
    }

    if cli.targets.iter().any(|t| t == "profile") {
        if cli.csv || cli.trace || cli.faults || cli.jobs.is_some() {
            die("profile does not combine with --csv/--trace/--faults/--jobs");
        }
        profile_main(&cli);
        return;
    }

    if cli.targets.iter().any(|t| t == "sweep") {
        if cli.faults || cli.trace || cli.csv {
            die("sweep does not combine with --faults/--csv/--trace");
        }
        let mut cli = cli;
        cli.targets.retain(|t| t != "sweep");
        sweep_main(&cli);
        return;
    }

    // The fault sweep is opt-in only: `all` keeps producing the
    // fault-free baseline figures, bit-identical run to run.
    let faults = cli.faults || cli.targets.iter().any(|t| t == "faults");
    let which: Vec<&str> = cli
        .targets
        .iter()
        .map(|s| s.as_str())
        .filter(|t| *t != "faults")
        .collect();
    let all = (which.is_empty() && !faults) || which.contains(&"all");

    if faults {
        run_faults(&cli);
    }

    let profile = if cli.paper {
        Profile::Paper
    } else {
        Profile::Quick
    };
    let figs: Vec<FigureId> = FigureId::ALL
        .into_iter()
        .filter(|f| all || which.contains(&f.name()))
        .collect();
    let outputs = run_figures_with(&figs, profile, 0, cli.jobs.unwrap_or(1), cli.csv, cli.trace);
    for out in &outputs {
        print!("{}", out.summary);
        for a in &out.artifacts {
            write_result("results", &a.name, &a.content);
        }
    }
}
