//! sim-sweep — deterministic parallel scenario engine.
//!
//! Turns the figure suite into a declarative grid (figure × scheduler ×
//! device × seed replicate), executes it on a bounded work-stealing
//! pool of OS threads, and aggregates seed replicates into mean /
//! stddev / 95% CI per metric. Each scenario runs in its own isolated
//! simulation world with a seed split deterministically from the root
//! seed and the cell's label, so results are independent of execution
//! order, worker count, and grid composition: `--jobs 8` produces the
//! same bytes as `--jobs 1`, and adding a figure to a sweep does not
//! change the numbers of the figures already in it.

pub mod aggregate;
pub mod check;
pub mod drive;
pub mod executor;
pub mod spec;

pub use aggregate::{aggregate, MetricRow, SweepReport};
pub use check::{
    bench_batch, check_program, check_program_chaos, check_program_qd, run_check, run_one,
    run_one_chaos, run_one_faulted, run_one_queued, run_one_timing_sabotaged, run_replay,
    BenchBatch, CheckConfig, CheckReport,
};
pub use drive::{run_figures, run_figures_with, run_sweep};
pub use executor::run_indexed;
pub use spec::{cell_seed, Cell, SweepSpec};
