//! Orchestration shared by the `runner` binary and the integration
//! tests: run a list of figures through the executor, or expand a
//! [`SweepSpec`], execute it, and aggregate the replicates.

use sim_experiments::registry::{run_cell, CellOutput, CellRequest, FigureId, Profile};

use crate::aggregate::{aggregate, SweepReport};
use crate::executor::run_indexed;
use crate::spec::SweepSpec;

/// Run a set of figures (one cell each) at a given width.
///
/// Outputs come back in the order of `figs`, regardless of `jobs`, so
/// concatenating the summaries reproduces the sequential runner's
/// stdout byte-for-byte.
pub fn run_figures(figs: &[FigureId], profile: Profile, seed: u64, jobs: usize) -> Vec<CellOutput> {
    run_figures_with(figs, profile, seed, jobs, false, false)
}

/// [`run_figures`] with the legacy `--csv` / `--trace` artifact flags.
pub fn run_figures_with(
    figs: &[FigureId],
    profile: Profile,
    seed: u64,
    jobs: usize,
    csv: bool,
    trace: bool,
) -> Vec<CellOutput> {
    let reqs: Vec<CellRequest> = figs
        .iter()
        .map(|&fig| {
            let mut r = CellRequest::new(fig, profile, seed);
            r.csv = csv;
            r.trace = trace;
            r
        })
        .collect();
    run_indexed(reqs, jobs, run_cell)
}

/// Execute a sweep and aggregate it.
///
/// Returns the report plus the executed cell count (for progress
/// messages). The report depends only on the spec — not on `jobs`.
pub fn run_sweep(spec: &SweepSpec, jobs: usize) -> (SweepReport, usize) {
    let cells = spec.cells();
    let n = cells.len();
    let outputs = run_indexed(cells, jobs, |cell| {
        (cell.label.clone(), run_cell(&cell.request).metrics)
    });
    (aggregate(&outputs), n)
}
