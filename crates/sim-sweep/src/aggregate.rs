//! Statistical aggregation of sweep results.
//!
//! Replicates of one grid cell are grouped by (cell label, metric key)
//! and collapsed with [`sim_core::stats::summarize`] into mean, sample
//! stddev, and a 95% confidence half-width. The table renders to CSV
//! and to JSON (hand-rolled — the workspace takes no serialization
//! dependency); both are deterministic: rows are sorted by label then
//! metric, and floats print with fixed precision.

use std::collections::BTreeMap;

use sim_core::stats::{summarize, Summary};

/// Aggregated statistics for one metric of one grid cell.
#[derive(Debug, Clone)]
pub struct MetricRow {
    /// Grid-cell label (e.g. `fig06/sched=cfq`).
    pub label: String,
    /// Metric key (e.g. `a_mean_mbps`).
    pub metric: String,
    /// Replicate summary.
    pub summary: Summary,
}

/// The full aggregated table of a sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// One row per (cell, metric), sorted by label then metric.
    pub rows: Vec<MetricRow>,
}

/// Collapse per-replicate samples into a report.
///
/// Input: one `(label, metrics)` pair per executed cell replicate.
/// BTreeMap keys give the deterministic row order for free.
pub fn aggregate(samples: &[(String, Vec<(String, f64)>)]) -> SweepReport {
    let mut groups: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    for (label, metrics) in samples {
        for (key, value) in metrics {
            groups
                .entry((label.clone(), key.clone()))
                .or_default()
                .push(*value);
        }
    }
    SweepReport {
        rows: groups
            .into_iter()
            .map(|((label, metric), values)| MetricRow {
                label,
                metric,
                summary: summarize(&values),
            })
            .collect(),
    }
}

/// Print a float the same way in CSV and JSON: shortest-round-trip,
/// with non-finite values (only possible if every replicate was
/// dropped) pinned to 0 so the JSON stays valid.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl SweepReport {
    /// Render as CSV: `cell,metric,n,dropped,mean,stddev,ci95`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cell,metric,n,dropped,mean,stddev,ci95\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                r.label,
                r.metric,
                r.summary.n,
                r.summary.dropped,
                num(r.summary.mean),
                num(r.summary.stddev),
                num(r.summary.ci95),
            ));
        }
        out
    }

    /// Render as a JSON array of row objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"cell\": \"{}\", \"metric\": \"{}\", \"n\": {}, \"dropped\": {}, \
                 \"mean\": {}, \"stddev\": {}, \"ci95\": {}}}{}\n",
                json_escape(&r.label),
                json_escape(&r.metric),
                r.summary.n,
                r.summary.dropped,
                num(r.summary.mean),
                num(r.summary.stddev),
                num(r.summary.ci95),
                if i + 1 == self.rows.len() { "" } else { "," },
            ));
        }
        out.push_str("]\n");
        out
    }

    /// Human-readable `mean ± ci95` table for stdout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut last_label = "";
        for r in &self.rows {
            if r.label != last_label {
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str(&format!("{}  (n={})\n", r.label, r.summary.n));
                last_label = &r.label;
            }
            out.push_str(&format!(
                "  {:<32} {:>12.3} ± {:.3}  (stddev {:.3})\n",
                r.metric, r.summary.mean, r.summary.ci95, r.summary.stddev
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(String, Vec<(String, f64)>)> {
        vec![
            ("fig01".into(), vec![("tput".into(), 10.0)]),
            ("fig01".into(), vec![("tput".into(), 14.0)]),
            ("fig01".into(), vec![("tput".into(), 12.0)]),
            (
                "fig03".into(),
                vec![("dev".into(), 0.5), ("lat".into(), f64::NAN)],
            ),
        ]
    }

    #[test]
    fn groups_by_label_and_metric() {
        let rep = aggregate(&sample());
        assert_eq!(rep.rows.len(), 3);
        let tput = &rep.rows[0];
        assert_eq!(
            (tput.label.as_str(), tput.metric.as_str()),
            ("fig01", "tput")
        );
        assert_eq!(tput.summary.n, 3);
        assert!((tput.summary.mean - 12.0).abs() < 1e-12);
        assert!(tput.summary.ci95 > 0.0);
        // The NaN sample is dropped, not propagated.
        let lat = rep.rows.iter().find(|r| r.metric == "lat").unwrap();
        assert_eq!(lat.summary.dropped, 1);
        assert_eq!(lat.summary.n, 0);
    }

    #[test]
    fn csv_and_json_are_deterministic_and_well_formed() {
        let rep = aggregate(&sample());
        let csv = rep.to_csv();
        assert!(csv.starts_with("cell,metric,n,dropped,mean,stddev,ci95\n"));
        assert_eq!(csv, aggregate(&sample()).to_csv());
        let json = rep.to_json();
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert_eq!(json.matches("\"cell\"").count(), rep.rows.len());
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }
}
