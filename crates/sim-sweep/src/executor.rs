//! A bounded work-stealing executor for scenario cells.
//!
//! Each worker owns a deque seeded with a round-robin share of the
//! (static) task set; it pops its own back and, when empty, steals
//! from the front of a sibling. Because no task spawns further tasks,
//! "every queue is empty" means "done" — there is no need for the
//! termination-detection machinery of a general-purpose pool. Results
//! land in per-task slots keyed by submission index, so the output
//! order is independent of the interleaving and a parallel run can be
//! compared byte-for-byte against a sequential one.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Run `f` over `items` on `jobs` worker threads, preserving input
/// order in the result. `jobs == 1` runs inline on the caller's thread
/// (no pool, no locking) — the reference sequential path.
pub fn run_indexed<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1);
    if jobs == 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }

    let n = items.len();
    let workers = jobs.min(n);
    // Round-robin deal, so early (often slower, lower-numbered) cells
    // spread across workers instead of clumping on worker 0.
    let queues: Vec<Mutex<VecDeque<(usize, &T)>>> = (0..workers)
        .map(|w| Mutex::new(items.iter().enumerate().skip(w).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                // Own back first (LIFO keeps the deal's locality),
                // then steal a victim's front (FIFO minimises contention).
                // The own-queue pop must be its own statement: chaining
                // `.or_else(...)` onto the lock temporary keeps the own
                // guard alive across the steal, and workers that hold
                // their own lock while probing the next one deadlock in
                // a ring once every queue drains at the end of a run.
                let own = queues[me].lock().unwrap().pop_back();
                let task = own.or_else(|| {
                    (1..workers)
                        .map(|d| (me + d) % workers)
                        .find_map(|v| queues[v].lock().unwrap().pop_front())
                });
                match task {
                    Some((i, item)) => {
                        let r = f(item);
                        *slots[i].lock().unwrap() = Some(r);
                    }
                    // Static task set: all queues drained ⇒ finished.
                    None => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("executor: unfilled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_at_any_width() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 200] {
            assert_eq!(run_indexed(items.clone(), jobs, |x| x * x), expect);
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = run_indexed((0..50).collect::<Vec<i32>>(), 4, |x| {
            hits.fetch_add(1, Ordering::Relaxed);
            *x
        });
        assert_eq!(out.len(), 50);
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn empty_and_singleton_inputs_are_fine() {
        assert_eq!(run_indexed(Vec::<u8>::new(), 4, |x| *x), Vec::<u8>::new());
        assert_eq!(run_indexed(vec![7u8], 4, |x| *x), vec![7]);
    }
}
