//! `runner check` — generative differential checking of the whole stack.
//!
//! Each generated program (see `sim-check`) is replayed under every
//! scheduler on both device models with the invariant auditor plane
//! installed. Two independent oracles run per program:
//!
//! 1. **Auditors** — cause-tag conservation, dirty-page accounting,
//!    journal write ordering, scheduler ledgers, and event-queue sanity,
//!    checked continuously inside the kernel.
//! 2. **Differential** — the per-process sequence of syscall outcomes
//!    (bytes read/written, fsync durability, creat/unlink completions)
//!    must be identical to the `noop` reference on the same device:
//!    schedulers reorder and delay I/O but must never change results.
//!
//! A failing program is minimized with `sim-check`'s delta-debugging
//! shrinker (`--shrink`) and printed as a replayable spec; feed the text
//! back with `--replay FILE` to reproduce a report without re-fuzzing.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use sim_check::{
    generate, shrink, AuditPlane, FileRef, GenConfig, LayerAuditor, OpSpec, ProgramSpec, Sabotaged,
    TimingSabotaged,
};
use sim_core::{ChaosConfig, FileId, IoErrorKind, SimDuration, SimRng};
use sim_experiments::setup::{
    build_layered, default_layer_tree, kernel_config, DeviceChoice, SchedChoice, Setup,
};
use sim_fault::DeviceFaultPlane;
use sim_kernel::{Outcome, ProcAction, ProcessLogic, World};
use split_core::{IoSched, SyscallKind};
use split_layered::{LayerRule, LayerSpec, Layered, LayeredConfig};

use crate::executor::run_indexed;

/// Every scheduler the matrix covers; `ALL_SCHEDS[0]` is the reference.
pub const ALL_SCHEDS: [SchedChoice; 10] = [
    SchedChoice::Noop,
    SchedChoice::Cfq,
    SchedChoice::BlockDeadline,
    SchedChoice::ScsToken,
    SchedChoice::Afq,
    SchedChoice::SplitDeadline,
    SchedChoice::SplitPdflush,
    SchedChoice::SplitToken,
    SchedChoice::SplitNoop,
    SchedChoice::Layered,
];

/// Both device models.
pub const ALL_DEVICES: [DeviceChoice; 2] = [DeviceChoice::Hdd, DeviceChoice::Ssd];

fn device_name(d: DeviceChoice) -> &'static str {
    match d {
        DeviceChoice::Hdd => "hdd",
        DeviceChoice::Ssd => "ssd",
    }
}

/// A syscall outcome normalized for cross-scheduler comparison: file ids
/// and cache-hit flags depend on scheduling order, results do not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Obs {
    /// A read returned this many bytes.
    Read(u64),
    /// A write buffered this many bytes.
    Written(u64),
    /// An fsync became durable.
    Synced,
    /// A creat finished.
    Created,
    /// A mkdir/unlink finished.
    Meta,
    /// The call failed with this error kind.
    Failed(IoErrorKind),
}

/// One simulation's observable result.
#[derive(Debug)]
pub struct RunOutcome {
    /// Per-process outcome sequences, in spec order.
    pub per_proc: Vec<Vec<Obs>>,
    /// Auditor violations (plus harness-level failures like non-quiescence).
    pub violations: Vec<String>,
    /// The kernel's I/O error count (fault-injection composition checks).
    pub io_errors: u64,
    /// Deterministic digest of the kernel's end-of-run counters
    /// (dispatches, device bytes, per-pid traffic and fsync latencies).
    /// Two runs that scheduled the same events produce equal strings —
    /// the queued-device equivalence test compares these to assert that
    /// queue depth 1 is byte-identical to the serial device plane.
    pub fingerprint: String,
    /// Events the world processed (the bench harness's unit of work).
    pub events: u64,
    /// Completed fsync latencies, milliseconds, ordered by pid then
    /// completion (deterministic; feeds the bench report's SLO
    /// percentiles).
    pub fsync_ms: Vec<f64>,
}

/// Render the counters that must match between a serial-device run and a
/// depth-1 queued run into one comparable line.
fn fingerprint(stats: &sim_kernel::KernelStats) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "dispatched={} device_bytes={}",
        stats.requests_dispatched, stats.device_bytes
    );
    let mut pids: Vec<_> = stats.procs.keys().copied().collect();
    pids.sort();
    for pid in pids {
        let p = &stats.procs[&pid];
        let _ = write!(
            out,
            " pid{}[r={} w={} fsync_ns={:?}]",
            pid.0,
            p.read_bytes,
            p.write_bytes,
            p.fsyncs
                .iter()
                .map(|(_, d)| d.as_nanos())
                .collect::<Vec<_>>()
        );
    }
    out
}

/// Replays one process's op list, mapping file references to real ids as
/// creats complete.
struct Replayer {
    ops: Vec<OpSpec>,
    idx: usize,
    shared: Rc<Vec<FileId>>,
    own: Vec<FileId>,
    obs: Rc<RefCell<Vec<Obs>>>,
    exited: Rc<Cell<usize>>,
}

impl Replayer {
    fn file(&self, r: FileRef) -> FileId {
        match r {
            FileRef::Shared(i) => self.shared[i],
            FileRef::Own(i) => self.own[i],
        }
    }
}

impl ProcessLogic for Replayer {
    fn next(&mut self, _now: sim_core::SimTime, last: &Outcome) -> ProcAction {
        match last {
            Outcome::None => {}
            Outcome::Read { bytes, .. } => self.obs.borrow_mut().push(Obs::Read(*bytes)),
            Outcome::Written { bytes } => self.obs.borrow_mut().push(Obs::Written(*bytes)),
            Outcome::Synced => self.obs.borrow_mut().push(Obs::Synced),
            Outcome::Created(f) => {
                self.own.push(*f);
                self.obs.borrow_mut().push(Obs::Created);
            }
            Outcome::MetaDone => self.obs.borrow_mut().push(Obs::Meta),
            Outcome::Failed(e) => self.obs.borrow_mut().push(Obs::Failed(e.kind)),
        }
        let Some(op) = self.ops.get(self.idx).cloned() else {
            self.exited.set(self.exited.get() + 1);
            return ProcAction::Exit;
        };
        self.idx += 1;
        match op {
            OpSpec::Read { file, offset, len } => ProcAction::Syscall(SyscallKind::Read {
                file: self.file(file),
                offset,
                len,
            }),
            OpSpec::Write { file, offset, len } => ProcAction::Syscall(SyscallKind::Write {
                file: self.file(file),
                offset,
                len,
            }),
            OpSpec::Fsync { file } => ProcAction::Syscall(SyscallKind::Fsync {
                file: self.file(file),
            }),
            OpSpec::Creat => ProcAction::Syscall(SyscallKind::Create),
            OpSpec::Unlink { own } => ProcAction::Syscall(SyscallKind::Unlink {
                file: self.own[own],
            }),
            OpSpec::Mkdir => ProcAction::Syscall(SyscallKind::Mkdir),
            OpSpec::Sleep { micros } => ProcAction::Sleep(SimDuration::from_micros(micros)),
            OpSpec::Compute { micros } => ProcAction::Compute(SimDuration::from_micros(micros)),
        }
    }
}

/// Drain cap: a generated program lasts a few simulated seconds; a run
/// that has not quiesced after this much simulated time is itself a bug.
const QUIESCE_CAP_SECS: u64 = 600;

/// Everything [`run_inner`] can turn on besides the scheduler/device
/// pair. Each public `run_one_*` wrapper sets one knob.
#[derive(Default)]
struct RunOpts {
    /// Wrap the scheduler with the cause-corrupting shim after this many
    /// block adds (mutation testing of the audit plane).
    sabotage: Option<u64>,
    /// Wrap the scheduler with the timing-dependent corruption shim at
    /// this dwell threshold (mutation testing of the chaos plane).
    timing_sabotage: Option<SimDuration>,
    /// Install a device fault plan.
    faults: Option<DeviceFaultPlane>,
    /// Queued-device plane at this hardware queue depth.
    queue_depth: Option<u32>,
    /// Plant one deliberately-late event after the drain.
    inject_late: bool,
    /// Install the chaos plane.
    chaos: Option<ChaosConfig>,
    /// Custom layer tree: replaces the scheduler under test with a
    /// layered arbiter over these specs (`runner check --layers`, the
    /// layer mutation tests).
    layers: Option<Vec<LayerSpec>>,
    /// Plant the cap-leak bug in the layered arbiter (mutation testing
    /// of the `LayerAuditor`): every Nth bucket charge is skipped.
    /// Meaningful only together with `layers`.
    cap_leak: Option<u64>,
    /// Wrap the flat scheduler in a degenerate single-layer tree — the
    /// identity wrapper the equivalence tests prove byte-identical.
    wrap_single_layer: bool,
}

/// Replay `spec` under one scheduler/device pair with auditors installed.
/// `sabotage` wraps the scheduler with the cause-corrupting shim after
/// that many block adds (mutation testing).
pub fn run_one(
    spec: &ProgramSpec,
    sched: SchedChoice,
    device: DeviceChoice,
    sabotage: Option<u64>,
) -> RunOutcome {
    run_inner(
        spec,
        sched,
        device,
        RunOpts {
            sabotage,
            ..Default::default()
        },
    )
}

/// [`run_one`] on the queued-device plane at hardware queue depth
/// `depth`. Depth 1 must produce an outcome equal to [`run_one`] in every
/// field including `fingerprint` — `tests/queue_equivalence.rs` holds the
/// stack to that.
pub fn run_one_queued(
    spec: &ProgramSpec,
    sched: SchedChoice,
    device: DeviceChoice,
    depth: u32,
) -> RunOutcome {
    run_inner(
        spec,
        sched,
        device,
        RunOpts {
            queue_depth: Some(depth),
            ..Default::default()
        },
    )
}

/// [`run_one`] with a device fault plan installed — composes the fuzzer
/// with fault injection to check that faults surface as errors (in
/// outcomes and `io_errors`) rather than tripping auditors or vanishing.
pub fn run_one_faulted(
    spec: &ProgramSpec,
    sched: SchedChoice,
    device: DeviceChoice,
    faults: DeviceFaultPlane,
) -> RunOutcome {
    run_inner(
        spec,
        sched,
        device,
        RunOpts {
            faults: Some(faults),
            ..Default::default()
        },
    )
}

/// [`run_one`] under the chaos plane, optionally on the queued-device
/// plane — the chaos test batteries' entry point.
pub fn run_one_chaos(
    spec: &ProgramSpec,
    sched: SchedChoice,
    device: DeviceChoice,
    queue_depth: Option<u32>,
    chaos: ChaosConfig,
) -> RunOutcome {
    run_inner(
        spec,
        sched,
        device,
        RunOpts {
            queue_depth,
            chaos: Some(chaos),
            ..Default::default()
        },
    )
}

/// [`run_one`] with the timing-dependent sabotage shim armed at `dwell`,
/// optionally under chaos and/or the queued plane. The chaos mutation
/// test uses this for both arms: the plain arm must stay clean (the
/// planted race is unreachable without adversarial timing) and the chaos
/// arm must trip the cause-tag auditor.
pub fn run_one_timing_sabotaged(
    spec: &ProgramSpec,
    sched: SchedChoice,
    device: DeviceChoice,
    queue_depth: Option<u32>,
    chaos: Option<ChaosConfig>,
    dwell: SimDuration,
) -> RunOutcome {
    run_inner(
        spec,
        sched,
        device,
        RunOpts {
            timing_sabotage: Some(dwell),
            queue_depth,
            chaos,
            ..Default::default()
        },
    )
}

/// [`run_one`] with the flat scheduler wrapped in [`Layered::single`] —
/// a one-layer tree with no cap and no dirty budget. The wrapper must be
/// byte-identical to the flat scheduler in every field including
/// `fingerprint`; `tests/layer_equivalence.rs` holds the stack to that.
pub fn run_one_single_layer(
    spec: &ProgramSpec,
    sched: SchedChoice,
    device: DeviceChoice,
) -> RunOutcome {
    run_inner(
        spec,
        sched,
        device,
        RunOpts {
            wrap_single_layer: true,
            ..Default::default()
        },
    )
}

/// [`run_one`] with the layered arbiter over a custom tree, optionally
/// with the planted cap-leak bug armed (`cap_leak`): the layer mutation
/// test's entry point. Kernel flags follow [`SchedChoice::Layered`].
pub fn run_one_layered(
    spec: &ProgramSpec,
    device: DeviceChoice,
    layers: Vec<LayerSpec>,
    cap_leak: Option<u64>,
) -> RunOutcome {
    run_inner(
        spec,
        SchedChoice::Layered,
        device,
        RunOpts {
            layers: Some(layers),
            cap_leak,
            ..Default::default()
        },
    )
}

/// `opts.inject_late` plants one deliberately-late event after the drain
/// (the `runner check --inject-late` probe): the run must then fail
/// through both the event-queue auditor and the drain gate.
fn run_inner(
    spec: &ProgramSpec,
    sched: SchedChoice,
    device: DeviceChoice,
    opts: RunOpts,
) -> RunOutcome {
    let mut setup = Setup::new(sched);
    setup.device = device;
    setup.queue_depth = opts.queue_depth;
    setup.chaos = opts.chaos;
    let mut cfg = kernel_config(setup);
    // The layer plane gets its own auditor battery on top of the
    // standard one: classification replay needs the tree, so the
    // harness mirrors whichever tree the run installs (custom specs,
    // the default tree for `SchedChoice::Layered`, or the degenerate
    // single-layer wrapper).
    let audit_tree: Option<Vec<LayerSpec>> = match (&opts.layers, opts.wrap_single_layer) {
        (Some(specs), _) => Some(specs.clone()),
        (None, true) => Some(vec![LayerSpec::new(
            "all",
            LayerRule::Default,
            sched.name(),
        )]),
        (None, false) if sched == SchedChoice::Layered => Some(default_layer_tree()),
        (None, false) => None,
    };
    let mut plane = AuditPlane::standard();
    if let Some(tree) = audit_tree {
        plane.push(Box::new(LayerAuditor::new(tree)));
    }
    cfg.audit = Some(plane);
    let base: Box<dyn IoSched> = match (&opts.layers, opts.wrap_single_layer) {
        (Some(specs), _) => {
            let lcfg = LayeredConfig {
                cap_leak_every: opts.cap_leak,
                ..Default::default()
            };
            Box::new(build_layered(specs.clone(), lcfg).expect("caller-validated layer tree"))
        }
        (None, true) => Box::new(Layered::single(sched.build())),
        (None, false) => sched.build(),
    };
    let sched_box: Box<dyn IoSched> = match (opts.sabotage, opts.timing_sabotage) {
        (Some(after), _) => Box::new(Sabotaged::new(base, after)),
        (None, Some(dwell)) => Box::new(TimingSabotaged::new(base, dwell)),
        (None, None) => base,
    };
    let mut w = World::new();
    let k = w.add_kernel(cfg, device.build(), sched_box);
    if let Some(plane) = opts.faults {
        w.kernel_mut(k).install_fault_plane(plane);
    }

    let shared = Rc::new(
        (0..spec.shared_files)
            .map(|_| w.prealloc_file(k, spec.shared_bytes, true))
            .collect::<Vec<FileId>>(),
    );
    let exited = Rc::new(Cell::new(0usize));
    let sinks: Vec<Rc<RefCell<Vec<Obs>>>> = spec
        .procs
        .iter()
        .map(|p| {
            let obs = Rc::new(RefCell::new(Vec::new()));
            w.spawn(
                k,
                Box::new(Replayer {
                    ops: p.ops.clone(),
                    idx: 0,
                    shared: Rc::clone(&shared),
                    own: Vec::new(),
                    obs: Rc::clone(&obs),
                    exited: Rc::clone(&exited),
                }),
            );
            obs
        })
        .collect();

    // Drain: run until every process exited and the block layer idles,
    // then one grace window so the periodic journal commit flushes the
    // final transaction (dirty pages below the writeback threshold
    // legitimately remain).
    let mut elapsed = 0u64;
    let mut quiesced = false;
    while elapsed < QUIESCE_CAP_SECS {
        w.run_for(SimDuration::from_secs(1));
        elapsed += 1;
        if exited.get() == spec.procs.len() && w.kernel(k).block_idle() {
            w.run_for(SimDuration::from_secs(10));
            elapsed += 10;
            if w.kernel(k).block_idle() {
                quiesced = true;
                break;
            }
        }
    }
    if opts.inject_late {
        w.inject_late_schedule();
    }
    if quiesced {
        w.audit_quiesce(k);
    }

    let mut violations: Vec<String> = w
        .kernel(k)
        .audit_plane()
        .map(|p| p.violations().iter().map(|v| v.to_string()).collect())
        .unwrap_or_default();
    if !quiesced {
        violations.push(format!(
            "program failed to quiesce within {QUIESCE_CAP_SECS} simulated seconds"
        ));
    }
    // Drain gate: independent of the auditor plane, a drained run with a
    // nonzero late-schedule count can never pass — release builds clamp
    // late events instead of asserting, and the clamp means an event
    // fired at the wrong simulated time.
    let late = w.late_schedules();
    if late > 0 {
        violations.push(format!(
            "drain gate: {late} event(s) scheduled in the past were clamped to now"
        ));
    }
    let stats = &w.kernel(k).stats;
    let mut fsync_ms: Vec<f64> = Vec::new();
    let mut pids: Vec<_> = stats.procs.keys().copied().collect();
    pids.sort();
    for pid in pids {
        fsync_ms.extend(
            stats.procs[&pid]
                .fsyncs
                .iter()
                .map(|(_, d)| d.as_millis_f64()),
        );
    }
    RunOutcome {
        per_proc: sinks.into_iter().map(|s| s.take()).collect(),
        violations,
        io_errors: stats.io_errors,
        fingerprint: fingerprint(stats),
        events: w.events_processed(),
        fsync_ms,
    }
}

/// Run the full scheduler × device matrix on one program. Returns one
/// message per problem found (empty means the program checks clean).
pub fn check_program(spec: &ProgramSpec) -> Vec<String> {
    check_program_qd(spec, None)
}

/// [`check_program`] generalized over the device plane: `None` replays on
/// the legacy serial device, `Some(d)` on the queued plane at hardware
/// queue depth `d` (`runner check --queue-depth d`). The differential
/// oracle is unchanged — schedulers may exploit a deep queue but must
/// never change syscall results.
pub fn check_program_qd(spec: &ProgramSpec, queue_depth: Option<u32>) -> Vec<String> {
    check_program_opts(spec, queue_depth, false, None, None)
}

/// [`check_program_qd`] under the chaos plane (`runner check --chaos`).
/// The differential oracle survives chaos unchanged: the noop reference
/// replays under the *same* chaos config, and syscall outcomes are
/// timing-invariant, so schedulers must still agree with the reference
/// while the auditors watch every perturbed interleaving.
pub fn check_program_chaos(
    spec: &ProgramSpec,
    queue_depth: Option<u32>,
    chaos: ChaosConfig,
) -> Vec<String> {
    check_program_opts(spec, queue_depth, false, Some(chaos), None)
}

/// [`check_program_qd`] with the late-schedule probe: `inject_late`
/// poisons every run in the matrix with one deliberately-late event, so
/// a passing gate proves `runner check --inject-late` exits nonzero.
fn check_program_opts(
    spec: &ProgramSpec,
    queue_depth: Option<u32>,
    inject_late: bool,
    chaos: Option<ChaosConfig>,
    layers: Option<&[LayerSpec]>,
) -> Vec<String> {
    let run = |sched: SchedChoice, device| {
        // A custom tree (`--layers`) replaces the default tree on the
        // layered arm of the matrix; flat arms are unaffected.
        let layers = match (sched, layers) {
            (SchedChoice::Layered, Some(tree)) => Some(tree.to_vec()),
            _ => None,
        };
        run_inner(
            spec,
            sched,
            device,
            RunOpts {
                queue_depth,
                inject_late,
                chaos,
                layers,
                ..Default::default()
            },
        )
    };
    let mut problems = Vec::new();
    for &device in &ALL_DEVICES {
        let reference = run(ALL_SCHEDS[0], device);
        for v in &reference.violations {
            problems.push(format!("noop/{}: {v}", device_name(device)));
        }
        for &sched in &ALL_SCHEDS[1..] {
            let r = run(sched, device);
            let label = format!("{}/{}", sched.name(), device_name(device));
            for v in &r.violations {
                problems.push(format!("{label}: {v}"));
            }
            if r.per_proc != reference.per_proc {
                for (pi, (got, want)) in r.per_proc.iter().zip(&reference.per_proc).enumerate() {
                    if got != want {
                        problems.push(format!(
                            "{label}: proc {pi} outcomes diverge from noop reference \
                             (got {got:?}, want {want:?})"
                        ));
                    }
                }
            }
        }
    }
    problems
}

/// What one `bench check` batch measured: total DES events across the
/// full scheduler × device matrix plus every completed fsync latency.
#[derive(Debug, Clone)]
pub struct BenchBatch {
    /// Events processed, summed over all runs in the batch.
    pub events: u64,
    /// Fsync latencies (ms) from every run, in matrix order.
    pub fsync_ms: Vec<f64>,
}

/// Run `programs` generated programs through the full
/// [`ALL_SCHEDS`] × [`ALL_DEVICES`] matrix as a bench workload:
/// deterministic for a fixed `root_seed`, heavy on fsyncs (generated
/// programs sync), and exercising every scheduler's decision path.
pub fn bench_batch(programs: usize, root_seed: u64) -> BenchBatch {
    let mut events = 0u64;
    let mut fsync_ms = Vec::new();
    for idx in 0..programs as u64 {
        let spec = generate(&mut SimRng::stream(root_seed, idx), &GenConfig::default());
        for &device in &ALL_DEVICES {
            for &sched in &ALL_SCHEDS {
                let r = run_inner(&spec, sched, device, RunOpts::default());
                events += r.events;
                fsync_ms.extend(r.fsync_ms);
            }
        }
    }
    BenchBatch { events, fsync_ms }
}

/// `runner check` parameters.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Programs to generate and check.
    pub programs: usize,
    /// Worker threads.
    pub jobs: usize,
    /// Root seed; `(root_seed, index)` names each program.
    pub root_seed: u64,
    /// Minimize failing programs before reporting.
    pub shrink: bool,
    /// Device plane: `None` = legacy serial device, `Some(d)` = queued
    /// device at hardware queue depth `d`.
    pub queue_depth: Option<u32>,
    /// Plant one deliberately-late event per run so the late-schedule
    /// gate can be demonstrated to fail (`runner check --inject-late`).
    pub inject_late: bool,
    /// Chaos plane for every run in the batch (`runner check --chaos`).
    pub chaos: Option<ChaosConfig>,
    /// Custom layer tree for the layered arm of the matrix
    /// (`runner check --layers SPEC`); `None` uses the default tree.
    pub layers: Option<Vec<LayerSpec>>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            programs: 50,
            jobs: 1,
            root_seed: 0,
            shrink: false,
            queue_depth: None,
            inject_late: false,
            chaos: None,
            layers: None,
        }
    }
}

/// One failing program, ready to print.
#[derive(Debug)]
pub struct CheckFailure {
    /// Generation index under the root seed (u64::MAX for `--replay`).
    pub index: u64,
    /// Everything that went wrong.
    pub problems: Vec<String>,
    /// The failing program's replayable spec.
    pub program: String,
    /// The minimized spec, when shrinking ran and made progress.
    pub shrunk: Option<String>,
}

/// What a check run found.
#[derive(Debug)]
pub struct CheckReport {
    /// Programs checked.
    pub programs: usize,
    /// Failures, in generation order.
    pub failures: Vec<CheckFailure>,
}

impl CheckReport {
    /// Human-readable report (what `runner check` prints).
    pub fn render(&self, root_seed: u64) -> String {
        let mut out = String::new();
        if self.failures.is_empty() {
            out.push_str(&format!(
                "check: {} program(s) clean across {} scheduler(s) x {} device(s)\n",
                self.programs,
                ALL_SCHEDS.len(),
                ALL_DEVICES.len()
            ));
            return out;
        }
        for f in &self.failures {
            out.push_str(&format!(
                "FAIL program {} (seed {root_seed}, stream {}):\n",
                f.index, f.index
            ));
            for p in &f.problems {
                out.push_str(&format!("  {p}\n"));
            }
            match &f.shrunk {
                Some(s) => out.push_str(&format!("  minimized reproducer:\n{s}\n")),
                None => out.push_str(&format!("  program:\n{}\n", f.program)),
            }
        }
        out.push_str(&format!(
            "check: {} of {} program(s) FAILED\n",
            self.failures.len(),
            self.programs
        ));
        out
    }
}

fn fail_from(
    spec: &ProgramSpec,
    index: u64,
    problems: Vec<String>,
    minimize: bool,
    queue_depth: Option<u32>,
    chaos: Option<ChaosConfig>,
    layers: Option<&[LayerSpec]>,
) -> CheckFailure {
    let shrunk = if minimize {
        // The shrinker replays candidates under the same planes that
        // caught the failure — a chaos-only bug must stay reproducible
        // at every shrink step.
        let small = shrink(spec, |p| {
            !check_program_opts(p, queue_depth, false, chaos, layers).is_empty()
        });
        (small.syscall_count() < spec.syscall_count()).then(|| small.to_string())
    } else {
        None
    };
    CheckFailure {
        index,
        problems,
        program: spec.to_string(),
        shrunk,
    }
}

/// Generate and check `cfg.programs` programs in parallel.
pub fn run_check(cfg: &CheckConfig) -> CheckReport {
    let indices: Vec<u64> = (0..cfg.programs as u64).collect();
    let results = run_indexed(indices, cfg.jobs, |&idx| {
        let spec = generate(
            &mut SimRng::stream(cfg.root_seed, idx),
            &GenConfig::default(),
        );
        let problems = check_program_opts(
            &spec,
            cfg.queue_depth,
            cfg.inject_late,
            cfg.chaos,
            cfg.layers.as_deref(),
        );
        (idx, spec, problems)
    });
    // Shrinking replays the whole matrix per candidate, so it stays on
    // the (rare) failure path and out of the parallel section. Injected
    // late-schedule failures are in the harness, not the program, so
    // there is nothing for the shrinker to minimize.
    let minimize = cfg.shrink && !cfg.inject_late;
    let failures = results
        .into_iter()
        .filter(|(_, _, problems)| !problems.is_empty())
        .map(|(idx, spec, problems)| {
            fail_from(
                &spec,
                idx,
                problems,
                minimize,
                cfg.queue_depth,
                cfg.chaos,
                cfg.layers.as_deref(),
            )
        })
        .collect();
    CheckReport {
        programs: cfg.programs,
        failures,
    }
}

/// Check one program parsed from a replay file (see [`ProgramSpec::parse`]).
/// `chaos` replays it under the chaos plane — a reproducer minted by
/// `check --chaos` needs the same timing to reproduce.
pub fn run_replay(
    text: &str,
    shrink_it: bool,
    chaos: Option<ChaosConfig>,
) -> Result<CheckReport, String> {
    let spec = ProgramSpec::parse(text)?;
    let problems = check_program_opts(&spec, None, false, chaos, None);
    let failures = if problems.is_empty() {
        Vec::new()
    } else {
        vec![fail_from(
            &spec,
            u64::MAX,
            problems,
            shrink_it,
            None,
            chaos,
            None,
        )]
    };
    Ok(CheckReport {
        programs: 1,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_trivial_program_runs_clean_on_the_reference() {
        let spec = ProgramSpec::parse(
            "program shared=1 bytes=65536\n\
             proc\n\
             write s0 0 8192\n\
             fsync s0\n\
             end\n",
        )
        .unwrap();
        let r = run_one(&spec, SchedChoice::Noop, DeviceChoice::Ssd, None);
        assert_eq!(r.violations, Vec::<String>::new());
        assert_eq!(
            r.per_proc,
            vec![vec![Obs::Written(8192), Obs::Synced]],
            "outcome sequence"
        );
        assert_eq!(r.io_errors, 0);
    }

    #[test]
    fn injected_late_schedule_fails_an_otherwise_clean_run() {
        let spec = ProgramSpec::parse(
            "program shared=1 bytes=65536\n\
             proc\n\
             write s0 0 8192\n\
             fsync s0\n\
             end\n",
        )
        .unwrap();
        let r = run_inner(
            &spec,
            SchedChoice::Noop,
            DeviceChoice::Ssd,
            RunOpts {
                inject_late: true,
                ..Default::default()
            },
        );
        // Both the event-queue auditor and the harness's drain gate
        // must flag the planted late event.
        assert!(
            r.violations
                .iter()
                .any(|v| v.contains("scheduled in the past") && !v.contains("drain gate")),
            "auditor violation missing: {:?}",
            r.violations
        );
        assert!(
            r.violations.iter().any(|v| v.contains("drain gate")),
            "drain gate violation missing: {:?}",
            r.violations
        );
    }

    #[test]
    fn outcomes_match_across_schedulers_for_a_small_program() {
        let spec = ProgramSpec::parse(
            "program shared=2 bytes=65536\n\
             proc\n\
             write s0 0 16384\n\
             creat\n\
             write o0 0 4096\n\
             fsync o0\n\
             read s1 0 8192\n\
             unlink o0\n\
             end\n\
             proc\n\
             write s1 4096 100\n\
             fsync s1\n\
             end\n",
        )
        .unwrap();
        let problems = check_program(&spec);
        assert_eq!(problems, Vec::<String>::new());
    }
}
