//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] is the cross product of figures × schedulers ×
//! devices × seed replicates at one profile. [`SweepSpec::cells`]
//! expands it into concrete [`Cell`]s, each carrying its own
//! decorrelated seed derived from the root seed and the cell's *label*
//! (not its position), so adding a figure or an axis value to a spec
//! never changes the seeds — and therefore the results — of the cells
//! that were already in it.

use sim_core::stream_seed;
use sim_experiments::registry::{CellRequest, FigureId, Profile};
use sim_experiments::setup::{DeviceChoice, SchedChoice};

/// A declarative sweep: the grid axes plus replication settings.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Figures to run.
    pub figures: Vec<FigureId>,
    /// Configuration scale for every cell.
    pub profile: Profile,
    /// Scheduler axis; applied only to figures that support it
    /// (`None` entries mean "the figure's own default").
    pub scheds: Vec<Option<SchedChoice>>,
    /// Device axis; applied only to figures that support it.
    pub devices: Vec<Option<DeviceChoice>>,
    /// Seed replicates per grid cell.
    pub replicates: u32,
    /// Root seed all per-cell seeds are derived from.
    pub root_seed: u64,
}

impl SweepSpec {
    /// A spec over `figures` with no axis overrides.
    pub fn new(figures: Vec<FigureId>) -> Self {
        SweepSpec {
            figures,
            profile: Profile::Quick,
            scheds: vec![None],
            devices: vec![None],
            replicates: 3,
            root_seed: 0,
        }
    }
}

/// One concrete scenario produced by expanding a [`SweepSpec`].
#[derive(Debug, Clone)]
pub struct Cell {
    /// Grid-cell label, e.g. `fig06/sched=cfq` — stable across spec
    /// growth, shared by all replicates of the cell.
    pub label: String,
    /// Replicate index within the cell.
    pub replicate: u32,
    /// The fully-resolved request to run.
    pub request: CellRequest,
}

fn sched_name(s: SchedChoice) -> String {
    match s {
        SchedChoice::Noop => "noop".into(),
        SchedChoice::Cfq => "cfq".into(),
        SchedChoice::BlockDeadline => "block-deadline".into(),
        SchedChoice::BlockDeadlineWith(r, w) => format!("block-deadline-{r}-{w}"),
        SchedChoice::ScsToken => "scs-token".into(),
        SchedChoice::Afq => "afq".into(),
        SchedChoice::SplitDeadline => "split-deadline".into(),
        SchedChoice::SplitPdflush => "split-pdflush".into(),
        SchedChoice::SplitToken => "split-token".into(),
        SchedChoice::SplitNoop => "split-noop".into(),
        SchedChoice::Layered => "layered".into(),
    }
}

fn device_name(d: DeviceChoice) -> &'static str {
    match d {
        DeviceChoice::Hdd => "hdd",
        DeviceChoice::Ssd => "ssd",
    }
}

/// FNV-1a over the label: cheap, stable, and good enough to key seed
/// streams on (collisions across a sweep's handful of labels are
/// covered by a unit test on realistic grids).
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The seed for one replicate of one labelled cell.
pub fn cell_seed(root: u64, label: &str, replicate: u32) -> u64 {
    stream_seed(stream_seed(root, fnv1a(label)), replicate as u64)
}

impl SweepSpec {
    /// Expand the grid into concrete cells, replicates innermost.
    ///
    /// Axes a figure does not support are collapsed for that figure
    /// (fig01 under a 3-scheduler axis still contributes one cell, not
    /// three identical ones).
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for &fig in &self.figures {
            let scheds: &[Option<SchedChoice>] = if fig.supports_sched_axis() {
                &self.scheds
            } else {
                &[None]
            };
            let devices: &[Option<DeviceChoice>] = if fig.supports_device_axis() {
                &self.devices
            } else {
                &[None]
            };
            for &sched in scheds {
                for &device in devices {
                    let mut label = fig.name().to_string();
                    if let Some(s) = sched {
                        label.push_str("/sched=");
                        label.push_str(&sched_name(s));
                    }
                    if let Some(d) = device {
                        label.push_str("/device=");
                        label.push_str(device_name(d));
                    }
                    for replicate in 0..self.replicates.max(1) {
                        let mut request = CellRequest::new(fig, self.profile, 0);
                        request.seed = cell_seed(self.root_seed, &label, replicate);
                        request.sched = sched;
                        request.device = device;
                        out.push(Cell {
                            label: label.clone(),
                            replicate,
                            request,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_collapses_unsupported_axes() {
        let mut spec = SweepSpec::new(vec![FigureId::Fig01, FigureId::Fig06]);
        spec.scheds = vec![None, Some(SchedChoice::Cfq), Some(SchedChoice::SplitToken)];
        spec.replicates = 2;
        let cells = spec.cells();
        // fig01 ignores the sched axis: 1 label; fig06 honours it: 3.
        let labels: std::collections::BTreeSet<_> = cells.iter().map(|c| c.label.clone()).collect();
        assert_eq!(labels.len(), 4, "{labels:?}");
        assert_eq!(cells.len(), 4 * 2);
    }

    #[test]
    fn seeds_are_stable_under_spec_growth() {
        let small = SweepSpec::new(vec![FigureId::Fig06]);
        let big = SweepSpec::new(vec![FigureId::Fig01, FigureId::Fig06]);
        let seed_of = |spec: &SweepSpec| {
            spec.cells()
                .iter()
                .find(|c| c.label == "fig06" && c.replicate == 1)
                .map(|c| c.request.seed)
                .unwrap()
        };
        assert_eq!(seed_of(&small), seed_of(&big));
    }

    #[test]
    fn seeds_do_not_collide_on_a_realistic_grid() {
        let mut spec = SweepSpec::new(FigureId::ALL.to_vec());
        spec.scheds = vec![None, Some(SchedChoice::Cfq), Some(SchedChoice::SplitToken)];
        spec.devices = vec![None, Some(DeviceChoice::Hdd), Some(DeviceChoice::Ssd)];
        spec.replicates = 8;
        let cells = spec.cells();
        let seeds: std::collections::BTreeSet<_> = cells.iter().map(|c| c.request.seed).collect();
        assert_eq!(seeds.len(), cells.len(), "seed collision in the grid");
    }

    #[test]
    fn replicates_differ_and_depend_on_root() {
        assert_ne!(cell_seed(0, "fig01", 0), cell_seed(0, "fig01", 1));
        assert_ne!(cell_seed(0, "fig01", 0), cell_seed(1, "fig01", 0));
        assert_ne!(cell_seed(0, "fig01", 0), cell_seed(0, "fig03", 0));
    }
}
