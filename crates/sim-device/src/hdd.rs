//! A mechanical hard-drive cost model.
//!
//! Modeled loosely on the paper's 500 GB 7200 RPM Western Digital drive:
//! square-root seek curve, half-rotation average rotational latency, and a
//! sustained transfer rate of ~110 MB/s. A request contiguous with the
//! current head position pays neither seek nor rotation, so sequential
//! streams run at full bandwidth while 4 KB random I/O lands near the
//! classic ~100 IOPS.

use sim_core::{BlockNo, SimDuration};

use crate::{DiskModel, DiskRequestShape};

/// Tunable parameters of the HDD model.
#[derive(Debug, Clone, Copy)]
pub struct HddConfig {
    /// Capacity in 4 KB blocks. Default: 500 GB.
    pub capacity_blocks: u64,
    /// Shortest (track-to-track) seek.
    pub min_seek: SimDuration,
    /// Full-stroke seek.
    pub max_seek: SimDuration,
    /// Time for one platter revolution (7200 RPM → 8.33 ms).
    pub rotation: SimDuration,
    /// Sustained sequential bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Seeks shorter than this many blocks count as "near" and pay only the
    /// settle cost (`min_seek`), approximating same-cylinder locality.
    pub near_distance: u64,
}

impl Default for HddConfig {
    fn default() -> Self {
        HddConfig {
            capacity_blocks: 500 * 1024 * 1024 * 1024 / sim_core::PAGE_SIZE,
            min_seek: SimDuration::from_micros(500),
            max_seek: SimDuration::from_millis(14),
            rotation: SimDuration::from_micros(8333),
            bandwidth: 110.0e6,
            near_distance: 64,
        }
    }
}

/// Seek + rotation + transfer hard-disk model with a persistent head
/// position.
#[derive(Debug, Clone)]
pub struct HddModel {
    cfg: HddConfig,
    head: BlockNo,
}

impl HddModel {
    /// A drive with the default (paper-like) geometry.
    pub fn new() -> Self {
        Self::with_config(HddConfig::default())
    }

    /// A drive with explicit parameters.
    pub fn with_config(cfg: HddConfig) -> Self {
        assert!(cfg.bandwidth > 0.0, "bandwidth must be positive");
        assert!(cfg.capacity_blocks > 0, "capacity must be positive");
        HddModel {
            cfg,
            head: BlockNo(0),
        }
    }

    /// Current head position (block granularity).
    pub fn head(&self) -> BlockNo {
        self.head
    }

    fn positioning_cost(&self, start: BlockNo) -> SimDuration {
        let dist = start.raw().abs_diff(self.head.raw());
        if dist == 0 {
            // Head is already there: streaming continuation.
            return SimDuration::ZERO;
        }
        if dist <= self.cfg.near_distance {
            // Same-cylinder neighbourhood: settle only, no full rotation.
            return self.cfg.min_seek;
        }
        let frac = (dist as f64 / self.cfg.capacity_blocks as f64).min(1.0);
        let span = self
            .cfg
            .max_seek
            .saturating_sub(self.cfg.min_seek)
            .as_nanos() as f64;
        let seek = self.cfg.min_seek + SimDuration::from_nanos((span * frac.sqrt()) as u64);
        // Average rotational latency: half a revolution.
        let rot = self.cfg.rotation.div(2);
        seek + rot
    }

    fn transfer_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.cfg.bandwidth)
    }
}

impl Default for HddModel {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskModel for HddModel {
    fn service_time(&mut self, shape: &DiskRequestShape) -> SimDuration {
        let t = self.peek_service_time(shape);
        self.head = shape.end();
        t
    }

    fn peek_service_time(&self, shape: &DiskRequestShape) -> SimDuration {
        self.positioning_cost(shape.start) + self.transfer_cost(shape.bytes())
    }

    fn seq_bandwidth(&self) -> f64 {
        self.cfg.bandwidth
    }

    fn capacity_blocks(&self) -> u64 {
        self.cfg.capacity_blocks
    }

    fn name(&self) -> &'static str {
        "hdd"
    }

    fn is_rotational(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IoDir;

    fn shape(start: u64, n: u64) -> DiskRequestShape {
        DiskRequestShape::new(IoDir::Read, BlockNo(start), n)
    }

    #[test]
    fn sequential_stream_pays_only_transfer() {
        let mut d = HddModel::new();
        let first = d.service_time(&shape(1_000_000, 256)); // position once
        let second = d.service_time(&shape(1_000_256, 256)); // contiguous
        assert!(first > second, "first access must pay a seek");
        let expected = SimDuration::from_secs_f64(256.0 * 4096.0 / 110.0e6);
        let diff = second.as_nanos().abs_diff(expected.as_nanos());
        assert!(diff < 1_000, "continuation should be pure transfer");
    }

    #[test]
    fn random_4k_is_orders_of_magnitude_costlier_than_sequential_4k() {
        let mut d = HddModel::new();
        d.service_time(&shape(0, 1));
        let seq = d.peek_service_time(&shape(1, 1));
        let far = d.peek_service_time(&shape(50_000_000, 1));
        assert!(
            far.as_nanos() > 50 * seq.as_nanos(),
            "far seek {far:?} should dwarf sequential {seq:?}"
        );
        // Random 4 KB should land in the classic few-to-15 ms window.
        assert!(far >= SimDuration::from_millis(3));
        assert!(far <= SimDuration::from_millis(20));
    }

    #[test]
    fn seek_cost_grows_with_distance() {
        let mut d = HddModel::new();
        d.service_time(&shape(0, 1));
        let near = d.peek_service_time(&shape(10_000, 1));
        let far = d.peek_service_time(&shape(100_000_000, 1));
        assert!(far > near);
    }

    #[test]
    fn near_seeks_pay_settle_only() {
        let mut d = HddModel::new();
        d.service_time(&shape(1000, 1));
        let near = d.peek_service_time(&shape(1010, 1));
        // settle (0.5 ms) + transfer, but no half-rotation (4.2 ms)
        assert!(near < SimDuration::from_millis(1));
    }

    #[test]
    fn peek_does_not_move_head() {
        let mut d = HddModel::new();
        d.service_time(&shape(500, 4));
        let h = d.head();
        d.peek_service_time(&shape(90_000_000, 1));
        assert_eq!(d.head(), h);
        d.service_time(&shape(90_000_000, 1));
        assert_eq!(d.head(), BlockNo(90_000_001));
    }

    #[test]
    fn sustained_sequential_hits_configured_bandwidth() {
        let mut d = HddModel::new();
        let mut total = SimDuration::ZERO;
        let mut pos = 0u64;
        let blocks_per_req = 1024; // 4 MB requests
        for _ in 0..100 {
            total += d.service_time(&shape(pos, blocks_per_req));
            pos += blocks_per_req;
        }
        let bytes = 100 * blocks_per_req * 4096;
        let mbps = bytes as f64 / 1e6 / total.as_secs_f64();
        assert!((100.0..120.0).contains(&mbps), "got {mbps} MB/s");
    }
}
