//! A flash SSD cost model.
//!
//! Modeled loosely on the paper's Intel X25-M: flat per-request latency,
//! high read bandwidth, lower write bandwidth, and a mild penalty for
//! scattered small writes (FTL overhead) — but none of the disk's
//! distance-dependent positioning cost.

use sim_core::{BlockNo, SimDuration};

use crate::{DiskModel, DiskRequestShape, IoDir};

/// Tunable parameters of the SSD model.
#[derive(Debug, Clone, Copy)]
pub struct SsdConfig {
    /// Capacity in 4 KB blocks. Default: 80 GB.
    pub capacity_blocks: u64,
    /// Fixed per-request read latency.
    pub read_latency: SimDuration,
    /// Fixed per-request write latency (program time).
    pub write_latency: SimDuration,
    /// Sequential read bandwidth (bytes/second).
    pub read_bandwidth: f64,
    /// Sequential write bandwidth (bytes/second).
    pub write_bandwidth: f64,
    /// Extra latency applied to non-contiguous small writes (FTL churn).
    pub random_write_penalty: SimDuration,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            capacity_blocks: 80 * 1024 * 1024 * 1024 / sim_core::PAGE_SIZE,
            read_latency: SimDuration::from_micros(65),
            write_latency: SimDuration::from_micros(85),
            read_bandwidth: 250.0e6,
            write_bandwidth: 80.0e6,
            random_write_penalty: SimDuration::from_micros(150),
        }
    }
}

/// Flat-latency flash model with separate read/write channels costs.
#[derive(Debug, Clone)]
pub struct SsdModel {
    cfg: SsdConfig,
    last_end: BlockNo,
}

impl SsdModel {
    /// An SSD with the default (X25-M-like) parameters.
    pub fn new() -> Self {
        Self::with_config(SsdConfig::default())
    }

    /// An SSD with explicit parameters.
    pub fn with_config(cfg: SsdConfig) -> Self {
        assert!(cfg.read_bandwidth > 0.0 && cfg.write_bandwidth > 0.0);
        SsdModel {
            cfg,
            last_end: BlockNo(0),
        }
    }
}

impl Default for SsdModel {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskModel for SsdModel {
    fn service_time(&mut self, shape: &DiskRequestShape) -> SimDuration {
        let t = self.peek_service_time(shape);
        self.last_end = shape.end();
        t
    }

    fn peek_service_time(&self, shape: &DiskRequestShape) -> SimDuration {
        let bytes = shape.bytes() as f64;
        match shape.dir {
            IoDir::Read => {
                self.cfg.read_latency + SimDuration::from_secs_f64(bytes / self.cfg.read_bandwidth)
            }
            IoDir::Write => {
                let contiguous = shape.start == self.last_end;
                let small = shape.nblocks <= 8;
                let penalty = if !contiguous && small {
                    self.cfg.random_write_penalty
                } else {
                    SimDuration::ZERO
                };
                self.cfg.write_latency
                    + penalty
                    + SimDuration::from_secs_f64(bytes / self.cfg.write_bandwidth)
            }
        }
    }

    fn seq_bandwidth(&self) -> f64 {
        // Normalization unit: use the write bandwidth (the scarcer channel),
        // matching how the paper's token experiments cap throughput.
        self.cfg.write_bandwidth
    }

    fn capacity_blocks(&self) -> u64 {
        self.cfg.capacity_blocks
    }

    fn name(&self) -> &'static str {
        "ssd"
    }

    fn is_rotational(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rd(start: u64, n: u64) -> DiskRequestShape {
        DiskRequestShape::new(IoDir::Read, BlockNo(start), n)
    }
    fn wr(start: u64, n: u64) -> DiskRequestShape {
        DiskRequestShape::new(IoDir::Write, BlockNo(start), n)
    }

    #[test]
    fn random_reads_cost_the_same_as_sequential_reads() {
        let mut d = SsdModel::new();
        d.service_time(&rd(0, 1));
        let seq = d.peek_service_time(&rd(1, 1));
        let far = d.peek_service_time(&rd(10_000_000, 1));
        assert_eq!(seq, far, "flash reads are position independent");
    }

    #[test]
    fn random_4k_read_latency_is_tens_of_microseconds() {
        let d = SsdModel::new();
        let t = d.peek_service_time(&rd(12345, 1));
        assert!(t >= SimDuration::from_micros(50));
        assert!(t <= SimDuration::from_micros(200));
    }

    #[test]
    fn writes_are_slower_than_reads() {
        let d = SsdModel::new();
        assert!(d.peek_service_time(&wr(0, 256)) > d.peek_service_time(&rd(0, 256)));
    }

    #[test]
    fn scattered_small_writes_pay_ftl_penalty() {
        let mut d = SsdModel::new();
        d.service_time(&wr(1000, 1));
        let contiguous = d.peek_service_time(&wr(1001, 1));
        let scattered = d.peek_service_time(&wr(5_000_000, 1));
        assert!(scattered > contiguous);
        // Large writes do not pay the penalty regardless of location.
        let big_contig = d.peek_service_time(&wr(1001, 1024));
        let big_far = d.peek_service_time(&wr(5_000_000, 1024));
        assert_eq!(big_contig, big_far);
    }

    #[test]
    fn device_is_far_faster_than_hdd_for_random_io() {
        use crate::HddModel;
        let mut hdd = HddModel::new();
        hdd.service_time(&rd(0, 1));
        let hdd_rand = hdd.peek_service_time(&rd(50_000_000, 1));
        let ssd = SsdModel::new();
        let ssd_rand = ssd.peek_service_time(&rd(10_000_000, 1));
        assert!(hdd_rand.as_nanos() > 20 * ssd_rand.as_nanos());
    }
}
