//! The queued-device plane: a device front-end that holds up to
//! `depth` requests in flight concurrently, the way NCQ (SATA) and
//! multi-queue NVMe devices do.
//!
//! Two internal service disciplines, chosen by the wrapped model:
//!
//! * **Rotational (HDD)** — one actuator. Accepted requests wait in the
//!   device's queue and the firmware picks the next one by
//!   *shortest positioning time first* (SPTF) over the queued set, the
//!   classic NCQ reordering. This is what makes a polluted queue
//!   genuinely dangerous: a competitor's request at a distant location
//!   keeps losing the "who is nearest" race while a burst of scattered
//!   requests forms a nearest-neighbour tour around it (§2 of the
//!   paper — CFQ's Figure-1 collapse needs this).
//! * **Flash (SSD)** — `channels` independent ways. A request maps to a
//!   channel by its block address (`start / stripe_blocks mod
//!   channels`); requests on distinct channels overlap, requests on the
//!   same channel serialize FIFO.
//!
//! With `depth = 1` both disciplines degenerate to the legacy serial
//! device: one `service_time` call at the accept instant, one
//! completion later — byte-identical event sequences.
//!
//! The plane itself is pure bookkeeping over a [`DiskModel`]; it
//! schedules nothing. Callers ([`sim-kernel`]'s dispatch path) feed it
//! `accept` / `complete` calls and turn the returned [`Started`]
//! records into DES completion events.

use sim_core::{CompletionJitter, RequestId, SimDuration};

use crate::{DeviceStats, DiskModel, DiskRequestShape};

/// Queued-device construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct QueuedDeviceConfig {
    /// Hardware queue depth (NCQ tags / NVMe queue slots), at least 1.
    pub depth: u32,
    /// Independent flash channels (ways) for non-rotational models.
    pub channels: u32,
    /// Blocks per channel stripe: consecutive stripes map to
    /// consecutive channels, so big sequential transfers spread across
    /// ways while small neighbours share one.
    pub stripe_blocks: u64,
}

impl Default for QueuedDeviceConfig {
    fn default() -> Self {
        QueuedDeviceConfig {
            depth: 32,
            channels: 8,
            stripe_blocks: 64,
        }
    }
}

impl QueuedDeviceConfig {
    /// Default configuration at a given queue depth.
    pub fn with_depth(depth: u32) -> Self {
        QueuedDeviceConfig {
            depth: depth.max(1),
            ..Default::default()
        }
    }
}

/// A request the device just moved into service. The caller schedules
/// its completion `service` after the current instant.
#[derive(Debug, Clone, Copy)]
pub struct Started {
    /// The request now in service.
    pub id: RequestId,
    /// The hardware queue slot it occupies.
    pub slot: u32,
    /// Its service time, spike factor applied.
    pub service: SimDuration,
}

/// One accepted-but-not-yet-serviced request.
#[derive(Debug, Clone, Copy)]
struct Waiting {
    id: RequestId,
    shape: DiskRequestShape,
    slot: u32,
    /// Fault-plane service-time multiplier, if one was injected.
    spike: Option<f64>,
    /// Acceptance order; the deterministic tie-break for SPTF.
    seq: u64,
}

/// One request in service.
#[derive(Debug, Clone, Copy)]
struct Active {
    id: RequestId,
    slot: u32,
    /// Which server it occupies: the actuator (always 0) for rotational
    /// models, the channel index for flash.
    server: u32,
}

/// A bounded multi-request device front-end over a [`DiskModel`].
pub struct QueuedDevice {
    model: Box<dyn DiskModel>,
    cfg: QueuedDeviceConfig,
    waiting: Vec<Waiting>,
    active: Vec<Active>,
    /// Free hardware-queue slots, kept sorted descending so `pop`
    /// yields the smallest index (deterministic tag assignment).
    free_slots: Vec<u32>,
    seq: u64,
    stats: DeviceStats,
    /// Chaos-plane service-time jitter; `None` keeps the device
    /// byte-identical to a build without the chaos plane.
    chaos: Option<CompletionJitter>,
}

impl QueuedDevice {
    /// Wrap `model` in a queued front-end.
    pub fn new(model: Box<dyn DiskModel>, cfg: QueuedDeviceConfig) -> Self {
        let depth = cfg.depth.max(1);
        let cfg = QueuedDeviceConfig { depth, ..cfg };
        let free_slots: Vec<u32> = (0..depth).rev().collect();
        QueuedDevice {
            model,
            cfg,
            waiting: Vec::new(),
            active: Vec::new(),
            free_slots,
            seq: 0,
            stats: DeviceStats::default(),
            chaos: None,
        }
    }

    /// Install the chaos plane's completion-jitter stream: every service
    /// time from here on is stretched by a seeded factor `>= 1`, the
    /// same legal mechanism as a fault-plane spike, so completions
    /// reorder within the in-flight window but never move earlier.
    pub fn install_chaos(&mut self, jitter: CompletionJitter) {
        self.chaos = Some(jitter);
    }

    /// The wrapped cost model (peek-only; scheduler cost estimates).
    pub fn model(&self) -> &dyn DiskModel {
        self.model.as_ref()
    }

    /// Configured hardware queue depth.
    pub fn depth(&self) -> u32 {
        self.cfg.depth
    }

    /// Requests inside the device (waiting in its queue or in service).
    pub fn in_flight(&self) -> usize {
        self.waiting.len() + self.active.len()
    }

    /// Whether another request fits in the hardware queue.
    pub fn can_accept(&self) -> bool {
        self.in_flight() < self.cfg.depth as usize
    }

    /// Cumulative service counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Accept a request into the hardware queue. Returns the slot it
    /// occupies and any requests that thereby entered service (possibly
    /// including this one).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full — callers gate on [`Self::can_accept`].
    pub fn accept(
        &mut self,
        id: RequestId,
        shape: DiskRequestShape,
        spike: Option<f64>,
    ) -> (u32, Vec<Started>) {
        let slot = self
            .free_slots
            .pop()
            .expect("queued device accept over depth");
        let seq = self.seq;
        self.seq += 1;
        self.waiting.push(Waiting {
            id,
            shape,
            slot,
            spike,
            seq,
        });
        (slot, self.kick())
    }

    /// Complete the in-service request `id`, freeing its slot. Returns
    /// the slot and any requests that entered service as a result.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in service (double completion).
    pub fn complete(&mut self, id: RequestId) -> (u32, Vec<Started>) {
        let idx = self
            .active
            .iter()
            .position(|a| a.id == id)
            .expect("completion of a request not in service");
        let done = self.active.swap_remove(idx);
        self.free_slots.push(done.slot);
        // Keep the free list sorted descending so the smallest tag is
        // always reused first, independent of completion order.
        self.free_slots.sort_unstable_by(|a, b| b.cmp(a));
        (done.slot, self.kick())
    }

    /// Move waiting requests into service wherever a server is free.
    fn kick(&mut self) -> Vec<Started> {
        let mut started = Vec::new();
        if self.model.is_rotational() {
            // One actuator; SPTF over the queued set.
            while self.active.is_empty() && !self.waiting.is_empty() {
                let best = self
                    .waiting
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        self.model
                            .peek_service_time(&a.shape)
                            .cmp(&self.model.peek_service_time(&b.shape))
                            .then(a.seq.cmp(&b.seq))
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let w = self.waiting.remove(best);
                started.push(self.start(w, 0));
            }
        } else {
            // Flash: start everything whose channel is idle, in
            // acceptance order.
            loop {
                let next = self.waiting.iter().position(|w| {
                    let ch = self.channel_of(&w.shape);
                    !self.active.iter().any(|a| a.server == ch)
                });
                let Some(i) = next else { break };
                let w = self.waiting.remove(i);
                let ch = self.channel_of(&w.shape);
                started.push(self.start(w, ch));
            }
        }
        started
    }

    fn channel_of(&self, shape: &DiskRequestShape) -> u32 {
        let stripe = self.cfg.stripe_blocks.max(1);
        ((shape.start.raw() / stripe) % self.cfg.channels.max(1) as u64) as u32
    }

    fn start(&mut self, w: Waiting, server: u32) -> Started {
        let mut service = self.model.service_time(&w.shape);
        if let Some(factor) = w.spike {
            service = service.mul_f64(factor.max(1.0));
        }
        if let Some(chaos) = self.chaos.as_mut() {
            service = service.mul_f64(chaos.stretch().max(1.0));
        }
        self.stats.record(&w.shape, service);
        self.active.push(Active {
            id: w.id,
            slot: w.slot,
            server,
        });
        Started {
            id: w.id,
            slot: w.slot,
            service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HddModel, IoDir, SsdModel};
    use sim_core::BlockNo;

    fn rd(start: u64) -> DiskRequestShape {
        DiskRequestShape::new(IoDir::Read, BlockNo(start), 8)
    }

    #[test]
    fn depth_one_matches_the_serial_model_call_for_call() {
        let mut serial = HddModel::new();
        let mut dev =
            QueuedDevice::new(Box::new(HddModel::new()), QueuedDeviceConfig::with_depth(1));
        for (i, start) in [0u64, 1_000_000, 42, 999_999].iter().enumerate() {
            let shape = rd(*start);
            let want = serial.service_time(&shape);
            let (slot, started) = dev.accept(RequestId(i as u64), shape, None);
            assert_eq!(slot, 0, "depth 1 always uses slot 0");
            assert_eq!(started.len(), 1, "free device starts immediately");
            assert_eq!(started[0].service, want, "identical service times");
            assert!(!dev.can_accept(), "single slot now occupied");
            let (freed, next) = dev.complete(RequestId(i as u64));
            assert_eq!(freed, 0);
            assert!(next.is_empty());
        }
    }

    #[test]
    fn hdd_reorders_shortest_positioning_first() {
        let mut dev =
            QueuedDevice::new(Box::new(HddModel::new()), QueuedDeviceConfig::with_depth(8));
        // First request seizes the actuator (head starts at block 0).
        let (_, s) = dev.accept(RequestId(1), rd(0), None);
        assert_eq!(s[0].id, RequestId(1));
        // Queue a far request, then a near one. On completion the near
        // one must win the SPTF race despite arriving later.
        let far = DiskRequestShape::new(IoDir::Read, BlockNo(80_000_000), 8);
        let near = DiskRequestShape::new(IoDir::Read, BlockNo(16), 8);
        let (_, s) = dev.accept(RequestId(2), far, None);
        assert!(s.is_empty(), "actuator busy");
        let (_, s) = dev.accept(RequestId(3), near, None);
        assert!(s.is_empty());
        assert_eq!(dev.in_flight(), 3);
        let (_, s) = dev.complete(RequestId(1));
        assert_eq!(s.len(), 1, "one actuator: exactly one successor");
        assert_eq!(s[0].id, RequestId(3), "near request jumps the far one");
        let (_, s) = dev.complete(RequestId(3));
        assert_eq!(s[0].id, RequestId(2));
    }

    #[test]
    fn ssd_overlaps_distinct_channels_and_serializes_shared_ones() {
        let cfg = QueuedDeviceConfig {
            depth: 8,
            channels: 4,
            stripe_blocks: 64,
        };
        let mut dev = QueuedDevice::new(Box::new(SsdModel::new()), cfg);
        // Stripes 0 and 1 → channels 0 and 1: both start at once.
        let (_, s) = dev.accept(RequestId(1), rd(0), None);
        assert_eq!(s.len(), 1);
        let (_, s) = dev.accept(RequestId(2), rd(64), None);
        assert_eq!(s.len(), 1, "distinct channel overlaps");
        // Another stripe-0 request shares channel 0: it must wait.
        let (_, s) = dev.accept(RequestId(3), rd(8), None);
        assert!(s.is_empty(), "same channel serializes");
        let (_, s) = dev.complete(RequestId(1));
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].id, RequestId(3), "channel 0 freed for its queue");
    }

    #[test]
    fn slots_are_reused_smallest_first() {
        let mut dev =
            QueuedDevice::new(Box::new(HddModel::new()), QueuedDeviceConfig::with_depth(4));
        let (s0, _) = dev.accept(RequestId(1), rd(0), None);
        let (s1, _) = dev.accept(RequestId(2), rd(8), None);
        let (s2, _) = dev.accept(RequestId(3), rd(16), None);
        assert_eq!((s0, s1, s2), (0, 1, 2));
        dev.complete(RequestId(1));
        let (s3, _) = dev.accept(RequestId(4), rd(24), None);
        assert_eq!(s3, 0, "freed tag 0 reused before tag 3");
    }

    #[test]
    fn installed_chaos_stretches_but_never_shrinks_service() {
        use sim_core::{ChaosConfig, ChaosPlane};
        let mut plain =
            QueuedDevice::new(Box::new(SsdModel::new()), QueuedDeviceConfig::with_depth(1));
        let mut shaken =
            QueuedDevice::new(Box::new(SsdModel::new()), QueuedDeviceConfig::with_depth(1));
        let jitter = ChaosPlane::new(&ChaosConfig::with_seed(11))
            .take_completion_jitter()
            .unwrap();
        shaken.install_chaos(jitter);
        let mut stretched_any = false;
        for i in 0..64u64 {
            let (_, a) = plain.accept(RequestId(i), rd(i * 8), None);
            let (_, b) = shaken.accept(RequestId(i), rd(i * 8), None);
            assert!(b[0].service >= a[0].service, "chaos only adds time");
            assert!(
                b[0].service <= a[0].service.mul_f64(1.5 + 1e-9),
                "stretch stays within the configured bound"
            );
            stretched_any |= b[0].service > a[0].service;
            plain.complete(RequestId(i));
            shaken.complete(RequestId(i));
        }
        assert!(stretched_any, "the jitter stream must actually perturb");
    }

    #[test]
    fn spike_factor_stretches_service_time() {
        let mut plain =
            QueuedDevice::new(Box::new(SsdModel::new()), QueuedDeviceConfig::with_depth(1));
        let mut spiked =
            QueuedDevice::new(Box::new(SsdModel::new()), QueuedDeviceConfig::with_depth(1));
        let (_, a) = plain.accept(RequestId(1), rd(0), None);
        let (_, b) = spiked.accept(RequestId(1), rd(0), Some(3.0));
        assert_eq!(b[0].service, a[0].service.mul_f64(3.0));
    }
}
