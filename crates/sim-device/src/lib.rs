#![warn(missing_docs)]
//! Storage-device models.
//!
//! The paper evaluates on a 500 GB Western Digital hard drive and an 80 GB
//! Intel X25-M SSD. This crate provides cost models for both: given a
//! request's direction, start block and length, a [`DiskModel`] returns the
//! simulated service time and updates its internal mechanical state (head
//! position for the HDD).
//!
//! The models are intentionally simple — what the experiments need is the
//! *relative* cost structure (random ≪ sequential on disk, much flatter on
//! flash), not nanosecond fidelity.

pub mod hdd;
pub mod queued;
pub mod ssd;

use sim_core::{BlockNo, SimDuration};

pub use hdd::HddModel;
pub use queued::{QueuedDevice, QueuedDeviceConfig, Started};
pub use ssd::SsdModel;

/// Direction of a device-level transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoDir {
    /// Read from media.
    Read,
    /// Write to media.
    Write,
}

/// The geometry-independent description of one device request.
#[derive(Debug, Clone, Copy)]
pub struct DiskRequestShape {
    /// Transfer direction.
    pub dir: IoDir,
    /// First block of the transfer.
    pub start: BlockNo,
    /// Length in 4 KB blocks (always at least 1).
    pub nblocks: u64,
}

impl DiskRequestShape {
    /// Convenience constructor; clamps zero-length requests to one block.
    pub fn new(dir: IoDir, start: BlockNo, nblocks: u64) -> Self {
        DiskRequestShape {
            dir,
            start,
            nblocks: nblocks.max(1),
        }
    }

    /// Transfer size in bytes. Saturates instead of wrapping: a deep
    /// hardware queue full of absurdly sized requests must degrade to a
    /// pinned counter, not a panic (or a silent wrap in release).
    pub fn bytes(&self) -> u64 {
        self.nblocks.saturating_mul(sim_core::PAGE_SIZE)
    }

    /// One past the last block touched; saturates at the top of the
    /// address space rather than wrapping back to low blocks.
    pub fn end(&self) -> BlockNo {
        BlockNo(self.start.raw().saturating_add(self.nblocks))
    }
}

/// A device service-time model.
///
/// `service_time` commits the request: it both returns the cost and moves
/// the model's mechanical state (e.g. the disk head). `peek_service_time`
/// answers "what would this cost right now?" without committing — block
/// schedulers use it to pick cheap requests and token schedulers use it to
/// charge normalized costs.
pub trait DiskModel {
    /// Cost of servicing `shape` from the current state, committing the
    /// state change.
    fn service_time(&mut self, shape: &DiskRequestShape) -> SimDuration;

    /// Cost of servicing `shape` from the current state, without changing
    /// state.
    fn peek_service_time(&self, shape: &DiskRequestShape) -> SimDuration;

    /// Sustained sequential bandwidth in bytes/second; the unit cost that
    /// token normalization divides by.
    fn seq_bandwidth(&self) -> f64;

    /// Total capacity in blocks.
    fn capacity_blocks(&self) -> u64;

    /// Short human-readable name ("hdd" / "ssd").
    fn name(&self) -> &'static str;

    /// Whether seek distance matters (true for HDD). Schedulers use this to
    /// decide if sorting by location is worthwhile.
    fn is_rotational(&self) -> bool;
}

/// Running counters a device keeps about its own activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceStats {
    /// Requests serviced.
    pub requests: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Total busy time.
    pub busy: SimDuration,
}

impl DeviceStats {
    /// Record one serviced request. Counters saturate so a long run
    /// with huge requests cannot wrap them.
    pub fn record(&mut self, shape: &DiskRequestShape, took: SimDuration) {
        self.requests = self.requests.saturating_add(1);
        self.bytes = self.bytes.saturating_add(shape.bytes());
        self.busy += took;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_basics() {
        let s = DiskRequestShape::new(IoDir::Read, BlockNo(10), 4);
        assert_eq!(s.bytes(), 16384);
        assert_eq!(s.end(), BlockNo(14));
        let z = DiskRequestShape::new(IoDir::Write, BlockNo(0), 0);
        assert_eq!(z.nblocks, 1);
    }

    #[test]
    fn byte_and_end_arithmetic_saturates_at_the_boundaries() {
        // nblocks * PAGE_SIZE would wrap for anything above u64::MAX/4096.
        let huge = DiskRequestShape::new(IoDir::Write, BlockNo(0), u64::MAX / 2);
        assert_eq!(
            huge.bytes(),
            u64::MAX,
            "byte count pins instead of wrapping"
        );
        // A request ending past the top of the block address space.
        let high = DiskRequestShape::new(IoDir::Read, BlockNo(u64::MAX - 4), 64);
        assert_eq!(high.end(), BlockNo(u64::MAX), "end offset pins at the top");
        assert_eq!(high.bytes(), 64 * sim_core::PAGE_SIZE, "normal sizes exact");
    }

    #[test]
    fn stats_saturate_instead_of_wrapping() {
        let mut st = DeviceStats::default();
        let huge = DiskRequestShape::new(IoDir::Write, BlockNo(0), u64::MAX / 2);
        st.record(&huge, SimDuration::from_millis(1));
        st.record(&huge, SimDuration::from_millis(1));
        assert_eq!(st.bytes, u64::MAX);
        assert_eq!(st.requests, 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut st = DeviceStats::default();
        let s = DiskRequestShape::new(IoDir::Read, BlockNo(0), 2);
        st.record(&s, SimDuration::from_millis(5));
        st.record(&s, SimDuration::from_millis(5));
        assert_eq!(st.requests, 2);
        assert_eq!(st.bytes, 16384);
        assert_eq!(st.busy, SimDuration::from_millis(10));
    }
}
