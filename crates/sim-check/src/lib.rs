//! Correctness tooling: generative workload fuzzing plus a cross-layer
//! invariant auditor plane.
//!
//! The paper's claims rest on cross-layer bookkeeping being exact — cause
//! tags conserved from syscall to block dispatch, journal entanglement
//! ordering, token-ledger balance. The hand-written figure scenarios only
//! exercise the paths the figures need; this crate generates syscall
//! programs we did not imagine ([`generate`]), audits every run against
//! the invariants ([`AuditPlane`]), and shrinks any failure to a small
//! replayable reproducer ([`shrink`]).
//!
//! The plane mirrors sim-fault's design: it is `Option`-installed via the
//! kernel config, and the audit-free path stays byte-identical.

#![warn(missing_docs)]

pub mod audit;
pub mod auditors;
pub mod gen;
pub mod layer_audit;
pub mod program;
pub mod sabotage;
pub mod shrink;
pub mod timing;

pub use audit::{AuditCheckpoint, AuditEvent, AuditPlane, Auditor, Violation};
pub use gen::{generate, GenConfig};
pub use layer_audit::LayerAuditor;
pub use program::{FileRef, OpSpec, ProcSpec, ProgramSpec};
pub use sabotage::Sabotaged;
pub use shrink::shrink;
pub use timing::TimingSabotaged;
