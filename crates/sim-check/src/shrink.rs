//! Delta-debugging shrinker: minimize a failing program while the
//! caller-supplied predicate keeps failing.
//!
//! Classic ddmin adapted to the two-level structure of a
//! [`ProgramSpec`]: first drop whole processes, then binary-chunked op
//! ranges within each process (halving the chunk size down to single
//! ops), then the scalar knobs (shared file count and size). Every
//! candidate is [`ProgramSpec::sanitize`]d before testing, so removing a
//! `creat` automatically drops the ops that referenced the orphaned file
//! rather than producing an invalid program. Passes repeat to a fixpoint.

use crate::program::ProgramSpec;

/// Bound on predicate evaluations: each one replays a simulation, and a
/// pathological spec must not turn shrinking into the slow part.
const MAX_TESTS: usize = 2000;

struct Shrinker<F> {
    fails: F,
    tests: usize,
}

impl<F: FnMut(&ProgramSpec) -> bool> Shrinker<F> {
    /// Test a candidate; returns the sanitized candidate if it still fails.
    fn try_accept(&mut self, candidate: ProgramSpec) -> Option<ProgramSpec> {
        if self.tests >= MAX_TESTS {
            return None;
        }
        self.tests += 1;
        let candidate = candidate.sanitize();
        if (self.fails)(&candidate) {
            Some(candidate)
        } else {
            None
        }
    }

    fn drop_procs(&mut self, cur: &mut ProgramSpec) -> bool {
        let mut progressed = false;
        let mut i = 0;
        while i < cur.procs.len() && cur.procs.len() > 1 {
            let mut cand = cur.clone();
            cand.procs.remove(i);
            match self.try_accept(cand) {
                Some(c) => {
                    *cur = c;
                    progressed = true;
                    // Same index now names the next proc; don't advance.
                }
                None => i += 1,
            }
        }
        progressed
    }

    fn drop_op_chunks(&mut self, cur: &mut ProgramSpec) -> bool {
        let mut progressed = false;
        for pi in 0..cur.procs.len() {
            let mut chunk = (cur.procs[pi].ops.len() / 2).max(1);
            loop {
                let mut start = 0;
                while start < cur.procs[pi].ops.len() {
                    let end = (start + chunk).min(cur.procs[pi].ops.len());
                    let mut cand = cur.clone();
                    cand.procs[pi].ops.drain(start..end);
                    match self.try_accept(cand) {
                        Some(c) => {
                            *cur = c;
                            progressed = true;
                            // The window now holds the following ops.
                        }
                        None => start = end,
                    }
                }
                if chunk == 1 {
                    break;
                }
                chunk /= 2;
            }
        }
        progressed
    }

    fn shrink_knobs(&mut self, cur: &mut ProgramSpec) -> bool {
        let mut progressed = false;
        if cur.shared_files > 1 {
            let mut cand = cur.clone();
            cand.shared_files = 1;
            if let Some(c) = self.try_accept(cand) {
                *cur = c;
                progressed = true;
            }
        }
        if cur.shared_bytes > 4096 {
            let mut cand = cur.clone();
            cand.shared_bytes = 4096;
            if let Some(c) = self.try_accept(cand) {
                *cur = c;
                progressed = true;
            }
        }
        progressed
    }
}

/// Minimize `orig` — which must fail `fails` — returning the smallest
/// still-failing program found. `fails` returns true while the defect
/// reproduces.
pub fn shrink<F: FnMut(&ProgramSpec) -> bool>(orig: &ProgramSpec, fails: F) -> ProgramSpec {
    let mut s = Shrinker { fails, tests: 0 };
    let mut cur = orig.sanitize();
    loop {
        let mut progressed = s.drop_procs(&mut cur);
        progressed |= s.drop_op_chunks(&mut cur);
        progressed |= s.shrink_knobs(&mut cur);
        if !progressed || s.tests >= MAX_TESTS {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::program::{FileRef, OpSpec};
    use sim_core::SimRng;

    /// A fake defect: the program fails iff it fsyncs an owned file.
    fn fails(p: &ProgramSpec) -> bool {
        p.procs.iter().any(|pr| {
            pr.ops.iter().any(|o| {
                matches!(
                    o,
                    OpSpec::Fsync {
                        file: FileRef::Own(_)
                    }
                )
            })
        })
    }

    #[test]
    fn shrinks_to_the_minimal_trigger() {
        let cfg = GenConfig {
            max_procs: 3,
            max_ops: 24,
            ..GenConfig::default()
        };
        let mut found = 0;
        for i in 0..80 {
            let p = generate(&mut SimRng::stream(11, i), &cfg);
            if !fails(&p) {
                continue;
            }
            found += 1;
            let small = shrink(&p, fails);
            assert!(fails(&small), "shrunk program must still fail");
            // Minimal trigger: one proc, `creat` + `fsync o0`.
            assert_eq!(small.procs.len(), 1, "{small}");
            assert_eq!(small.syscall_count(), 2, "{small}");
        }
        assert!(found >= 3, "seed choice should produce failing programs");
    }

    #[test]
    fn shrinking_never_invalidates_the_program() {
        let p = generate(&mut SimRng::stream(13, 0), &GenConfig::default());
        let small = shrink(&p, |q| q.syscall_count() >= 2);
        assert_eq!(small.sanitize(), small);
        assert!(small.syscall_count() >= 2);
    }
}
