//! Per-layer invariants for the hierarchical layer plane
//! (`split-layered`): an [`Auditor`] that replays layer classification
//! from the audit stream and holds the arbiter to its own books.
//!
//! Three invariants:
//!
//! 1. **Exactly-one-layer** — every live syscall maps to exactly one
//!    layer, the mapping is stable for the process's lifetime, and no
//!    process has two syscalls live at once.
//! 2. **Cap bound** — a bandwidth-capped layer's cumulative admitted
//!    write bytes never exceed its token-bucket envelope
//!    `rate · t + burst`: the bucket starts full at one second of burst
//!    and refills at `rate`, so any prefix of admissions is bounded by
//!    the envelope at the time the *last* of them completed. This is a
//!    window bound for every window at once, checked at each syscall
//!    exit. The planted cap-leak mutation (`cap_leak_every`) admits
//!    without charging and must trip this check.
//! 3. **Per-layer conservation** — each layer's dispatched requests all
//!    come back (completed or failed): dispatch and finish counts are
//!    routed identically, never go negative, and agree at quiesce.
//!
//! The auditor replays classification independently of the arbiter, so
//! it only accepts trees whose rules are pid-decidable
//! ([`LayerRule::pid_decidable`]) — admission metadata (names, I/O
//! classes) is not in the audit stream. The default tree and the check
//! harness's trees qualify.

use std::collections::HashMap;

use sim_block::{ReqKind, Request};
use sim_core::{Pid, SimTime};
use split_core::SyscallKind;
use split_layered::{classify, LayerPolicy, LayerSpec};

use crate::audit::{AuditCheckpoint, AuditEvent, Auditor};

/// Float/ordering slack on the cap envelope: charges happen at
/// admission, strictly before the syscall exit where the auditor
/// observes them, so one page absorbs rounding without masking a leak.
const CAP_SLACK_BYTES: f64 = 4096.0;

struct LayerBooks {
    name: String,
    /// `Some(rate)` for bandwidth-capped layers; burst equals rate
    /// (one second), mirroring the arbiter's bucket.
    cap_rate: Option<f64>,
    /// Cumulative write-syscall bytes observed at syscall exit.
    admitted: f64,
    dispatched: u64,
    finished: u64,
}

/// The per-layer invariant checker. Install with
/// [`crate::AuditPlane::push`] when the kernel under audit runs the
/// layered arbiter.
pub struct LayerAuditor {
    specs: Vec<LayerSpec>,
    layers: Vec<LayerBooks>,
    /// Which layers dispatch with latency priority (routing mirror).
    latency_prio: Vec<bool>,
    /// Layer assignment replayed at first syscall; checked stable.
    assign: HashMap<Pid, usize>,
    /// Live syscall per process: (layer, write payload bytes).
    pending: HashMap<Pid, (usize, u64)>,
}

impl LayerAuditor {
    /// Build the auditor for a layer tree. Panics if any rule is not
    /// pid-decidable — such trees cannot be replayed from the audit
    /// stream and must not be paired with this auditor.
    pub fn new(specs: Vec<LayerSpec>) -> Self {
        assert!(
            specs.iter().all(|s| s.rule.pid_decidable()),
            "LayerAuditor requires pid-decidable layer rules"
        );
        let layers = specs
            .iter()
            .map(|s| LayerBooks {
                name: s.name.clone(),
                cap_rate: match s.policy {
                    LayerPolicy::BandwidthCap { bytes_per_sec } => Some(bytes_per_sec as f64),
                    _ => None,
                },
                admitted: 0.0,
                dispatched: 0,
                finished: 0,
            })
            .collect();
        let latency_prio = specs
            .iter()
            .map(|s| s.policy == LayerPolicy::LatencyPrio)
            .collect();
        LayerAuditor {
            specs,
            layers,
            latency_prio,
            assign: HashMap::new(),
            pending: HashMap::new(),
        }
    }

    fn layer_of_pid(&mut self, pid: Pid, out: &mut Vec<String>) -> usize {
        let i = classify(&self.specs, pid, None, None);
        match self.assign.insert(pid, i) {
            Some(prev) if prev != i => out.push(format!(
                "pid {} reclassified from layer '{}' to layer '{}'",
                pid.0, self.layers[prev].name, self.layers[i].name
            )),
            _ => {}
        }
        i
    }

    /// Mirror of the arbiter's request routing: latency inheritance by
    /// cause tag first, then shared journal/metadata traffic to the
    /// default (last) layer, data by its first known cause, then by
    /// submitter. Conservation only needs dispatch and finish routed
    /// identically, which this replay guarantees by construction.
    fn layer_of_req(&self, req: &Request) -> usize {
        for &pid in req.causes.as_slice() {
            if let Some(&i) = self.assign.get(&pid) {
                if self.latency_prio[i] {
                    return i;
                }
            }
        }
        if req.kind != ReqKind::Data {
            return self.layers.len() - 1;
        }
        for &pid in req.causes.as_slice() {
            if let Some(&i) = self.assign.get(&pid) {
                return i;
            }
        }
        if let Some(&i) = self.assign.get(&req.submitter) {
            return i;
        }
        self.layers.len() - 1
    }
}

impl Auditor for LayerAuditor {
    fn name(&self) -> &'static str {
        "layer"
    }

    fn on_event(&mut self, now: SimTime, ev: &AuditEvent<'_>, out: &mut Vec<String>) {
        match ev {
            AuditEvent::SyscallEnter { pid, kind } => {
                let i = self.layer_of_pid(*pid, out);
                let bytes = match kind {
                    SyscallKind::Write { len, .. } => *len,
                    _ => 0,
                };
                if self.pending.insert(*pid, (i, bytes)).is_some() {
                    out.push(format!(
                        "pid {} entered a syscall with one already live",
                        pid.0
                    ));
                }
            }
            AuditEvent::SyscallExit { pid } => {
                let Some((i, bytes)) = self.pending.remove(pid) else {
                    out.push(format!("pid {} exited a syscall that never entered", pid.0));
                    return;
                };
                if bytes == 0 {
                    return;
                }
                let books = &mut self.layers[i];
                let Some(rate) = books.cap_rate else { return };
                books.admitted += bytes as f64;
                // Envelope: full bucket (burst = 1 s of rate) plus refill
                // since t=0. Everything observed here was charged at or
                // before `now`, so a leak-free arbiter cannot exceed it.
                let bound = rate * (now.as_nanos() as f64 / 1e9) + rate + CAP_SLACK_BYTES;
                if books.admitted > bound {
                    out.push(format!(
                        "layer '{}' admitted {} write bytes by {:.6}s, over its cap \
                         envelope of {} (rate {}/s + burst)",
                        books.name,
                        books.admitted as u64,
                        now.as_secs_f64(),
                        bound as u64,
                        rate as u64,
                    ));
                }
            }
            AuditEvent::BlockDispatched { req } => {
                let i = self.layer_of_req(req);
                self.layers[i].dispatched += 1;
            }
            AuditEvent::BlockFinished { req, .. } => {
                let i = self.layer_of_req(req);
                let books = &mut self.layers[i];
                books.finished += 1;
                if books.finished > books.dispatched {
                    out.push(format!(
                        "layer '{}' finished {} request(s) but dispatched only {}",
                        books.name, books.finished, books.dispatched
                    ));
                }
            }
            _ => {}
        }
    }

    fn on_checkpoint(&mut self, cp: &AuditCheckpoint<'_>, out: &mut Vec<String>) {
        if !cp.quiesced {
            return;
        }
        for (pid, (i, _)) in &self.pending {
            out.push(format!(
                "pid {} still live in layer '{}' at quiesce",
                pid.0, self.layers[*i].name
            ));
        }
        for books in &self.layers {
            if books.dispatched != books.finished {
                out.push(format!(
                    "layer '{}' dispatched {} request(s) but finished {} at quiesce",
                    books.name, books.dispatched, books.finished
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use split_layered::parse_layers;

    fn tree() -> Vec<LayerSpec> {
        parse_layers("cap:pidmod=2,1:cap=65536:noop;rest:default:share:noop").unwrap()
    }

    #[test]
    fn rejects_undecidable_rules() {
        let specs = parse_layers("named:prefix=db:share:noop;rest:default:share:noop").unwrap();
        assert!(std::panic::catch_unwind(|| LayerAuditor::new(specs)).is_err());
    }

    #[test]
    fn cap_envelope_trips_on_uncharged_admissions() {
        let mut a = LayerAuditor::new(tree());
        let mut out = Vec::new();
        // pid 1 lands in the capped layer (1 % 2 == 1). Admit far more
        // than burst + rate·t with t near zero: the envelope must trip.
        for k in 0..3u64 {
            let kind = SyscallKind::Write {
                file: sim_core::FileId(1),
                offset: k * 65536,
                len: 65536,
            };
            a.on_event(
                SimTime::from_nanos(k),
                &AuditEvent::SyscallEnter {
                    pid: Pid(1),
                    kind: &kind,
                },
                &mut out,
            );
            a.on_event(
                SimTime::from_nanos(k + 1),
                &AuditEvent::SyscallExit { pid: Pid(1) },
                &mut out,
            );
        }
        assert!(
            out.iter().any(|m| m.contains("over its cap envelope")),
            "expected a cap violation, got {out:?}"
        );
    }

    #[test]
    fn paced_admissions_stay_inside_the_envelope() {
        let mut a = LayerAuditor::new(tree());
        let mut out = Vec::new();
        // 64 KiB/s cap: one 32 KiB write per second stays well inside.
        for k in 0..10u64 {
            let kind = SyscallKind::Write {
                file: sim_core::FileId(1),
                offset: k * 32768,
                len: 32768,
            };
            let t = SimTime::from_nanos(k * 1_000_000_000);
            a.on_event(
                t,
                &AuditEvent::SyscallEnter {
                    pid: Pid(1),
                    kind: &kind,
                },
                &mut out,
            );
            a.on_event(t, &AuditEvent::SyscallExit { pid: Pid(1) }, &mut out);
        }
        assert_eq!(out, Vec::<String>::new());
    }

    #[test]
    fn quiesce_flags_dangling_syscalls_and_unbalanced_layers() {
        let mut a = LayerAuditor::new(tree());
        let mut out = Vec::new();
        let kind = SyscallKind::Fsync {
            file: sim_core::FileId(1),
        };
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::SyscallEnter {
                pid: Pid(2),
                kind: &kind,
            },
            &mut out,
        );
        assert!(out.is_empty());
        let cp = AuditCheckpoint {
            now: SimTime::from_nanos(5),
            cache_dirty_total: 0,
            cache_dirty_sum: 0,
            sched_errors: &[],
            late_events: 0,
            quiesced: true,
        };
        a.on_checkpoint(&cp, &mut out);
        assert!(
            out.iter().any(|m| m.contains("still live")),
            "dangling syscall not flagged: {out:?}"
        );
    }
}
