//! The auditor plane: a set of invariant checkers observing the kernel.
//!
//! The kernel feeds the plane two kinds of input. [`AuditEvent`]s are
//! emitted inline at the interesting transitions (syscall entry/exit,
//! block-request submission/dispatch/completion, journal commits), with
//! borrowed payloads so the audit-free path pays nothing. An
//! [`AuditCheckpoint`] is a periodic whole-kernel snapshot of the redundant
//! counters (dirty-page totals, scheduler self-audits, event-queue
//! statistics) taken at syscall completion and request completion — the
//! points where every layer's books should agree.

use sim_block::Request;
use sim_core::{Pid, SimTime, TxnId};
use sim_fault::WriteStep;
use split_core::SyscallKind;

use crate::auditors;

/// One invariant violation: which auditor, when, and what went wrong.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Simulated time of the observation.
    pub at: SimTime,
    /// Name of the auditor that flagged it.
    pub auditor: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.6}s] {}: {}",
            self.at.as_secs_f64(),
            self.auditor,
            self.message
        )
    }
}

/// A cross-layer transition observed by the kernel, with payloads borrowed
/// from the kernel's own state.
#[derive(Debug)]
pub enum AuditEvent<'a> {
    /// A process entered a system call.
    SyscallEnter {
        /// The calling process.
        pid: Pid,
        /// What it asked for.
        kind: &'a SyscallKind,
    },
    /// A system call completed (the process was unblocked).
    SyscallExit {
        /// The calling process.
        pid: Pid,
    },
    /// A request entered the block layer, with its write-ahead protocol
    /// role (`step`) as declared by the file system.
    BlockSubmitted {
        /// The submitted request.
        req: &'a Request,
        /// Protocol role of the write ([`WriteStep::Untracked`] for reads).
        step: &'a WriteStep,
    },
    /// The scheduler handed a request to the device.
    BlockDispatched {
        /// The dispatched request.
        req: &'a Request,
    },
    /// A request left the device.
    BlockFinished {
        /// The finished request.
        req: &'a Request,
        /// Whether it failed (fault injection) rather than completed.
        failed: bool,
    },
    /// The device accepted a request into a hardware-queue slot. The
    /// legacy serial device reports its single slot as slot 0 with
    /// depth 1, so the in-flight ledger is audited on every plane.
    SlotAcquired {
        /// The accepted request.
        req: &'a Request,
        /// The hardware tag it occupies.
        slot: u32,
        /// Requests inside the device after this acceptance.
        in_flight: u32,
        /// Configured hardware queue depth.
        depth: u32,
    },
    /// A request left its hardware-queue slot (completed or failed).
    SlotReleased {
        /// The departing request.
        req: &'a Request,
        /// The tag it held.
        slot: u32,
        /// Requests inside the device after this release.
        in_flight: u32,
    },
    /// The file system declared a journal transaction durable.
    TxnCommitted {
        /// The committed transaction.
        txn: TxnId,
    },
    /// The journal aborted on a log/commit write failure.
    JournalAborted {
        /// The transaction that was being committed.
        txn: TxnId,
    },
}

/// A periodic snapshot of the kernel's redundant bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct AuditCheckpoint<'a> {
    /// Simulated time of the snapshot.
    pub now: SimTime,
    /// The page cache's incrementally maintained dirty-page counter.
    pub cache_dirty_total: u64,
    /// The same quantity recomputed from the per-file extent maps.
    pub cache_dirty_sum: u64,
    /// Messages from the scheduler's own ledger audit
    /// ([`split_core::IoSched::audit`]).
    pub sched_errors: &'a [String],
    /// Events ever scheduled in the past (clamped) on the kernel's queue.
    pub late_events: u64,
    /// True when the kernel is known idle: no request queued or in flight,
    /// no process mid-syscall. Enables stricter emptiness checks.
    pub quiesced: bool,
}

/// An invariant checker. Auditors are stateful — they accumulate whatever
/// model of the run they need — and report violations as strings; the
/// plane stamps them with time and auditor name.
pub trait Auditor {
    /// Short name used in violation reports.
    fn name(&self) -> &'static str;

    /// Observe a cross-layer transition.
    fn on_event(&mut self, now: SimTime, ev: &AuditEvent<'_>, out: &mut Vec<String>) {
        let _ = (now, ev, out);
    }

    /// Observe a bookkeeping snapshot.
    fn on_checkpoint(&mut self, cp: &AuditCheckpoint<'_>, out: &mut Vec<String>) {
        let _ = (cp, out);
    }
}

/// Cap on recorded violations: a systematically broken invariant fires on
/// every request, and the report is no better for the repetition.
const MAX_VIOLATIONS: usize = 256;

/// The installed set of auditors plus the violations they have found.
pub struct AuditPlane {
    auditors: Vec<Box<dyn Auditor>>,
    violations: Vec<Violation>,
    /// Total violations observed, including those dropped past the cap.
    total: u64,
    scratch: Vec<String>,
}

impl std::fmt::Debug for AuditPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditPlane")
            .field("auditors", &self.auditors.len())
            .field("violations", &self.violations.len())
            .field("total", &self.total)
            .finish()
    }
}

impl AuditPlane {
    /// A plane running the given auditors.
    pub fn new(auditors: Vec<Box<dyn Auditor>>) -> Self {
        AuditPlane {
            auditors,
            violations: Vec::new(),
            total: 0,
            scratch: Vec::new(),
        }
    }

    /// The standard battery: cause-tag conservation, dirty-page
    /// accounting, journal ordering, scheduler ledgers, event-queue
    /// sanity.
    pub fn standard() -> Self {
        Self::new(vec![
            Box::new(auditors::CauseTagAuditor::new()),
            Box::new(auditors::DirtyAccountingAuditor::new()),
            Box::new(auditors::JournalOrderAuditor::new()),
            Box::new(auditors::SchedLedgerAuditor::new()),
            Box::new(auditors::EventQueueAuditor::new()),
            Box::new(auditors::InflightAuditor::new()),
        ])
    }

    /// Install one more auditor on top of the current set — how the
    /// check harness adds scheduler-specific batteries (e.g. the
    /// [`crate::LayerAuditor`]) to [`AuditPlane::standard`].
    pub fn push(&mut self, auditor: Box<dyn Auditor>) {
        self.auditors.push(auditor);
    }

    /// Feed one transition to every auditor.
    pub fn observe(&mut self, now: SimTime, ev: &AuditEvent<'_>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        for a in &mut self.auditors {
            scratch.clear();
            a.on_event(now, ev, &mut scratch);
            let name = a.name();
            for message in scratch.drain(..) {
                Self::record(&mut self.violations, &mut self.total, now, name, message);
            }
        }
        self.scratch = scratch;
    }

    /// Feed one snapshot to every auditor.
    pub fn checkpoint(&mut self, cp: &AuditCheckpoint<'_>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        for a in &mut self.auditors {
            scratch.clear();
            a.on_checkpoint(cp, &mut scratch);
            let name = a.name();
            for message in scratch.drain(..) {
                Self::record(&mut self.violations, &mut self.total, cp.now, name, message);
            }
        }
        self.scratch = scratch;
    }

    fn record(
        violations: &mut Vec<Violation>,
        total: &mut u64,
        at: SimTime,
        auditor: &'static str,
        message: String,
    ) {
        *total += 1;
        if violations.len() < MAX_VIOLATIONS {
            violations.push(Violation {
                at,
                auditor,
                message,
            });
        }
    }

    /// Violations recorded so far (capped; see [`AuditPlane::total`]).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations observed, including any dropped past the
    /// recording cap.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Grumpy;
    impl Auditor for Grumpy {
        fn name(&self) -> &'static str {
            "grumpy"
        }
        fn on_checkpoint(&mut self, _cp: &AuditCheckpoint<'_>, out: &mut Vec<String>) {
            out.push("no".into());
        }
    }

    #[test]
    fn violations_are_stamped_and_capped() {
        let mut plane = AuditPlane::new(vec![Box::new(Grumpy)]);
        let cp = AuditCheckpoint {
            now: SimTime::from_nanos(42),
            cache_dirty_total: 0,
            cache_dirty_sum: 0,
            sched_errors: &[],
            late_events: 0,
            quiesced: false,
        };
        for _ in 0..(MAX_VIOLATIONS + 10) {
            plane.checkpoint(&cp);
        }
        assert_eq!(plane.violations().len(), MAX_VIOLATIONS);
        assert_eq!(plane.total(), (MAX_VIOLATIONS + 10) as u64);
        assert_eq!(plane.violations()[0].auditor, "grumpy");
        assert_eq!(plane.violations()[0].at, SimTime::from_nanos(42));
    }
}
