//! Seeded workload generation: arbitrary-but-valid syscall programs.
//!
//! Programs are valid by construction — owned-file references are only
//! drawn from files already created and not yet unlinked — and then run
//! through [`ProgramSpec::sanitize`] as a belt-and-braces invariant.
//! Everything is drawn from one [`SimRng`], so a `(root_seed, index)` pair
//! names a program forever.

use sim_core::SimRng;

use crate::program::{FileRef, OpSpec, ProcSpec, ProgramSpec, MAX_DELAY_MICROS};

/// Generator tunables.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Upper bound on concurrent processes.
    pub max_procs: usize,
    /// Upper bound on ops per process.
    pub max_ops: usize,
    /// Upper bound on pre-created shared files (at least one is created).
    pub max_shared: usize,
    /// Size of each shared file in bytes.
    pub shared_bytes: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_procs: 3,
            max_ops: 16,
            max_shared: 3,
            shared_bytes: 1 << 20,
        }
    }
}

/// Transfer sizes the generator draws from: byte-granular to multi-page,
/// the shapes that have historically found accounting bugs (partial
/// pages, exactly-one-page, large multi-extent).
const LEN_MENU: [u64; 6] = [1, 100, 4096, 16384, 65536, 262144];

fn pick_len(rng: &mut SimRng) -> u64 {
    let base = LEN_MENU[rng.gen_range(LEN_MENU.len() as u64) as usize];
    // Jitter off the round number half the time to hit page-straddles.
    if rng.gen_bool(0.5) {
        base + rng.gen_range(4096)
    } else {
        base
    }
}

fn pick_offset(rng: &mut SimRng, shared_bytes: u64) -> u64 {
    // Mostly inside the pre-allocated extent (overwrites and cached
    // reads), occasionally far past it (appends, holes, fresh extents).
    if rng.gen_bool(0.8) {
        rng.gen_range(shared_bytes.max(1))
    } else {
        rng.gen_range(8 * shared_bytes.max(4096))
    }
}

/// A heavy-tailed arrival gap: uniform in the exponent, so most gaps are
/// microseconds but a tail reaches the writeback/commit timer scales —
/// that is what makes arrivals bursty rather than Poisson.
fn pick_gap(rng: &mut SimRng) -> u64 {
    let exp = rng.gen_range(6);
    let base = 10u64.pow(exp as u32);
    (base + rng.gen_range(base)).min(MAX_DELAY_MICROS)
}

fn pick_file(rng: &mut SimRng, shared: usize, live_own: &[usize]) -> FileRef {
    if !live_own.is_empty() && rng.gen_bool(0.4) {
        FileRef::Own(live_own[rng.gen_range(live_own.len() as u64) as usize])
    } else {
        FileRef::Shared(rng.gen_range(shared as u64) as usize)
    }
}

/// Generate one program from the stream.
pub fn generate(rng: &mut SimRng, cfg: &GenConfig) -> ProgramSpec {
    let shared_files = 1 + rng.gen_range(cfg.max_shared.max(1) as u64) as usize;
    let shared_bytes = cfg.shared_bytes;
    let nprocs = 1 + rng.gen_range(cfg.max_procs.max(1) as u64) as usize;
    let mut procs = Vec::with_capacity(nprocs);
    for _ in 0..nprocs {
        let nops = 3 + rng.gen_range(cfg.max_ops.saturating_sub(2) as u64) as usize;
        let mut ops = Vec::with_capacity(nops);
        let mut created = 0usize;
        let mut live_own: Vec<usize> = Vec::new();
        while ops.len() < nops {
            let roll = rng.gen_range(100);
            let op = match roll {
                0..=21 => OpSpec::Read {
                    file: pick_file(rng, shared_files, &live_own),
                    offset: pick_offset(rng, shared_bytes),
                    len: pick_len(rng),
                },
                22..=47 => OpSpec::Write {
                    file: pick_file(rng, shared_files, &live_own),
                    offset: pick_offset(rng, shared_bytes),
                    len: pick_len(rng),
                },
                48..=61 => OpSpec::Fsync {
                    file: pick_file(rng, shared_files, &live_own),
                },
                62..=69 => {
                    live_own.push(created);
                    created += 1;
                    OpSpec::Creat
                }
                70..=74 if !live_own.is_empty() => {
                    let i = rng.gen_range(live_own.len() as u64) as usize;
                    OpSpec::Unlink {
                        own: live_own.remove(i),
                    }
                }
                70..=74 => OpSpec::Mkdir,
                75..=79 => OpSpec::Mkdir,
                80..=91 => OpSpec::Sleep {
                    micros: pick_gap(rng),
                },
                _ => OpSpec::Compute {
                    micros: 1 + rng.gen_range(500),
                },
            };
            ops.push(op);
        }
        procs.push(ProcSpec { ops });
    }
    ProgramSpec {
        shared_files,
        shared_bytes,
        procs,
    }
    .sanitize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let a = generate(&mut SimRng::stream(7, 3), &cfg);
        let b = generate(&mut SimRng::stream(7, 3), &cfg);
        assert_eq!(a, b);
        let c = generate(&mut SimRng::stream(7, 4), &cfg);
        assert_ne!(a, c, "different streams should differ");
    }

    #[test]
    fn generated_programs_are_already_sanitary() {
        let cfg = GenConfig::default();
        for i in 0..200 {
            let p = generate(&mut SimRng::stream(0, i), &cfg);
            assert_eq!(p.sanitize(), p, "program {i} not valid by construction");
            assert!(!p.procs.is_empty());
            assert!(p.shared_files >= 1);
        }
    }

    #[test]
    fn programs_round_trip_through_text() {
        let cfg = GenConfig::default();
        for i in 0..50 {
            let p = generate(&mut SimRng::stream(1, i), &cfg);
            assert_eq!(ProgramSpec::parse(&p.to_string()).unwrap(), p);
        }
    }
}
