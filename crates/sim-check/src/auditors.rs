//! The standard auditors.
//!
//! Each auditor watches one cross-layer invariant from the paper's
//! bookkeeping story. They build their own model of the run from the
//! event stream — nothing here reaches into kernel internals beyond what
//! [`crate::AuditEvent`] and [`crate::AuditCheckpoint`] carry — so a
//! violation always means the *kernel's* redundant books disagree, not
//! that the auditor lost track.

use std::collections::{HashMap, HashSet};

use sim_core::{Pid, RequestId, SimTime, TxnId};
use sim_fault::WriteStep;

use crate::audit::{AuditCheckpoint, AuditEvent, Auditor};

/// Cause-tag conservation: every cause a block-layer request carries must
/// trace back to a process the syscall layer has actually seen (or one of
/// the kernel's proxy tasks). A phantom pid in a cause set means a tag was
/// corrupted somewhere between the syscall and the device — billing work
/// to a process that never asked for it.
pub struct CauseTagAuditor {
    seen: HashSet<Pid>,
}

/// The journal task's proxy pid (it submits commits on behalf of the
/// entangled processes).
const JOURNAL_PID: Pid = Pid(1);
/// The background-writeback task's proxy pid.
const WRITEBACK_PID: Pid = Pid(2);

impl CauseTagAuditor {
    /// A fresh auditor; the kernel proxy tasks start pre-registered.
    pub fn new() -> Self {
        CauseTagAuditor {
            seen: [JOURNAL_PID, WRITEBACK_PID].into_iter().collect(),
        }
    }

    fn check(&self, req: &sim_block::Request, stage: &str, out: &mut Vec<String>) {
        for pid in req.causes.iter() {
            if !self.seen.contains(&pid) {
                out.push(format!(
                    "request {:?} {stage} carries cause {pid:?}, which never entered a syscall",
                    req.id
                ));
            }
        }
    }
}

impl Default for CauseTagAuditor {
    fn default() -> Self {
        Self::new()
    }
}

impl Auditor for CauseTagAuditor {
    fn name(&self) -> &'static str {
        "cause-tag"
    }

    fn on_event(&mut self, _now: SimTime, ev: &AuditEvent<'_>, out: &mut Vec<String>) {
        match ev {
            AuditEvent::SyscallEnter { pid, .. } => {
                self.seen.insert(*pid);
            }
            // Checked at submission *and* dispatch: the scheduler holds the
            // request in between and owns (clones of) it, so a scheduler
            // bug can corrupt tags after submission looked fine.
            AuditEvent::BlockSubmitted { req, .. } => self.check(req, "at submit", out),
            AuditEvent::BlockDispatched { req } => self.check(req, "at dispatch", out),
            _ => {}
        }
    }
}

/// Dirty-page accounting: the cache's incrementally maintained dirty
/// counter must equal the sum over the per-file extent maps at every
/// checkpoint. (Underflow cannot hide: `u64` wrap-around makes the two
/// sides diverge wildly.)
pub struct DirtyAccountingAuditor {
    _priv: (),
}

impl DirtyAccountingAuditor {
    /// A fresh auditor.
    pub fn new() -> Self {
        DirtyAccountingAuditor { _priv: () }
    }
}

impl Default for DirtyAccountingAuditor {
    fn default() -> Self {
        Self::new()
    }
}

impl Auditor for DirtyAccountingAuditor {
    fn name(&self) -> &'static str {
        "dirty-accounting"
    }

    fn on_checkpoint(&mut self, cp: &AuditCheckpoint<'_>, out: &mut Vec<String>) {
        // Dirty pages legitimately survive quiescence (writeback below the
        // background threshold never runs), so the only invariant is the
        // counter/extent-sum agreement.
        if cp.cache_dirty_total != cp.cache_dirty_sum {
            out.push(format!(
                "dirty counter {} != per-file extent sum {}",
                cp.cache_dirty_total, cp.cache_dirty_sum
            ));
        }
    }
}

#[derive(Default)]
struct TxnState {
    log_submitted: bool,
    log_ok: bool,
    commit_submitted: bool,
    commit_ok: bool,
    aborted: bool,
}

enum ReqRole {
    JournalData,
    Log(TxnId),
    Commit(TxnId),
}

/// Journal write-ahead ordering, reconstructed purely from the
/// [`WriteStep`] annotations on submitted writes:
///
/// * the commit's own ordered-data flush (submitted by the journal task)
///   completes before the transaction's log body is submitted;
/// * the commit record is submitted only after the log body is durable;
/// * `TxnCommitted` is declared only after the commit record is durable;
/// * committed transaction IDs are strictly monotone;
/// * a transaction commits at most once and never after aborting.
pub struct JournalOrderAuditor {
    txns: HashMap<TxnId, TxnState>,
    roles: HashMap<RequestId, ReqRole>,
    /// In-flight ordered-data flush writes issued by the journal task.
    inflight_journal_data: HashSet<RequestId>,
    last_committed: Option<TxnId>,
}

impl JournalOrderAuditor {
    /// A fresh auditor.
    pub fn new() -> Self {
        JournalOrderAuditor {
            txns: HashMap::new(),
            roles: HashMap::new(),
            inflight_journal_data: HashSet::new(),
            last_committed: None,
        }
    }
}

impl Default for JournalOrderAuditor {
    fn default() -> Self {
        Self::new()
    }
}

impl Auditor for JournalOrderAuditor {
    fn name(&self) -> &'static str {
        "journal-order"
    }

    fn on_event(&mut self, _now: SimTime, ev: &AuditEvent<'_>, out: &mut Vec<String>) {
        match ev {
            AuditEvent::BlockSubmitted { req, step } => match step {
                WriteStep::Data { .. } if req.submitter == JOURNAL_PID => {
                    // Part of a commit's ordered-data flush.
                    self.roles.insert(req.id, ReqRole::JournalData);
                    self.inflight_journal_data.insert(req.id);
                }
                WriteStep::JournalLog { txn, ordered } => {
                    if !self.inflight_journal_data.is_empty() {
                        out.push(format!(
                            "log body of txn {txn:?} submitted while {} ordered-data \
                             write(s) of {:?} still in flight",
                            self.inflight_journal_data.len(),
                            ordered,
                        ));
                    }
                    let st = self.txns.entry(*txn).or_default();
                    if st.log_submitted {
                        out.push(format!("txn {txn:?} logged twice"));
                    }
                    st.log_submitted = true;
                    self.roles.insert(req.id, ReqRole::Log(*txn));
                }
                WriteStep::CommitRecord { txn } => {
                    let st = self.txns.entry(*txn).or_default();
                    if !st.log_ok {
                        out.push(format!(
                            "commit record of txn {txn:?} submitted before its log body \
                             was durable"
                        ));
                    }
                    if st.commit_submitted {
                        out.push(format!("txn {txn:?} has two commit records"));
                    }
                    st.commit_submitted = true;
                    self.roles.insert(req.id, ReqRole::Commit(*txn));
                }
                WriteStep::Checkpoint { .. } | WriteStep::Untracked | WriteStep::Data { .. } => {}
            },
            AuditEvent::BlockFinished { req, failed } => match self.roles.remove(&req.id) {
                Some(ReqRole::JournalData) => {
                    self.inflight_journal_data.remove(&req.id);
                }
                Some(ReqRole::Log(txn)) if !*failed => {
                    self.txns.entry(txn).or_default().log_ok = true;
                }
                Some(ReqRole::Commit(txn)) if !*failed => {
                    self.txns.entry(txn).or_default().commit_ok = true;
                }
                Some(ReqRole::Log(_) | ReqRole::Commit(_)) | None => {}
            },
            AuditEvent::TxnCommitted { txn } => {
                let st = self.txns.entry(*txn).or_default();
                if !st.commit_ok {
                    out.push(format!(
                        "txn {txn:?} declared durable before its commit record completed"
                    ));
                }
                if st.aborted {
                    out.push(format!("aborted txn {txn:?} declared durable"));
                }
                if let Some(last) = self.last_committed {
                    if *txn <= last {
                        out.push(format!(
                            "txn ids not monotone: {txn:?} committed after {last:?}"
                        ));
                    }
                }
                self.last_committed = Some(*txn);
            }
            AuditEvent::JournalAborted { txn } => {
                self.txns.entry(*txn).or_default().aborted = true;
            }
            _ => {}
        }
    }
}

/// Scheduler ledgers: surfaces whatever the scheduler's own
/// [`split_core::IoSched::audit`] reports (Split-Token charge/refund
/// balance, CFQ slice budgets, token-bucket finiteness).
pub struct SchedLedgerAuditor {
    _priv: (),
}

impl SchedLedgerAuditor {
    /// A fresh auditor.
    pub fn new() -> Self {
        SchedLedgerAuditor { _priv: () }
    }
}

impl Default for SchedLedgerAuditor {
    fn default() -> Self {
        Self::new()
    }
}

impl Auditor for SchedLedgerAuditor {
    fn name(&self) -> &'static str {
        "sched-ledger"
    }

    fn on_checkpoint(&mut self, cp: &AuditCheckpoint<'_>, out: &mut Vec<String>) {
        out.extend(cp.sched_errors.iter().cloned());
    }
}

/// Event-queue sanity: nothing is ever scheduled in the past. The queue
/// clamps late events (and asserts in debug builds); this auditor makes
/// the count a first-class violation in release runs too.
pub struct EventQueueAuditor {
    reported: u64,
}

impl EventQueueAuditor {
    /// A fresh auditor.
    pub fn new() -> Self {
        EventQueueAuditor { reported: 0 }
    }
}

impl Default for EventQueueAuditor {
    fn default() -> Self {
        Self::new()
    }
}

impl Auditor for EventQueueAuditor {
    fn name(&self) -> &'static str {
        "event-queue"
    }

    fn on_checkpoint(&mut self, cp: &AuditCheckpoint<'_>, out: &mut Vec<String>) {
        if cp.late_events > self.reported {
            out.push(format!(
                "{} event(s) scheduled in the past (clamped to now)",
                cp.late_events - self.reported
            ));
            self.reported = cp.late_events;
        }
    }
}

/// In-flight slot accounting for the device queue (serial or queued
/// plane): every slot acquired is released exactly once, no request
/// holds two slots, no slot holds two requests, occupancy never
/// exceeds the advertised queue depth, and the device's own in-flight
/// counter always agrees with the ledger rebuilt from the event
/// stream. At a quiesced checkpoint the ledger must be empty — a leaked
/// slot means a completion event was lost (or delivered twice and
/// swallowed).
pub struct InflightAuditor {
    /// Slot held by each in-flight request.
    slot_of: HashMap<RequestId, u32>,
    /// Request holding each occupied slot.
    holder_of: HashMap<u32, RequestId>,
}

impl InflightAuditor {
    /// A fresh auditor.
    pub fn new() -> Self {
        InflightAuditor {
            slot_of: HashMap::new(),
            holder_of: HashMap::new(),
        }
    }
}

impl Default for InflightAuditor {
    fn default() -> Self {
        Self::new()
    }
}

impl Auditor for InflightAuditor {
    fn name(&self) -> &'static str {
        "inflight"
    }

    fn on_event(&mut self, _now: SimTime, ev: &AuditEvent<'_>, out: &mut Vec<String>) {
        match ev {
            AuditEvent::SlotAcquired {
                req,
                slot,
                in_flight,
                depth,
            } => {
                if *slot >= *depth {
                    out.push(format!(
                        "request {:?} got slot {slot}, outside depth {depth}",
                        req.id
                    ));
                }
                if let Some(prev) = self.slot_of.insert(req.id, *slot) {
                    out.push(format!(
                        "request {:?} acquired slot {slot} while still holding slot {prev}",
                        req.id
                    ));
                }
                if let Some(holder) = self.holder_of.insert(*slot, req.id) {
                    if holder != req.id {
                        out.push(format!(
                            "slot {slot} given to request {:?} while held by {holder:?}",
                            req.id
                        ));
                    }
                }
                if self.slot_of.len() > *depth as usize {
                    out.push(format!(
                        "{} request(s) in flight exceeds queue depth {depth}",
                        self.slot_of.len()
                    ));
                }
                if *in_flight as usize != self.slot_of.len() {
                    out.push(format!(
                        "device reports {in_flight} in flight, slot ledger holds {}",
                        self.slot_of.len()
                    ));
                }
            }
            AuditEvent::SlotReleased {
                req,
                slot,
                in_flight,
            } => {
                match self.slot_of.remove(&req.id) {
                    None => out.push(format!(
                        "request {:?} released slot {slot} it never acquired \
                         (double completion?)",
                        req.id
                    )),
                    Some(held) if held != *slot => out.push(format!(
                        "request {:?} released slot {slot} but held slot {held}",
                        req.id
                    )),
                    Some(_) => {
                        self.holder_of.remove(slot);
                    }
                }
                if *in_flight as usize != self.slot_of.len() {
                    out.push(format!(
                        "device reports {in_flight} in flight, slot ledger holds {}",
                        self.slot_of.len()
                    ));
                }
            }
            _ => {}
        }
    }

    fn on_checkpoint(&mut self, cp: &AuditCheckpoint<'_>, out: &mut Vec<String>) {
        if cp.quiesced && !self.slot_of.is_empty() {
            let mut leaked: Vec<RequestId> = self.slot_of.keys().copied().collect();
            leaked.sort_by_key(|r| r.raw());
            out.push(format!(
                "{} slot(s) still held at quiescence: {leaked:?}",
                leaked.len()
            ));
        }
    }
}

/// The kernel proxy tasks [`CauseTagAuditor`] pre-registers.
pub const PROXY_PIDS: [Pid; 2] = [JOURNAL_PID, WRITEBACK_PID];

#[cfg(test)]
mod tests {
    use super::*;
    use sim_block::Request;
    use sim_core::{BlockNo, CauseSet, FileId};
    use sim_device::IoDir;

    fn req(id: u64, causes: CauseSet) -> Request {
        Request {
            id: RequestId(id),
            dir: IoDir::Write,
            start: BlockNo(0),
            nblocks: 1,
            submitter: JOURNAL_PID,
            causes,
            sync: true,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: Default::default(),
        }
    }

    #[test]
    fn phantom_cause_is_flagged_known_cause_is_not() {
        let mut a = CauseTagAuditor::new();
        let mut out = Vec::new();
        let kind = split_core::SyscallKind::Create;
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::SyscallEnter {
                pid: Pid(10),
                kind: &kind,
            },
            &mut out,
        );
        let ok = req(1, CauseSet::of(Pid(10)));
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::BlockDispatched { req: &ok },
            &mut out,
        );
        assert!(out.is_empty());
        let phantom = req(2, CauseSet::of(Pid(999)));
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::BlockDispatched { req: &phantom },
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn commit_record_before_durable_log_is_flagged() {
        let mut a = JournalOrderAuditor::new();
        let mut out = Vec::new();
        let r = req(1, CauseSet::empty());
        let step = WriteStep::CommitRecord { txn: TxnId(1) };
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::BlockSubmitted {
                req: &r,
                step: &step,
            },
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn proper_protocol_order_is_clean() {
        let mut a = JournalOrderAuditor::new();
        let mut out = Vec::new();
        let t = TxnId(7);
        let data = req(1, CauseSet::empty());
        let dstep = WriteStep::Data { file: FileId(3) };
        let log = req(2, CauseSet::empty());
        let lstep = WriteStep::JournalLog {
            txn: t,
            ordered: vec![FileId(3)],
        };
        let commit = req(3, CauseSet::empty());
        let cstep = WriteStep::CommitRecord { txn: t };
        let ev = |req, step| AuditEvent::BlockSubmitted { req, step };
        a.on_event(SimTime::ZERO, &ev(&data, &dstep), &mut out);
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::BlockFinished {
                req: &data,
                failed: false,
            },
            &mut out,
        );
        a.on_event(SimTime::ZERO, &ev(&log, &lstep), &mut out);
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::BlockFinished {
                req: &log,
                failed: false,
            },
            &mut out,
        );
        a.on_event(SimTime::ZERO, &ev(&commit, &cstep), &mut out);
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::BlockFinished {
                req: &commit,
                failed: false,
            },
            &mut out,
        );
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::TxnCommitted { txn: t },
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn inflight_double_completion_mutant_is_caught() {
        // The sabotaged-device scenario: a completion event delivered
        // twice for the same request. The first release balances the
        // books; the second must be flagged.
        let mut a = InflightAuditor::new();
        let mut out = Vec::new();
        let r = req(1, CauseSet::empty());
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::SlotAcquired {
                req: &r,
                slot: 0,
                in_flight: 1,
                depth: 8,
            },
            &mut out,
        );
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::SlotReleased {
                req: &r,
                slot: 0,
                in_flight: 0,
            },
            &mut out,
        );
        assert!(out.is_empty(), "balanced acquire/release is clean: {out:?}");
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::SlotReleased {
                req: &r,
                slot: 0,
                in_flight: 0,
            },
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("double completion"), "{out:?}");
    }

    #[test]
    fn inflight_over_depth_and_slot_collision_are_flagged() {
        let mut a = InflightAuditor::new();
        let mut out = Vec::new();
        let r1 = req(1, CauseSet::empty());
        let r2 = req(2, CauseSet::empty());
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::SlotAcquired {
                req: &r1,
                slot: 0,
                in_flight: 1,
                depth: 1,
            },
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        // Second acquisition of the same slot past depth 1.
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::SlotAcquired {
                req: &r2,
                slot: 0,
                in_flight: 2,
                depth: 1,
            },
            &mut out,
        );
        assert!(
            out.iter().any(|m| m.contains("exceeds queue depth")),
            "{out:?}"
        );
        assert!(out.iter().any(|m| m.contains("while held by")), "{out:?}");
    }

    #[test]
    fn inflight_leak_surfaces_at_quiescence() {
        let mut a = InflightAuditor::new();
        let mut out = Vec::new();
        let r = req(7, CauseSet::empty());
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::SlotAcquired {
                req: &r,
                slot: 3,
                in_flight: 1,
                depth: 8,
            },
            &mut out,
        );
        let cp = AuditCheckpoint {
            now: SimTime::ZERO,
            cache_dirty_total: 0,
            cache_dirty_sum: 0,
            sched_errors: &[],
            late_events: 0,
            quiesced: true,
        };
        a.on_checkpoint(&cp, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("still held at quiescence"), "{out:?}");
    }

    #[test]
    fn txn_ids_must_be_monotone() {
        let mut a = JournalOrderAuditor::new();
        let mut out = Vec::new();
        for t in [TxnId(2), TxnId(1)] {
            a.txns.insert(
                t,
                TxnState {
                    log_submitted: true,
                    log_ok: true,
                    commit_submitted: true,
                    commit_ok: true,
                    aborted: false,
                },
            );
        }
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::TxnCommitted { txn: TxnId(2) },
            &mut out,
        );
        a.on_event(
            SimTime::ZERO,
            &AuditEvent::TxnCommitted { txn: TxnId(1) },
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }
}
