//! A deliberately broken scheduler wrapper for mutation-testing the
//! auditor plane.
//!
//! [`Sabotaged`] delegates every hook to the wrapped scheduler, except
//! that from the N-th block-layer add onward it rewrites each request's
//! cause set with an off-by-1000 pid — the classic transposed-arithmetic
//! slip in tag bookkeeping. The corruption happens *inside* the scheduler,
//! after the kernel's submit-time bookkeeping saw a healthy request, so it
//! is only catchable by auditing again at dispatch. The mutation check in
//! sim-sweep asserts the cause-tag auditor catches it and that shrinking
//! reduces the trigger to a handful of syscalls.

use sim_block::{Dispatch, Request};
use sim_core::{CauseSet, IoError, Pid};
use split_core::{BufferDirtied, BufferFreed, Gate, IoSched, SchedAttr, SchedCtx, SyscallInfo};

/// How far the sabotage shifts every cause pid.
pub const PID_SHIFT: u32 = 1000;

/// A scheduler wrapper that corrupts cause tags after `after` adds.
pub struct Sabotaged<S> {
    inner: S,
    after: u64,
    adds: u64,
}

impl<S> Sabotaged<S> {
    /// Corrupt every request from the `after`-th block add onward
    /// (`after == 0` corrupts from the first).
    pub fn new(inner: S, after: u64) -> Self {
        Sabotaged {
            inner,
            after,
            adds: 0,
        }
    }
}

impl<S: IoSched> IoSched for Sabotaged<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn configure(&mut self, pid: Pid, attr: SchedAttr) {
        self.inner.configure(pid, attr);
    }

    fn syscall_enter(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) -> Gate {
        self.inner.syscall_enter(sc, ctx)
    }

    fn syscall_exit(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) {
        self.inner.syscall_exit(sc, ctx)
    }

    fn buffer_dirtied(&mut self, ev: &BufferDirtied, ctx: &mut SchedCtx<'_>) {
        self.inner.buffer_dirtied(ev, ctx)
    }

    fn buffer_freed(&mut self, ev: &BufferFreed, ctx: &mut SchedCtx<'_>) {
        self.inner.buffer_freed(ev, ctx)
    }

    fn block_add(&mut self, mut req: Request, ctx: &mut SchedCtx<'_>) {
        self.adds += 1;
        if self.adds > self.after && !req.causes.is_empty() {
            req.causes = CauseSet::from_pids(req.causes.iter().map(|p| Pid(p.raw() + PID_SHIFT)));
        }
        self.inner.block_add(req, ctx)
    }

    fn block_dispatch(&mut self, ctx: &mut SchedCtx<'_>) -> Dispatch {
        self.inner.block_dispatch(ctx)
    }

    fn block_completed(&mut self, req: &Request, ctx: &mut SchedCtx<'_>) {
        self.inner.block_completed(req, ctx)
    }

    fn block_failed(&mut self, req: &Request, error: IoError, ctx: &mut SchedCtx<'_>) {
        self.inner.block_failed(req, error, ctx)
    }

    fn timer_fired(&mut self, ctx: &mut SchedCtx<'_>) {
        self.inner.timer_fired(ctx)
    }

    fn pick_dirty_waiter(&mut self, waiters: &[Pid]) -> usize {
        self.inner.pick_dirty_waiter(waiters)
    }

    fn queued(&self) -> usize {
        self.inner.queued()
    }

    fn audit(&self, quiesced: bool) -> Vec<String> {
        self.inner.audit(quiesced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_block::Noop;
    use sim_core::{BlockNo, FileId, RequestId, SimTime};
    use sim_device::{HddModel, IoDir};
    use split_core::BlockOnly;

    #[test]
    fn corrupts_causes_only_after_threshold() {
        let dev = HddModel::new();
        let mut s = Sabotaged::new(BlockOnly::new(Noop::new()), 1);
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        let req = |id: u64| Request {
            id: RequestId(id),
            dir: IoDir::Write,
            start: BlockNo(id),
            nblocks: 1,
            submitter: Pid(10),
            causes: CauseSet::of(Pid(10)),
            sync: true,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: Some(FileId(1)),
            kind: Default::default(),
        };
        s.block_add(req(1), &mut ctx);
        s.block_add(req(2), &mut ctx);
        let dispatched: Vec<Request> = std::iter::from_fn(|| match s.block_dispatch(&mut ctx) {
            Dispatch::Issue(r) => Some(r),
            _ => None,
        })
        .collect();
        assert_eq!(dispatched.len(), 2);
        assert!(
            dispatched[0].causes.contains(Pid(10)),
            "first add untouched"
        );
        assert!(
            dispatched[1].causes.contains(Pid(10 + PID_SHIFT)),
            "second add corrupted"
        );
    }
}
