//! The fuzzer's workload grammar: a multi-process syscall program.
//!
//! A [`ProgramSpec`] is fully self-contained and deterministic — no pids,
//! no file IDs, no timestamps. Processes are numbered by position; files
//! are referenced symbolically ([`FileRef`]) as either one of the
//! pre-created shared files or the n-th file the process itself creates.
//! The harness binds the symbols to real ids at run time, which is what
//! lets the same spec replay identically under every scheduler.
//!
//! Specs round-trip through a line-oriented text form ([`std::fmt::Display`]
//! / [`ProgramSpec::parse`]) so a shrunk counterexample can be pasted back
//! into `runner check --replay`.

/// A symbolic file reference inside one process's op list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRef {
    /// The n-th pre-created file shared by all processes (never unlinked).
    Shared(usize),
    /// The n-th file this process creates with [`OpSpec::Creat`].
    Own(usize),
}

impl std::fmt::Display for FileRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileRef::Shared(i) => write!(f, "s{i}"),
            FileRef::Own(i) => write!(f, "o{i}"),
        }
    }
}

impl FileRef {
    fn parse(tok: &str) -> Option<FileRef> {
        let (kind, idx) = tok.split_at(1.min(tok.len()));
        let idx: usize = idx.parse().ok()?;
        match kind {
            "s" => Some(FileRef::Shared(idx)),
            "o" => Some(FileRef::Own(idx)),
            _ => None,
        }
    }
}

/// One operation in a process's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpSpec {
    /// `read(file, offset, len)`. Holes zero-fill, so any offset is valid.
    Read {
        /// Target file.
        file: FileRef,
        /// Byte offset.
        offset: u64,
        /// Byte count (≥ 1 after sanitizing).
        len: u64,
    },
    /// `write(file, offset, len)` into the page cache.
    Write {
        /// Target file.
        file: FileRef,
        /// Byte offset.
        offset: u64,
        /// Byte count (≥ 1 after sanitizing).
        len: u64,
    },
    /// `fsync(file)`.
    Fsync {
        /// Target file.
        file: FileRef,
    },
    /// Create a new owned file (becomes `Own(n)` for the n-th creat).
    Creat,
    /// Unlink the process's n-th owned file. Shared files are never
    /// unlinked — cross-process unlink races are not part of the grammar.
    Unlink {
        /// Index among this process's created files.
        own: usize,
    },
    /// Create a directory (pure metadata: journals without data).
    Mkdir,
    /// Sleep, creating an arrival gap (bursty patterns come from
    /// heavy-tailed sleeps between op clusters).
    Sleep {
        /// Sleep length in microseconds.
        micros: u64,
    },
    /// Spin the CPU (occupies the core without touching the I/O stack).
    Compute {
        /// Compute length in microseconds.
        micros: u64,
    },
}

impl OpSpec {
    /// Whether this op issues a system call (sleep/compute do not).
    pub fn is_syscall(&self) -> bool {
        !matches!(self, OpSpec::Sleep { .. } | OpSpec::Compute { .. })
    }
}

impl std::fmt::Display for OpSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpSpec::Read { file, offset, len } => write!(f, "read {file} {offset} {len}"),
            OpSpec::Write { file, offset, len } => write!(f, "write {file} {offset} {len}"),
            OpSpec::Fsync { file } => write!(f, "fsync {file}"),
            OpSpec::Creat => write!(f, "creat"),
            OpSpec::Unlink { own } => write!(f, "unlink o{own}"),
            OpSpec::Mkdir => write!(f, "mkdir"),
            OpSpec::Sleep { micros } => write!(f, "sleep {micros}"),
            OpSpec::Compute { micros } => write!(f, "compute {micros}"),
        }
    }
}

/// One process: a straight-line list of ops, executed in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcSpec {
    /// The ops, run front to back; the process exits after the last.
    pub ops: Vec<OpSpec>,
}

/// A complete multi-process workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Pre-created shared files, referenced as `s0..`.
    pub shared_files: usize,
    /// Pre-allocated size of each shared file in bytes.
    pub shared_bytes: u64,
    /// The processes, spawned together at t = 0.
    pub procs: Vec<ProcSpec>,
}

/// Offsets are clamped below this (keeps runs inside the simulated disk).
pub const MAX_OFFSET: u64 = 16 * 1024 * 1024;
/// Single-op transfer sizes are clamped to this.
pub const MAX_LEN: u64 = 512 * 1024;
/// Sleeps and computes are clamped to this many microseconds.
pub const MAX_DELAY_MICROS: u64 = 200_000;

impl ProgramSpec {
    /// Total syscalls across all processes (sleep/compute excluded) —
    /// the size metric quoted for shrunk reproducers.
    pub fn syscall_count(&self) -> usize {
        self.procs
            .iter()
            .map(|p| p.ops.iter().filter(|o| o.is_syscall()).count())
            .sum()
    }

    /// Repair a spec into a valid program, dropping ops that cannot be
    /// made valid. Used on generator output (which is valid by
    /// construction anyway) and after every shrinking step, where removing
    /// a `creat` can orphan later `o`-references.
    ///
    /// Rules: `Own(i)` must reference an already-created, not-yet-unlinked
    /// file of the same process; `Shared(i)` is folded modulo the shared
    /// count (dropped when there are no shared files); sizes and delays
    /// are clamped to the module limits.
    pub fn sanitize(&self) -> ProgramSpec {
        let fix_ref = |r: FileRef, created: usize, unlinked: &[bool]| -> Option<FileRef> {
            match r {
                FileRef::Shared(i) if self.shared_files > 0 => {
                    Some(FileRef::Shared(i % self.shared_files))
                }
                FileRef::Shared(_) => None,
                FileRef::Own(i) if i < created && !unlinked[i] => Some(FileRef::Own(i)),
                // An orphaned own-ref (its creat was shrunk away, or the
                // file was unlinked) folds onto any still-live owned file,
                // so shrinking a creat does not cascade into dropping every
                // later op — that would strand minimization at local minima.
                FileRef::Own(_) => (0..created).find(|&j| !unlinked[j]).map(FileRef::Own),
            }
        };
        let procs = self
            .procs
            .iter()
            .map(|p| {
                let mut created = 0usize;
                let mut unlinked: Vec<bool> = Vec::new();
                let mut ops = Vec::with_capacity(p.ops.len());
                for op in &p.ops {
                    let kept = match *op {
                        OpSpec::Read { file, offset, len } => fix_ref(file, created, &unlinked)
                            .map(|file| OpSpec::Read {
                                file,
                                offset: offset.min(MAX_OFFSET),
                                len: len.clamp(1, MAX_LEN),
                            }),
                        OpSpec::Write { file, offset, len } => fix_ref(file, created, &unlinked)
                            .map(|file| OpSpec::Write {
                                file,
                                offset: offset.min(MAX_OFFSET),
                                len: len.clamp(1, MAX_LEN),
                            }),
                        OpSpec::Fsync { file } => {
                            fix_ref(file, created, &unlinked).map(|file| OpSpec::Fsync { file })
                        }
                        OpSpec::Creat => {
                            created += 1;
                            unlinked.push(false);
                            Some(OpSpec::Creat)
                        }
                        OpSpec::Unlink { own } => {
                            if own < created && !unlinked[own] {
                                unlinked[own] = true;
                                Some(OpSpec::Unlink { own })
                            } else {
                                None
                            }
                        }
                        OpSpec::Mkdir => Some(OpSpec::Mkdir),
                        OpSpec::Sleep { micros } => Some(OpSpec::Sleep {
                            micros: micros.min(MAX_DELAY_MICROS),
                        }),
                        OpSpec::Compute { micros } => Some(OpSpec::Compute {
                            micros: micros.min(MAX_DELAY_MICROS),
                        }),
                    };
                    ops.extend(kept);
                }
                ProcSpec { ops }
            })
            .collect();
        ProgramSpec {
            shared_files: self.shared_files,
            shared_bytes: self.shared_bytes.clamp(1, MAX_OFFSET),
            procs,
        }
    }

    /// Parse the text form produced by [`std::fmt::Display`]. Returns a
    /// message naming the first offending line on error.
    pub fn parse(text: &str) -> Result<ProgramSpec, String> {
        let mut shared_files = None;
        let mut shared_bytes = 0u64;
        let mut procs: Vec<ProcSpec> = Vec::new();
        let mut cur: Option<ProcSpec> = None;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |m: &str| format!("line {}: {m}: {line:?}", ln + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks[0] {
                "program" => {
                    for kv in &toks[1..] {
                        match kv.split_once('=') {
                            Some(("shared", v)) => {
                                shared_files = Some(v.parse().map_err(|_| err("bad shared count"))?)
                            }
                            Some(("bytes", v)) => {
                                shared_bytes = v.parse().map_err(|_| err("bad byte count"))?
                            }
                            _ => return Err(err("unknown program attribute")),
                        }
                    }
                }
                "proc" => {
                    if cur.is_some() {
                        return Err(err("proc inside proc"));
                    }
                    cur = Some(ProcSpec::default());
                }
                "end" => match cur.take() {
                    Some(p) => procs.push(p),
                    None => return Err(err("end outside proc")),
                },
                opname => {
                    let p = cur.as_mut().ok_or_else(|| err("op outside proc"))?;
                    let file = |i: usize| -> Result<FileRef, String> {
                        toks.get(i)
                            .and_then(|t| FileRef::parse(t))
                            .ok_or_else(|| err("bad file reference"))
                    };
                    let num = |i: usize| -> Result<u64, String> {
                        toks.get(i)
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err("bad number"))
                    };
                    let op = match opname {
                        "read" => OpSpec::Read {
                            file: file(1)?,
                            offset: num(2)?,
                            len: num(3)?,
                        },
                        "write" => OpSpec::Write {
                            file: file(1)?,
                            offset: num(2)?,
                            len: num(3)?,
                        },
                        "fsync" => OpSpec::Fsync { file: file(1)? },
                        "creat" => OpSpec::Creat,
                        "unlink" => match file(1)? {
                            FileRef::Own(own) => OpSpec::Unlink { own },
                            FileRef::Shared(_) => return Err(err("cannot unlink shared file")),
                        },
                        "mkdir" => OpSpec::Mkdir,
                        "sleep" => OpSpec::Sleep { micros: num(1)? },
                        "compute" => OpSpec::Compute { micros: num(1)? },
                        _ => return Err(err("unknown op")),
                    };
                    p.ops.push(op);
                }
            }
        }
        if cur.is_some() {
            return Err("unterminated proc".into());
        }
        let shared_files = shared_files.ok_or("missing `program` header")?;
        Ok(ProgramSpec {
            shared_files,
            shared_bytes,
            procs,
        })
    }
}

impl std::fmt::Display for ProgramSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "program shared={} bytes={}",
            self.shared_files, self.shared_bytes
        )?;
        for p in &self.procs {
            writeln!(f, "proc")?;
            for op in &p.ops {
                writeln!(f, "  {op}")?;
            }
            writeln!(f, "end")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProgramSpec {
        ProgramSpec {
            shared_files: 2,
            shared_bytes: 1 << 20,
            procs: vec![
                ProcSpec {
                    ops: vec![
                        OpSpec::Read {
                            file: FileRef::Shared(0),
                            offset: 4096,
                            len: 8192,
                        },
                        OpSpec::Creat,
                        OpSpec::Write {
                            file: FileRef::Own(0),
                            offset: 0,
                            len: 65536,
                        },
                        OpSpec::Fsync {
                            file: FileRef::Own(0),
                        },
                        OpSpec::Unlink { own: 0 },
                        OpSpec::Mkdir,
                        OpSpec::Sleep { micros: 500 },
                    ],
                },
                ProcSpec {
                    ops: vec![OpSpec::Compute { micros: 10 }],
                },
            ],
        }
    }

    #[test]
    fn display_parse_round_trips() {
        let p = sample();
        let text = p.to_string();
        assert_eq!(ProgramSpec::parse(&text).unwrap(), p);
    }

    #[test]
    fn sanitize_drops_orphaned_own_refs() {
        let mut p = sample();
        // Remove the creat: the Own(0) write/fsync/unlink are now orphans.
        p.procs[0].ops.remove(1);
        let clean = p.sanitize();
        assert!(clean.procs[0].ops.iter().all(|o| !matches!(
            o,
            OpSpec::Write {
                file: FileRef::Own(_),
                ..
            } | OpSpec::Fsync {
                file: FileRef::Own(_)
            } | OpSpec::Unlink { .. }
        )));
        // Sanitizing a valid program is the identity.
        let valid = sample();
        assert_eq!(valid.sanitize(), valid);
    }

    #[test]
    fn sanitize_rejects_use_after_unlink_and_double_unlink() {
        let p = ProgramSpec {
            shared_files: 0,
            shared_bytes: 4096,
            procs: vec![ProcSpec {
                ops: vec![
                    OpSpec::Creat,
                    OpSpec::Unlink { own: 0 },
                    OpSpec::Write {
                        file: FileRef::Own(0),
                        offset: 0,
                        len: 1,
                    },
                    OpSpec::Unlink { own: 0 },
                ],
            }],
        };
        let clean = p.sanitize();
        assert_eq!(
            clean.procs[0].ops,
            vec![OpSpec::Creat, OpSpec::Unlink { own: 0 }]
        );
    }

    #[test]
    fn syscall_count_excludes_delays() {
        assert_eq!(sample().syscall_count(), 6);
    }
}
