//! A deliberately broken scheduler wrapper with a *timing-dependent*
//! bug, for mutation-testing the chaos plane.
//!
//! [`Sabotaged`](crate::Sabotaged) corrupts unconditionally after N adds
//! — any batch that submits enough requests trips it. [`TimingSabotaged`]
//! models the harder class of bug: a latency assumption tuned to the
//! happy path. The wrapper keeps a cause-tag handoff side table keyed by
//! request, sized on the belief that no request ever dwells in the
//! device longer than a fixed horizon; entries past the horizon are
//! (fictionally) evicted early. The wrapper timestamps every data
//! request it dispatches, and when one *completes* after dwelling past
//! the horizon, the eviction has already wrecked the handoff: every
//! cause set submitted from then on is shifted.
//!
//! With the chaos plane off this bug is unreachable by construction:
//! device service times are pure functions of the request and the
//! device model, so plain `runner check` batches — serial or queued —
//! see a fixed, bounded dwell distribution that stays under any horizon
//! calibrated above it. Only adversarial timing that *stretches*
//! service beyond its deterministic value pushes a request past the
//! horizon — which is exactly what the chaos plane's completion class
//! does, and queue depth compounds it, since requests also wait behind
//! their stretched neighbours. The mutation test in sim-sweep asserts
//! the plain batches miss this bug and a chaos batch catches and
//! shrinks it.

use sim_block::{Dispatch, ReqKind, Request};
use sim_core::{CauseSet, IoError, Pid, RequestId, SimDuration, SimTime};
use split_core::{BufferDirtied, BufferFreed, Gate, IoSched, SchedAttr, SchedCtx, SyscallInfo};

use crate::sabotage::PID_SHIFT;

/// A scheduler wrapper whose cause-tag corruption triggers only when a
/// data request outlives a dwell horizon in the device.
pub struct TimingSabotaged<S> {
    inner: S,
    /// The eviction horizon: the longest device dwell the (fictional)
    /// handoff table tolerates before it loses an entry.
    dwell: SimDuration,
    /// Data requests dispatched but not yet completed, with dispatch
    /// instants.
    in_device: Vec<(RequestId, SimTime)>,
    /// Latched once the race is observed; corrupts all later adds.
    poisoned: bool,
}

impl<S> TimingSabotaged<S> {
    /// Corrupt cause tags after any data request completes having dwelt
    /// in the device longer than `dwell`.
    pub fn new(inner: S, dwell: SimDuration) -> Self {
        TimingSabotaged {
            inner,
            dwell,
            in_device: Vec::new(),
            poisoned: false,
        }
    }

    /// Whether the planted race has fired.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    fn forget(&mut self, id: RequestId) {
        if let Some(i) = self.in_device.iter().position(|(r, _)| *r == id) {
            self.in_device.swap_remove(i);
        }
    }
}

impl<S: IoSched> IoSched for TimingSabotaged<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn configure(&mut self, pid: Pid, attr: SchedAttr) {
        self.inner.configure(pid, attr);
    }

    fn syscall_enter(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) -> Gate {
        self.inner.syscall_enter(sc, ctx)
    }

    fn syscall_exit(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) {
        self.inner.syscall_exit(sc, ctx)
    }

    fn buffer_dirtied(&mut self, ev: &BufferDirtied, ctx: &mut SchedCtx<'_>) {
        self.inner.buffer_dirtied(ev, ctx)
    }

    fn buffer_freed(&mut self, ev: &BufferFreed, ctx: &mut SchedCtx<'_>) {
        self.inner.buffer_freed(ev, ctx)
    }

    fn block_add(&mut self, mut req: Request, ctx: &mut SchedCtx<'_>) {
        if self.poisoned && !req.causes.is_empty() {
            req.causes = CauseSet::from_pids(req.causes.iter().map(|p| Pid(p.raw() + PID_SHIFT)));
        }
        self.inner.block_add(req, ctx)
    }

    fn block_dispatch(&mut self, ctx: &mut SchedCtx<'_>) -> Dispatch {
        let d = self.inner.block_dispatch(ctx);
        if let Dispatch::Issue(req) = &d {
            if req.kind == ReqKind::Data {
                self.in_device.push((req.id, ctx.now));
            }
        }
        d
    }

    fn block_completed(&mut self, req: &Request, ctx: &mut SchedCtx<'_>) {
        if let Some((_, at)) = self.in_device.iter().find(|(r, _)| *r == req.id) {
            if ctx.now.since(*at) > self.dwell {
                self.poisoned = true;
            }
        }
        self.forget(req.id);
        self.inner.block_completed(req, ctx)
    }

    fn block_failed(&mut self, req: &Request, error: IoError, ctx: &mut SchedCtx<'_>) {
        self.forget(req.id);
        self.inner.block_failed(req, error, ctx)
    }

    fn timer_fired(&mut self, ctx: &mut SchedCtx<'_>) {
        self.inner.timer_fired(ctx)
    }

    fn pick_dirty_waiter(&mut self, waiters: &[Pid]) -> usize {
        self.inner.pick_dirty_waiter(waiters)
    }

    fn queued(&self) -> usize {
        self.inner.queued()
    }

    fn audit(&self, quiesced: bool) -> Vec<String> {
        self.inner.audit(quiesced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_block::Noop;
    use sim_core::{BlockNo, FileId, SimTime};
    use sim_device::{HddModel, IoDir};
    use split_core::BlockOnly;

    fn req(id: u64, kind: ReqKind) -> Request {
        Request {
            id: RequestId(id),
            dir: IoDir::Write,
            start: BlockNo(id),
            nblocks: 1,
            submitter: Pid(10),
            causes: CauseSet::of(Pid(10)),
            sync: true,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: Some(FileId(1)),
            kind,
        }
    }

    fn issue(s: &mut TimingSabotaged<BlockOnly<Noop>>, ctx: &mut SchedCtx<'_>) -> Request {
        match s.block_dispatch(ctx) {
            Dispatch::Issue(r) => r,
            other => panic!("expected an issue, got {other:?}"),
        }
    }

    #[test]
    fn a_data_request_outliving_the_horizon_poisons_later_adds() {
        let dev = HddModel::new();
        let dwell = SimDuration::from_millis(1);
        let mut s = TimingSabotaged::new(BlockOnly::new(Noop::new()), dwell);

        // Dispatch a data request at t=0.
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        s.block_add(req(1, ReqKind::Data), &mut ctx);
        let data = issue(&mut s, &mut ctx);

        // It completes past the dwell horizon: the handoff table has
        // already lost its entry, the race fires.
        let late = SimTime::ZERO + SimDuration::from_millis(5);
        let mut ctx = SchedCtx::new(late, &dev);
        s.block_completed(&data, &mut ctx);
        assert!(s.poisoned(), "race observed");

        // Every add from now on carries shifted cause tags.
        s.block_add(req(2, ReqKind::Data), &mut ctx);
        let corrupted = issue(&mut s, &mut ctx);
        assert!(corrupted.causes.contains(Pid(10 + PID_SHIFT)));
    }

    #[test]
    fn dwell_under_the_horizon_stays_healthy() {
        let dev = HddModel::new();
        let dwell = SimDuration::from_millis(1);
        let mut s = TimingSabotaged::new(BlockOnly::new(Noop::new()), dwell);

        // Data completes inside the horizon — no poison, even when a
        // journal commit runs right after it.
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        s.block_add(req(1, ReqKind::Data), &mut ctx);
        let data = issue(&mut s, &mut ctx);
        let soon = SimTime::ZERO + SimDuration::from_micros(10);
        let mut ctx = SchedCtx::new(soon, &dev);
        s.block_completed(&data, &mut ctx);
        s.block_add(req(2, ReqKind::Journal), &mut ctx);
        let commit = issue(&mut s, &mut ctx);
        let mut ctx = SchedCtx::new(soon + SimDuration::from_secs(1), &dev);
        s.block_completed(&commit, &mut ctx);
        assert!(!s.poisoned(), "dwell under the horizon");

        // Journal requests are not in the handoff table: a slow commit
        // does not trip the bug either.
        s.block_add(req(3, ReqKind::Data), &mut ctx);
        let clean = issue(&mut s, &mut ctx);
        assert!(clean.causes.contains(Pid(10)), "tags untouched");
    }
}
