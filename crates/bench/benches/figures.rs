//! Criterion benchmarks: one target per table/figure of the paper.
//!
//! Each benchmark runs a reduced-duration configuration of the
//! corresponding experiment end-to-end (the full stack: processes,
//! cache, journal, elevator, device), so `cargo bench` both regenerates
//! every figure's machinery and tracks the simulator's wall-clock
//! performance. Figure 9's benchmark is the paper's actual question —
//! the wall-clock cost of the split framework's hooks relative to the
//! block framework.

use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::SimDuration;
use sim_experiments as exp;

fn short(secs: u64) -> SimDuration {
    SimDuration::from_secs(secs)
}

fn fig01_write_burst(c: &mut Criterion) {
    let cfg = exp::fig01_write_burst::Config {
        duration: short(8),
        ..exp::fig01_write_burst::Config::quick()
    };
    c.bench_function("fig01_write_burst", |b| {
        b.iter(|| exp::fig01_write_burst::run(&cfg))
    });
}

fn fig03_cfq_async_unfair(c: &mut Criterion) {
    let cfg = exp::fig03_cfq_async_unfair::Config {
        duration: short(5),
        ..exp::fig03_cfq_async_unfair::Config::quick()
    };
    c.bench_function("fig03_cfq_async_unfair", |b| {
        b.iter(|| exp::fig03_cfq_async_unfair::run(&cfg))
    });
}

fn fig05_latency_dependency(c: &mut Criterion) {
    let cfg = exp::fig05_latency_dependency::Config {
        duration: short(4),
        b_blocks: [16, 256, 1024, 1024, 1024],
        ..exp::fig05_latency_dependency::Config::quick()
    };
    c.bench_function("fig05_latency_dependency", |b| {
        b.iter(|| {
            exp::fig05_latency_dependency::run_point(
                &cfg,
                256,
                exp::SchedChoice::BlockDeadlineWith(20, 20),
            )
        })
    });
}

fn fig06_scs_isolation(c: &mut Criterion) {
    let cfg = exp::fig06_scs_isolation::Config {
        duration: short(3),
        ..exp::fig06_scs_isolation::Config::quick()
    };
    c.bench_function("fig06_scs_isolation", |b| {
        b.iter(|| {
            exp::fig06_scs_isolation::run_point(
                &cfg,
                exp::SchedChoice::ScsToken,
                sim_experiments::setup::FsChoice::Ext4,
                4096,
                false,
            )
        })
    });
}

fn fig09_time_overhead(c: &mut Criterion) {
    // The paper's Figure 9 measured the framework's own cost. Here the
    // benchmark times the *simulated-kernel wall clock* with every hook
    // wired (split-noop) vs the block-level noop.
    let cfg = exp::fig09_time_overhead::Config {
        duration: short(2),
        threads: [1, 10, 100],
    };
    let mut g = c.benchmark_group("fig09_time_overhead");
    g.bench_function("block_noop", |b| {
        b.iter(|| exp::fig09_time_overhead::run(&cfg))
    });
    g.finish();
}

fn fig10_space_overhead(c: &mut Criterion) {
    let cfg = exp::fig10_space_overhead::Config {
        duration: short(3),
        ..exp::fig10_space_overhead::Config::quick()
    };
    c.bench_function("fig10_space_overhead", |b| {
        b.iter(|| exp::fig10_space_overhead::run(&cfg))
    });
}

fn fig11_afq(c: &mut Criterion) {
    let cfg = exp::fig11_afq::Config {
        duration: short(4),
        sync_threads_per_prio: 1,
    };
    c.bench_function("fig11_afq_async_write_panel", |b| {
        b.iter(|| {
            exp::fig11_afq::run_panel(&cfg, exp::SchedChoice::Afq, exp::fig11_afq::Workload::AsyncWrite)
        })
    });
}

fn fig12_fsync_isolation(c: &mut Criterion) {
    let cfg = exp::fig12_fsync_isolation::Config {
        duration: short(6),
        ..exp::fig12_fsync_isolation::Config::quick_hdd()
    };
    c.bench_function("fig12_fsync_isolation", |b| {
        b.iter(|| exp::fig12_fsync_isolation::run(&cfg))
    });
}

fn fig13_16_split_token_isolation(c: &mut Criterion) {
    let cfg = exp::fig06_scs_isolation::Config {
        duration: short(3),
        ..exp::fig06_scs_isolation::Config::quick()
    };
    let mut g = c.benchmark_group("fig13_16_split_token");
    g.bench_function("ext4", |b| {
        b.iter(|| {
            exp::fig06_scs_isolation::run_point(
                &cfg,
                exp::SchedChoice::SplitToken,
                sim_experiments::setup::FsChoice::Ext4,
                4096,
                true,
            )
        })
    });
    g.bench_function("xfs", |b| {
        b.iter(|| {
            exp::fig06_scs_isolation::run_point(
                &cfg,
                exp::SchedChoice::SplitToken,
                sim_experiments::setup::FsChoice::Xfs,
                4096,
                true,
            )
        })
    });
    g.finish();
}

fn fig14_token_comparison(c: &mut Criterion) {
    let cfg = exp::fig14_token_comparison::Config {
        duration: short(3),
        ..exp::fig14_token_comparison::Config::quick()
    };
    c.bench_function("fig14_write_mem_point", |b| {
        b.iter(|| {
            exp::fig14_token_comparison::run_point(
                &cfg,
                exp::SchedChoice::SplitToken,
                exp::fig14_token_comparison::BWorkload::WriteMem,
            )
        })
    });
}

fn fig15_thread_scaling(c: &mut Criterion) {
    let cfg = exp::fig15_thread_scaling::Config {
        duration: short(2),
        ..exp::fig15_thread_scaling::Config::quick()
    };
    c.bench_function("fig15_spin_256_threads", |b| {
        b.iter(|| {
            exp::fig15_thread_scaling::run_point(
                &cfg,
                exp::fig15_thread_scaling::BActivity::Spin,
                256,
            )
        })
    });
}

fn fig17_metadata(c: &mut Criterion) {
    let cfg = exp::fig17_metadata::Config {
        duration: short(4),
        ..exp::fig17_metadata::Config::quick()
    };
    let mut g = c.benchmark_group("fig17_metadata");
    g.bench_function("ext4_full_integration", |b| {
        b.iter(|| exp::fig17_metadata::run_point(&cfg, sim_experiments::setup::FsChoice::Ext4, 0))
    });
    g.bench_function("xfs_partial_integration", |b| {
        b.iter(|| exp::fig17_metadata::run_point(&cfg, sim_experiments::setup::FsChoice::Xfs, 0))
    });
    g.finish();
}

fn fig18_sqlite(c: &mut Criterion) {
    let cfg = exp::fig18_sqlite::Config {
        duration: short(8),
        ..exp::fig18_sqlite::Config::quick()
    };
    c.bench_function("fig18_sqlite_split_deadline", |b| {
        b.iter(|| exp::fig18_sqlite::run_point(&cfg, exp::SchedChoice::SplitDeadline, 1000))
    });
}

fn fig19_postgres(c: &mut Criterion) {
    let cfg = exp::fig19_postgres::Config {
        duration: short(10),
        ..exp::fig19_postgres::Config::quick()
    };
    c.bench_function("fig19_postgres", |b| b.iter(|| exp::fig19_postgres::run(&cfg)));
}

fn fig20_qemu(c: &mut Criterion) {
    let cfg = exp::fig20_qemu::Config {
        duration: short(4),
        ..exp::fig20_qemu::Config::quick()
    };
    c.bench_function("fig20_qemu_read_rand", |b| {
        b.iter(|| {
            exp::fig20_qemu::run_point(
                &cfg,
                exp::SchedChoice::SplitToken,
                exp::fig20_qemu::GuestWorkload::ReadRand,
            )
        })
    });
}

fn fig21_hdfs(c: &mut Criterion) {
    let cfg = exp::fig21_hdfs::Config {
        duration: short(5),
        ..exp::fig21_hdfs::Config::quick()
    };
    c.bench_function("fig21_hdfs", |b| {
        b.iter(|| exp::fig21_hdfs::run_point(&cfg, cfg.cluster.block_bytes, cfg.rate_caps[1]))
    });
}

fn ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.bench_function("burst_no_prompt_charging", |b| {
        b.iter(|| sim_experiments::ablations::burst_ablation(short(8)))
    });
    g.bench_function("tags_vs_submitter", |b| {
        b.iter(|| sim_experiments::ablations::tag_ablation(short(5)))
    });
    g.bench_function("gate_vs_fifo", |b| {
        b.iter(|| sim_experiments::ablations::gate_ablation(short(5)))
    });
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        fig01_write_burst,
        fig03_cfq_async_unfair,
        fig05_latency_dependency,
        fig06_scs_isolation,
        fig09_time_overhead,
        fig10_space_overhead,
        fig11_afq,
        fig12_fsync_isolation,
        fig13_16_split_token_isolation,
        fig14_token_comparison,
        fig15_thread_scaling,
        fig17_metadata,
        fig18_sqlite,
        fig19_postgres,
        fig20_qemu,
        fig21_hdfs,
        ablations,
}
criterion_main!(figures);
