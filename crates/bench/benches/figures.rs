//! Wall-clock benchmarks: one target per table/figure of the paper.
//!
//! Each benchmark runs a reduced-duration configuration of the
//! corresponding experiment end-to-end (the full stack: processes,
//! cache, journal, elevator, device), so `cargo bench` both regenerates
//! every figure's machinery and tracks the simulator's wall-clock
//! performance. Figure 9's benchmark is the paper's actual question —
//! the wall-clock cost of the split framework's hooks relative to the
//! block framework.
//!
//! The harness is hand-rolled (the container has no registry access, so
//! no criterion): each target runs a warmup pass then `SAMPLES` timed
//! iterations and reports min/mean/max. Filter targets by substring:
//! `cargo bench -- fig09`.

use sim_core::SimDuration;
use sim_experiments as exp;
use std::time::Instant;

const SAMPLES: usize = 5;

fn short(secs: u64) -> SimDuration {
    SimDuration::from_secs(secs)
}

fn bench(name: &str, filter: Option<&str>, mut f: impl FnMut()) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    f(); // warmup
    let mut times = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::MAX, f64::min);
    let max = times.iter().cloned().fold(f64::MIN, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!("{name:<40} min {min:8.3}s  mean {mean:8.3}s  max {max:8.3}s");
}

/// Dispatch-plane throughput: run the quick CFQ write burst on the given
/// device plane and report simulator events per wall-clock second, so the
/// cost of the blk-mq dispatch layer relative to the serial fast path is
/// tracked alongside Figure 9's hook-overhead question.
fn bench_device_plane(name: &str, filter: Option<&str>, queue_depth: Option<u32>) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    exp::fig01_qd::bench_events(queue_depth); // warmup
    let mut rates = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let events = exp::fig01_qd::bench_events(queue_depth);
        let dt = t0.elapsed().as_secs_f64();
        rates.push(events as f64 / dt);
    }
    let min = rates.iter().cloned().fold(f64::MAX, f64::min);
    let max = rates.iter().cloned().fold(f64::MIN, f64::max);
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    println!(
        "{name:<40} min {:8.2} Mev/s  mean {:8.2} Mev/s  max {:8.2} Mev/s",
        min / 1e6,
        mean / 1e6,
        max / 1e6
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `cargo bench -- <pattern>` passes the pattern through; ignore the
    // conventional `--bench` flag cargo appends.
    let filter = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .map(|s| s.as_str());

    bench("fig01_write_burst", filter, || {
        let cfg = exp::fig01_write_burst::Config {
            duration: short(8),
            ..exp::fig01_write_burst::Config::quick()
        };
        exp::fig01_write_burst::run(&cfg);
    });

    bench("fig03_cfq_async_unfair", filter, || {
        let cfg = exp::fig03_cfq_async_unfair::Config {
            duration: short(5),
            ..exp::fig03_cfq_async_unfair::Config::quick()
        };
        exp::fig03_cfq_async_unfair::run(&cfg);
    });

    bench("fig05_latency_dependency", filter, || {
        let cfg = exp::fig05_latency_dependency::Config {
            duration: short(4),
            b_blocks: [16, 256, 1024, 1024, 1024],
            ..exp::fig05_latency_dependency::Config::quick()
        };
        exp::fig05_latency_dependency::run_point(
            &cfg,
            256,
            exp::SchedChoice::BlockDeadlineWith(20, 20),
        );
    });

    bench("fig06_scs_isolation", filter, || {
        let cfg = exp::fig06_scs_isolation::Config {
            duration: short(3),
            ..exp::fig06_scs_isolation::Config::quick()
        };
        exp::fig06_scs_isolation::run_point(
            &cfg,
            exp::SchedChoice::ScsToken,
            exp::setup::FsChoice::Ext4,
            4096,
            false,
        );
    });

    bench("fig09_time_overhead/block_noop", filter, || {
        let cfg = exp::fig09_time_overhead::Config {
            duration: short(2),
            threads: [1, 10, 100],
            seed: 0,
        };
        exp::fig09_time_overhead::run(&cfg);
    });

    bench_device_plane("fig01_qd_dispatch/serial", filter, None);
    bench_device_plane("fig01_qd_dispatch/depth1", filter, Some(1));
    bench_device_plane("fig01_qd_dispatch/depth8", filter, Some(8));
    bench_device_plane("fig01_qd_dispatch/depth32", filter, Some(32));

    bench("fig10_space_overhead", filter, || {
        let cfg = exp::fig10_space_overhead::Config {
            duration: short(3),
            ..exp::fig10_space_overhead::Config::quick()
        };
        exp::fig10_space_overhead::run(&cfg);
    });

    bench("fig11_afq_async_write_panel", filter, || {
        let cfg = exp::fig11_afq::Config {
            duration: short(4),
            sync_threads_per_prio: 1,
            seed: 0,
        };
        exp::fig11_afq::run_panel(
            &cfg,
            exp::SchedChoice::Afq,
            exp::fig11_afq::Workload::AsyncWrite,
        );
    });

    bench("fig12_fsync_isolation", filter, || {
        let cfg = exp::fig12_fsync_isolation::Config {
            duration: short(6),
            ..exp::fig12_fsync_isolation::Config::quick_hdd()
        };
        exp::fig12_fsync_isolation::run(&cfg);
    });

    bench("fig13_16_split_token/ext4", filter, || {
        let cfg = exp::fig06_scs_isolation::Config {
            duration: short(3),
            ..exp::fig06_scs_isolation::Config::quick()
        };
        exp::fig06_scs_isolation::run_point(
            &cfg,
            exp::SchedChoice::SplitToken,
            exp::setup::FsChoice::Ext4,
            4096,
            true,
        );
    });

    bench("fig13_16_split_token/xfs", filter, || {
        let cfg = exp::fig06_scs_isolation::Config {
            duration: short(3),
            ..exp::fig06_scs_isolation::Config::quick()
        };
        exp::fig06_scs_isolation::run_point(
            &cfg,
            exp::SchedChoice::SplitToken,
            exp::setup::FsChoice::Xfs,
            4096,
            true,
        );
    });

    bench("fig14_write_mem_point", filter, || {
        let cfg = exp::fig14_token_comparison::Config {
            duration: short(3),
            ..exp::fig14_token_comparison::Config::quick()
        };
        exp::fig14_token_comparison::run_point(
            &cfg,
            exp::SchedChoice::SplitToken,
            exp::fig14_token_comparison::BWorkload::WriteMem,
        );
    });

    bench("fig15_spin_256_threads", filter, || {
        let cfg = exp::fig15_thread_scaling::Config {
            duration: short(2),
            ..exp::fig15_thread_scaling::Config::quick()
        };
        exp::fig15_thread_scaling::run_point(&cfg, exp::fig15_thread_scaling::BActivity::Spin, 256);
    });

    bench("fig17_metadata/ext4_full_integration", filter, || {
        let cfg = exp::fig17_metadata::Config {
            duration: short(4),
            ..exp::fig17_metadata::Config::quick()
        };
        exp::fig17_metadata::run_point(&cfg, exp::setup::FsChoice::Ext4, 0);
    });

    bench("fig17_metadata/xfs_partial_integration", filter, || {
        let cfg = exp::fig17_metadata::Config {
            duration: short(4),
            ..exp::fig17_metadata::Config::quick()
        };
        exp::fig17_metadata::run_point(&cfg, exp::setup::FsChoice::Xfs, 0);
    });

    bench("fig18_sqlite_split_deadline", filter, || {
        let cfg = exp::fig18_sqlite::Config {
            duration: short(8),
            ..exp::fig18_sqlite::Config::quick()
        };
        exp::fig18_sqlite::run_point(&cfg, exp::SchedChoice::SplitDeadline, 1000);
    });

    bench("fig19_postgres", filter, || {
        let cfg = exp::fig19_postgres::Config {
            duration: short(10),
            ..exp::fig19_postgres::Config::quick()
        };
        exp::fig19_postgres::run(&cfg);
    });

    bench("fig20_qemu_read_rand", filter, || {
        let cfg = exp::fig20_qemu::Config {
            duration: short(4),
            ..exp::fig20_qemu::Config::quick()
        };
        exp::fig20_qemu::run_point(
            &cfg,
            exp::SchedChoice::SplitToken,
            exp::fig20_qemu::GuestWorkload::ReadRand,
        );
    });

    bench("fig21_hdfs", filter, || {
        let cfg = exp::fig21_hdfs::Config {
            duration: short(5),
            ..exp::fig21_hdfs::Config::quick()
        };
        exp::fig21_hdfs::run_point(&cfg, cfg.cluster.block_bytes, cfg.rate_caps[1]);
    });

    bench("ablations/burst_no_prompt_charging", filter, || {
        exp::ablations::burst_ablation(short(8), 0);
    });

    bench("ablations/tags_vs_submitter", filter, || {
        exp::ablations::tag_ablation(short(5), 0);
    });

    bench("ablations/gate_vs_fifo", filter, || {
        exp::ablations::gate_ablation(short(5), 0);
    });
}
