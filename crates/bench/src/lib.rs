//! Benchmark crate; all Criterion benches live in benches/.
