//! The standard bench harness behind `runner bench`.
//!
//! A fixed panel of targets (fig01, fig01_qd at several depths, a
//! `check` fuzz batch) runs `reps` timed reps each — profiler off, so
//! per-event wall-clock probes don't distort the measurement — plus one
//! untimed rep with the self-profiler and (when the `alloc-count`
//! feature is on anywhere in the build) the counting allocator
//! installed. Each target reports events/sec as best-of-reps (the
//! regression gate's number — robust to other tenants on a shared
//! host) and as mean ± 95% CI over the timed reps, plus wall time, a
//! per-phase wall-clock breakdown, peak allocations, and simulated
//! fsync-latency SLO percentiles. The report serializes to `BENCH_<git-sha>.json`
//! (schema [`SCHEMA`]) so CI can chart a perf trajectory and
//! [`compare`] a PR against the committed baseline.
//!
//! Everything the sim computes stays deterministic: the profiler and
//! timer read wall clocks on the host side only, so bench runs produce
//! the same simulated results as untimed runs, byte for byte.
//!
//! Hand-rolled micro benches live in `benches/`; this module is the
//! schema-stable harness the regression gate consumes.

use std::time::Instant;

use sim_core::alloc_count::{self, AllocSnapshot};
use sim_core::prof::{self, ProfSnapshot, Profiler};
use sim_core::stats::{summarize, Percentiles, Summary};
use sim_trace::json::Value;

/// Report schema identifier; bump when the JSON shape changes.
pub const SCHEMA: &str = "bench-v1";

/// Regression gate: fail when events/sec drops more than this fraction
/// below the baseline mean, outside both confidence intervals.
pub const REGRESSION_FRACTION: f64 = 0.15;

/// What one run of a bench target hands back to the harness.
#[derive(Debug, Clone, Default)]
pub struct RunOutput {
    /// Events the simulation processed.
    pub events: u64,
    /// Completed simulated fsync latencies, milliseconds.
    pub fsync_ms: Vec<f64>,
}

/// One named workload in the panel.
pub struct BenchTarget {
    /// Stable key in the report (`fig01`, `fig01_qd_d8`, `check`, ...).
    pub name: &'static str,
    /// Runs the workload once, from a fresh world.
    pub run: Box<dyn Fn() -> RunOutput>,
}

/// Simulated fsync-latency SLO percentiles (nearest-rank).
#[derive(Debug, Clone, Copy, Default)]
pub struct SloStats {
    /// Observations.
    pub count: usize,
    /// Median (ms).
    pub p50: f64,
    /// 99th percentile (ms).
    pub p99: f64,
    /// 99.9th percentile (ms).
    pub p999: f64,
    /// Largest observation (ms).
    pub max: f64,
}

impl SloStats {
    /// Percentiles of a latency sample (zeros when empty).
    pub fn from_ms(ms: Vec<f64>) -> Self {
        let count = ms.len();
        let p = Percentiles::new(ms);
        SloStats {
            count,
            p50: p.p50(),
            p99: p.p99(),
            p999: p.p999(),
            max: p.max(),
        }
    }
}

/// Everything measured for one panel target.
#[derive(Debug, Clone)]
pub struct TargetReport {
    /// Target key.
    pub name: String,
    /// Deterministic event count of one run (identical across reps).
    pub events: u64,
    /// Events per wall-clock second over the reps.
    pub eps: Summary,
    /// Fastest rep (highest events/sec). On a shared host the mean soaks
    /// up scheduler noise from other tenants; the best rep is the
    /// noise-robust capability number the regression gate compares.
    pub best_eps: f64,
    /// Wall seconds per run over the reps.
    pub wall_s: Summary,
    /// Per-phase wall-clock attribution from the final rep.
    pub prof: ProfSnapshot,
    /// Allocator counters from the final rep (zeros when the
    /// `alloc-count` feature is off).
    pub alloc: AllocSnapshot,
    /// Simulated fsync SLO percentiles from the final rep.
    pub fsync: SloStats,
}

/// A full panel run, ready to serialize.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Git revision the run measured (see [`git_sha`]).
    pub git_sha: String,
    /// Timed repetitions per target.
    pub reps: usize,
    /// One entry per panel target, in panel order.
    pub targets: Vec<TargetReport>,
}

/// Run every target `reps` timed times (plus an untimed warmup first and
/// an untimed profiled rep after), and collect the report.
pub fn run_panel(targets: &[BenchTarget], reps: usize, git_sha: String) -> BenchReport {
    let reps = reps.max(1);
    let mut out = Vec::with_capacity(targets.len());
    for t in targets {
        let _ = (t.run)(); // warmup: page in code and allocator arenas
                           // Timed reps run with the profiler uninstalled: per-event
                           // wall-clock probes would otherwise dominate the hot path and
                           // understate events/sec by double-digit percents.
        let mut eps = Vec::with_capacity(reps);
        let mut wall = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            let run = (t.run)();
            let dt = t0.elapsed().as_secs_f64();
            wall.push(dt);
            eps.push(if dt > 0.0 {
                run.events as f64 / dt
            } else {
                0.0
            });
        }
        // One extra untimed rep gathers the phase breakdown, allocator
        // counters, and SLO sample; the simulation itself is
        // deterministic, so this rep computes the same results.
        let p = Profiler::new();
        p.set_enabled(true);
        prof::install_thread(&p);
        alloc_count::reset_peak();
        let last = (t.run)();
        let snap = p.snapshot();
        let alloc = alloc_count::snapshot();
        prof::uninstall_thread();
        out.push(TargetReport {
            name: t.name.to_string(),
            events: last.events,
            best_eps: eps.iter().copied().fold(0.0, f64::max),
            eps: summarize(&eps),
            wall_s: summarize(&wall),
            prof: snap,
            alloc,
            fsync: SloStats::from_ms(last.fsync_ms),
        });
    }
    BenchReport {
        git_sha,
        reps,
        targets: out,
    }
}

/// The revision to stamp on a report: `BENCH_GIT_SHA` if set, else
/// `git rev-parse --short=12 HEAD`, else `"local"`.
pub fn git_sha() -> String {
    if let Ok(s) = std::env::var("BENCH_GIT_SHA") {
        let s = s.trim().to_string();
        if !s.is_empty() {
            return s;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "local".to_string())
}

/// A finite `f64` as a JSON number (non-finite pins to 0, matching the
/// trace exporter's convention).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn summary_json(s: &Summary) -> String {
    format!(
        r#"{{"n":{},"mean":{},"stddev":{},"ci95":{}}}"#,
        s.n,
        num(s.mean),
        num(s.stddev),
        num(s.ci95)
    )
}

fn summary_json_with_best(s: &Summary, best: f64) -> String {
    format!(
        r#"{{"n":{},"mean":{},"stddev":{},"ci95":{},"best":{}}}"#,
        s.n,
        num(s.mean),
        num(s.stddev),
        num(s.ci95),
        num(best)
    )
}

impl BenchReport {
    /// Serialize to the schema-stable `BENCH_*.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"git_sha\": \"{}\",\n  \"reps\": {},\n",
            sim_trace::chrome::escape_json(&self.git_sha),
            self.reps
        ));
        out.push_str(&format!(
            "  \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cores\": {}}},\n",
            std::env::consts::OS,
            std::env::consts::ARCH,
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        ));
        out.push_str(&format!(
            "  \"alloc_counting\": {},\n  \"targets\": {{\n",
            alloc_count::enabled()
        ));
        let mut first = true;
        for t in &self.targets {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    \"{}\": {{\n      \"events\": {},\n      \"events_per_sec\": {},\n      \"wall_s\": {},\n",
                sim_trace::chrome::escape_json(&t.name),
                t.events,
                summary_json_with_best(&t.eps, t.best_eps),
                summary_json(&t.wall_s),
            ));
            out.push_str(&format!(
                "      \"alloc\": {{\"enabled\": {}, \"allocs\": {}, \"frees\": {}, \"peak_bytes\": {}}},\n",
                t.alloc.enabled, t.alloc.allocs, t.alloc.frees, t.alloc.peak_bytes
            ));
            out.push_str("      \"phases\": {");
            let mut pfirst = true;
            for ps in &t.prof.phases {
                if !pfirst {
                    out.push_str(", ");
                }
                pfirst = false;
                out.push_str(&format!(
                    "\"{}\": {{\"calls\": {}, \"nanos\": {}}}",
                    ps.phase.name(),
                    ps.calls,
                    ps.nanos
                ));
            }
            out.push_str("},\n");
            out.push_str(&format!(
                "      \"queue\": {{\"depth_max\": {}, \"depth_mean\": {}, \"mq_staged_max\": {}, \"mq_inflight_max\": {}}},\n",
                t.prof.depth_max,
                num(t.prof.depth_mean),
                t.prof.mq_staged_max,
                t.prof.mq_inflight_max
            ));
            out.push_str(&format!(
                "      \"fsync_ms\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}\n    }}",
                t.fsync.count,
                num(t.fsync.p50),
                num(t.fsync.p99),
                num(t.fsync.p999),
                num(t.fsync.max)
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Human-readable panel summary (what `runner bench` prints).
    pub fn render(&self) -> String {
        let mut out = format!(
            "bench panel @ {} ({} rep(s); alloc counting {})\n",
            self.git_sha,
            self.reps,
            if alloc_count::enabled() { "on" } else { "off" }
        );
        out.push_str(&format!(
            "{:<14} {:>12} {:>12} {:>8} {:>10} {:>12} {:>12}\n",
            "target", "best ev/s", "mean ev/s", "±ci95", "wall s", "events", "fsync p99 ms"
        ));
        for t in &self.targets {
            out.push_str(&format!(
                "{:<14} {:>12.0} {:>12.0} {:>8.0} {:>10.3} {:>12} {:>12.3}\n",
                t.name, t.best_eps, t.eps.mean, t.eps.ci95, t.wall_s.mean, t.events, t.fsync.p99
            ));
        }
        out
    }
}

/// The per-phase table `runner profile` prints.
pub fn render_profile(name: &str, snap: &ProfSnapshot, alloc: &AllocSnapshot) -> String {
    let total = snap.total_nanos().max(1);
    let mut out = format!("profile: {name}\n");
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>10} {:>7}\n",
        "phase", "calls", "total ms", "mean ns", "share"
    ));
    for ps in &snap.phases {
        out.push_str(&format!(
            "{:<12} {:>12} {:>12.3} {:>10.0} {:>6.1}%\n",
            ps.phase.name(),
            ps.calls,
            ps.nanos as f64 / 1e6,
            ps.mean_nanos(),
            100.0 * ps.nanos as f64 / total as f64
        ));
    }
    out.push_str(&format!(
        "queue depth: max {} mean {:.1}; mq staged max {} in-flight max {}\n",
        snap.depth_max, snap.depth_mean, snap.mq_staged_max, snap.mq_inflight_max
    ));
    if alloc.enabled {
        out.push_str(&format!(
            "allocations: {} allocs, {} frees, peak {} bytes\n",
            alloc.allocs, alloc.frees, alloc.peak_bytes
        ));
    } else {
        out.push_str("allocations: counting off (build with --features sim-sweep/alloc-count)\n");
    }
    out
}

/// `runner profile`'s JSON sidecar for one figure run.
pub fn profile_json(
    name: &str,
    snap: &ProfSnapshot,
    alloc: &AllocSnapshot,
    events: u64,
    wall_s: f64,
) -> String {
    let mut out = format!(
        "{{\n  \"schema\": \"profile-v1\",\n  \"target\": \"{}\",\n  \"events\": {events},\n  \"wall_s\": {},\n  \"phases\": {{",
        sim_trace::chrome::escape_json(name),
        num(wall_s)
    );
    let mut first = true;
    for ps in &snap.phases {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!(
            "\"{}\": {{\"calls\": {}, \"nanos\": {}}}",
            ps.phase.name(),
            ps.calls,
            ps.nanos
        ));
    }
    out.push_str(&format!(
        "}},\n  \"queue\": {{\"depth_max\": {}, \"depth_mean\": {}, \"mq_staged_max\": {}, \"mq_inflight_max\": {}}},\n",
        snap.depth_max,
        num(snap.depth_mean),
        snap.mq_staged_max,
        snap.mq_inflight_max
    ));
    out.push_str(&format!(
        "  \"alloc\": {{\"enabled\": {}, \"allocs\": {}, \"frees\": {}, \"peak_bytes\": {}}}\n}}\n",
        alloc.enabled, alloc.allocs, alloc.frees, alloc.peak_bytes
    ));
    out
}

/// The verdict of holding a report against a baseline.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Hard failures: events/sec fell > [`REGRESSION_FRACTION`] below
    /// the baseline, outside both 95% intervals — or the panels
    /// mismatch (a target exists on only one side, so the gate would
    /// otherwise pass without measuring it).
    pub regressions: Vec<String>,
    /// Soft signals: deterministic event counts moved (a model change —
    /// goldens gate correctness, so this only warns), or a baseline
    /// entry with no throughput sample.
    pub warnings: Vec<String>,
    /// Targets that passed, with their throughput ratio.
    pub ok: Vec<String>,
}

impl Comparison {
    /// True when no regression fired.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Render for the CI log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            out.push_str(&format!("REGRESSION: {r}\n"));
        }
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        for o in &self.ok {
            out.push_str(&format!("ok: {o}\n"));
        }
        out
    }
}

/// Compare `cur` against a parsed baseline `BENCH_*.json` document.
///
/// The throughput gate compares best-of-reps against the baseline's
/// `best` (falling back to its mean for baselines that predate the
/// field): on a shared host the mean soaks up other tenants' scheduler
/// noise, while the fastest rep tracks what the code can actually do.
/// A target present on only one side is a hard panel-mismatch failure,
/// not a skip — a silently missing target would let the gate pass while
/// measuring nothing.
pub fn compare(cur: &BenchReport, baseline: &Value) -> Comparison {
    let mut cmp = Comparison::default();
    if baseline.get("schema").and_then(|v| v.as_str()) != Some(SCHEMA) {
        cmp.warnings.push(format!(
            "baseline schema is {:?}, expected {SCHEMA:?}; skipping comparison",
            baseline.get("schema").and_then(|v| v.as_str())
        ));
        return cmp;
    }
    let Some(base_targets) = baseline.get("targets") else {
        cmp.warnings
            .push("baseline has no targets object; skipping comparison".to_string());
        return cmp;
    };
    for t in &cur.targets {
        let Some(base) = base_targets.get(&t.name) else {
            cmp.regressions.push(format!(
                "panel mismatch: target {} missing from baseline \
                 (re-record with UPDATE_BASELINE=1)",
                t.name
            ));
            continue;
        };
        let base_eps = base.get("events_per_sec");
        let base_best = base_eps
            .and_then(|v| v.get("best"))
            .and_then(|v| v.as_f64())
            .filter(|&b| b > 0.0);
        let base_mean = base_eps
            .and_then(|v| v.get("mean"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let base_ci = base_eps
            .and_then(|v| v.get("ci95"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        if let Some(base_events) = base.get("events").and_then(|v| v.as_u64()) {
            if base_events != t.events {
                cmp.warnings.push(format!(
                    "model shift: {} deterministic event count {} -> {} \
                     (goldens gate behaviour; throughput compared anyway)",
                    t.name, base_events, t.events
                ));
            }
        }
        let base_val = base_best.unwrap_or(base_mean);
        if base_val <= 0.0 {
            cmp.warnings
                .push(format!("baseline {} has no throughput sample", t.name));
            continue;
        }
        let cur_val = if t.best_eps > 0.0 {
            t.best_eps
        } else {
            t.eps.mean
        };
        let floor = (1.0 - REGRESSION_FRACTION) * base_val;
        if cur_val + t.eps.ci95 + base_ci < floor {
            cmp.regressions.push(format!(
                "{}: best {:.0} ev/s vs baseline {:.0} ev/s ({:+.1}%, gate -{:.0}% outside CI)",
                t.name,
                cur_val,
                base_val,
                100.0 * (cur_val / base_val - 1.0),
                100.0 * REGRESSION_FRACTION
            ));
        } else {
            cmp.ok.push(format!(
                "{}: best {:.0} ev/s vs baseline {:.0} ev/s ({:+.1}%)",
                t.name,
                cur_val,
                base_val,
                100.0 * (cur_val / base_val - 1.0)
            ));
        }
    }
    // The reverse direction: a baseline target this run never measured.
    if let Some(entries) = base_targets.as_obj() {
        for (name, _) in entries {
            if !cur.targets.iter().any(|t| &t.name == name) {
                cmp.regressions.push(format!(
                    "panel mismatch: baseline target {name} missing from this run"
                ));
            }
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_trace::json;

    fn report(mean: f64, ci95: f64, events: u64) -> BenchReport {
        let eps = Summary {
            n: 3,
            mean,
            ci95,
            ..Summary::default()
        };
        BenchReport {
            git_sha: "test".to_string(),
            reps: 3,
            targets: vec![TargetReport {
                name: "fig01".to_string(),
                events,
                eps,
                best_eps: mean,
                wall_s: summarize(&[0.5, 0.6, 0.55]),
                prof: Profiler::new().snapshot(),
                alloc: AllocSnapshot::default(),
                fsync: SloStats::from_ms(vec![1.0, 2.0, 3.0]),
            }],
        }
    }

    #[test]
    fn report_json_round_trips() {
        let r = report(1000.0, 50.0, 42);
        let doc = json::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        let t = doc.get("targets").unwrap().get("fig01").unwrap();
        assert_eq!(t.get("events").unwrap().as_u64(), Some(42));
        assert_eq!(
            t.get("events_per_sec")
                .unwrap()
                .get("mean")
                .unwrap()
                .as_f64(),
            Some(1000.0)
        );
        assert!(t.get("phases").unwrap().get("event_pop").is_some());
        assert_eq!(
            t.get("fsync_ms").unwrap().get("count").unwrap().as_u64(),
            Some(3)
        );
    }

    #[test]
    fn compare_fails_only_outside_the_interval() {
        let base = json::parse(&report(1000.0, 20.0, 42).to_json()).unwrap();
        // 40% down: regression.
        let c = compare(&report(600.0, 10.0, 42), &base);
        assert!(!c.passed());
        // 10% down: inside the 15% gate.
        let c = compare(&report(900.0, 10.0, 42), &base);
        assert!(c.passed(), "{:?}", c.regressions);
        // 16% down but wide CIs overlap the floor: passes.
        let c = compare(&report(840.0, 30.0, 42), &base);
        assert!(c.passed(), "{:?}", c.regressions);
        // 18% down with tight CIs (841 < the 850 floor): fails.
        let c = compare(&report(820.0, 1.0, 42), &base);
        assert!(!c.passed());
    }

    #[test]
    fn compare_fails_on_panel_mismatch_in_either_direction() {
        let base = json::parse(&report(1000.0, 20.0, 42).to_json()).unwrap();
        let mut cur = report(1000.0, 20.0, 43);
        cur.targets[0].name = "fig99".to_string();
        // fig99 has no baseline AND baseline fig01 went unmeasured: both
        // directions fail hard instead of silently skipping.
        let c = compare(&cur, &base);
        assert!(!c.passed());
        assert!(c
            .regressions
            .iter()
            .any(|r| r.contains("fig99") && r.contains("missing from baseline")));
        assert!(c
            .regressions
            .iter()
            .any(|r| r.contains("fig01") && r.contains("missing from this run")));
    }

    #[test]
    fn compare_warns_on_model_shift() {
        let base = json::parse(&report(1000.0, 20.0, 42).to_json()).unwrap();
        let c = compare(&report(1000.0, 20.0, 43), &base);
        assert!(c.warnings.iter().any(|w| w.contains("model shift")));
        assert!(c.passed());
    }

    #[test]
    fn compare_uses_best_of_reps_and_falls_back_to_mean() {
        // Baseline whose best (1200) beats its mean (1000): the gate
        // floor tracks best.
        let mut base_rep = report(1000.0, 1.0, 42);
        base_rep.targets[0].best_eps = 1200.0;
        let base = json::parse(&base_rep.to_json()).unwrap();
        // Current best 900 < 0.85 * 1200 = 1020: regression even though
        // 900 is within 15% of the baseline *mean*.
        let mut cur = report(880.0, 1.0, 42);
        cur.targets[0].best_eps = 900.0;
        assert!(!compare(&cur, &base).passed());
        // Best 1100 clears the floor.
        cur.targets[0].best_eps = 1100.0;
        assert!(compare(&cur, &base).passed());
        // A baseline predating the `best` field (strip it by rebuilding
        // JSON without it) falls back to the mean.
        let legacy = base_rep.to_json().replace(",\"best\":1200}", "}");
        let legacy = json::parse(&legacy).unwrap();
        cur.targets[0].best_eps = 900.0;
        assert!(
            compare(&cur, &legacy).passed(),
            "900 vs mean 1000 is inside the 15% gate"
        );
    }

    #[test]
    fn slo_stats_from_sample() {
        let s = SloStats::from_ms(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 4.0);
        let empty = SloStats::from_ms(Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p999, 0.0);
    }
}
