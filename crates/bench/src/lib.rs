//! The standard bench harness behind `runner bench`.
//!
//! A fixed panel of targets (fig01, fig01_qd at several depths, a
//! `check` fuzz batch) runs `reps` times each with the self-profiler
//! and (when the `alloc-count` feature is on anywhere in the build)
//! the counting allocator installed. Each target reports events/sec
//! and wall time as mean ± 95% CI over the reps, a per-phase
//! wall-clock breakdown, peak allocations, and simulated fsync-latency
//! SLO percentiles. The report serializes to `BENCH_<git-sha>.json`
//! (schema [`SCHEMA`]) so CI can chart a perf trajectory and
//! [`compare`] a PR against the committed baseline.
//!
//! Everything the sim computes stays deterministic: the profiler and
//! timer read wall clocks on the host side only, so bench runs produce
//! the same simulated results as untimed runs, byte for byte.
//!
//! Hand-rolled micro benches live in `benches/`; this module is the
//! schema-stable harness the regression gate consumes.

use std::time::Instant;

use sim_core::alloc_count::{self, AllocSnapshot};
use sim_core::prof::{self, ProfSnapshot, Profiler};
use sim_core::stats::{summarize, Percentiles, Summary};
use sim_trace::json::Value;

/// Report schema identifier; bump when the JSON shape changes.
pub const SCHEMA: &str = "bench-v1";

/// Regression gate: fail when events/sec drops more than this fraction
/// below the baseline mean, outside both confidence intervals.
pub const REGRESSION_FRACTION: f64 = 0.15;

/// What one run of a bench target hands back to the harness.
#[derive(Debug, Clone, Default)]
pub struct RunOutput {
    /// Events the simulation processed.
    pub events: u64,
    /// Completed simulated fsync latencies, milliseconds.
    pub fsync_ms: Vec<f64>,
}

/// One named workload in the panel.
pub struct BenchTarget {
    /// Stable key in the report (`fig01`, `fig01_qd_d8`, `check`, ...).
    pub name: &'static str,
    /// Runs the workload once, from a fresh world.
    pub run: Box<dyn Fn() -> RunOutput>,
}

/// Simulated fsync-latency SLO percentiles (nearest-rank).
#[derive(Debug, Clone, Copy, Default)]
pub struct SloStats {
    /// Observations.
    pub count: usize,
    /// Median (ms).
    pub p50: f64,
    /// 99th percentile (ms).
    pub p99: f64,
    /// 99.9th percentile (ms).
    pub p999: f64,
    /// Largest observation (ms).
    pub max: f64,
}

impl SloStats {
    /// Percentiles of a latency sample (zeros when empty).
    pub fn from_ms(ms: Vec<f64>) -> Self {
        let count = ms.len();
        let p = Percentiles::new(ms);
        SloStats {
            count,
            p50: p.p50(),
            p99: p.p99(),
            p999: p.p999(),
            max: p.max(),
        }
    }
}

/// Everything measured for one panel target.
#[derive(Debug, Clone)]
pub struct TargetReport {
    /// Target key.
    pub name: String,
    /// Deterministic event count of one run (identical across reps).
    pub events: u64,
    /// Events per wall-clock second over the reps.
    pub eps: Summary,
    /// Wall seconds per run over the reps.
    pub wall_s: Summary,
    /// Per-phase wall-clock attribution from the final rep.
    pub prof: ProfSnapshot,
    /// Allocator counters from the final rep (zeros when the
    /// `alloc-count` feature is off).
    pub alloc: AllocSnapshot,
    /// Simulated fsync SLO percentiles from the final rep.
    pub fsync: SloStats,
}

/// A full panel run, ready to serialize.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Git revision the run measured (see [`git_sha`]).
    pub git_sha: String,
    /// Timed repetitions per target.
    pub reps: usize,
    /// One entry per panel target, in panel order.
    pub targets: Vec<TargetReport>,
}

/// Run every target `reps` times (plus one untimed warmup) with the
/// self-profiler installed on this thread, and collect the report.
pub fn run_panel(targets: &[BenchTarget], reps: usize, git_sha: String) -> BenchReport {
    let reps = reps.max(1);
    let mut out = Vec::with_capacity(targets.len());
    for t in targets {
        let p = Profiler::new();
        p.set_enabled(true);
        prof::install_thread(&p);
        let _ = (t.run)(); // warmup: page in code and allocator arenas
        let mut eps = Vec::with_capacity(reps);
        let mut wall = Vec::with_capacity(reps);
        let mut last = RunOutput::default();
        for _ in 0..reps {
            p.reset();
            alloc_count::reset_peak();
            let t0 = Instant::now();
            let run = (t.run)();
            let dt = t0.elapsed().as_secs_f64();
            wall.push(dt);
            eps.push(if dt > 0.0 {
                run.events as f64 / dt
            } else {
                0.0
            });
            last = run;
        }
        let snap = p.snapshot();
        let alloc = alloc_count::snapshot();
        prof::uninstall_thread();
        out.push(TargetReport {
            name: t.name.to_string(),
            events: last.events,
            eps: summarize(&eps),
            wall_s: summarize(&wall),
            prof: snap,
            alloc,
            fsync: SloStats::from_ms(last.fsync_ms),
        });
    }
    BenchReport {
        git_sha,
        reps,
        targets: out,
    }
}

/// The revision to stamp on a report: `BENCH_GIT_SHA` if set, else
/// `git rev-parse --short=12 HEAD`, else `"local"`.
pub fn git_sha() -> String {
    if let Ok(s) = std::env::var("BENCH_GIT_SHA") {
        let s = s.trim().to_string();
        if !s.is_empty() {
            return s;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "local".to_string())
}

/// A finite `f64` as a JSON number (non-finite pins to 0, matching the
/// trace exporter's convention).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn summary_json(s: &Summary) -> String {
    format!(
        r#"{{"n":{},"mean":{},"stddev":{},"ci95":{}}}"#,
        s.n,
        num(s.mean),
        num(s.stddev),
        num(s.ci95)
    )
}

impl BenchReport {
    /// Serialize to the schema-stable `BENCH_*.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"git_sha\": \"{}\",\n  \"reps\": {},\n",
            sim_trace::chrome::escape_json(&self.git_sha),
            self.reps
        ));
        out.push_str(&format!(
            "  \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cores\": {}}},\n",
            std::env::consts::OS,
            std::env::consts::ARCH,
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        ));
        out.push_str(&format!(
            "  \"alloc_counting\": {},\n  \"targets\": {{\n",
            alloc_count::enabled()
        ));
        let mut first = true;
        for t in &self.targets {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    \"{}\": {{\n      \"events\": {},\n      \"events_per_sec\": {},\n      \"wall_s\": {},\n",
                sim_trace::chrome::escape_json(&t.name),
                t.events,
                summary_json(&t.eps),
                summary_json(&t.wall_s),
            ));
            out.push_str(&format!(
                "      \"alloc\": {{\"enabled\": {}, \"allocs\": {}, \"frees\": {}, \"peak_bytes\": {}}},\n",
                t.alloc.enabled, t.alloc.allocs, t.alloc.frees, t.alloc.peak_bytes
            ));
            out.push_str("      \"phases\": {");
            let mut pfirst = true;
            for ps in &t.prof.phases {
                if !pfirst {
                    out.push_str(", ");
                }
                pfirst = false;
                out.push_str(&format!(
                    "\"{}\": {{\"calls\": {}, \"nanos\": {}}}",
                    ps.phase.name(),
                    ps.calls,
                    ps.nanos
                ));
            }
            out.push_str("},\n");
            out.push_str(&format!(
                "      \"queue\": {{\"depth_max\": {}, \"depth_mean\": {}, \"mq_staged_max\": {}, \"mq_inflight_max\": {}}},\n",
                t.prof.depth_max,
                num(t.prof.depth_mean),
                t.prof.mq_staged_max,
                t.prof.mq_inflight_max
            ));
            out.push_str(&format!(
                "      \"fsync_ms\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}\n    }}",
                t.fsync.count,
                num(t.fsync.p50),
                num(t.fsync.p99),
                num(t.fsync.p999),
                num(t.fsync.max)
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Human-readable panel summary (what `runner bench` prints).
    pub fn render(&self) -> String {
        let mut out = format!(
            "bench panel @ {} ({} rep(s); alloc counting {})\n",
            self.git_sha,
            self.reps,
            if alloc_count::enabled() { "on" } else { "off" }
        );
        out.push_str(&format!(
            "{:<14} {:>14} {:>10} {:>10} {:>12} {:>12}\n",
            "target", "events/s", "±ci95", "wall s", "events", "fsync p99 ms"
        ));
        for t in &self.targets {
            out.push_str(&format!(
                "{:<14} {:>14.0} {:>10.0} {:>10.3} {:>12} {:>12.3}\n",
                t.name, t.eps.mean, t.eps.ci95, t.wall_s.mean, t.events, t.fsync.p99
            ));
        }
        out
    }
}

/// The per-phase table `runner profile` prints.
pub fn render_profile(name: &str, snap: &ProfSnapshot, alloc: &AllocSnapshot) -> String {
    let total = snap.total_nanos().max(1);
    let mut out = format!("profile: {name}\n");
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>10} {:>7}\n",
        "phase", "calls", "total ms", "mean ns", "share"
    ));
    for ps in &snap.phases {
        out.push_str(&format!(
            "{:<12} {:>12} {:>12.3} {:>10.0} {:>6.1}%\n",
            ps.phase.name(),
            ps.calls,
            ps.nanos as f64 / 1e6,
            ps.mean_nanos(),
            100.0 * ps.nanos as f64 / total as f64
        ));
    }
    out.push_str(&format!(
        "queue depth: max {} mean {:.1}; mq staged max {} in-flight max {}\n",
        snap.depth_max, snap.depth_mean, snap.mq_staged_max, snap.mq_inflight_max
    ));
    if alloc.enabled {
        out.push_str(&format!(
            "allocations: {} allocs, {} frees, peak {} bytes\n",
            alloc.allocs, alloc.frees, alloc.peak_bytes
        ));
    } else {
        out.push_str("allocations: counting off (build with --features sim-sweep/alloc-count)\n");
    }
    out
}

/// `runner profile`'s JSON sidecar for one figure run.
pub fn profile_json(
    name: &str,
    snap: &ProfSnapshot,
    alloc: &AllocSnapshot,
    events: u64,
    wall_s: f64,
) -> String {
    let mut out = format!(
        "{{\n  \"schema\": \"profile-v1\",\n  \"target\": \"{}\",\n  \"events\": {events},\n  \"wall_s\": {},\n  \"phases\": {{",
        sim_trace::chrome::escape_json(name),
        num(wall_s)
    );
    let mut first = true;
    for ps in &snap.phases {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!(
            "\"{}\": {{\"calls\": {}, \"nanos\": {}}}",
            ps.phase.name(),
            ps.calls,
            ps.nanos
        ));
    }
    out.push_str(&format!(
        "}},\n  \"queue\": {{\"depth_max\": {}, \"depth_mean\": {}, \"mq_staged_max\": {}, \"mq_inflight_max\": {}}},\n",
        snap.depth_max,
        num(snap.depth_mean),
        snap.mq_staged_max,
        snap.mq_inflight_max
    ));
    out.push_str(&format!(
        "  \"alloc\": {{\"enabled\": {}, \"allocs\": {}, \"frees\": {}, \"peak_bytes\": {}}}\n}}\n",
        alloc.enabled, alloc.allocs, alloc.frees, alloc.peak_bytes
    ));
    out
}

/// The verdict of holding a report against a baseline.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Hard failures: events/sec fell > [`REGRESSION_FRACTION`] below
    /// the baseline mean, outside both 95% intervals.
    pub regressions: Vec<String>,
    /// Soft signals: deterministic event counts moved (a model change —
    /// goldens gate correctness, so this only warns), targets missing
    /// from one side, or a baseline that predates a panel target.
    pub warnings: Vec<String>,
    /// Targets that passed, with their throughput ratio.
    pub ok: Vec<String>,
}

impl Comparison {
    /// True when no regression fired.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Render for the CI log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            out.push_str(&format!("REGRESSION: {r}\n"));
        }
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        for o in &self.ok {
            out.push_str(&format!("ok: {o}\n"));
        }
        out
    }
}

/// Compare `cur` against a parsed baseline `BENCH_*.json` document.
pub fn compare(cur: &BenchReport, baseline: &Value) -> Comparison {
    let mut cmp = Comparison::default();
    if baseline.get("schema").and_then(|v| v.as_str()) != Some(SCHEMA) {
        cmp.warnings.push(format!(
            "baseline schema is {:?}, expected {SCHEMA:?}; skipping comparison",
            baseline.get("schema").and_then(|v| v.as_str())
        ));
        return cmp;
    }
    let Some(base_targets) = baseline.get("targets") else {
        cmp.warnings
            .push("baseline has no targets object; skipping comparison".to_string());
        return cmp;
    };
    for t in &cur.targets {
        let Some(base) = base_targets.get(&t.name) else {
            cmp.warnings.push(format!(
                "target {} not in baseline (new panel entry?)",
                t.name
            ));
            continue;
        };
        let base_mean = base
            .get("events_per_sec")
            .and_then(|v| v.get("mean"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let base_ci = base
            .get("events_per_sec")
            .and_then(|v| v.get("ci95"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        if let Some(base_events) = base.get("events").and_then(|v| v.as_u64()) {
            if base_events != t.events {
                cmp.warnings.push(format!(
                    "model shift: {} deterministic event count {} -> {} \
                     (goldens gate behaviour; throughput compared anyway)",
                    t.name, base_events, t.events
                ));
            }
        }
        if base_mean <= 0.0 {
            cmp.warnings
                .push(format!("baseline {} has no throughput sample", t.name));
            continue;
        }
        let floor = (1.0 - REGRESSION_FRACTION) * base_mean;
        if t.eps.mean + t.eps.ci95 + base_ci < floor {
            cmp.regressions.push(format!(
                "{}: {:.0} ev/s vs baseline {:.0} ev/s ({:+.1}%, gate -{:.0}% outside CI)",
                t.name,
                t.eps.mean,
                base_mean,
                100.0 * (t.eps.mean / base_mean - 1.0),
                100.0 * REGRESSION_FRACTION
            ));
        } else {
            cmp.ok.push(format!(
                "{}: {:.0} ev/s vs baseline {:.0} ev/s ({:+.1}%)",
                t.name,
                t.eps.mean,
                base_mean,
                100.0 * (t.eps.mean / base_mean - 1.0)
            ));
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_trace::json;

    fn report(mean: f64, ci95: f64, events: u64) -> BenchReport {
        let eps = Summary {
            n: 3,
            mean,
            ci95,
            ..Summary::default()
        };
        BenchReport {
            git_sha: "test".to_string(),
            reps: 3,
            targets: vec![TargetReport {
                name: "fig01".to_string(),
                events,
                eps,
                wall_s: summarize(&[0.5, 0.6, 0.55]),
                prof: Profiler::new().snapshot(),
                alloc: AllocSnapshot::default(),
                fsync: SloStats::from_ms(vec![1.0, 2.0, 3.0]),
            }],
        }
    }

    #[test]
    fn report_json_round_trips() {
        let r = report(1000.0, 50.0, 42);
        let doc = json::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        let t = doc.get("targets").unwrap().get("fig01").unwrap();
        assert_eq!(t.get("events").unwrap().as_u64(), Some(42));
        assert_eq!(
            t.get("events_per_sec")
                .unwrap()
                .get("mean")
                .unwrap()
                .as_f64(),
            Some(1000.0)
        );
        assert!(t.get("phases").unwrap().get("event_pop").is_some());
        assert_eq!(
            t.get("fsync_ms").unwrap().get("count").unwrap().as_u64(),
            Some(3)
        );
    }

    #[test]
    fn compare_fails_only_outside_the_interval() {
        let base = json::parse(&report(1000.0, 20.0, 42).to_json()).unwrap();
        // 40% down: regression.
        let c = compare(&report(600.0, 10.0, 42), &base);
        assert!(!c.passed());
        // 10% down: inside the 15% gate.
        let c = compare(&report(900.0, 10.0, 42), &base);
        assert!(c.passed(), "{:?}", c.regressions);
        // 16% down but wide CIs overlap the floor: passes.
        let c = compare(&report(840.0, 30.0, 42), &base);
        assert!(c.passed(), "{:?}", c.regressions);
        // 18% down with tight CIs (841 < the 850 floor): fails.
        let c = compare(&report(820.0, 1.0, 42), &base);
        assert!(!c.passed());
    }

    #[test]
    fn compare_warns_on_model_shift_and_missing_targets() {
        let base = json::parse(&report(1000.0, 20.0, 42).to_json()).unwrap();
        let mut cur = report(1000.0, 20.0, 43);
        cur.targets[0].name = "fig99".to_string();
        let c = compare(&cur, &base);
        assert!(c.passed());
        assert!(c.warnings.iter().any(|w| w.contains("not in baseline")));
        let c = compare(&report(1000.0, 20.0, 43), &base);
        assert!(c.warnings.iter().any(|w| w.contains("model shift")));
    }

    #[test]
    fn slo_stats_from_sample() {
        let s = SloStats::from_ms(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 4.0);
        let empty = SloStats::from_ms(Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p999, 0.0);
    }
}
