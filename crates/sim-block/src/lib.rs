#![warn(missing_docs)]
//! The block layer: request descriptors and the traditional block-level
//! scheduling framework (Figure 2a of the paper).
//!
//! A [`Request`] is what the file system or writeback path submits to the
//! block layer. It carries the *submitter* pid — all a classic block
//! scheduler can see — and, when the split framework is active, the
//! [`CauseSet`] of processes actually responsible. The gap between those
//! two fields is the paper's §2.3 argument in one struct.
//!
//! Elevators implement [`Elevator`]; this crate ships the three baselines
//! the paper compares against: [`Noop`], [`Cfq`] (Linux's Completely Fair
//! Queuing, with priority classes and anticipation) and [`BlockDeadline`]
//! (deadline + location queues, extended with per-process deadlines as in
//! §5.2).

pub mod cfq;
pub mod deadline;
pub mod mq;
pub mod noop;
pub mod sorted;

use sim_core::{BlockNo, CauseSet, Pid, RequestId, SimTime};
use sim_device::{DiskModel, DiskRequestShape, IoDir};

pub use cfq::{Cfq, CfqConfig};
pub use deadline::{BlockDeadline, DeadlineConfig};
pub use mq::{MqDispatch, QueueOccupancy};
pub use noop::Noop;

/// Linux-style I/O priority class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrioClass {
    /// Served before everything else.
    RealTime,
    /// The default class; levels 0 (high) – 7 (low).
    BestEffort,
    /// Served only when nothing else wants the disk (`ionice -c3`).
    Idle,
}

/// An I/O priority: class plus level (0 = highest within class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IoPrio {
    /// Scheduling class.
    pub class: PrioClass,
    /// Level within the class, 0..=7.
    pub level: u8,
}

impl IoPrio {
    /// The default priority Linux gives processes: best-effort level 4.
    pub const DEFAULT: IoPrio = IoPrio {
        class: PrioClass::BestEffort,
        level: 4,
    };

    /// Best-effort at the given level.
    pub fn best_effort(level: u8) -> IoPrio {
        IoPrio {
            class: PrioClass::BestEffort,
            level: level.min(7),
        }
    }

    /// The idle class.
    pub fn idle() -> IoPrio {
        IoPrio {
            class: PrioClass::Idle,
            level: 7,
        }
    }

    /// CFQ's service weight for this priority; higher is more share.
    /// Always at least 1 — every constructible priority gets a non-zero
    /// share, and the elevators' slice math relies on that.
    pub fn weight(&self) -> u32 {
        match self.class {
            PrioClass::RealTime => 16,
            PrioClass::BestEffort => 8 - self.level.min(7) as u32,
            PrioClass::Idle => 1,
        }
    }
}

impl Default for IoPrio {
    fn default() -> Self {
        IoPrio::DEFAULT
    }
}

/// A block-layer request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Unique id within one kernel.
    pub id: RequestId,
    /// Transfer direction.
    pub dir: IoDir,
    /// First block.
    pub start: BlockNo,
    /// Length in blocks.
    pub nblocks: u64,
    /// The task that submitted the request to the block layer. For
    /// delegated writes this is the writeback or journal task — which is
    /// exactly why block-only schedulers misaccount (§2.3.1).
    pub submitter: Pid,
    /// The processes actually responsible (split-framework tag). Empty
    /// when the split framework is not tagging.
    pub causes: CauseSet,
    /// Whether a task is synchronously waiting on this request (reads,
    /// fsync-critical writes). CFQ idles only on sync queues.
    pub sync: bool,
    /// Submitter's I/O priority as seen at submission time.
    pub ioprio: IoPrio,
    /// Absolute deadline, when the submitting context set one.
    pub deadline: Option<SimTime>,
    /// When the request entered the block layer.
    pub submitted_at: SimTime,
    /// The file this I/O belongs to, when known. Journal-log writes have
    /// none.
    pub file: Option<sim_core::FileId>,
    /// What kind of I/O this is, from the file system's point of view.
    pub kind: ReqKind,
}

/// The file-system role of a block request. Split schedulers use this to
/// tell data writeback apart from journal commits and metadata
/// checkpoints; classic block schedulers cannot see it (it is part of the
/// split framework's added information).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReqKind {
    /// Ordinary file data.
    #[default]
    Data,
    /// Journal log blocks (description/metadata/commit records).
    Journal,
    /// In-place metadata checkpoint writes.
    Metadata,
}

impl Request {
    /// The request's device-level shape.
    pub fn shape(&self) -> DiskRequestShape {
        DiskRequestShape::new(self.dir, self.start, self.nblocks)
    }

    /// Transfer size in bytes (saturating, like
    /// [`DiskRequestShape::bytes`]).
    pub fn bytes(&self) -> u64 {
        self.nblocks.saturating_mul(sim_core::PAGE_SIZE)
    }

    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        self.dir == IoDir::Read
    }
}

/// What an elevator wants the dispatch loop to do next.
#[derive(Debug)]
pub enum Dispatch {
    /// Send this request to the device now.
    Issue(Request),
    /// The elevator has (or expects) work but chooses to wait until the
    /// given instant (anticipation, deadline alignment). The kernel arms a
    /// timer and re-polls.
    WaitUntil(SimTime),
    /// Nothing to do.
    Idle,
}

/// The block-level scheduling framework: the interface Linux exposes to
/// elevators, reproduced. The split framework reuses these hooks unchanged
/// (Table 2, "Origin: block").
pub trait Elevator {
    /// A request entered the block layer.
    fn add(&mut self, req: Request, now: SimTime);

    /// The device is idle; choose what to do. `dev` allows cost peeking.
    fn dispatch(&mut self, now: SimTime, dev: &dyn DiskModel) -> Dispatch;

    /// A previously issued request completed.
    fn completed(&mut self, req: &Request, now: SimTime);

    /// Number of requests currently queued (not yet issued).
    fn queued(&self) -> usize;

    /// Scheduler name for reports.
    fn name(&self) -> &'static str;

    /// Self-audit the elevator's internal ledgers, returning one message
    /// per violated invariant. `quiesced` is true when the caller knows no
    /// request is queued or in flight, enabling stricter emptiness checks.
    /// The default implementation reports nothing.
    fn audit(&self, quiesced: bool) -> Vec<String> {
        let _ = quiesced;
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ioprio_weights_are_monotonic() {
        let mut last = u32::MAX;
        for level in 0..8 {
            let w = IoPrio::best_effort(level).weight();
            assert!(w < last);
            assert!(w >= 1, "every priority keeps a non-zero share");
            last = w;
        }
        assert_eq!(IoPrio::idle().weight(), 1);
        assert!(
            IoPrio {
                class: PrioClass::RealTime,
                level: 0
            }
            .weight()
                > IoPrio::best_effort(0).weight()
        );
    }

    #[test]
    fn request_shape_roundtrip() {
        let r = Request {
            id: RequestId(1),
            dir: IoDir::Write,
            start: BlockNo(100),
            nblocks: 8,
            submitter: Pid(2),
            causes: CauseSet::of(Pid(3)),
            sync: false,
            ioprio: IoPrio::DEFAULT,
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: Default::default(),
        };
        assert_eq!(r.bytes(), 32768);
        assert_eq!(r.shape().end(), BlockNo(108));
        assert!(!r.is_read());
    }
}
