//! A location-sorted request queue with C-SCAN ("one-way elevator")
//! selection — the building block of CFQ's per-queue ordering and
//! Block-Deadline's sorted lists.

use std::collections::VecDeque;

use sim_core::{BlockNo, RequestId};

use crate::Request;

/// Requests ordered by starting block; pops the next request at or after a
/// sweep position, wrapping to the lowest block when the sweep passes the
/// end (C-SCAN).
///
/// Requests live in a recycled slab; ordering is a deque of slab indices
/// sorted by `(start, id)`. The common traffic shapes — writeback floods
/// whose delayed allocation hands out ascending blocks, and a C-SCAN sweep
/// that drains from the low end — hit the deque's O(1) ends, and the
/// retained capacity means a warmed-up queue allocates nothing.
#[derive(Debug, Default)]
pub struct SortedQueue {
    /// `(start, id, slab index)` sorted ascending — keys are inline so the
    /// binary search never chases into the slab.
    order: VecDeque<(BlockNo, RequestId, u32)>,
    slab: Vec<Option<Request>>,
    free: Vec<u32>,
}

impl SortedQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Position of the first entry with key `>= key`, in `[0, len]`.
    fn lower_bound(&self, key: (BlockNo, RequestId)) -> usize {
        self.order.partition_point(|&(b, id, _)| (b, id) < key)
    }

    /// Insert a request.
    pub fn insert(&mut self, req: Request) {
        let key = (req.start, req.id);
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(req);
                i
            }
            None => {
                self.slab.push(Some(req));
                // Keep the free list's capacity ahead of the slab: every
                // slab index may eventually be retired through `free.push`,
                // and growing here (insert side, warmup) instead of there
                // (drain side) is what keeps a draining queue
                // allocation-free long after its high-water mark.
                self.free.reserve(self.slab.len() - self.free.len());
                (self.slab.len() - 1) as u32
            }
        };
        let at = self.lower_bound(key);
        self.order.insert(at, (key.0, key.1, i));
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Index into `order` of the next request at or after `pos`, wrapping
    /// around to the lowest block (C-SCAN).
    fn cscan_at(&self, pos: BlockNo) -> Option<usize> {
        if self.order.is_empty() {
            return None;
        }
        let at = self.lower_bound((pos, RequestId(0)));
        Some(if at == self.order.len() { 0 } else { at })
    }

    /// Peek the next request at or after `pos`, wrapping around.
    pub fn peek_cscan(&self, pos: BlockNo) -> Option<&Request> {
        let at = self.cscan_at(pos)?;
        self.slab[self.order[at].2 as usize].as_ref()
    }

    /// Pop the next request at or after `pos`, wrapping around.
    pub fn pop_cscan(&mut self, pos: BlockNo) -> Option<Request> {
        let at = self.cscan_at(pos)?;
        self.take_at(at)
    }

    /// Pop the lowest-addressed request.
    pub fn pop_first(&mut self) -> Option<Request> {
        if self.order.is_empty() {
            return None;
        }
        self.take_at(0)
    }

    /// Remove a specific request by id and start block.
    pub fn remove(&mut self, start: BlockNo, id: RequestId) -> Option<Request> {
        let at = self.lower_bound((start, id));
        match self.order.get(at) {
            Some(&(b, rid, _)) if (b, rid) == (start, id) => self.take_at(at),
            _ => None,
        }
    }

    fn take_at(&mut self, at: usize) -> Option<Request> {
        let (_, _, i) = self.order.remove(at)?;
        self.free.push(i);
        self.slab[i as usize].take()
    }

    /// Iterate in block order.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.order.iter().map(|&(_, _, i)| {
            self.slab[i as usize]
                .as_ref()
                .expect("indexed slot is live")
        })
    }
}

/// A FIFO of request ids with their queue-entry deadline, used for the
/// expiry lists in Block-Deadline.
#[derive(Debug, Default)]
pub struct FifoQueue {
    entries: std::collections::VecDeque<(sim_core::SimTime, BlockNo, RequestId)>,
}

impl FifoQueue {
    /// Empty FIFO.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an entry expiring at `deadline`.
    pub fn push(&mut self, deadline: sim_core::SimTime, start: BlockNo, id: RequestId) {
        self.entries.push_back((deadline, start, id));
    }

    /// The earliest deadline in the FIFO, if any.
    pub fn front_deadline(&self) -> Option<sim_core::SimTime> {
        self.entries.front().map(|e| e.0)
    }

    /// Pop the front entry.
    pub fn pop(&mut self) -> Option<(sim_core::SimTime, BlockNo, RequestId)> {
        self.entries.pop_front()
    }

    /// Drop a specific id (after it was dispatched from the sorted queue).
    pub fn remove_id(&mut self, id: RequestId) {
        self.entries.retain(|e| e.2 != id);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{CauseSet, Pid, SimTime};
    use sim_device::IoDir;

    fn req(id: u64, start: u64) -> Request {
        Request {
            id: RequestId(id),
            dir: IoDir::Read,
            start: BlockNo(start),
            nblocks: 1,
            submitter: Pid(1),
            causes: CauseSet::empty(),
            sync: true,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: Default::default(),
        }
    }

    #[test]
    fn cscan_sweeps_forward_then_wraps() {
        let mut q = SortedQueue::new();
        for (id, b) in [(1, 100), (2, 50), (3, 200)] {
            q.insert(req(id, b));
        }
        assert_eq!(q.pop_cscan(BlockNo(60)).unwrap().start, BlockNo(100));
        assert_eq!(q.pop_cscan(BlockNo(101)).unwrap().start, BlockNo(200));
        // Past the end: wraps to the lowest.
        assert_eq!(q.pop_cscan(BlockNo(201)).unwrap().start, BlockNo(50));
        assert!(q.pop_cscan(BlockNo(0)).is_none());
    }

    #[test]
    fn duplicate_start_blocks_coexist() {
        let mut q = SortedQueue::new();
        q.insert(req(1, 100));
        q.insert(req(2, 100));
        assert_eq!(q.len(), 2);
        assert!(q.pop_cscan(BlockNo(0)).is_some());
        assert!(q.pop_cscan(BlockNo(0)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_preserves_order_and_removal() {
        let mut f = FifoQueue::new();
        f.push(SimTime::from_nanos(10), BlockNo(5), RequestId(1));
        f.push(SimTime::from_nanos(20), BlockNo(6), RequestId(2));
        assert_eq!(f.front_deadline(), Some(SimTime::from_nanos(10)));
        f.remove_id(RequestId(1));
        assert_eq!(f.front_deadline(), Some(SimTime::from_nanos(20)));
        assert_eq!(f.pop().unwrap().2, RequestId(2));
        assert!(f.is_empty());
    }
}
