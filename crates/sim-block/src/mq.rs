//! blk-mq-style dispatch: per-process software queues feeding bounded
//! hardware queue slots.
//!
//! The elevator stays in charge of *policy* — it decides which request
//! leaves the scheduler. This layer models the *plumbing* underneath
//! Linux's multi-queue block layer: issued requests land in their
//! submitter's software queue, and the queues drain round-robin into
//! the device's hardware slots as tags free up. It also keeps the
//! running [`QueueOccupancy`] picture that split schedulers read
//! through their hook context to see (and cap) a tenant's share of the
//! hardware queue.

use std::collections::VecDeque;

use sim_core::Pid;

use crate::Request;

/// A point-in-time picture of hardware-queue usage, maintained
/// incrementally by [`MqDispatch`] and exposed to scheduler hooks.
#[derive(Debug, Clone, Default)]
pub struct QueueOccupancy {
    /// Configured hardware queue depth.
    pub depth: u32,
    /// Requests inside the device (its queue or in service).
    pub in_flight: u32,
    /// Requests staged in software queues, not yet in the device.
    pub staged: u32,
    /// In-flight requests per submitter, in first-seen order.
    pub per_pid: Vec<(Pid, u32)>,
}

impl QueueOccupancy {
    /// In-flight requests attributed to `pid`.
    pub fn of(&self, pid: Pid) -> u32 {
        self.per_pid
            .iter()
            .find(|(p, _)| *p == pid)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// In-flight requests attributed to anyone but `pid`.
    pub fn of_others(&self, pid: Pid) -> u32 {
        self.in_flight.saturating_sub(self.of(pid))
    }
}

/// Per-process software queues in front of the hardware queue.
#[derive(Debug, Default)]
pub struct MqDispatch {
    /// `(pid, queue)` in first-submission order; the order is part of
    /// the deterministic round-robin.
    queues: Vec<(Pid, VecDeque<Request>)>,
    /// Round-robin cursor into `queues`.
    rr: usize,
    occ: QueueOccupancy,
    /// Total requests ever staged (observability; never read back by
    /// dispatch policy).
    submitted: u64,
    /// High watermark of `occ.staged` (observability).
    staged_peak: u32,
}

impl MqDispatch {
    /// A dispatch layer for a hardware queue of `depth` slots.
    pub fn new(depth: u32) -> Self {
        MqDispatch {
            queues: Vec::new(),
            rr: 0,
            occ: QueueOccupancy {
                depth,
                ..Default::default()
            },
            submitted: 0,
            staged_peak: 0,
        }
    }

    /// Requests staged in software queues.
    pub fn staged(&self) -> usize {
        self.occ.staged as usize
    }

    /// Total requests ever staged through [`MqDispatch::submit`].
    pub fn submitted_total(&self) -> u64 {
        self.submitted
    }

    /// High watermark of simultaneously staged requests — how deep the
    /// software queues ever got before the pump drained them (profiler
    /// occupancy reporting).
    pub fn staged_peak(&self) -> u32 {
        self.staged_peak
    }

    /// The live occupancy picture.
    pub fn occupancy(&self) -> &QueueOccupancy {
        &self.occ
    }

    /// Stage a request in its submitter's software queue.
    pub fn submit(&mut self, req: Request) {
        let pid = req.submitter;
        match self.queues.iter_mut().find(|(p, _)| *p == pid) {
            Some((_, q)) => q.push_back(req),
            None => {
                let mut q = VecDeque::new();
                q.push_back(req);
                self.queues.push((pid, q));
            }
        }
        self.occ.staged += 1;
        self.submitted += 1;
        if self.occ.staged > self.staged_peak {
            self.staged_peak = self.occ.staged;
        }
    }

    /// How many software queues exist (one per process ever seen).
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Advance the round-robin cursor by `by` queues without draining
    /// anything. The chaos plane uses this to perturb which process's
    /// software queue feeds the device next; per-process FIFO order
    /// within each queue is untouched.
    pub fn rotate(&mut self, by: usize) {
        if !self.queues.is_empty() {
            self.rr = (self.rr + by) % self.queues.len();
        }
    }

    /// Take the next staged request, round-robin across processes.
    pub fn pop_next(&mut self) -> Option<Request> {
        if self.queues.is_empty() {
            return None;
        }
        let n = self.queues.len();
        for i in 0..n {
            let idx = (self.rr + i) % n;
            if let Some(req) = self.queues[idx].1.pop_front() {
                self.rr = (idx + 1) % n;
                self.occ.staged -= 1;
                return Some(req);
            }
        }
        None
    }

    /// The device accepted a request from `pid` into a hardware slot.
    pub fn note_accepted(&mut self, pid: Pid) {
        self.occ.in_flight += 1;
        match self.occ.per_pid.iter_mut().find(|(p, _)| *p == pid) {
            Some((_, n)) => *n += 1,
            None => self.occ.per_pid.push((pid, 1)),
        }
    }

    /// A request from `pid` left the device (completed or failed).
    pub fn note_done(&mut self, pid: Pid) {
        self.occ.in_flight = self.occ.in_flight.saturating_sub(1);
        if let Some((_, n)) = self.occ.per_pid.iter_mut().find(|(p, _)| *p == pid) {
            *n = n.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IoPrio, ReqKind};
    use sim_core::{BlockNo, CauseSet, RequestId, SimTime};
    use sim_device::IoDir;

    fn req(id: u64, pid: u32) -> Request {
        Request {
            id: RequestId(id),
            dir: IoDir::Write,
            start: BlockNo(id * 8),
            nblocks: 8,
            submitter: Pid(pid),
            causes: CauseSet::of(Pid(pid)),
            sync: false,
            ioprio: IoPrio::DEFAULT,
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: ReqKind::Data,
        }
    }

    #[test]
    fn drains_round_robin_across_processes() {
        let mut mq = MqDispatch::new(4);
        mq.submit(req(1, 10));
        mq.submit(req(2, 10));
        mq.submit(req(3, 11));
        mq.submit(req(4, 11));
        assert_eq!(mq.staged(), 4);
        let order: Vec<u64> = std::iter::from_fn(|| mq.pop_next().map(|r| r.id.raw())).collect();
        assert_eq!(order, vec![1, 3, 2, 4], "alternates between pids");
        assert_eq!(mq.staged(), 0);
    }

    #[test]
    fn occupancy_tracks_per_pid_in_flight() {
        let mut mq = MqDispatch::new(8);
        mq.submit(req(1, 10));
        mq.submit(req(2, 11));
        let a = mq.pop_next().unwrap();
        mq.note_accepted(a.submitter);
        let b = mq.pop_next().unwrap();
        mq.note_accepted(b.submitter);
        assert_eq!(mq.occupancy().in_flight, 2);
        assert_eq!(mq.occupancy().of(Pid(10)), 1);
        assert_eq!(mq.occupancy().of_others(Pid(10)), 1);
        mq.note_done(Pid(10));
        assert_eq!(mq.occupancy().of(Pid(10)), 0);
        assert_eq!(mq.occupancy().in_flight, 1);
        assert_eq!(mq.occupancy().depth, 8);
    }

    #[test]
    fn rotate_shifts_which_queue_drains_next_but_keeps_per_pid_fifo() {
        let mut mq = MqDispatch::new(4);
        mq.submit(req(1, 10));
        mq.submit(req(2, 10));
        mq.submit(req(3, 11));
        mq.submit(req(4, 11));
        assert_eq!(mq.queue_count(), 2);
        mq.rotate(1);
        let order: Vec<u64> = std::iter::from_fn(|| mq.pop_next().map(|r| r.id.raw())).collect();
        // Pid 11's queue goes first now, but 1 before 2 and 3 before 4
        // still hold.
        assert_eq!(order, vec![3, 1, 4, 2]);
        // Rotating an empty dispatch is a no-op, not a division by zero.
        let mut empty = MqDispatch::new(1);
        empty.rotate(5);
        assert!(empty.pop_next().is_none());
    }

    #[test]
    fn empty_pop_is_none() {
        let mut mq = MqDispatch::new(1);
        assert!(mq.pop_next().is_none());
    }

    #[test]
    fn staged_peak_holds_the_high_watermark() {
        let mut mq = MqDispatch::new(4);
        mq.submit(req(1, 10));
        mq.submit(req(2, 11));
        mq.submit(req(3, 10));
        assert_eq!(mq.staged_peak(), 3);
        mq.pop_next();
        mq.pop_next();
        mq.submit(req(4, 12));
        // Draining does not lower the watermark; resubmitting below it
        // does not raise it.
        assert_eq!(mq.staged_peak(), 3);
        assert_eq!(mq.submitted_total(), 4);
        assert_eq!(mq.staged(), 2);
    }
}
