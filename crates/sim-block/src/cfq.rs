//! CFQ — Completely Fair Queuing, the Linux default elevator the paper
//! evaluates against.
//!
//! Faithful to the behaviours the paper's experiments exercise:
//!
//! * per-(task, sync/async) queues, served in round-robin time slices whose
//!   length is proportional to the task's I/O priority weight;
//! * the *submitter's* priority is all CFQ can see — delegated writeback
//!   I/O therefore lands in the writeback task's queue at best-effort
//!   level 4 regardless of who dirtied the data (Figure 3);
//! * an idle class that is served only when no other queue has requests —
//!   which cannot contain write bursts, because those arrive via writeback
//!   at normal priority (Figure 1);
//! * anticipation ("idling") on sync queues: after a sync queue empties,
//!   CFQ briefly waits for the same task to issue its next request instead
//!   of immediately seeking away.

use std::collections::VecDeque;

use sim_core::{BlockNo, FastMap, Pid, SimDuration, SimTime};
use sim_device::DiskModel;

use crate::sorted::SortedQueue;
use crate::{Dispatch, Elevator, PrioClass, Request};

/// Tunables for CFQ.
#[derive(Debug, Clone, Copy)]
pub struct CfqConfig {
    /// Slice length for a weight-4 (default priority) sync queue.
    pub base_slice_sync: SimDuration,
    /// Slice length for a weight-4 async queue.
    pub base_slice_async: SimDuration,
    /// How long to idle waiting for the active sync task's next request.
    pub idle_window: SimDuration,
}

impl Default for CfqConfig {
    fn default() -> Self {
        CfqConfig {
            base_slice_sync: SimDuration::from_millis(100),
            base_slice_async: SimDuration::from_millis(40),
            idle_window: SimDuration::from_millis(8),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct QueueKey {
    pid: Pid,
    sync: bool,
}

struct CfqQueue {
    requests: SortedQueue,
    /// Sweep position for C-SCAN within the queue.
    pos: BlockNo,
    /// Weight snapshot from the most recent request.
    weight: u32,
    class: PrioClass,
}

/// The CFQ elevator.
pub struct Cfq {
    cfg: CfqConfig,
    queues: FastMap<QueueKey, CfqQueue>,
    /// Round-robin service order per class (RT, BE, Idle).
    rr: [VecDeque<QueueKey>; 3],
    active: Option<QueueKey>,
    slice_end: SimTime,
    /// Set while idling on the active (empty) sync queue.
    anticipating_until: Option<SimTime>,
}

fn class_idx(c: PrioClass) -> usize {
    match c {
        PrioClass::RealTime => 0,
        PrioClass::BestEffort => 1,
        PrioClass::Idle => 2,
    }
}

impl Cfq {
    /// CFQ with default tunables.
    pub fn new() -> Self {
        Self::with_config(CfqConfig::default())
    }

    /// CFQ with explicit tunables.
    ///
    /// # Panics
    ///
    /// Rejects zero-length base slices at construction: a zero slice
    /// would expire the moment it starts and spin the dispatch loop.
    pub fn with_config(cfg: CfqConfig) -> Self {
        assert!(
            cfg.base_slice_sync > SimDuration::ZERO && cfg.base_slice_async > SimDuration::ZERO,
            "CFQ base slices must be non-zero"
        );
        Cfq {
            cfg,
            queues: FastMap::default(),
            rr: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            active: None,
            slice_end: SimTime::ZERO,
            anticipating_until: None,
        }
    }

    fn slice_len(&self, weight: u32, sync: bool) -> SimDuration {
        let base = if sync {
            self.cfg.base_slice_sync
        } else {
            self.cfg.base_slice_async
        };
        // Weight 4 (the default best-effort level) is the neutral share.
        // Exact integer math — the old `weight as f64 / 4.0` detour could
        // round the product, and its `.max(1)` clamp silently papered
        // over weight 0, which is now rejected when the priority is
        // configured (see [`Cfq::add`] / `IoPrio::weight`).
        debug_assert!(weight > 0, "weights are validated at config time");
        let nanos = base.as_nanos() as u128 * weight as u128 / 4;
        SimDuration::from_nanos(nanos.min(u64::MAX as u128) as u64)
    }

    fn enqueue_rr(&mut self, key: QueueKey, class: PrioClass) {
        let rr = &mut self.rr[class_idx(class)];
        if !rr.contains(&key) {
            rr.push_back(key);
        }
    }

    /// Pick the next queue to serve. RT first, then BE; Idle only if the
    /// higher classes are completely empty.
    fn select_queue(&mut self) -> Option<QueueKey> {
        for ci in 0..3 {
            // Rotate until we find a non-empty queue or exhaust the list.
            let n = self.rr[ci].len();
            for _ in 0..n {
                let key = self.rr[ci].pop_front()?;
                let nonempty = self
                    .queues
                    .get(&key)
                    .map(|q| !q.requests.is_empty())
                    .unwrap_or(false);
                if nonempty {
                    // Back of the line for next time.
                    self.rr[ci].push_back(key);
                    return Some(key);
                }
                // Empty queues fall out of the service list; they re-enter
                // on their next request.
            }
        }
        None
    }

    fn issue_from(&mut self, key: QueueKey) -> Option<Request> {
        let q = self.queues.get_mut(&key)?;
        let req = q.requests.pop_cscan(q.pos)?;
        q.pos = req.shape().end();
        Some(req)
    }

    fn higher_class_waiting(&self, than: PrioClass) -> bool {
        (0..class_idx(than)).any(|ci| {
            self.rr[ci].iter().any(|k| {
                self.queues
                    .get(k)
                    .map(|q| !q.requests.is_empty())
                    .unwrap_or(false)
            })
        })
    }
}

impl Default for Cfq {
    fn default() -> Self {
        Self::new()
    }
}

impl Elevator for Cfq {
    fn add(&mut self, req: Request, _now: SimTime) {
        let key = QueueKey {
            pid: req.submitter,
            sync: req.sync,
        };
        let class = req.ioprio.class;
        let weight = req.ioprio.weight();
        let entry = self.queues.entry(key).or_insert_with(|| CfqQueue {
            requests: SortedQueue::new(),
            pos: BlockNo(0),
            weight,
            class,
        });
        entry.weight = weight;
        entry.class = class;
        entry.requests.insert(req);
        self.enqueue_rr(key, class);
        // A new request for the active queue ends anticipation.
        if self.active == Some(key) {
            self.anticipating_until = None;
        }
    }

    fn dispatch(&mut self, now: SimTime, _dev: &dyn DiskModel) -> Dispatch {
        // Serve the active queue while its slice lasts.
        if let Some(key) = self.active {
            let in_slice = now < self.slice_end;
            let has_work = self
                .queues
                .get(&key)
                .map(|q| !q.requests.is_empty())
                .unwrap_or(false);
            let class = self.queues.get(&key).map(|q| q.class);
            // Preemption: a waiting RT queue ends a BE/idle slice at once.
            let preempted = class
                .map(|c| {
                    c != PrioClass::RealTime && self.higher_class_waiting(PrioClass::BestEffort)
                })
                .unwrap_or(false);
            if in_slice && !preempted {
                if has_work {
                    self.anticipating_until = None;
                    if let Some(req) = self.issue_from(key) {
                        return Dispatch::Issue(req);
                    }
                } else if key.sync {
                    // Idle briefly for the task's next sync request.
                    let until = match self.anticipating_until {
                        Some(t) => t,
                        None => {
                            let t = (now + self.cfg.idle_window).min(self.slice_end);
                            self.anticipating_until = Some(t);
                            t
                        }
                    };
                    if now < until {
                        return Dispatch::WaitUntil(until);
                    }
                }
            }
            // Slice over (expired, exhausted or preempted).
            self.active = None;
            self.anticipating_until = None;
        }

        // Pick a new queue.
        match self.select_queue() {
            Some(key) => {
                let (weight, sync) = {
                    let q = &self.queues[&key];
                    (q.weight, key.sync)
                };
                self.active = Some(key);
                self.slice_end = now + self.slice_len(weight, sync);
                self.anticipating_until = None;
                match self.issue_from(key) {
                    Some(req) => Dispatch::Issue(req),
                    None => Dispatch::Idle,
                }
            }
            None => Dispatch::Idle,
        }
    }

    fn completed(&mut self, _req: &Request, _now: SimTime) {}

    fn queued(&self) -> usize {
        self.queues.values().map(|q| q.requests.len()).sum()
    }

    fn name(&self) -> &'static str {
        "cfq"
    }

    fn audit(&self, quiesced: bool) -> Vec<String> {
        let mut bad = Vec::new();
        for (key, q) in &self.queues {
            if q.weight == 0 {
                bad.push(format!(
                    "cfq: queue {:?}/sync={} has zero weight",
                    key.pid, key.sync
                ));
                continue;
            }
            // A positive weight must always yield a positive slice budget;
            // a zero slice would starve the queue forever.
            if self.slice_len(q.weight, key.sync).as_nanos() == 0 {
                bad.push(format!(
                    "cfq: queue {:?}/sync={} weight {} yields a zero-length slice",
                    key.pid, key.sync, q.weight
                ));
            }
        }
        if quiesced {
            let left = self.queued();
            if left != 0 {
                bad.push(format!("cfq: {left} request(s) queued at quiescence"));
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IoPrio;
    use sim_core::{CauseSet, RequestId};
    use sim_device::{HddModel, IoDir};

    fn req(id: u64, pid: u32, start: u64, sync: bool, prio: IoPrio) -> Request {
        Request {
            id: RequestId(id),
            dir: if sync { IoDir::Read } else { IoDir::Write },
            start: BlockNo(start),
            nblocks: 1,
            submitter: Pid(pid),
            causes: CauseSet::empty(),
            sync,
            ioprio: prio,
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: Default::default(),
        }
    }

    fn drain(e: &mut Cfq, now: SimTime) -> Vec<u64> {
        let dev = HddModel::new();
        let mut out = vec![];
        let mut t = now;
        loop {
            match e.dispatch(t, &dev) {
                Dispatch::Issue(r) => out.push(r.id.raw()),
                Dispatch::WaitUntil(until) => t = until,
                Dispatch::Idle => break,
            }
        }
        out
    }

    #[test]
    fn idle_class_starves_behind_best_effort() {
        let mut e = Cfq::new();
        e.add(req(1, 10, 100, true, IoPrio::idle()), SimTime::ZERO);
        e.add(req(2, 20, 200, true, IoPrio::DEFAULT), SimTime::ZERO);
        let dev = HddModel::new();
        match e.dispatch(SimTime::ZERO, &dev) {
            Dispatch::Issue(r) => assert_eq!(r.id.raw(), 2, "BE must run before idle"),
            other => panic!("expected issue, got {other:?}"),
        }
    }

    #[test]
    fn idle_class_runs_when_alone() {
        let mut e = Cfq::new();
        e.add(req(1, 10, 100, true, IoPrio::idle()), SimTime::ZERO);
        let ids = drain(&mut e, SimTime::ZERO);
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn same_queue_requests_issue_in_cscan_order_within_slice() {
        let mut e = Cfq::new();
        for (id, b) in [(1u64, 300u64), (2, 100), (3, 200)] {
            e.add(req(id, 5, b, false, IoPrio::DEFAULT), SimTime::ZERO);
        }
        let ids = drain(&mut e, SimTime::ZERO);
        assert_eq!(ids, vec![2, 3, 1], "sorted by location");
    }

    #[test]
    fn anticipation_waits_for_active_sync_task() {
        let mut e = Cfq::new();
        let dev = HddModel::new();
        e.add(req(1, 5, 100, true, IoPrio::DEFAULT), SimTime::ZERO);
        e.add(req(2, 6, 900, true, IoPrio::DEFAULT), SimTime::ZERO);
        // First dispatch serves pid 5 and makes it active.
        match e.dispatch(SimTime::ZERO, &dev) {
            Dispatch::Issue(r) => assert_eq!(r.submitter, Pid(5)),
            other => panic!("{other:?}"),
        }
        // pid 5's queue is now empty but in-slice: CFQ idles instead of
        // seeking to pid 6.
        let t1 = SimTime::from_nanos(1_000_000);
        match e.dispatch(t1, &dev) {
            Dispatch::WaitUntil(until) => assert!(until > t1),
            other => panic!("expected anticipation, got {other:?}"),
        }
        // pid 5 issues again within the window: it is served immediately.
        e.add(req(3, 5, 101, true, IoPrio::DEFAULT), t1);
        match e.dispatch(t1, &dev) {
            Dispatch::Issue(r) => assert_eq!(r.id.raw(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn anticipation_times_out_and_switches() {
        let mut e = Cfq::new();
        let dev = HddModel::new();
        e.add(req(1, 5, 100, true, IoPrio::DEFAULT), SimTime::ZERO);
        e.add(req(2, 6, 900, true, IoPrio::DEFAULT), SimTime::ZERO);
        assert!(matches!(
            e.dispatch(SimTime::ZERO, &dev),
            Dispatch::Issue(_)
        ));
        let wait = match e.dispatch(SimTime::from_nanos(1), &dev) {
            Dispatch::WaitUntil(u) => u,
            other => panic!("{other:?}"),
        };
        // After the idle window expires, pid 6 gets served.
        match e.dispatch(wait, &dev) {
            Dispatch::Issue(r) => assert_eq!(r.submitter, Pid(6)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn submitter_priority_is_all_cfq_sees() {
        // Two requests *caused* by different-priority tasks but submitted
        // by the same writeback pid land in the same queue.
        let mut e = Cfq::new();
        let mut r1 = req(1, 99, 100, false, IoPrio::DEFAULT);
        r1.causes = CauseSet::of(Pid(1));
        let mut r2 = req(2, 99, 500, false, IoPrio::DEFAULT);
        r2.causes = CauseSet::of(Pid(2));
        e.add(r1, SimTime::ZERO);
        e.add(r2, SimTime::ZERO);
        assert_eq!(e.queues.len(), 1, "one shared writeback queue");
    }

    #[test]
    fn slice_math_is_exact_integer_scaling() {
        let e = Cfq::new();
        let base = e.cfg.base_slice_sync.as_nanos();
        for weight in 1..=16u32 {
            let slice = e.slice_len(weight, true);
            assert_eq!(
                slice.as_nanos(),
                base * weight as u64 / 4,
                "weight {weight}: no float rounding allowed"
            );
        }
        // Weight 4 is the neutral share: exactly the base slice.
        assert_eq!(e.slice_len(4, true), e.cfg.base_slice_sync);
        assert_eq!(e.slice_len(4, false), e.cfg.base_slice_async);
    }

    #[test]
    #[should_panic(expected = "base slices must be non-zero")]
    fn zero_slices_are_rejected_at_config_time() {
        let _ = Cfq::with_config(CfqConfig {
            base_slice_sync: SimDuration::ZERO,
            ..Default::default()
        });
    }

    #[test]
    fn queued_counts_all_queues() {
        let mut e = Cfq::new();
        e.add(req(1, 1, 10, true, IoPrio::DEFAULT), SimTime::ZERO);
        e.add(req(2, 2, 20, false, IoPrio::DEFAULT), SimTime::ZERO);
        assert_eq!(e.queued(), 2);
    }
}
