//! The no-op elevator: pure FIFO, no reordering, no waiting. Used by the
//! framework-overhead experiment (Figure 9) and as the block-level stage of
//! schedulers that do their reordering elsewhere.

use std::collections::VecDeque;

use sim_core::SimTime;
use sim_device::DiskModel;

use crate::{Dispatch, Elevator, Request};

/// FIFO elevator.
#[derive(Debug, Default)]
pub struct Noop {
    queue: VecDeque<Request>,
}

impl Noop {
    /// An empty no-op elevator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Elevator for Noop {
    fn add(&mut self, req: Request, _now: SimTime) {
        self.queue.push_back(req);
    }

    fn dispatch(&mut self, _now: SimTime, _dev: &dyn DiskModel) -> Dispatch {
        match self.queue.pop_front() {
            Some(r) => Dispatch::Issue(r),
            None => Dispatch::Idle,
        }
    }

    fn completed(&mut self, _req: &Request, _now: SimTime) {}

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "noop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{BlockNo, CauseSet, Pid, RequestId};
    use sim_device::{HddModel, IoDir};

    fn req(id: u64, start: u64) -> Request {
        Request {
            id: RequestId(id),
            dir: IoDir::Read,
            start: BlockNo(start),
            nblocks: 1,
            submitter: Pid(1),
            causes: CauseSet::empty(),
            sync: true,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: Default::default(),
        }
    }

    #[test]
    fn fifo_order_regardless_of_location() {
        let mut e = Noop::new();
        let dev = HddModel::new();
        e.add(req(1, 900), SimTime::ZERO);
        e.add(req(2, 10), SimTime::ZERO);
        e.add(req(3, 500), SimTime::ZERO);
        let mut order = vec![];
        while let Dispatch::Issue(r) = e.dispatch(SimTime::ZERO, &dev) {
            order.push(r.id.raw());
        }
        assert_eq!(order, vec![1, 2, 3]);
        assert!(matches!(e.dispatch(SimTime::ZERO, &dev), Dispatch::Idle));
    }
}
