//! Block-Deadline — Linux's deadline elevator, the baseline of §5.2.
//!
//! Two location-sorted queues (read/write) for throughput, plus per-request
//! expiry times for latency: when the earliest deadline in the preferred
//! direction has passed, the elevator jumps to that request instead of
//! continuing its sweep. Reads are preferred over writes until writes have
//! been starved `writes_starved` times.
//!
//! As in the paper (§5.2), we extend the stock design with per-process
//! deadlines: a request carrying an explicit `deadline` keeps it; others
//! get the direction's default expiry.

use std::collections::BTreeMap;

use sim_core::{BlockNo, RequestId, SimDuration, SimTime};
use sim_device::{DiskModel, IoDir};

use crate::sorted::SortedQueue;
use crate::{Dispatch, Elevator, Request};

/// Tunables for Block-Deadline.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineConfig {
    /// Default expiry for reads (Linux: 500 ms).
    pub read_expire: SimDuration,
    /// Default expiry for writes (Linux: 5 s).
    pub write_expire: SimDuration,
    /// Requests served from one direction before considering a switch.
    pub fifo_batch: u32,
    /// Read batches allowed before writes must be served.
    pub writes_starved: u32,
}

impl Default for DeadlineConfig {
    fn default() -> Self {
        DeadlineConfig {
            read_expire: SimDuration::from_millis(500),
            write_expire: SimDuration::from_secs(5),
            fifo_batch: 16,
            writes_starved: 2,
        }
    }
}

struct Dir {
    sorted: SortedQueue,
    /// Deadline index: earliest-expiring first.
    expiry: BTreeMap<(SimTime, RequestId), BlockNo>,
    pos: BlockNo,
}

impl Dir {
    fn new() -> Self {
        Dir {
            sorted: SortedQueue::new(),
            expiry: BTreeMap::new(),
            pos: BlockNo(0),
        }
    }

    fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    fn earliest_deadline(&self) -> Option<SimTime> {
        self.expiry.keys().next().map(|k| k.0)
    }

    fn pop_expired(&mut self, now: SimTime) -> Option<Request> {
        let (&(dl, id), &start) = self.expiry.iter().next()?;
        if dl > now {
            return None;
        }
        self.expiry.remove(&(dl, id));
        let req = self.sorted.remove(start, id)?;
        self.pos = req.shape().end();
        Some(req)
    }

    fn pop_sweep(&mut self) -> Option<Request> {
        let req = self.sorted.pop_cscan(self.pos)?;
        self.expiry
            .remove(&(req.deadline.unwrap_or(SimTime::MAX), req.id));
        self.pos = req.shape().end();
        Some(req)
    }
}

/// The deadline elevator.
pub struct BlockDeadline {
    cfg: DeadlineConfig,
    reads: Dir,
    writes: Dir,
    batch_dir: IoDir,
    batch_left: u32,
    starved: u32,
}

impl BlockDeadline {
    /// Deadline elevator with stock tunables.
    pub fn new() -> Self {
        Self::with_config(DeadlineConfig::default())
    }

    /// Deadline elevator with explicit tunables.
    pub fn with_config(cfg: DeadlineConfig) -> Self {
        BlockDeadline {
            cfg,
            reads: Dir::new(),
            writes: Dir::new(),
            batch_dir: IoDir::Read,
            batch_left: 0,
            starved: 0,
        }
    }

    fn dir_mut(&mut self, d: IoDir) -> &mut Dir {
        match d {
            IoDir::Read => &mut self.reads,
            IoDir::Write => &mut self.writes,
        }
    }

    /// Decide which direction the next batch serves.
    fn choose_dir(&mut self) -> Option<IoDir> {
        let have_reads = !self.reads.is_empty();
        let have_writes = !self.writes.is_empty();
        match (have_reads, have_writes) {
            (false, false) => None,
            (true, false) => Some(IoDir::Read),
            (false, true) => Some(IoDir::Write),
            (true, true) => {
                if self.starved >= self.cfg.writes_starved {
                    self.starved = 0;
                    Some(IoDir::Write)
                } else {
                    self.starved += 1;
                    Some(IoDir::Read)
                }
            }
        }
    }
}

impl Default for BlockDeadline {
    fn default() -> Self {
        Self::new()
    }
}

impl Elevator for BlockDeadline {
    fn add(&mut self, mut req: Request, now: SimTime) {
        let expire = match req.dir {
            IoDir::Read => self.cfg.read_expire,
            IoDir::Write => self.cfg.write_expire,
        };
        let dl = req.deadline.unwrap_or(now + expire);
        req.deadline = Some(dl);
        let dir = self.dir_mut(req.dir);
        dir.expiry.insert((dl, req.id), req.start);
        dir.sorted.insert(req);
    }

    fn dispatch(&mut self, now: SimTime, _dev: &dyn DiskModel) -> Dispatch {
        // Continue the current batch if it has quota and work, unless the
        // *other* direction has an expired deadline demanding service.
        let other = match self.batch_dir {
            IoDir::Read => IoDir::Write,
            IoDir::Write => IoDir::Read,
        };
        let other_expired = self
            .dir_mut(other)
            .earliest_deadline()
            .is_some_and(|d| d <= now);

        if self.batch_left > 0 && !other_expired {
            let d = self.batch_dir;
            // An expired deadline in our own direction jumps the sweep.
            if let Some(req) = self.dir_mut(d).pop_expired(now) {
                self.batch_left -= 1;
                return Dispatch::Issue(req);
            }
            if let Some(req) = self.dir_mut(d).pop_sweep() {
                self.batch_left -= 1;
                return Dispatch::Issue(req);
            }
        }

        // Start a new batch.
        let dir = if other_expired {
            Some(other)
        } else {
            self.choose_dir()
        };
        let Some(dir) = dir else {
            return Dispatch::Idle;
        };
        self.batch_dir = dir;
        self.batch_left = self.cfg.fifo_batch;
        if let Some(req) = self.dir_mut(dir).pop_expired(now) {
            self.batch_left -= 1;
            return Dispatch::Issue(req);
        }
        match self.dir_mut(dir).pop_sweep() {
            Some(req) => {
                self.batch_left -= 1;
                Dispatch::Issue(req)
            }
            None => Dispatch::Idle,
        }
    }

    fn completed(&mut self, _req: &Request, _now: SimTime) {}

    fn queued(&self) -> usize {
        self.reads.sorted.len() + self.writes.sorted.len()
    }

    fn name(&self) -> &'static str {
        "block-deadline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{CauseSet, Pid};
    use sim_device::HddModel;

    fn req(id: u64, dir: IoDir, start: u64, deadline: Option<SimTime>) -> Request {
        Request {
            id: RequestId(id),
            dir,
            start: BlockNo(start),
            nblocks: 1,
            submitter: Pid(1),
            causes: CauseSet::empty(),
            sync: dir == IoDir::Read,
            ioprio: Default::default(),
            deadline,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: Default::default(),
        }
    }

    fn issue(e: &mut BlockDeadline, now: SimTime) -> Option<u64> {
        let dev = HddModel::new();
        match e.dispatch(now, &dev) {
            Dispatch::Issue(r) => Some(r.id.raw()),
            _ => None,
        }
    }

    #[test]
    fn reads_preferred_over_writes() {
        let mut e = BlockDeadline::new();
        e.add(req(1, IoDir::Write, 100, None), SimTime::ZERO);
        e.add(req(2, IoDir::Read, 200, None), SimTime::ZERO);
        assert_eq!(issue(&mut e, SimTime::ZERO), Some(2));
    }

    #[test]
    fn writes_not_starved_forever() {
        let cfg = DeadlineConfig {
            fifo_batch: 1,
            writes_starved: 2,
            ..Default::default()
        };
        let mut e = BlockDeadline::with_config(cfg);
        for i in 0..10 {
            e.add(req(i, IoDir::Read, 100 + i, None), SimTime::ZERO);
        }
        e.add(req(100, IoDir::Write, 50, None), SimTime::ZERO);
        let mut served = vec![];
        for _ in 0..4 {
            served.push(issue(&mut e, SimTime::ZERO).unwrap());
        }
        assert!(
            served.contains(&100),
            "write should be served within a few batches: {served:?}"
        );
    }

    #[test]
    fn sweep_is_location_ordered() {
        let mut e = BlockDeadline::new();
        e.add(req(1, IoDir::Read, 300, None), SimTime::ZERO);
        e.add(req(2, IoDir::Read, 100, None), SimTime::ZERO);
        e.add(req(3, IoDir::Read, 200, None), SimTime::ZERO);
        assert_eq!(issue(&mut e, SimTime::ZERO), Some(2));
        assert_eq!(issue(&mut e, SimTime::ZERO), Some(3));
        assert_eq!(issue(&mut e, SimTime::ZERO), Some(1));
    }

    #[test]
    fn expired_deadline_jumps_the_sweep() {
        let mut e = BlockDeadline::new();
        e.add(req(1, IoDir::Read, 100, None), SimTime::ZERO);
        e.add(
            req(2, IoDir::Read, 900, Some(SimTime::from_nanos(5))),
            SimTime::ZERO,
        );
        e.add(req(3, IoDir::Read, 200, None), SimTime::ZERO);
        // At a time past request 2's deadline, it is served first despite
        // being farthest away.
        assert_eq!(issue(&mut e, SimTime::from_nanos(10)), Some(2));
    }

    #[test]
    fn expired_write_interrupts_read_batch() {
        let cfg = DeadlineConfig {
            write_expire: SimDuration::from_millis(1),
            ..Default::default()
        };
        let mut e = BlockDeadline::with_config(cfg);
        for i in 0..8 {
            e.add(req(i, IoDir::Read, 100 + i, None), SimTime::ZERO);
        }
        e.add(req(50, IoDir::Write, 5000, None), SimTime::ZERO);
        // Serve one read, then jump ahead 10 ms: the write expired.
        assert_ne!(issue(&mut e, SimTime::ZERO), Some(50));
        let later = SimTime::from_nanos(10_000_000);
        assert_eq!(issue(&mut e, later), Some(50));
    }

    #[test]
    fn per_request_deadlines_override_defaults() {
        let mut e = BlockDeadline::new();
        let dl = SimTime::from_nanos(42);
        e.add(req(1, IoDir::Read, 100, Some(dl)), SimTime::ZERO);
        assert_eq!(e.reads.earliest_deadline(), Some(dl));
    }

    #[test]
    fn queued_counts_both_directions() {
        let mut e = BlockDeadline::new();
        e.add(req(1, IoDir::Read, 1, None), SimTime::ZERO);
        e.add(req(2, IoDir::Write, 2, None), SimTime::ZERO);
        assert_eq!(e.queued(), 2);
    }
}
