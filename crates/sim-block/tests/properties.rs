//! Property-based tests: no elevator ever loses or duplicates a request.

use proptest::prelude::*;
use sim_block::{BlockDeadline, Cfq, Dispatch, Elevator, IoPrio, Noop, Request};
use sim_core::{BlockNo, CauseSet, Pid, RequestId, SimDuration, SimTime};
use sim_device::{HddModel, IoDir};

#[derive(Debug, Clone)]
struct ReqSpec {
    start: u64,
    read: bool,
    pid: u32,
    prio: u8,
}

fn req_specs() -> impl Strategy<Value = Vec<ReqSpec>> {
    proptest::collection::vec(
        (0u64..100_000, any::<bool>(), 1u32..6, 0u8..8).prop_map(|(start, read, pid, prio)| {
            ReqSpec {
                start,
                read,
                pid,
                prio,
            }
        }),
        1..60,
    )
}

fn build(spec: &ReqSpec, id: u64) -> Request {
    Request {
        id: RequestId(id),
        dir: if spec.read { IoDir::Read } else { IoDir::Write },
        start: BlockNo(spec.start),
        nblocks: 1,
        submitter: Pid(spec.pid),
        causes: CauseSet::of(Pid(spec.pid)),
        sync: spec.read,
        ioprio: IoPrio::best_effort(spec.prio),
        deadline: None,
        submitted_at: SimTime::ZERO,
        file: None,
        kind: Default::default(),
    }
}

/// Drive an elevator until it yields nothing more, advancing time past
/// any anticipation waits and acknowledging completions.
fn drain(elev: &mut dyn Elevator, n: usize) -> Vec<u64> {
    let dev = HddModel::new();
    let mut now = SimTime::ZERO;
    let mut out = Vec::new();
    let mut stall = 0;
    while out.len() < n && stall < 10_000 {
        match elev.dispatch(now, &dev) {
            Dispatch::Issue(r) => {
                now = now + SimDuration::from_micros(100);
                elev.completed(&r, now);
                out.push(r.id.raw());
                stall = 0;
            }
            Dispatch::WaitUntil(t) => {
                now = t.max(now + SimDuration::from_nanos(1));
                stall += 1;
            }
            Dispatch::Idle => {
                now = now + SimDuration::from_millis(10);
                stall += 1;
            }
        }
    }
    out
}

fn check_conservation(mut elev: Box<dyn Elevator>, specs: &[ReqSpec]) -> Result<(), TestCaseError> {
    for (i, s) in specs.iter().enumerate() {
        elev.add(build(s, i as u64), SimTime::ZERO);
    }
    prop_assert_eq!(elev.queued(), specs.len());
    let mut got = drain(elev.as_mut(), specs.len());
    got.sort_unstable();
    prop_assert_eq!(
        got,
        (0..specs.len() as u64).collect::<Vec<_>>(),
        "every request must be dispatched exactly once"
    );
    prop_assert_eq!(elev.queued(), 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn noop_conserves_requests(specs in req_specs()) {
        check_conservation(Box::new(Noop::new()), &specs)?;
    }

    #[test]
    fn cfq_conserves_requests(specs in req_specs()) {
        check_conservation(Box::new(Cfq::new()), &specs)?;
    }

    #[test]
    fn block_deadline_conserves_requests(specs in req_specs()) {
        check_conservation(Box::new(BlockDeadline::new()), &specs)?;
    }

    /// Noop preserves exact FIFO order.
    #[test]
    fn noop_is_fifo(specs in req_specs()) {
        let mut e = Noop::new();
        for (i, s) in specs.iter().enumerate() {
            e.add(build(s, i as u64), SimTime::ZERO);
        }
        let got = drain(&mut e, specs.len());
        prop_assert_eq!(got, (0..specs.len() as u64).collect::<Vec<_>>());
    }
}
