//! Randomized tests: no elevator ever loses or duplicates a request.
//! Driven by `SimRng` so the case set is deterministic and needs no
//! external property-testing crate.

use sim_block::{BlockDeadline, Cfq, Dispatch, Elevator, IoPrio, Noop, Request};
use sim_core::rng::SimRng;
use sim_core::{BlockNo, CauseSet, Pid, RequestId, SimDuration, SimTime};
use sim_device::{HddModel, IoDir};

#[derive(Debug, Clone)]
struct ReqSpec {
    start: u64,
    read: bool,
    pid: u32,
    prio: u8,
}

fn rand_specs(rng: &mut SimRng) -> Vec<ReqSpec> {
    let n = 1 + rng.gen_range(59) as usize;
    (0..n)
        .map(|_| ReqSpec {
            start: rng.gen_range(100_000),
            read: rng.gen_bool(0.5),
            pid: 1 + rng.gen_range(5) as u32,
            prio: rng.gen_range(8) as u8,
        })
        .collect()
}

fn build(spec: &ReqSpec, id: u64) -> Request {
    Request {
        id: RequestId(id),
        dir: if spec.read { IoDir::Read } else { IoDir::Write },
        start: BlockNo(spec.start),
        nblocks: 1,
        submitter: Pid(spec.pid),
        causes: CauseSet::of(Pid(spec.pid)),
        sync: spec.read,
        ioprio: IoPrio::best_effort(spec.prio),
        deadline: None,
        submitted_at: SimTime::ZERO,
        file: None,
        kind: Default::default(),
    }
}

/// Drive an elevator until it yields nothing more, advancing time past
/// any anticipation waits and acknowledging completions.
fn drain(elev: &mut dyn Elevator, n: usize) -> Vec<u64> {
    let dev = HddModel::new();
    let mut now = SimTime::ZERO;
    let mut out = Vec::new();
    let mut stall = 0;
    while out.len() < n && stall < 10_000 {
        match elev.dispatch(now, &dev) {
            Dispatch::Issue(r) => {
                now += SimDuration::from_micros(100);
                elev.completed(&r, now);
                out.push(r.id.raw());
                stall = 0;
            }
            Dispatch::WaitUntil(t) => {
                now = t.max(now + SimDuration::from_nanos(1));
                stall += 1;
            }
            Dispatch::Idle => {
                now += SimDuration::from_millis(10);
                stall += 1;
            }
        }
    }
    out
}

fn check_conservation(mut elev: Box<dyn Elevator>, specs: &[ReqSpec]) {
    for (i, s) in specs.iter().enumerate() {
        elev.add(build(s, i as u64), SimTime::ZERO);
    }
    assert_eq!(elev.queued(), specs.len());
    let mut got = drain(elev.as_mut(), specs.len());
    got.sort_unstable();
    assert_eq!(
        got,
        (0..specs.len() as u64).collect::<Vec<_>>(),
        "every request must be dispatched exactly once"
    );
    assert_eq!(elev.queued(), 0);
}

#[test]
fn noop_conserves_requests() {
    let mut rng = SimRng::seed_from_u64(1);
    for _ in 0..32 {
        check_conservation(Box::new(Noop::new()), &rand_specs(&mut rng));
    }
}

#[test]
fn cfq_conserves_requests() {
    let mut rng = SimRng::seed_from_u64(2);
    for _ in 0..32 {
        check_conservation(Box::new(Cfq::new()), &rand_specs(&mut rng));
    }
}

#[test]
fn block_deadline_conserves_requests() {
    let mut rng = SimRng::seed_from_u64(3);
    for _ in 0..32 {
        check_conservation(Box::new(BlockDeadline::new()), &rand_specs(&mut rng));
    }
}

/// Noop preserves exact FIFO order.
#[test]
fn noop_is_fifo() {
    let mut rng = SimRng::seed_from_u64(4);
    for _ in 0..32 {
        let specs = rand_specs(&mut rng);
        let mut e = Noop::new();
        for (i, s) in specs.iter().enumerate() {
            e.add(build(s, i as u64), SimTime::ZERO);
        }
        let got = drain(&mut e, specs.len());
        assert_eq!(got, (0..specs.len() as u64).collect::<Vec<_>>());
    }
}
