//! Randomized tests for allocation and extent mapping: no two files
//! ever share a block, and lookups agree with range queries. Driven by
//! `SimRng` so the case set is deterministic and dependency-free.

use sim_core::rng::SimRng;
use sim_core::FileId;
use sim_fs::alloc::{Allocator, ExtentMap};

/// Blocks handed out by the allocator never overlap, across any
/// interleaving of files and sizes.
#[test]
fn allocator_never_overlaps() {
    let mut rng = SimRng::seed_from_u64(0xA110C);
    for _ in 0..64 {
        let n = 1 + rng.gen_range(59) as usize;
        let grants: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(8), 1 + rng.gen_range(499)))
            .collect();
        let mut a = Allocator::new(0, 1 << 24, 256, 42);
        let mut used: std::collections::HashSet<u64> = Default::default();
        for (file, n) in grants {
            for (start, len) in a.alloc(FileId(file), n) {
                for b in start.raw()..start.raw() + len {
                    assert!(used.insert(b), "block {b} double-allocated");
                }
            }
        }
    }
}

/// Scattered allocation also never overlaps and covers the request.
#[test]
fn scattered_allocation_is_exact() {
    let mut rng = SimRng::seed_from_u64(0x5CA77);
    for _ in 0..64 {
        let n = 1 + rng.gen_range(19) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| 1 + rng.gen_range(1999)).collect();
        let mut a = Allocator::new(0, 1 << 26, 256, 7);
        let mut used: std::collections::HashSet<u64> = Default::default();
        for n in sizes {
            let runs = a.alloc_scattered(n, 64);
            let total: u64 = runs.iter().map(|r| r.1).sum();
            assert_eq!(total, n);
            for (start, len) in runs {
                for b in start.raw()..start.raw() + len {
                    assert!(used.insert(b));
                }
            }
        }
    }
}

/// `lookup` and `extents_for` agree page by page.
#[test]
fn extent_map_lookup_matches_ranges() {
    let mut rng = SimRng::seed_from_u64(0xE47E47);
    for _ in 0..64 {
        let n = 1 + rng.gen_range(14) as usize;
        let inserts: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(100), 1 + rng.gen_range(19)))
            .collect();
        let query = (rng.gen_range(150), 1 + rng.gen_range(39));
        let mut m = ExtentMap::new();
        let mut next_block = 1000u64;
        let mut covered: std::collections::BTreeMap<u64, u64> = Default::default();
        for (page, len) in inserts {
            // Skip overlapping inserts (the fs never produces them).
            if (page..page + len).any(|p| covered.contains_key(&p)) {
                continue;
            }
            m.insert(page, sim_core::BlockNo(next_block), len);
            for (i, p) in (page..page + len).enumerate() {
                covered.insert(p, next_block + i as u64);
            }
            next_block += len + 10;
        }
        let (qp, ql) = query;
        let extents = m.extents_for(qp, ql);
        // Every page the range query covers must match lookup, and
        // vice versa.
        let mut from_ranges: std::collections::BTreeMap<u64, u64> = Default::default();
        for e in &extents {
            for i in 0..e.len {
                from_ranges.insert(e.page + i, e.start.raw() + i);
            }
        }
        for p in qp..qp + ql {
            assert_eq!(
                m.lookup(p).map(|b| b.raw()),
                from_ranges.get(&p).copied(),
                "disagreement at page {p}"
            );
            assert_eq!(
                m.lookup(p).map(|b| b.raw()),
                covered.get(&p).copied(),
                "model disagreement at page {p}"
            );
        }
    }
}
