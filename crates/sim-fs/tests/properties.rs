//! Property-based tests for allocation and extent mapping: no two files
//! ever share a block, and lookups agree with range queries.

use proptest::prelude::*;
use sim_fs::alloc::{Allocator, ExtentMap};
use sim_core::FileId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocks handed out by the allocator never overlap, across any
    /// interleaving of files and sizes.
    #[test]
    fn allocator_never_overlaps(
        grants in proptest::collection::vec((0u64..8, 1u64..500), 1..60)
    ) {
        let mut a = Allocator::new(0, 1 << 24, 256, 42);
        let mut used: std::collections::HashSet<u64> = Default::default();
        for (file, n) in grants {
            for (start, len) in a.alloc(FileId(file), n) {
                for b in start.raw()..start.raw() + len {
                    prop_assert!(used.insert(b), "block {b} double-allocated");
                }
            }
        }
    }

    /// Scattered allocation also never overlaps and covers the request.
    #[test]
    fn scattered_allocation_is_exact(sizes in proptest::collection::vec(1u64..2000, 1..20)) {
        let mut a = Allocator::new(0, 1 << 26, 256, 7);
        let mut used: std::collections::HashSet<u64> = Default::default();
        for n in sizes {
            let runs = a.alloc_scattered(n, 64);
            let total: u64 = runs.iter().map(|r| r.1).sum();
            prop_assert_eq!(total, n);
            for (start, len) in runs {
                for b in start.raw()..start.raw() + len {
                    prop_assert!(used.insert(b));
                }
            }
        }
    }

    /// `lookup` and `extents_for` agree page by page.
    #[test]
    fn extent_map_lookup_matches_ranges(
        inserts in proptest::collection::vec((0u64..100u64, 1u64..20), 1..15),
        query in (0u64..150, 1u64..40),
    ) {
        let mut m = ExtentMap::new();
        let mut next_block = 1000u64;
        let mut covered: std::collections::BTreeMap<u64, u64> = Default::default();
        for (page, len) in inserts {
            // Skip overlapping inserts (the fs never produces them).
            if (page..page + len).any(|p| covered.contains_key(&p)) {
                continue;
            }
            m.insert(page, sim_core::BlockNo(next_block), len);
            for (i, p) in (page..page + len).enumerate() {
                covered.insert(p, next_block + i as u64);
            }
            next_block += len + 10;
        }
        let (qp, ql) = query;
        let extents = m.extents_for(qp, ql);
        // Every page the range query covers must match lookup, and
        // vice versa.
        let mut from_ranges: std::collections::BTreeMap<u64, u64> = Default::default();
        for e in &extents {
            for i in 0..e.len {
                from_ranges.insert(e.page + i, e.start.raw() + i);
            }
        }
        for p in qp..qp + ql {
            prop_assert_eq!(
                m.lookup(p).map(|b| b.raw()),
                from_ranges.get(&p).copied(),
                "disagreement at page {}", p
            );
            prop_assert_eq!(
                m.lookup(p).map(|b| b.raw()),
                covered.get(&p).copied(),
                "model disagreement at page {}", p
            );
        }
    }
}
