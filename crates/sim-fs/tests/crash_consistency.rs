//! Crash-consistency property sweep: power-cut the ordered-mode journal
//! at *every* protocol step of a multi-transaction workload and assert
//! that replay restores a consistent image each time.
//!
//! The harness mirrors every write the file system submits into a
//! [`DiskImage`] shadow; cutting power marks in-flight writes lost (or
//! torn), replay recovers committed transactions in order, and the
//! checker enforces the paper's ordered-mode guarantees: acknowledged
//! transactions durable, no metadata pointing at stale data, nothing
//! recovered from a torn log.

use std::collections::VecDeque;

use sim_cache::{CacheConfig, PageCache};
use sim_core::{CauseSet, FileId, Pid, SimDuration, SimTime, TxnId};
use sim_device::IoDir;
use sim_fault::{ConsistencyViolation, DiskImage};
use sim_fs::{FileSystem, FsEvent, FsOutput, IoReq, JournaledFs};

const JPID: Pid = Pid(1000);
const WBPID: Pid = Pid(1001);
const A: Pid = Pid(1);
const B: Pid = Pid(2);
const PAGE: u64 = sim_core::PAGE_SIZE;

/// Which journaled fs flavour to sweep.
#[derive(Clone, Copy)]
enum Flavour {
    Ext4,
    Xfs,
}

/// A miniature kernel with a shadow disk: completes the file system's
/// I/O in FIFO order while recording every write's durable state.
struct CrashHarness {
    fs: JournaledFs,
    cache: PageCache,
    pending: VecDeque<IoReq>,
    events: Vec<FsEvent>,
    image: DiskImage,
    /// Transactions whose `TxnCommitted` the stack reported (durability
    /// promises made before the crash).
    acked: Vec<TxnId>,
    now: SimTime,
    fa: FileId,
    fb: FileId,
    phase: u8,
}

impl CrashHarness {
    fn new(flavour: Flavour) -> Self {
        let fs = match flavour {
            Flavour::Ext4 => JournaledFs::new_ext4(1 << 27, JPID, WBPID),
            Flavour::Xfs => JournaledFs::new_xfs(1 << 27, JPID, WBPID),
        };
        let mut h = CrashHarness {
            fs,
            cache: PageCache::new(CacheConfig::default()),
            pending: VecDeque::new(),
            events: Vec::new(),
            image: DiskImage::new(),
            acked: Vec::new(),
            now: SimTime::ZERO,
            fa: FileId(0),
            fb: FileId(0),
            phase: 0,
        };
        let (fa, out) = h.fs.create_file(A, h.now);
        h.absorb(out);
        let (fb, out) = h.fs.create_file(B, h.now);
        h.absorb(out);
        h.fa = fa;
        h.fb = fb;
        h
    }

    fn absorb(&mut self, out: FsOutput) {
        for io in &out.ios {
            if io.dir == IoDir::Write {
                self.image
                    .submit(io.token.0, io.step.clone(), io.start, io.nblocks);
            }
        }
        for ev in &out.events {
            if let FsEvent::TxnCommitted { txn } = ev {
                self.acked.push(*txn);
            }
        }
        self.pending.extend(out.ios);
        self.events.extend(out.events);
    }

    fn write(&mut self, file: FileId, pid: Pid, offset: u64, len: u64) {
        let causes = CauseSet::of(pid);
        for p in offset / PAGE..=(offset + len - 1) / PAGE {
            self.cache.dirty_page(file, p, &causes, self.now);
        }
        self.fs.note_write(file, &causes, offset, len, self.now);
    }

    fn fsync(&mut self, file: FileId, pid: Pid) {
        let out = self.fs.fsync(file, pid, &mut self.cache, self.now);
        self.absorb(out);
    }

    fn fsync_done_for(&self, pid: Pid) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FsEvent::FsyncDone { waiter, .. } if *waiter == pid))
    }

    /// Issue the next workload step once its precondition holds. Three
    /// transactions, entangled the way Figure 4 describes: txn 1 carries
    /// A's metadata plus B's ordered data, then B and A sync again.
    fn advance_workload(&mut self) {
        match self.phase {
            0 => {
                self.phase = 1;
                self.write(self.fa, A, 0, 2 * PAGE);
                self.write(self.fb, B, 0, 8 * PAGE);
                self.fsync(self.fa, A);
            }
            1 if self.fsync_done_for(A) => {
                self.phase = 2;
                self.write(self.fb, B, 8 * PAGE, 4 * PAGE);
                self.fsync(self.fb, B);
            }
            2 if self.fsync_done_for(B) => {
                self.phase = 3;
                self.write(self.fa, A, 0, PAGE);
                self.fsync(self.fa, A);
            }
            _ => {}
        }
    }

    /// Complete one pending I/O in FIFO order; false when drained.
    fn complete_one(&mut self) -> bool {
        let Some(io) = self.pending.pop_front() else {
            return false;
        };
        self.now += SimDuration::from_micros(100);
        if io.dir == IoDir::Write {
            self.image.complete(io.token.0);
        }
        let out = self.fs.io_completed(io.token, &mut self.cache, self.now);
        self.absorb(out);
        true
    }

    /// Run the workload, completing at most `stop_after` I/Os (None =
    /// drain everything). Returns the number of completions performed.
    fn run(&mut self, stop_after: Option<usize>) -> usize {
        let mut done = 0;
        loop {
            self.advance_workload();
            if Some(done) == stop_after {
                return done;
            }
            if !self.complete_one() {
                return done;
            }
            done += 1;
        }
    }

    fn crash_and_check(&mut self, torn_prefix: Option<u64>) -> Vec<ConsistencyViolation> {
        self.image.crash(torn_prefix);
        self.image.check(&self.acked)
    }
}

/// The crash-point count of a reference (uninterrupted) run.
fn reference_completions(flavour: Flavour) -> usize {
    let mut h = CrashHarness::new(flavour);
    let n = h.run(None);
    assert!(h.phase == 3, "workload must finish all three transactions");
    assert!(h.acked.len() >= 3, "three commits acked, got {:?}", h.acked);
    n
}

fn sweep(flavour: Flavour, torn_prefix: Option<u64>) {
    let total = reference_completions(flavour);
    assert!(
        total >= 10,
        "sweep needs protocol steps to cut, got {total}"
    );
    let mut saw_empty_recovery = false;
    let mut saw_full_recovery = false;
    for k in 0..=total {
        let mut h = CrashHarness::new(flavour);
        h.run(Some(k));
        let recovered = {
            h.image.crash(torn_prefix);
            h.image.recover().recovered.len()
        };
        saw_empty_recovery |= recovered == 0;
        saw_full_recovery |= recovered >= 3;
        let violations = h.image.check(&h.acked);
        assert!(
            violations.is_empty(),
            "crash after {k}/{total} completions (torn={torn_prefix:?}) broke \
             ordered-mode guarantees: {violations:?}"
        );
    }
    assert!(
        saw_empty_recovery,
        "early crash points must recover nothing"
    );
    assert!(
        saw_full_recovery,
        "the final crash point must recover every transaction"
    );
}

#[test]
fn ext4_survives_power_cut_at_every_protocol_step() {
    sweep(Flavour::Ext4, None);
}

#[test]
fn ext4_survives_torn_in_flight_writes_at_every_step() {
    // Tear every in-flight write down to one durable block: multi-block
    // log bodies become torn (must not replay), while the single-block
    // commit record stays atomic, exactly as on real media.
    sweep(Flavour::Ext4, Some(1));
}

#[test]
fn xfs_survives_power_cut_at_every_protocol_step() {
    sweep(Flavour::Xfs, None);
}

#[test]
fn acked_transactions_survive_an_immediate_crash() {
    let mut h = CrashHarness::new(Flavour::Ext4);
    h.run(None);
    let acked = h.acked.clone();
    assert!(!acked.is_empty());
    let violations = h.crash_and_check(None);
    assert!(violations.is_empty(), "{violations:?}");
    let recovery = h.image.recover();
    for txn in acked {
        assert!(recovery.contains(txn), "acked {txn:?} must replay");
    }
}
