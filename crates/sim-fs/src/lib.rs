#![warn(missing_docs)]
//! File systems for the simulator: a journaling, delayed-allocation file
//! system in the mold of ext4 (ordered mode), plus an XFS-like variant
//! with a logical journal written by an *untagged* log task — the
//! "partial integration" configuration of §6.
//!
//! The file system is a passive state machine: every entry point returns an
//! [`FsOutput`] describing block I/O to submit and events that became true
//! (an fsync finished, a transaction committed). The kernel routes the I/O
//! through the scheduler and calls [`FileSystem::io_completed`] as the
//! device finishes requests. This inversion keeps the file system free of
//! event-loop plumbing while still letting fsyncs span simulated time.
//!
//! The behaviours the paper's experiments rest on all live here:
//!
//! * **write delegation** — writeback and journal tasks submit I/O caused
//!   by other processes, with cause tags resolved through a
//!   [`split_core::ProxyRegistry`];
//! * **journal entanglement** — one running transaction; committing it
//!   flushes the *ordered data of every file that joined it* before the
//!   log and commit record go out (Figure 4);
//! * **delayed allocation** — dirty pages have no disk location until
//!   writeback or fsync forces allocation.

pub mod alloc;
pub mod fs;
pub mod journal;

use sim_block::ReqKind;
use sim_core::{BlockNo, CauseSet, FileId, IoError, Pid, SimTime, TxnId};
use sim_device::IoDir;

pub use alloc::{Allocator, Extent};
pub use fs::{Ext4, FsConfig, JournaledFs, Xfs};
pub use journal::{Journal, JournalConfig};
pub use sim_fault::WriteStep;

/// Correlation token for I/O the file system submits; handed back in
/// [`FileSystem::io_completed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IoToken(pub u64);

/// A block I/O the file system wants submitted. The kernel turns this into
/// a `sim_block::Request` (assigning the request id) and runs it through
/// the scheduler hooks.
#[derive(Debug, Clone)]
pub struct IoReq {
    /// Correlation token; completions come back with it.
    pub token: IoToken,
    /// Direction.
    pub dir: IoDir,
    /// Start block.
    pub start: BlockNo,
    /// Length in blocks.
    pub nblocks: u64,
    /// Submitting task (caller, writeback task, or journal task).
    pub submitter: Pid,
    /// Resolved causes (through proxies). Empty when the file system does
    /// not tag this path (XFS partial integration).
    pub causes: CauseSet,
    /// Whether someone synchronously waits on it.
    pub sync: bool,
    /// Owning file, if meaningful.
    pub file: Option<FileId>,
    /// Data / journal / metadata.
    pub kind: ReqKind,
    /// Journal-protocol role of this write; lets the crash harness replay
    /// recovery without parsing on-disk state. `Untracked` for reads.
    pub step: WriteStep,
}

/// Something that became true during a file-system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsEvent {
    /// An `fsync` previously started by `waiter` on `file` is durable.
    FsyncDone {
        /// File synced.
        file: FileId,
        /// Process to wake.
        waiter: Pid,
    },
    /// A writeback pass finished (all its I/O completed).
    WritebackDone {
        /// Pages written.
        pages: u64,
    },
    /// A journal transaction became durable.
    TxnCommitted {
        /// The transaction.
        txn: TxnId,
    },
    /// An `fsync` previously started by `waiter` on `file` failed: some
    /// write it depended on was lost. Mirrors `fsync(2)` returning `EIO`.
    FsyncFailed {
        /// File whose sync failed.
        file: FileId,
        /// Process to wake (with an error).
        waiter: Pid,
        /// Why.
        error: IoError,
    },
    /// A journal write (log body or commit record) failed; the journal is
    /// aborted and every subsequent synchronizing operation fails, as
    /// after a jbd2 abort.
    JournalAborted {
        /// The transaction whose commit failed.
        txn: TxnId,
        /// The underlying device error.
        error: IoError,
    },
}

/// Result of a file-system entry point.
#[derive(Debug, Default)]
pub struct FsOutput {
    /// Block I/O to submit, in order.
    pub ios: Vec<IoReq>,
    /// Events that became true.
    pub events: Vec<FsEvent>,
    /// Dirty buffers dropped without writeback (unlink/truncate) — the
    /// kernel fires buffer-free hooks for these.
    pub freed: Vec<(FileId, sim_cache::PageRange)>,
}

impl FsOutput {
    /// Empty output.
    pub fn none() -> Self {
        Self::default()
    }

    /// Merge another output after this one.
    pub fn merge(&mut self, other: FsOutput) {
        self.ios.extend(other.ios);
        self.events.extend(other.events);
        self.freed.extend(other.freed);
    }
}

/// The interface the kernel drives.
pub trait FileSystem {
    /// File-system name ("ext4" / "xfs").
    fn name(&self) -> &'static str;

    /// Create a file (the `creat` syscall): allocates an inode and joins
    /// the running transaction with the (shared) directory block.
    fn create_file(&mut self, pid: Pid, now: SimTime) -> (FileId, FsOutput);

    /// Create a directory (the `mkdir` syscall).
    fn mkdir(&mut self, pid: Pid, now: SimTime) -> FsOutput;

    /// Remove a file: drops its pages and joins the transaction.
    fn unlink(
        &mut self,
        file: FileId,
        pid: Pid,
        cache: &mut sim_cache::PageCache,
        now: SimTime,
    ) -> FsOutput;

    /// Set up a file with `bytes` of existing, allocated content — test
    /// and experiment fixture; generates no journal activity.
    /// `contiguous` controls layout (false = aged/fragmented).
    fn prealloc_file(&mut self, bytes: u64, contiguous: bool) -> FileId;

    /// Note a buffered write (the data pages are dirtied by the kernel in
    /// the page cache; this records the metadata consequences: inode
    /// update joins the running transaction, file becomes "ordered").
    fn note_write(&mut self, file: FileId, causes: &CauseSet, offset: u64, len: u64, now: SimTime);

    /// Begin an `fsync` by `pid`: flush the file's dirty data and force
    /// the transaction holding its metadata. `FsEvent::FsyncDone` fires
    /// when everything is durable (possibly immediately).
    fn fsync(
        &mut self,
        file: FileId,
        pid: Pid,
        cache: &mut sim_cache::PageCache,
        now: SimTime,
    ) -> FsOutput;

    /// Write back dirty data: of `file`, or of the oldest files if `None`.
    /// Runs in `proxy` context (the writeback task). Asynchronous: creates
    /// no synchronization point.
    fn writeback(
        &mut self,
        file: Option<FileId>,
        max_pages: u64,
        proxy: Pid,
        cache: &mut sim_cache::PageCache,
        now: SimTime,
    ) -> FsOutput;

    /// A previously submitted [`IoReq`] completed.
    fn io_completed(
        &mut self,
        token: IoToken,
        cache: &mut sim_cache::PageCache,
        now: SimTime,
    ) -> FsOutput;

    /// A previously submitted [`IoReq`] failed at the device. Dependent
    /// fsyncs fail ([`FsEvent::FsyncFailed`]) instead of completing; a
    /// failed journal write aborts the journal
    /// ([`FsEvent::JournalAborted`]). Never panics — this is the
    /// error-propagation path.
    fn io_failed(
        &mut self,
        token: IoToken,
        error: IoError,
        cache: &mut sim_cache::PageCache,
        now: SimTime,
    ) -> FsOutput;

    /// Periodic tick (journal commit interval). Returns I/O plus the next
    /// time a tick is wanted.
    fn timer(&mut self, cache: &mut sim_cache::PageCache, now: SimTime) -> FsOutput;

    /// When the next periodic tick is due.
    fn next_timer(&self, now: SimTime) -> SimTime;

    /// Disk extents backing `[page, page+len)` of `file` for reads. Holes
    /// (never-written, never-allocated pages) are omitted.
    fn blocks_for_read(&self, file: FileId, page: u64, len: u64) -> Vec<Extent>;

    /// [`Self::blocks_for_read`] into a caller-owned buffer (cleared
    /// first), so the kernel's read hot path can reuse one allocation.
    fn blocks_for_read_into(&self, file: FileId, page: u64, len: u64, out: &mut Vec<Extent>) {
        out.clear();
        out.extend(self.blocks_for_read(file, page, len));
    }

    /// Allocated location of one page, if any (`None` under delayed
    /// allocation — feeds the buffer-dirty hook's `block` field).
    fn allocated_block(&self, file: FileId, page: u64) -> Option<BlockNo>;

    /// The file's size in bytes.
    fn file_size(&self, file: FileId) -> u64;

    /// Dirty metadata currently queued in the running transaction, in
    /// pages (cost estimation).
    fn running_txn_meta_pages(&self) -> u64;

    /// The pid of the journal/log task (for experiment assertions).
    fn journal_task(&self) -> Pid;

    /// The pid the writeback daemon should use.
    fn writeback_task(&self) -> Pid;
}
