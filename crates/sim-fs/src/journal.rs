//! Journal bookkeeping: the running transaction, metadata joins, ordered
//! files, and the on-disk log area.
//!
//! Transactions commit strictly in order (one commit at a time, as in
//! jbd2); the commit *sequence* itself (flush ordered data → write log →
//! write commit record → checkpoint) is orchestrated by
//! [`crate::fs::JournaledFs`], which owns the I/O tokens.

use sim_core::{BlockNo, CauseSet, FastMap, FastSet, FileId, SimDuration, SimTime, TxnId};

/// Identifies a distinct metadata block so that shared metadata joins a
/// transaction once (Figure 4's shared directory block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaKey {
    /// A file's inode block.
    Inode(FileId),
    /// A directory block (shared among creats in the same directory).
    DirBlock(u32),
    /// An allocation bitmap block (shared among allocations in a group).
    Bitmap(u32),
}

/// Journal configuration.
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// Periodic commit interval (jbd2 default: 5 s).
    pub commit_interval: SimDuration,
    /// First block of the on-disk log area.
    pub area_start: BlockNo,
    /// Size of the log area in blocks.
    pub area_blocks: u64,
    /// Log blocks written per metadata block in a transaction. Physical
    /// journaling (ext4) writes the whole block (1.0); logical journaling
    /// (XFS) writes compact records (< 1.0).
    pub blocks_per_meta: f64,
    /// Force a commit when the running transaction reaches this many
    /// metadata blocks.
    pub max_txn_meta: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            commit_interval: SimDuration::from_secs(5),
            area_start: BlockNo(0),
            area_blocks: 32 * 1024, // 128 MB log
            blocks_per_meta: 1.0,
            max_txn_meta: 8192,
        }
    }
}

/// A transaction handed to the commit sequence.
#[derive(Debug, Clone)]
pub struct CommitTxn {
    /// Transaction id.
    pub id: TxnId,
    /// Distinct metadata blocks joined.
    pub meta_blocks: u64,
    /// Union of all joiners' causes.
    pub causes: CauseSet,
    /// Files whose data must be flushed before the log goes out
    /// (ordered mode).
    pub ordered: Vec<FileId>,
}

#[derive(Debug)]
struct Running {
    id: TxnId,
    meta: FastSet<MetaKey>,
    causes: CauseSet,
    ordered: FastSet<FileId>,
    opened_at: Option<SimTime>,
}

impl Running {
    fn new(id: TxnId) -> Self {
        Running {
            id,
            meta: FastSet::default(),
            causes: CauseSet::empty(),
            ordered: FastSet::default(),
            opened_at: None,
        }
    }

    fn is_empty(&self) -> bool {
        self.meta.is_empty() && self.ordered.is_empty()
    }
}

/// Journal state.
#[derive(Debug)]
pub struct Journal {
    cfg: JournalConfig,
    running: Running,
    /// Which transaction holds each file's most recent metadata.
    file_txn: FastMap<FileId, TxnId>,
    last_committed: Option<TxnId>,
    commit_requested: bool,
    log_cursor: u64,
}

impl Journal {
    /// Fresh journal.
    pub fn new(cfg: JournalConfig) -> Self {
        Journal {
            cfg,
            running: Running::new(TxnId(1)),
            file_txn: FastMap::default(),
            last_committed: None,
            commit_requested: false,
            log_cursor: 0,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &JournalConfig {
        &self.cfg
    }

    /// Join `key` (with `causes`) to the running transaction; `ordered`
    /// optionally marks a file whose data the commit must flush first.
    pub fn join(&mut self, key: MetaKey, causes: &CauseSet, now: SimTime) {
        self.running.meta.insert(key);
        self.running.causes.union_with(causes);
        if self.running.opened_at.is_none() {
            self.running.opened_at = Some(now);
        }
        if let MetaKey::Inode(file) = key {
            self.file_txn.insert(file, self.running.id);
        }
    }

    /// Mark `file`'s dirty data as ordered under the running transaction.
    pub fn mark_ordered(&mut self, file: FileId) {
        self.running.ordered.insert(file);
    }

    /// Ask for the running transaction to commit as soon as possible
    /// (fsync path).
    pub fn request_commit(&mut self) {
        if !self.running.is_empty() {
            self.commit_requested = true;
        }
    }

    /// Whether a commit should start now (requested, too large, or the
    /// periodic interval elapsed).
    pub fn wants_commit(&self, now: SimTime) -> bool {
        if self.running.is_empty() {
            return false;
        }
        if self.commit_requested {
            return true;
        }
        if self.running.meta.len() as u64 >= self.cfg.max_txn_meta {
            return true;
        }
        match self.running.opened_at {
            Some(t) => now.since(t) >= self.cfg.commit_interval,
            None => false,
        }
    }

    /// Seal the running transaction for committing and open a new one.
    pub fn seal(&mut self) -> CommitTxn {
        let next_id = TxnId(self.running.id.raw() + 1);
        let sealed = std::mem::replace(&mut self.running, Running::new(next_id));
        self.commit_requested = false;
        CommitTxn {
            id: sealed.id,
            meta_blocks: sealed.meta.len() as u64,
            causes: sealed.causes,
            ordered: {
                let mut v: Vec<FileId> = sealed.ordered.into_iter().collect();
                v.sort_unstable();
                v
            },
        }
    }

    /// Record that `txn` became durable (commits are in order).
    pub fn mark_committed(&mut self, txn: TxnId) {
        debug_assert!(self.last_committed.is_none_or(|t| txn.raw() > t.raw()));
        self.last_committed = Some(txn);
        self.file_txn.retain(|_, t| t.raw() > txn.raw());
    }

    /// Whether `txn` is durable.
    pub fn is_committed(&self, txn: TxnId) -> bool {
        self.last_committed.is_some_and(|t| txn.raw() <= t.raw())
    }

    /// The transaction currently holding `file`'s metadata, if it is not
    /// yet durable.
    pub fn txn_of(&self, file: FileId) -> Option<TxnId> {
        self.file_txn.get(&file).copied()
    }

    /// The running transaction's id.
    pub fn running_id(&self) -> TxnId {
        self.running.id
    }

    /// Metadata blocks joined to the running transaction.
    pub fn running_meta_blocks(&self) -> u64 {
        self.running.meta.len() as u64
    }

    /// Whether the running transaction is empty.
    pub fn running_is_empty(&self) -> bool {
        self.running.is_empty()
    }

    /// Number of log blocks a transaction of `meta_blocks` writes
    /// (descriptor + payload + headroom; the commit record is separate).
    pub fn log_blocks_for(&self, meta_blocks: u64) -> u64 {
        1 + ((meta_blocks as f64 * self.cfg.blocks_per_meta).ceil() as u64).max(1)
    }

    /// Reserve `n` contiguous blocks in the log area (wrapping).
    pub fn reserve_log(&mut self, n: u64) -> BlockNo {
        let n = n.min(self.cfg.area_blocks);
        if self.log_cursor + n > self.cfg.area_blocks {
            self.log_cursor = 0;
        }
        let at = BlockNo(self.cfg.area_start.raw() + self.log_cursor);
        self.log_cursor += n;
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Pid;

    fn jnl() -> Journal {
        Journal::new(JournalConfig {
            area_start: BlockNo(1000),
            area_blocks: 100,
            ..Default::default()
        })
    }

    #[test]
    fn shared_metadata_joins_once() {
        let mut j = jnl();
        j.join(MetaKey::DirBlock(0), &CauseSet::of(Pid(1)), SimTime::ZERO);
        j.join(MetaKey::DirBlock(0), &CauseSet::of(Pid(2)), SimTime::ZERO);
        assert_eq!(j.running_meta_blocks(), 1, "shared block counted once");
        let sealed = j.seal();
        assert!(sealed.causes.contains(Pid(1)));
        assert!(sealed.causes.contains(Pid(2)));
    }

    #[test]
    fn ordered_files_travel_with_the_sealed_txn() {
        let mut j = jnl();
        j.join(
            MetaKey::Inode(FileId(5)),
            &CauseSet::of(Pid(1)),
            SimTime::ZERO,
        );
        j.mark_ordered(FileId(5));
        j.join(
            MetaKey::Inode(FileId(9)),
            &CauseSet::of(Pid(2)),
            SimTime::ZERO,
        );
        j.mark_ordered(FileId(9));
        let sealed = j.seal();
        assert_eq!(sealed.ordered, vec![FileId(5), FileId(9)]);
        assert!(j.running_is_empty());
        assert_eq!(j.running_id().raw(), sealed.id.raw() + 1);
    }

    #[test]
    fn commit_tracking_is_in_order() {
        let mut j = jnl();
        j.join(
            MetaKey::Inode(FileId(1)),
            &CauseSet::of(Pid(1)),
            SimTime::ZERO,
        );
        let t1 = j.seal();
        j.join(
            MetaKey::Inode(FileId(2)),
            &CauseSet::of(Pid(1)),
            SimTime::ZERO,
        );
        let t2 = j.seal();
        assert!(!j.is_committed(t1.id));
        j.mark_committed(t1.id);
        assert!(j.is_committed(t1.id));
        assert!(!j.is_committed(t2.id));
        // File 2's metadata is still pending; file 1's is durable.
        assert_eq!(j.txn_of(FileId(2)), Some(t2.id));
        assert_eq!(j.txn_of(FileId(1)), None);
    }

    #[test]
    fn wants_commit_on_request_size_or_timeout() {
        let mut j = Journal::new(JournalConfig {
            max_txn_meta: 3,
            commit_interval: SimDuration::from_secs(5),
            ..Default::default()
        });
        assert!(!j.wants_commit(SimTime::ZERO), "empty txn never commits");
        j.join(
            MetaKey::Inode(FileId(1)),
            &CauseSet::of(Pid(1)),
            SimTime::ZERO,
        );
        assert!(!j.wants_commit(SimTime::from_nanos(1)));
        // Request.
        j.request_commit();
        assert!(j.wants_commit(SimTime::from_nanos(1)));
        j.seal();
        // Size.
        for f in 0..3 {
            j.join(
                MetaKey::Inode(FileId(f)),
                &CauseSet::of(Pid(1)),
                SimTime::ZERO,
            );
        }
        assert!(j.wants_commit(SimTime::from_nanos(1)));
        j.seal();
        // Timeout.
        j.join(
            MetaKey::Inode(FileId(9)),
            &CauseSet::of(Pid(1)),
            SimTime::ZERO,
        );
        assert!(!j.wants_commit(SimTime::from_nanos(2)));
        assert!(j.wants_commit(SimTime::ZERO + SimDuration::from_secs(6)));
    }

    #[test]
    fn log_reservation_wraps() {
        let mut j = jnl();
        let a = j.reserve_log(60);
        assert_eq!(a, BlockNo(1000));
        let b = j.reserve_log(60); // would overflow the 100-block area
        assert_eq!(b, BlockNo(1000), "wrapped to area start");
    }

    #[test]
    fn log_size_scales_with_meta_and_mode() {
        let j = jnl(); // physical: 1.0 blocks per meta
        assert_eq!(j.log_blocks_for(10), 11);
        let logical = Journal::new(JournalConfig {
            blocks_per_meta: 0.25,
            ..Default::default()
        });
        assert_eq!(logical.log_blocks_for(10), 4); // 1 + ceil(2.5)
        assert!(logical.log_blocks_for(0) >= 2);
    }
}
