//! Block allocation with per-file reservations.
//!
//! Files get contiguous reservations so their own writeback is sequential;
//! distinct files land in distinct regions, so interleaved flushes seek.
//! A `spread` knob scatters the extents of preallocated files to model an
//! aged disk.

use sim_core::{BlockNo, FastMap, FileId, SimRng};

/// A contiguous run of blocks backing a run of file pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First file page covered.
    pub page: u64,
    /// First disk block.
    pub start: BlockNo,
    /// Length in blocks (= pages).
    pub len: u64,
}

impl Extent {
    /// One past the last page covered.
    pub fn page_end(&self) -> u64 {
        self.page + self.len
    }
}

/// Bump allocator with per-file reservations.
#[derive(Debug)]
pub struct Allocator {
    next_free: u64,
    capacity: u64,
    reservation_blocks: u64,
    reservations: FastMap<FileId, (u64, u64)>, // (cursor, end)
    rng: SimRng,
}

impl Allocator {
    /// Allocator over `[start, capacity)` with the given per-file
    /// reservation size (in blocks).
    pub fn new(start: u64, capacity: u64, reservation_blocks: u64, seed: u64) -> Self {
        assert!(start < capacity, "allocator range must be non-empty");
        Allocator {
            next_free: start,
            capacity,
            reservation_blocks: reservation_blocks.max(1),
            reservations: FastMap::default(),
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Allocate `nblocks` for `file`, continuing its reservation when
    /// possible. Returns the runs granted (usually one; more when a
    /// reservation boundary is crossed).
    pub fn alloc(&mut self, file: FileId, mut nblocks: u64) -> Vec<(BlockNo, u64)> {
        let mut out = Vec::new();
        while nblocks > 0 {
            let (cursor, end) = match self.reservations.get(&file) {
                Some(&(c, e)) if c < e => (c, e),
                _ => {
                    let size = self
                        .reservation_blocks
                        .max(nblocks.min(self.reservation_blocks * 4));
                    let start = self.grab(size);
                    (start, start + size)
                }
            };
            let take = nblocks.min(end - cursor);
            out.push((BlockNo(cursor), take));
            self.reservations.insert(file, (cursor + take, end));
            nblocks -= take;
        }
        out
    }

    /// Allocate a scattered layout for a preallocated (aged) file: extents
    /// of ~`chunk` blocks at pseudo-random positions.
    pub fn alloc_scattered(&mut self, nblocks: u64, chunk: u64) -> Vec<(BlockNo, u64)> {
        let chunk = chunk.max(1);
        let mut out = Vec::new();
        let mut left = nblocks;
        while left > 0 {
            let take = left.min(chunk);
            // Jump the bump pointer by a random gap to fragment.
            let gap = self.rng.gen_range(self.reservation_blocks * 4) + 1;
            self.next_free = (self.next_free + gap).min(self.capacity - take);
            let start = self.grab(take);
            out.push((BlockNo(start), take));
            left -= take;
        }
        out
    }

    /// Allocate one contiguous run (fixtures, journal area).
    pub fn alloc_contiguous(&mut self, nblocks: u64) -> BlockNo {
        BlockNo(self.grab(nblocks))
    }

    fn grab(&mut self, n: u64) -> u64 {
        if self.next_free + n > self.capacity {
            // Wrap: the simulator never fills a 500 GB disk, but be safe.
            self.next_free = self.capacity / 8;
        }
        let at = self.next_free;
        self.next_free += n;
        at
    }

    /// Blocks handed out so far (diagnostics).
    pub fn high_water(&self) -> u64 {
        self.next_free
    }
}

/// Per-file extent map.
#[derive(Debug, Default, Clone)]
pub struct ExtentMap {
    // page -> (start block, len); non-overlapping, keyed by first page.
    runs: std::collections::BTreeMap<u64, (BlockNo, u64)>,
}

impl ExtentMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that pages `[page, page+len)` live at `start`.
    pub fn insert(&mut self, page: u64, start: BlockNo, len: u64) {
        self.runs.insert(page, (start, len));
    }

    /// Location of one page, if allocated.
    pub fn lookup(&self, page: u64) -> Option<BlockNo> {
        let (&p0, &(start, len)) = self.runs.range(..=page).next_back()?;
        if page < p0 + len {
            Some(BlockNo(start.raw() + (page - p0)))
        } else {
            None
        }
    }

    /// Extents covering `[page, page+len)`, clipped; holes omitted.
    pub fn extents_for(&self, page: u64, len: u64) -> Vec<Extent> {
        let mut out = Vec::new();
        self.extents_for_into(page, len, &mut out);
        out
    }

    /// [`ExtentMap::extents_for`] into a caller-owned buffer (cleared
    /// first), so hot flush loops can reuse one allocation.
    pub fn extents_for_into(&self, page: u64, len: u64, out: &mut Vec<Extent>) {
        out.clear();
        let end = page + len;
        // Consider the run that may begin before `page` plus all runs
        // starting inside the window.
        let start_key = self
            .runs
            .range(..=page)
            .next_back()
            .map(|(&k, _)| k)
            .unwrap_or(page);
        for (&p0, &(b0, l0)) in self.runs.range(start_key..end) {
            let run_end = p0 + l0;
            if run_end <= page || p0 >= end {
                continue;
            }
            let from = page.max(p0);
            let to = end.min(run_end);
            out.push(Extent {
                page: from,
                start: BlockNo(b0.raw() + (from - p0)),
                len: to - from,
            });
        }
    }

    /// Whether every page of `[page, page+len)` is allocated.
    pub fn fully_allocated(&self, page: u64, len: u64) -> bool {
        let end = page + len;
        let start_key = self
            .runs
            .range(..=page)
            .next_back()
            .map(|(&k, _)| k)
            .unwrap_or(page);
        let mut covered = 0;
        for (&p0, &(_, l0)) in self.runs.range(start_key..end) {
            let run_end = p0 + l0;
            if run_end <= page || p0 >= end {
                continue;
            }
            covered += end.min(run_end) - page.max(p0);
        }
        covered == len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_continues_reservation() {
        let mut a = Allocator::new(1000, 1_000_000, 256, 1);
        let f = FileId(1);
        let r1 = a.alloc(f, 10);
        let r2 = a.alloc(f, 10);
        assert_eq!(r1.len(), 1);
        assert_eq!(r2.len(), 1);
        assert_eq!(r2[0].0.raw(), r1[0].0.raw() + 10, "append is contiguous");
    }

    #[test]
    fn distinct_files_get_distinct_regions() {
        let mut a = Allocator::new(0, 1_000_000, 256, 1);
        let r1 = a.alloc(FileId(1), 10);
        let r2 = a.alloc(FileId(2), 10);
        assert!(r2[0].0.raw() >= r1[0].0.raw() + 256, "files are separated");
    }

    #[test]
    fn crossing_reservation_yields_multiple_runs() {
        let mut a = Allocator::new(0, 1_000_000, 16, 1);
        let runs = a.alloc(FileId(1), 100);
        assert!(runs.iter().map(|r| r.1).sum::<u64>() == 100);
    }

    #[test]
    fn scattered_layout_fragments() {
        let mut a = Allocator::new(0, 100_000_000, 256, 7);
        let runs = a.alloc_scattered(1024, 64);
        assert_eq!(runs.iter().map(|r| r.1).sum::<u64>(), 1024);
        assert!(runs.len() >= 16, "got {} runs", runs.len());
        // Runs are not contiguous.
        let contiguous = runs
            .windows(2)
            .filter(|w| w[0].0.raw() + w[0].1 == w[1].0.raw())
            .count();
        assert!(contiguous < runs.len() / 2);
    }

    #[test]
    fn extent_map_lookup_and_clip() {
        let mut m = ExtentMap::new();
        m.insert(0, BlockNo(100), 10);
        m.insert(20, BlockNo(500), 5);
        assert_eq!(m.lookup(0), Some(BlockNo(100)));
        assert_eq!(m.lookup(9), Some(BlockNo(109)));
        assert_eq!(m.lookup(10), None);
        assert_eq!(m.lookup(22), Some(BlockNo(502)));
        let ex = m.extents_for(5, 20);
        assert_eq!(
            ex,
            vec![
                Extent {
                    page: 5,
                    start: BlockNo(105),
                    len: 5
                },
                Extent {
                    page: 20,
                    start: BlockNo(500),
                    len: 5
                },
            ]
        );
        assert!(m.fully_allocated(0, 10));
        assert!(!m.fully_allocated(0, 11));
    }
}
