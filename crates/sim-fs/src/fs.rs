//! `JournaledFs` — the concrete file system: inodes + extents, delayed
//! allocation, ordered-mode journaling, writeback, fsync.
//!
//! Two presets:
//!
//! * [`Ext4`] — physical journal, journal and writeback tasks fully proxy
//!   tagged ("full integration", §6 part a+b).
//! * [`Xfs`] — logical journal (smaller log writes) written by a log task
//!   that is **not** tagged ("partial integration", part a only): data
//!   I/O carries buffer tags, but journal and checkpoint I/O carries no
//!   causes — so metadata-heavy workloads escape split schedulers, exactly
//!   the Figure 17 result.

use sim_block::ReqKind;
use sim_cache::PageCache;
use sim_core::{
    BlockNo, CauseSet, FastMap, FastSet, FileId, IdAlloc, IoError, IoErrorKind, Pid, SimDuration,
    SimRng, SimTime, TxnId,
};
use sim_device::IoDir;
use sim_fault::WriteStep;
use sim_trace::{Layer, SpanId, Tracer};
use split_core::ProxyRegistry;

use crate::alloc::{Allocator, Extent, ExtentMap};
use crate::journal::{CommitTxn, Journal, JournalConfig, MetaKey};
use crate::{FileSystem, FsEvent, FsOutput, IoReq, IoToken};

/// File-system configuration.
#[derive(Debug, Clone, Copy)]
pub struct FsConfig {
    /// "ext4" or "xfs" (or anything else).
    pub name: &'static str,
    /// Whether journal/checkpoint I/O carries cause tags (full
    /// integration). Data I/O is always tagged (buffer heads are generic).
    pub tag_journal: bool,
    /// Log blocks per metadata block (1.0 physical, <1 logical).
    pub blocks_per_meta: f64,
    /// Periodic commit interval.
    pub commit_interval: SimDuration,
    /// Device size in blocks.
    pub device_blocks: u64,
    /// Per-file allocator reservation, in blocks.
    pub reservation_blocks: u64,
    /// Extent size used when preallocating fragmented files.
    pub scatter_chunk: u64,
    /// RNG seed (layout decisions).
    pub seed: u64,
}

impl FsConfig {
    /// ext4-like defaults for a device of `device_blocks`.
    pub fn ext4(device_blocks: u64) -> Self {
        FsConfig {
            name: "ext4",
            tag_journal: true,
            blocks_per_meta: 1.0,
            commit_interval: SimDuration::from_secs(5),
            device_blocks,
            reservation_blocks: 2048, // 8 MB
            scatter_chunk: 64,
            seed: 0x5eed,
        }
    }

    /// XFS-like defaults (partial split integration).
    pub fn xfs(device_blocks: u64) -> Self {
        FsConfig {
            name: "xfs",
            tag_journal: false,
            blocks_per_meta: 0.25,
            ..Self::ext4(device_blocks)
        }
    }
}

#[derive(Debug, Default)]
struct Inode {
    size: u64,
    extents: ExtentMap,
}

/// Who owns an outstanding I/O token.
#[derive(Debug, Clone)]
enum TokenOwner {
    /// File data (fsync flush, writeback, or ordered flush).
    Data {
        file: FileId,
        fsync: Option<u64>,
        wb_pass: Option<u64>,
    },
    /// The journal log body of the in-flight commit.
    JournalLog,
    /// The commit record of the in-flight commit.
    CommitRecord,
    /// Checkpoint (in-place metadata) writes; fire-and-forget.
    Checkpoint,
}

#[derive(Debug)]
struct FsyncState {
    file: FileId,
    waiter: Pid,
    pending_data: FastSet<IoToken>,
    wait_txn: Option<TxnId>,
    done: bool,
    /// Span covering the data flush this fsync waits for.
    data_span: SpanId,
    /// Span covering the wait for the journal commit.
    txn_span: SpanId,
}

#[derive(Debug, PartialEq)]
enum CommitPhase {
    FlushingData,
    WritingLog,
    WritingCommitRecord,
}

#[derive(Debug)]
struct Commit {
    txn: CommitTxn,
    phase: CommitPhase,
    pending: FastSet<IoToken>,
    span: SpanId,
}

#[derive(Debug)]
struct WbPass {
    pending: FastSet<IoToken>,
    pages: u64,
    span: SpanId,
}

/// The journaling file system.
pub struct JournaledFs {
    cfg: FsConfig,
    inodes: FastMap<FileId, Inode>,
    file_ids: IdAlloc,
    allocator: Allocator,
    journal: Journal,
    commit: Option<Commit>,
    /// Data tokens in flight per file — a commit must wait for these for
    /// its ordered files (data-before-metadata).
    inflight_data: FastMap<FileId, FastSet<IoToken>>,
    tokens: IdAlloc,
    owners: FastMap<IoToken, TokenOwner>,
    fsyncs: FastMap<u64, FsyncState>,
    fsync_ids: IdAlloc,
    wb_passes: FastMap<u64, WbPass>,
    wb_ids: IdAlloc,
    proxies: ProxyRegistry,
    journal_pid: Pid,
    writeback_pid: Pid,
    meta_zone_rng: SimRng,
    last_timer: SimTime,
    tracer: Tracer,
    /// Set when a journal write failed; the file system then refuses to
    /// start commits and fails every fsync, as ext4 does after a jbd2
    /// abort. `None` on the (infallible) happy path.
    aborted: Option<IoError>,
    /// Reusable extent buffer for the flush hot loop.
    extent_scratch: Vec<Extent>,
}

/// ext4 preset.
pub type Ext4 = JournaledFs;

/// XFS preset (same engine, partial integration config).
pub type Xfs = JournaledFs;

impl JournaledFs {
    /// Build a file system. `journal_pid`/`writeback_pid` are the kernel
    /// task ids for the journal and writeback daemons.
    pub fn new(cfg: FsConfig, journal_pid: Pid, writeback_pid: Pid) -> Self {
        // Log area in the middle of the device, data from the front.
        let log_blocks = 32 * 1024;
        let log_start = cfg.device_blocks / 2;
        let journal = Journal::new(JournalConfig {
            commit_interval: cfg.commit_interval,
            area_start: BlockNo(log_start),
            area_blocks: log_blocks,
            blocks_per_meta: cfg.blocks_per_meta,
            max_txn_meta: 8192,
        });
        JournaledFs {
            allocator: Allocator::new(256, log_start, cfg.reservation_blocks, cfg.seed),
            journal,
            cfg,
            inodes: FastMap::default(),
            file_ids: IdAlloc::new(),
            commit: None,
            inflight_data: FastMap::default(),
            tokens: IdAlloc::new(),
            owners: FastMap::default(),
            fsyncs: FastMap::default(),
            fsync_ids: IdAlloc::new(),
            wb_passes: FastMap::default(),
            wb_ids: IdAlloc::new(),
            proxies: ProxyRegistry::new(),
            journal_pid,
            writeback_pid,
            meta_zone_rng: SimRng::seed_from_u64(cfg.seed ^ 0x6d65_7461),
            last_timer: SimTime::ZERO,
            tracer: Tracer::new(),
            aborted: None,
            extent_scratch: Vec::new(),
        }
    }

    /// Share the kernel's tracer so journal/writeback activity lands in
    /// the same span tree as the syscalls that caused it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// ext4 with full split integration.
    pub fn new_ext4(device_blocks: u64, journal_pid: Pid, writeback_pid: Pid) -> Self {
        Self::new(FsConfig::ext4(device_blocks), journal_pid, writeback_pid)
    }

    /// XFS with partial split integration.
    pub fn new_xfs(device_blocks: u64, journal_pid: Pid, writeback_pid: Pid) -> Self {
        Self::new(FsConfig::xfs(device_blocks), journal_pid, writeback_pid)
    }

    /// The proxy registry (exposed for tests and experiments that assert
    /// on tagging behaviour).
    pub fn proxies(&self) -> &ProxyRegistry {
        &self.proxies
    }

    fn token(&mut self, owner: TokenOwner) -> IoToken {
        let t = IoToken(self.tokens.next());
        self.owners.insert(t, owner);
        t
    }

    /// Flush `file`'s dirty pages: allocate (delayed allocation happens
    /// here) and emit data I/O. Returns the tokens created.
    #[allow(clippy::too_many_arguments)]
    fn flush_file_data(
        &mut self,
        file: FileId,
        max_pages: u64,
        submitter: Pid,
        sync: bool,
        fsync: Option<u64>,
        wb_pass: Option<u64>,
        cache: &mut PageCache,
        now: SimTime,
        out: &mut FsOutput,
    ) -> Vec<IoToken> {
        let ranges = cache.take_dirty_ranges(file, max_pages);
        let mut tokens = Vec::new();
        // Reused across ranges (and calls) so the flush loop stays off the
        // allocator; taken out of `self` to free the borrow.
        let mut extents = std::mem::take(&mut self.extent_scratch);
        self.inodes.entry(file).or_default();
        for range in ranges {
            // Delayed allocation: assign blocks now if the range is new.
            // Allocation dirties shared metadata (bitmap + inode), joining
            // the running transaction on behalf of the range's causes.
            if !self.inodes[&file]
                .extents
                .fully_allocated(range.start_page, range.len)
            {
                // Find the unallocated runs first, then allocate them.
                let mut unalloc_runs: Vec<(u64, u64)> = Vec::new();
                {
                    let inode = &self.inodes[&file];
                    let mut page = range.start_page;
                    let end = range.start_page + range.len;
                    while page < end {
                        if inode.extents.lookup(page).is_some() {
                            page += 1;
                            continue;
                        }
                        let mut run = 1;
                        while page + run < end && inode.extents.lookup(page + run).is_none() {
                            run += 1;
                        }
                        unalloc_runs.push((page, run));
                        page += run;
                    }
                }
                for (mut page, run) in unalloc_runs {
                    for (start, len) in self.allocator.alloc(file, run) {
                        self.inodes
                            .get_mut(&file)
                            .expect("inode exists")
                            .extents
                            .insert(page, start, len);
                        page += len;
                    }
                }
                self.journal.join(MetaKey::Inode(file), &range.causes, now);
                self.journal.join(
                    MetaKey::Bitmap((file.raw() % 16) as u32),
                    &range.causes,
                    now,
                );
            }
            // Emit one I/O per physical extent backing the range, capped
            // at 256 blocks (1 MB) per request as Linux caps bio sizes —
            // also what keeps admission control fine-grained.
            const MAX_REQ_BLOCKS: u64 = 256;
            self.inodes[&file]
                .extents
                .extents_for_into(range.start_page, range.len, &mut extents);
            for e in &extents {
                let mut off = 0;
                while off < e.len {
                    let chunk = (e.len - off).min(MAX_REQ_BLOCKS);
                    let tok = self.token(TokenOwner::Data {
                        file,
                        fsync,
                        wb_pass,
                    });
                    self.inflight_data.entry(file).or_default().insert(tok);
                    tokens.push(tok);
                    out.ios.push(IoReq {
                        token: tok,
                        dir: IoDir::Write,
                        start: sim_core::BlockNo(e.start.raw() + off),
                        nblocks: chunk,
                        submitter,
                        causes: range.causes.clone(),
                        sync,
                        file: Some(file),
                        kind: ReqKind::Data,
                        step: WriteStep::Data { file },
                    });
                    off += chunk;
                }
            }
        }
        self.extent_scratch = extents;
        tokens
    }

    /// Start a commit if one is wanted and none is in flight.
    fn maybe_start_commit(&mut self, cache: &mut PageCache, now: SimTime, out: &mut FsOutput) {
        if self.aborted.is_some() || self.commit.is_some() || !self.journal.wants_commit(now) {
            return;
        }
        let txn = self.journal.seal();
        // The journal task acts as a proxy for everyone in the txn.
        self.proxies.mark(self.journal_pid, &txn.causes);
        // The commit span belongs to the journal task but carries the
        // entangled causes — that is the Figure 4/5 story in one span.
        let commit_span = self.tracer.begin_current(
            Layer::Journal,
            "journal_commit",
            self.journal_pid,
            &txn.causes,
            now,
        );
        self.tracer.set_arg(commit_span, txn.id.raw());
        let mut pending: FastSet<IoToken> = FastSet::default();
        // Ordered mode: flush dirty data of every file in the transaction,
        // and also wait for that data's already-in-flight writes.
        for &file in &txn.ordered.clone() {
            if let Some(inflight) = self.inflight_data.get(&file) {
                pending.extend(inflight.iter().copied());
            }
        }
        let ordered = txn.ordered.clone();
        self.commit = Some(Commit {
            txn,
            phase: CommitPhase::FlushingData,
            pending: FastSet::default(), // placeholder; set below
            span: commit_span,
        });
        let mut flush_tokens = Vec::new();
        for file in ordered {
            let causes = self
                .commit
                .as_ref()
                .map(|c| c.txn.causes.clone())
                .unwrap_or_default();
            let _ = causes;
            let toks = self.flush_file_data(
                file,
                u64::MAX,
                self.journal_pid,
                true,
                None,
                None,
                cache,
                now,
                out,
            );
            flush_tokens.extend(toks);
        }
        pending.extend(flush_tokens);
        let commit = self.commit.as_mut().expect("just set");
        commit.pending = pending;
        if commit.pending.is_empty() {
            self.write_log(now, out);
        }
    }

    /// Phase 2: write the log body.
    fn write_log(&mut self, _now: SimTime, out: &mut FsOutput) {
        // Tolerate a vanished commit (journal abort races a completion).
        let Some(commit) = self.commit.as_mut() else {
            return;
        };
        commit.phase = CommitPhase::WritingLog;
        let txn = commit.txn.id;
        let ordered = commit.txn.ordered.clone();
        let meta_blocks = commit.txn.meta_blocks;
        let nblocks = self.journal.log_blocks_for(meta_blocks);
        let start = self.journal.reserve_log(nblocks);
        let causes = if self.cfg.tag_journal {
            self.proxies.resolve(self.journal_pid)
        } else {
            CauseSet::empty()
        };
        let txn_causes = causes;
        let tok = IoToken(self.tokens.next());
        self.owners.insert(tok, TokenOwner::JournalLog);
        self.commit
            .as_mut()
            .expect("checked above")
            .pending
            .insert(tok);
        out.ios.push(IoReq {
            token: tok,
            dir: IoDir::Write,
            start,
            nblocks,
            submitter: self.journal_pid,
            causes: txn_causes,
            sync: true,
            file: None,
            kind: ReqKind::Journal,
            step: WriteStep::JournalLog { txn, ordered },
        });
    }

    /// Phase 3: the commit record (ordered after the log body).
    fn write_commit_record(&mut self, out: &mut FsOutput) {
        let nblocks = 1;
        let start = self.journal.reserve_log(nblocks);
        let causes = if self.cfg.tag_journal {
            self.proxies.resolve(self.journal_pid)
        } else {
            CauseSet::empty()
        };
        let tok = IoToken(self.tokens.next());
        self.owners.insert(tok, TokenOwner::CommitRecord);
        let Some(commit) = self.commit.as_mut() else {
            return;
        };
        commit.phase = CommitPhase::WritingCommitRecord;
        commit.pending.insert(tok);
        let txn = commit.txn.id;
        out.ios.push(IoReq {
            token: tok,
            dir: IoDir::Write,
            start,
            nblocks,
            submitter: self.journal_pid,
            causes,
            sync: true,
            file: None,
            kind: ReqKind::Journal,
            step: WriteStep::CommitRecord { txn },
        });
    }

    /// The commit record hit the platter: the transaction is durable.
    fn finish_commit(&mut self, cache: &mut PageCache, now: SimTime, out: &mut FsOutput) {
        let commit = self.commit.take().expect("commit in flight");
        self.journal.mark_committed(commit.txn.id);
        self.proxies.clear(self.journal_pid);
        self.tracer.end_current(self.journal_pid, commit.span, now);
        self.tracer.count("journal.commits", 1);
        out.events
            .push(FsEvent::TxnCommitted { txn: commit.txn.id });
        // Checkpoint: write the metadata in place, lazily (async). One
        // scattered write per transaction, sized by its metadata.
        if commit.txn.meta_blocks > 0 {
            let zone = (self.cfg.device_blocks / 20).max(1);
            let start = BlockNo(self.meta_zone_rng.gen_range(zone));
            let causes = if self.cfg.tag_journal {
                commit.txn.causes.clone()
            } else {
                CauseSet::empty()
            };
            let tok = self.token(TokenOwner::Checkpoint);
            out.ios.push(IoReq {
                token: tok,
                dir: IoDir::Write,
                start,
                nblocks: commit.txn.meta_blocks,
                submitter: self.journal_pid,
                causes,
                sync: false,
                file: None,
                kind: ReqKind::Metadata,
                step: WriteStep::Checkpoint { txn: commit.txn.id },
            });
        }
        // Wake fsyncs that were waiting on this transaction.
        self.resolve_fsyncs(now, out);
        // Chain the next commit if someone already asked for it.
        self.maybe_start_commit(cache, now, out);
    }

    /// If the journal has aborted, the reason.
    pub fn journal_aborted(&self) -> Option<IoError> {
        self.aborted
    }

    /// A journal write (log body or commit record) failed: abort. The
    /// in-flight commit is dropped, every outstanding fsync fails, and
    /// [`JournaledFs::maybe_start_commit`] refuses new commits from here
    /// on — modeled on jbd2's abort semantics.
    fn abort_journal(&mut self, cause: IoError, now: SimTime, out: &mut FsOutput) {
        if self.aborted.is_some() {
            return;
        }
        let error = IoError {
            kind: IoErrorKind::JournalAborted,
            req: cause.req,
        };
        self.aborted = Some(error);
        if let Some(commit) = self.commit.take() {
            self.tracer.end_current(self.journal_pid, commit.span, now);
            out.events.push(FsEvent::JournalAborted {
                txn: commit.txn.id,
                error,
            });
        }
        self.proxies.clear(self.journal_pid);
        self.fail_fsyncs(|_| true, error, now, out);
    }

    /// Fail and remove every fsync matching `pred`, firing `FsyncFailed`.
    fn fail_fsyncs(
        &mut self,
        pred: impl Fn(&FsyncState) -> bool,
        error: IoError,
        now: SimTime,
        out: &mut FsOutput,
    ) {
        let mut ids: Vec<u64> = self
            .fsyncs
            .iter()
            .filter(|(_, st)| pred(st))
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let st = self.fsyncs.remove(&id).expect("present");
            self.tracer.end(st.data_span, now);
            self.tracer.end(st.txn_span, now);
            out.events.push(FsEvent::FsyncFailed {
                file: st.file,
                waiter: st.waiter,
                error,
            });
        }
    }

    /// Fire `FsyncDone` for every fsync whose data is flushed and whose
    /// transaction is durable.
    fn resolve_fsyncs(&mut self, now: SimTime, out: &mut FsOutput) {
        let journal = &self.journal;
        let mut done_ids = Vec::new();
        for (&id, st) in &self.fsyncs {
            if st.done {
                continue;
            }
            let txn_ok = st.wait_txn.is_none_or(|t| journal.is_committed(t));
            if st.pending_data.is_empty() && txn_ok {
                done_ids.push(id);
            }
        }
        done_ids.sort_unstable();
        for id in done_ids {
            let st = self.fsyncs.remove(&id).expect("present");
            self.tracer.end(st.data_span, now);
            self.tracer.end(st.txn_span, now);
            out.events.push(FsEvent::FsyncDone {
                file: st.file,
                waiter: st.waiter,
            });
        }
    }
}

impl FileSystem for JournaledFs {
    fn name(&self) -> &'static str {
        self.cfg.name
    }

    fn create_file(&mut self, pid: Pid, now: SimTime) -> (FileId, FsOutput) {
        let id = FileId(self.file_ids.next());
        self.inodes.insert(id, Inode::default());
        let causes = CauseSet::of(pid);
        // A creat dirties the shared directory block and the new inode.
        self.journal.join(MetaKey::DirBlock(0), &causes, now);
        self.journal.join(MetaKey::Inode(id), &causes, now);
        (id, FsOutput::none())
    }

    fn mkdir(&mut self, pid: Pid, now: SimTime) -> FsOutput {
        let causes = CauseSet::of(pid);
        self.journal.join(MetaKey::DirBlock(0), &causes, now);
        let id = FileId(self.file_ids.next());
        self.journal.join(MetaKey::Inode(id), &causes, now);
        FsOutput::none()
    }

    fn unlink(&mut self, file: FileId, pid: Pid, cache: &mut PageCache, now: SimTime) -> FsOutput {
        let mut out = FsOutput::none();
        let causes = CauseSet::of(pid);
        self.journal.join(MetaKey::DirBlock(0), &causes, now);
        self.journal.join(MetaKey::Inode(file), &causes, now);
        for range in cache.free_file(file) {
            out.freed.push((file, range));
        }
        self.inodes.remove(&file);
        out
    }

    fn prealloc_file(&mut self, bytes: u64, contiguous: bool) -> FileId {
        let id = FileId(self.file_ids.next());
        let npages = sim_core::pages_for_bytes(bytes);
        let mut inode = Inode {
            size: bytes,
            extents: ExtentMap::new(),
        };
        if contiguous {
            let start = self.allocator.alloc_contiguous(npages);
            inode.extents.insert(0, start, npages);
        } else {
            let mut page = 0;
            for (start, len) in self
                .allocator
                .alloc_scattered(npages, self.cfg.scatter_chunk)
            {
                inode.extents.insert(page, start, len);
                page += len;
            }
        }
        self.inodes.insert(id, inode);
        id
    }

    fn note_write(&mut self, file: FileId, causes: &CauseSet, offset: u64, len: u64, now: SimTime) {
        let inode = self.inodes.entry(file).or_default();
        inode.size = inode.size.max(offset + len);
        // Every write updates the inode (size/mtime) — this is what drags
        // unrelated files into the same transaction (Figure 4/5).
        self.journal.join(MetaKey::Inode(file), causes, now);
        self.journal.mark_ordered(file);
    }

    fn fsync(&mut self, file: FileId, pid: Pid, cache: &mut PageCache, now: SimTime) -> FsOutput {
        let mut out = FsOutput::none();
        // After a journal abort no durability can be promised; fail fast,
        // as ext4 does once jbd2 is aborted.
        if let Some(error) = self.aborted {
            out.events.push(FsEvent::FsyncFailed {
                file,
                waiter: pid,
                error,
            });
            return out;
        }
        let id = self.fsync_ids.next();
        // fsync must wait for data writes already in flight (e.g. an
        // earlier writeback pass) as well as the ones it issues itself.
        let mut pending: FastSet<IoToken> = self
            .inflight_data
            .get(&file)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let tokens = self.flush_file_data(
            file,
            u64::MAX,
            pid,
            true,
            Some(id),
            None,
            cache,
            now,
            &mut out,
        );
        pending.extend(tokens);
        // Which transaction must commit before this fsync returns?
        let wait_txn = self.journal.txn_of(file).or_else(|| match &self.commit {
            Some(c) if c.txn.ordered.contains(&file) || c.txn.causes.contains(pid) => {
                Some(c.txn.id)
            }
            _ => None,
        });
        if wait_txn == Some(self.journal.running_id()) {
            self.journal.request_commit();
        }
        // Decompose the fsync under its syscall span: one child for the
        // data flush, one for the journal-commit wait (entanglement shows
        // up as foreign causes on the commit's own spans).
        let mut data_span = SpanId::NONE;
        let mut txn_span = SpanId::NONE;
        if self.tracer.enabled() {
            self.tracer.count("fs.fsyncs", 1);
            let parent = self.tracer.current(pid);
            let causes = CauseSet::of(pid);
            if !pending.is_empty() {
                data_span = self.tracer.begin_child(
                    parent,
                    Layer::Writeback,
                    "fsync_data",
                    pid,
                    &causes,
                    now,
                );
            }
            if let Some(txn) = wait_txn {
                txn_span = self.tracer.begin_child(
                    parent,
                    Layer::Journal,
                    "journal_wait",
                    pid,
                    &causes,
                    now,
                );
                self.tracer.set_arg(txn_span, txn.raw());
            }
        }
        self.fsyncs.insert(
            id,
            FsyncState {
                file,
                waiter: pid,
                pending_data: pending,
                wait_txn,
                done: false,
                data_span,
                txn_span,
            },
        );
        self.maybe_start_commit(cache, now, &mut out);
        self.resolve_fsyncs(now, &mut out);
        out
    }

    fn writeback(
        &mut self,
        file: Option<FileId>,
        max_pages: u64,
        proxy: Pid,
        cache: &mut PageCache,
        now: SimTime,
    ) -> FsOutput {
        let mut out = FsOutput::none();
        let pass = self.wb_ids.next();
        let files: Vec<FileId> = match file {
            Some(f) => vec![f],
            None => cache.dirty_files_oldest_first(),
        };
        let mut budget = max_pages;
        let mut tokens = Vec::new();
        let mut pages = 0;
        for f in files {
            if budget == 0 {
                break;
            }
            let before = cache.dirty_pages_of(f);
            if before == 0 {
                continue;
            }
            // Mark the writeback task as a proxy for the pages' causes —
            // resolved inside flush via the range tags; the registry entry
            // demonstrates delegation for assertions/overhead accounting.
            let take = before.min(budget);
            let toks = self.flush_file_data(
                f,
                take,
                proxy,
                false,
                None,
                Some(pass),
                cache,
                now,
                &mut out,
            );
            let taken = before - cache.dirty_pages_of(f);
            pages += taken;
            budget = budget.saturating_sub(taken);
            tokens.extend(toks);
        }
        for io in &out.ios {
            self.proxies.mark(proxy, &io.causes);
        }
        if tokens.is_empty() {
            self.proxies.clear(proxy);
            out.events.push(FsEvent::WritebackDone { pages: 0 });
        } else {
            let mut span = SpanId::NONE;
            if self.tracer.enabled() {
                // The pass span carries the flushed pages' causes (the
                // proxy registry already resolved them) — delegation made
                // visible.
                let causes = self.proxies.resolve(proxy);
                span = self.tracer.begin_current(
                    Layer::Writeback,
                    "writeback_pass",
                    proxy,
                    &causes,
                    now,
                );
                self.tracer.set_arg(span, pages);
            }
            self.wb_passes.insert(
                pass,
                WbPass {
                    pending: tokens.into_iter().collect(),
                    pages,
                    span,
                },
            );
        }
        out
    }

    fn io_completed(&mut self, token: IoToken, cache: &mut PageCache, now: SimTime) -> FsOutput {
        let mut out = FsOutput::none();
        let Some(owner) = self.owners.remove(&token) else {
            return out;
        };
        match owner {
            TokenOwner::Data {
                file,
                fsync,
                wb_pass,
            } => {
                if let Some(set) = self.inflight_data.get_mut(&file) {
                    set.remove(&token);
                    if set.is_empty() {
                        self.inflight_data.remove(&file);
                    }
                }
                let _ = fsync;
                // Any fsync may be waiting on this token (its own flush or
                // a pre-existing in-flight write of the same file).
                let mut drained = Vec::new();
                for st in self.fsyncs.values_mut() {
                    if st.pending_data.remove(&token) && st.pending_data.is_empty() {
                        let span = std::mem::take(&mut st.data_span);
                        if !span.is_none() {
                            drained.push(span);
                        }
                    }
                }
                for span in drained {
                    self.tracer.end(span, now);
                }
                if let Some(pass) = wb_pass {
                    let done = if let Some(wb) = self.wb_passes.get_mut(&pass) {
                        wb.pending.remove(&token);
                        wb.pending.is_empty()
                    } else {
                        false
                    };
                    if done {
                        let wb = self.wb_passes.remove(&pass).expect("present");
                        self.proxies.clear(self.writeback_pid);
                        self.tracer.end_current(self.writeback_pid, wb.span, now);
                        out.events.push(FsEvent::WritebackDone { pages: wb.pages });
                    }
                }
                // A commit in FlushingData may be waiting on this token.
                if let Some(c) = self.commit.as_mut() {
                    if c.phase == CommitPhase::FlushingData {
                        c.pending.remove(&token);
                        if c.pending.is_empty() {
                            self.write_log(now, &mut out);
                        }
                    }
                }
                self.resolve_fsyncs(now, &mut out);
            }
            TokenOwner::JournalLog => {
                if let Some(c) = self.commit.as_mut() {
                    c.pending.remove(&token);
                    if c.pending.is_empty() {
                        self.write_commit_record(&mut out);
                    }
                }
            }
            TokenOwner::CommitRecord => {
                let finished = self
                    .commit
                    .as_mut()
                    .map(|c| {
                        c.pending.remove(&token);
                        c.pending.is_empty()
                    })
                    .unwrap_or(false);
                if finished {
                    self.finish_commit(cache, now, &mut out);
                }
            }
            TokenOwner::Checkpoint => {}
        }
        out
    }

    fn io_failed(
        &mut self,
        token: IoToken,
        error: IoError,
        cache: &mut PageCache,
        now: SimTime,
    ) -> FsOutput {
        let mut out = FsOutput::none();
        let Some(owner) = self.owners.remove(&token) else {
            return out;
        };
        match owner {
            TokenOwner::Data {
                file,
                fsync: _,
                wb_pass,
            } => {
                if let Some(set) = self.inflight_data.get_mut(&file) {
                    set.remove(&token);
                    if set.is_empty() {
                        self.inflight_data.remove(&file);
                    }
                }
                // Every fsync waiting on this write fails with the device
                // error — fsync(2) returning EIO.
                self.fail_fsyncs(|st| st.pending_data.contains(&token), error, now, &mut out);
                // The writeback pass still drains: the pages are no longer
                // dirty (their content is simply lost), and the daemon must
                // not wait forever.
                if let Some(pass) = wb_pass {
                    let done = if let Some(wb) = self.wb_passes.get_mut(&pass) {
                        wb.pending.remove(&token);
                        wb.pending.is_empty()
                    } else {
                        false
                    };
                    if done {
                        let wb = self.wb_passes.remove(&pass).expect("present");
                        self.proxies.clear(self.writeback_pid);
                        self.tracer.end_current(self.writeback_pid, wb.span, now);
                        out.events.push(FsEvent::WritebackDone { pages: wb.pages });
                    }
                }
                // An ordered flush of a committing transaction: the commit
                // proceeds — ordered mode reports data errors through
                // fsync, a failed data write does not corrupt the journal.
                if let Some(c) = self.commit.as_mut() {
                    if c.phase == CommitPhase::FlushingData {
                        c.pending.remove(&token);
                        if c.pending.is_empty() {
                            self.write_log(now, &mut out);
                        }
                    }
                }
                self.resolve_fsyncs(now, &mut out);
            }
            TokenOwner::JournalLog | TokenOwner::CommitRecord => {
                self.abort_journal(error, now, &mut out);
            }
            // Checkpoints are fire-and-forget: replay redoes them from the
            // durable log, so a lost checkpoint costs nothing.
            TokenOwner::Checkpoint => {}
        }
        let _ = cache;
        out
    }

    fn timer(&mut self, cache: &mut PageCache, now: SimTime) -> FsOutput {
        let mut out = FsOutput::none();
        self.last_timer = now;
        self.maybe_start_commit(cache, now, &mut out);
        self.resolve_fsyncs(now, &mut out);
        out
    }

    fn next_timer(&self, now: SimTime) -> SimTime {
        now + self.journal.config().commit_interval.div(4)
    }

    fn blocks_for_read(&self, file: FileId, page: u64, len: u64) -> Vec<Extent> {
        self.inodes
            .get(&file)
            .map(|i| i.extents.extents_for(page, len))
            .unwrap_or_default()
    }

    fn blocks_for_read_into(&self, file: FileId, page: u64, len: u64, out: &mut Vec<Extent>) {
        match self.inodes.get(&file) {
            Some(i) => i.extents.extents_for_into(page, len, out),
            None => out.clear(),
        }
    }

    fn allocated_block(&self, file: FileId, page: u64) -> Option<BlockNo> {
        self.inodes.get(&file).and_then(|i| i.extents.lookup(page))
    }

    fn file_size(&self, file: FileId) -> u64 {
        self.inodes.get(&file).map(|i| i.size).unwrap_or(0)
    }

    fn running_txn_meta_pages(&self) -> u64 {
        self.journal.running_meta_blocks()
    }

    fn journal_task(&self) -> Pid {
        self.journal_pid
    }

    fn writeback_task(&self) -> Pid {
        self.writeback_pid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cache::CacheConfig;
    use std::collections::VecDeque;

    const JPID: Pid = Pid(1000);
    const WBPID: Pid = Pid(1001);

    /// A miniature "kernel": holds the fs + cache, completes submitted I/O
    /// in FIFO order on demand, and records everything.
    struct Harness {
        fs: JournaledFs,
        cache: PageCache,
        pending: VecDeque<IoReq>,
        completed: Vec<IoReq>,
        events: Vec<FsEvent>,
        freed: Vec<(FileId, sim_cache::PageRange)>,
        now: SimTime,
    }

    impl Harness {
        fn ext4() -> Self {
            Self::with_fs(JournaledFs::new_ext4(1 << 27, JPID, WBPID))
        }

        fn xfs() -> Self {
            Self::with_fs(JournaledFs::new_xfs(1 << 27, JPID, WBPID))
        }

        fn with_fs(fs: JournaledFs) -> Self {
            Harness {
                fs,
                cache: PageCache::new(CacheConfig::default()),
                pending: VecDeque::new(),
                completed: Vec::new(),
                events: Vec::new(),
                freed: Vec::new(),
                now: SimTime::ZERO,
            }
        }

        fn absorb(&mut self, out: FsOutput) {
            self.pending.extend(out.ios);
            self.events.extend(out.events);
            self.freed.extend(out.freed);
        }

        fn write(&mut self, file: FileId, pid: Pid, offset: u64, len: u64) {
            let causes = CauseSet::of(pid);
            let first = offset / sim_core::PAGE_SIZE;
            let last = (offset + len - 1) / sim_core::PAGE_SIZE;
            for p in first..=last {
                self.cache.dirty_page(file, p, &causes, self.now);
            }
            self.fs.note_write(file, &causes, offset, len, self.now);
        }

        fn fsync(&mut self, file: FileId, pid: Pid) {
            let out = self.fs.fsync(file, pid, &mut self.cache, self.now);
            self.absorb(out);
        }

        /// Fail the next pending I/O with a transient device error.
        fn fail_next(&mut self) -> Option<IoReq> {
            let io = self.pending.pop_front()?;
            self.now += SimDuration::from_micros(100);
            let err = IoError::new(IoErrorKind::TransientDevice);
            let out = self.fs.io_failed(io.token, err, &mut self.cache, self.now);
            self.absorb(out);
            self.completed.push(io.clone());
            Some(io)
        }

        /// Complete one pending I/O (FIFO).
        fn complete_one(&mut self) -> Option<IoReq> {
            let io = self.pending.pop_front()?;
            self.now += SimDuration::from_micros(100);
            let out = self.fs.io_completed(io.token, &mut self.cache, self.now);
            self.absorb(out);
            self.completed.push(io.clone());
            Some(io)
        }

        fn run_to_quiescence(&mut self) {
            while self.complete_one().is_some() {}
        }

        fn fsync_done_for(&self, pid: Pid) -> bool {
            self.events
                .iter()
                .any(|e| matches!(e, FsEvent::FsyncDone { waiter, .. } if *waiter == pid))
        }
    }

    #[test]
    fn fsync_runs_the_full_commit_protocol() {
        let mut h = Harness::ext4();
        let (f, out) = h.fs.create_file(Pid(1), h.now);
        h.absorb(out);
        h.write(f, Pid(1), 0, 4 * sim_core::PAGE_SIZE);
        h.fsync(f, Pid(1));
        assert!(!h.fsync_done_for(Pid(1)));
        h.run_to_quiescence();
        assert!(h.fsync_done_for(Pid(1)));
        // Protocol order: data writes, then journal log, then commit
        // record, then checkpoint.
        let kinds: Vec<ReqKind> = h.completed.iter().map(|io| io.kind).collect();
        let first_journal = kinds.iter().position(|k| *k == ReqKind::Journal).unwrap();
        assert!(kinds[..first_journal].iter().all(|k| *k == ReqKind::Data));
        let journal_count = kinds.iter().filter(|k| **k == ReqKind::Journal).count();
        assert_eq!(journal_count, 2, "log body + commit record");
        assert_eq!(*kinds.last().unwrap(), ReqKind::Metadata, "checkpoint last");
        assert!(h
            .events
            .iter()
            .any(|e| matches!(e, FsEvent::TxnCommitted { .. })));
    }

    #[test]
    fn fsync_with_nothing_dirty_completes_immediately() {
        let mut h = Harness::ext4();
        let f = h.fs.prealloc_file(1 << 20, true);
        h.fsync(f, Pid(1));
        assert!(h.fsync_done_for(Pid(1)));
        assert!(h.pending.is_empty());
    }

    #[test]
    fn journal_entanglement_flushes_other_files_data() {
        // Figure 4: A's fsync depends on B's data, because B's metadata is
        // in the same transaction.
        let mut h = Harness::ext4();
        let (fa, _) = h.fs.create_file(Pid(1), h.now);
        let (fb, _) = h.fs.create_file(Pid(2), h.now);
        h.write(fa, Pid(1), 0, sim_core::PAGE_SIZE); // A: one block
        h.write(fb, Pid(2), 0, 256 * sim_core::PAGE_SIZE); // B: 1 MB dirty
        h.fsync(fa, Pid(1));
        h.run_to_quiescence();
        // The commit must have flushed B's data before A's fsync returned.
        let b_data_bytes: u64 = h
            .completed
            .iter()
            .filter(|io| io.file == Some(fb) && io.kind == ReqKind::Data)
            .map(|io| io.nblocks * sim_core::PAGE_SIZE)
            .sum();
        assert_eq!(b_data_bytes, 256 * sim_core::PAGE_SIZE);
        assert!(h.fsync_done_for(Pid(1)));
        // And B's flushed data still carries B's causes (via buffer tags),
        // even though the journal task submitted it.
        let b_io = h
            .completed
            .iter()
            .find(|io| io.file == Some(fb) && io.kind == ReqKind::Data)
            .unwrap();
        assert_eq!(b_io.submitter, JPID, "journal task is the submitter");
        assert!(b_io.causes.contains(Pid(2)), "causes point at B");
        assert!(!b_io.causes.contains(JPID), "the proxy is not a cause");
    }

    #[test]
    fn ext4_tags_journal_io_but_xfs_does_not() {
        for (mk, tagged) in [
            (Harness::ext4 as fn() -> Harness, true),
            (Harness::xfs, false),
        ] {
            let mut h = mk();
            let (f, _) = h.fs.create_file(Pid(7), h.now);
            h.write(f, Pid(7), 0, sim_core::PAGE_SIZE);
            h.fsync(f, Pid(7));
            h.run_to_quiescence();
            let journal_ios: Vec<&IoReq> = h
                .completed
                .iter()
                .filter(|io| io.kind == ReqKind::Journal)
                .collect();
            assert!(!journal_ios.is_empty());
            for io in journal_ios {
                assert_eq!(
                    io.causes.contains(Pid(7)),
                    tagged,
                    "{}: journal tagging mismatch",
                    h.fs.name()
                );
            }
        }
    }

    #[test]
    fn writeback_performs_delayed_allocation_with_proxy_tags() {
        let mut h = Harness::ext4();
        let (f, _) = h.fs.create_file(Pid(3), h.now);
        h.write(f, Pid(3), 0, 64 * sim_core::PAGE_SIZE);
        // Under delayed allocation nothing is allocated yet.
        assert_eq!(h.fs.allocated_block(f, 0), None);
        let out = h.fs.writeback(None, 1024, WBPID, &mut h.cache, h.now);
        h.absorb(out);
        assert!(
            h.fs.allocated_block(f, 0).is_some(),
            "allocated at writeback"
        );
        // Writeback I/O: submitted by the writeback task, caused by Pid 3.
        assert!(!h.pending.is_empty());
        for io in &h.pending {
            assert_eq!(io.submitter, WBPID);
            assert!(io.causes.contains(Pid(3)));
            assert!(!io.sync);
        }
        // The writeback task is a marked proxy while the pass is in flight.
        assert!(h.fs.proxies().is_proxy(WBPID));
        h.run_to_quiescence();
        assert!(!h.fs.proxies().is_proxy(WBPID));
        assert!(h
            .events
            .iter()
            .any(|e| matches!(e, FsEvent::WritebackDone { pages: 64 })));
    }

    #[test]
    fn appends_get_contiguous_blocks() {
        let mut h = Harness::ext4();
        let (f, _) = h.fs.create_file(Pid(1), h.now);
        h.write(f, Pid(1), 0, 4 * sim_core::PAGE_SIZE);
        let out = h.fs.writeback(Some(f), 1024, WBPID, &mut h.cache, h.now);
        h.absorb(out);
        h.run_to_quiescence();
        h.write(f, Pid(1), 4 * sim_core::PAGE_SIZE, 4 * sim_core::PAGE_SIZE);
        let out = h.fs.writeback(Some(f), 1024, WBPID, &mut h.cache, h.now);
        h.absorb(out);
        let b0 = h.fs.allocated_block(f, 0).unwrap();
        let b4 = h.fs.allocated_block(f, 4).unwrap();
        assert_eq!(b4.raw(), b0.raw() + 4, "append continues the reservation");
    }

    #[test]
    fn shared_directory_block_merges_creat_causes() {
        let mut h = Harness::ext4();
        let (_, _) = h.fs.create_file(Pid(1), h.now);
        let (_, _) = h.fs.create_file(Pid(2), h.now);
        // Both creats joined the same running txn; force a commit through a
        // third party's fsync.
        let (f3, _) = h.fs.create_file(Pid(3), h.now);
        h.write(f3, Pid(3), 0, sim_core::PAGE_SIZE);
        h.fsync(f3, Pid(3));
        h.run_to_quiescence();
        let log = h
            .completed
            .iter()
            .find(|io| io.kind == ReqKind::Journal)
            .unwrap();
        assert!(log.causes.contains(Pid(1)));
        assert!(log.causes.contains(Pid(2)));
        assert!(log.causes.contains(Pid(3)));
    }

    #[test]
    fn unlink_frees_dirty_buffers() {
        let mut h = Harness::ext4();
        let (f, _) = h.fs.create_file(Pid(1), h.now);
        h.write(f, Pid(1), 0, 8 * sim_core::PAGE_SIZE);
        let out = h.fs.unlink(f, Pid(1), &mut h.cache, h.now);
        h.absorb(out);
        let freed_pages: u64 = h.freed.iter().map(|(_, r)| r.len).sum();
        assert_eq!(freed_pages, 8);
        assert_eq!(h.cache.dirty_total(), 0);
    }

    #[test]
    fn prealloc_layouts() {
        let mut h = Harness::ext4();
        let contig = h.fs.prealloc_file(1 << 20, true);
        let frag = h.fs.prealloc_file(1 << 20, false);
        let ec = h.fs.blocks_for_read(contig, 0, 256);
        let ef = h.fs.blocks_for_read(frag, 0, 256);
        assert_eq!(ec.len(), 1, "contiguous file is one extent");
        assert!(
            ef.len() > 2,
            "aged file is fragmented: {} extents",
            ef.len()
        );
        assert_eq!(h.fs.file_size(contig), 1 << 20);
    }

    #[test]
    fn back_to_back_fsyncs_chain_commits() {
        let mut h = Harness::ext4();
        let (f, _) = h.fs.create_file(Pid(1), h.now);
        // First fsync in flight…
        h.write(f, Pid(1), 0, sim_core::PAGE_SIZE);
        h.fsync(f, Pid(1));
        // …second write + fsync arrives before the first commit finishes.
        h.write(f, Pid(1), sim_core::PAGE_SIZE, sim_core::PAGE_SIZE);
        h.fsync(f, Pid(1));
        h.run_to_quiescence();
        let commits = h
            .events
            .iter()
            .filter(|e| matches!(e, FsEvent::TxnCommitted { .. }))
            .count();
        assert_eq!(commits, 2, "two transactions committed in order");
        let fsyncs = h
            .events
            .iter()
            .filter(|e| matches!(e, FsEvent::FsyncDone { .. }))
            .count();
        assert_eq!(fsyncs, 2);
    }

    #[test]
    fn failed_data_write_fails_the_fsync_but_not_the_journal() {
        let mut h = Harness::ext4();
        let (f, _) = h.fs.create_file(Pid(1), h.now);
        h.write(f, Pid(1), 0, 4 * sim_core::PAGE_SIZE);
        h.fsync(f, Pid(1));
        h.fail_next().expect("the data write");
        h.run_to_quiescence();
        assert!(!h.fsync_done_for(Pid(1)));
        assert!(h.events.iter().any(|e| matches!(
            e,
            FsEvent::FsyncFailed { waiter, error, .. }
                if *waiter == Pid(1) && error.kind == IoErrorKind::TransientDevice
        )));
        // Ordered mode: a data error surfaces via fsync, the journal
        // itself stays healthy and the commit still lands.
        assert!(h.fs.journal_aborted().is_none());
        assert!(h
            .events
            .iter()
            .any(|e| matches!(e, FsEvent::TxnCommitted { .. })));
    }

    #[test]
    fn failed_journal_write_aborts_and_fails_future_fsyncs() {
        let mut h = Harness::ext4();
        let (f, _) = h.fs.create_file(Pid(1), h.now);
        h.write(f, Pid(1), 0, sim_core::PAGE_SIZE);
        h.fsync(f, Pid(1));
        // Drain up to the journal log write, then fail it.
        while let Some(io) = h.pending.front() {
            if io.kind == ReqKind::Journal {
                break;
            }
            h.complete_one();
        }
        let failed = h.fail_next().expect("the journal log write");
        assert_eq!(failed.kind, ReqKind::Journal);
        h.run_to_quiescence();
        assert!(h
            .events
            .iter()
            .any(|e| matches!(e, FsEvent::JournalAborted { .. })));
        assert!(h.events.iter().any(|e| matches!(
            e,
            FsEvent::FsyncFailed { waiter, error, .. }
                if *waiter == Pid(1) && error.kind == IoErrorKind::JournalAborted
        )));
        assert!(h.fs.journal_aborted().is_some());
        assert!(!h.fsync_done_for(Pid(1)));
        // Once aborted, every later fsync fails immediately.
        h.write(f, Pid(2), 0, sim_core::PAGE_SIZE);
        h.fsync(f, Pid(2));
        assert!(h.events.iter().any(|e| matches!(
            e,
            FsEvent::FsyncFailed { waiter, .. } if *waiter == Pid(2)
        )));
    }

    #[test]
    fn io_reqs_carry_protocol_steps() {
        let mut h = Harness::ext4();
        let (f, _) = h.fs.create_file(Pid(1), h.now);
        h.write(f, Pid(1), 0, sim_core::PAGE_SIZE);
        h.fsync(f, Pid(1));
        h.run_to_quiescence();
        let steps: Vec<&WriteStep> = h.completed.iter().map(|io| &io.step).collect();
        assert!(matches!(steps[0], WriteStep::Data { file } if *file == f));
        assert!(matches!(&steps[1], WriteStep::JournalLog { ordered, .. } if ordered.contains(&f)));
        assert!(matches!(steps[2], WriteStep::CommitRecord { .. }));
        assert!(matches!(steps[3], WriteStep::Checkpoint { .. }));
    }

    #[test]
    fn timer_commits_stale_transactions() {
        let mut h = Harness::ext4();
        let (f, _) = h.fs.create_file(Pid(1), h.now);
        h.write(f, Pid(1), 0, sim_core::PAGE_SIZE);
        // No fsync; jump past the commit interval and tick.
        h.now = SimTime::ZERO + SimDuration::from_secs(6);
        let out = h.fs.timer(&mut h.cache, h.now);
        h.absorb(out);
        h.run_to_quiescence();
        assert!(h
            .events
            .iter()
            .any(|e| matches!(e, FsEvent::TxnCommitted { .. })));
    }
}
