//! Live-byte accounting of cause-tag allocations — the measurement behind
//! Figure 10 (the paper instruments `kmalloc`/`kfree`; we count the heap
//! bytes of every live `CauseSet` attached to a dirty buffer).

/// Running tag-memory statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct TagMem {
    live: u64,
    max: u64,
    sample_sum: u64,
    samples: u64,
}

impl TagMem {
    /// Fresh accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tag of `bytes` heap bytes came alive.
    pub fn alloc(&mut self, bytes: usize) {
        self.live += bytes as u64;
        self.max = self.max.max(self.live);
    }

    /// A tag of `bytes` heap bytes was released.
    pub fn free(&mut self, bytes: usize) {
        self.live = self.live.saturating_sub(bytes as u64);
    }

    /// Record the current live value into the average.
    pub fn sample(&mut self) {
        self.sample_sum += self.live;
        self.samples += 1;
    }

    /// Currently live tag bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live
    }

    /// Peak live tag bytes.
    pub fn max_bytes(&self) -> u64 {
        self.max
    }

    /// Mean of the sampled live values.
    pub fn avg_bytes(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.sample_sum as f64 / self.samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_live_max_and_avg() {
        let mut tm = TagMem::new();
        tm.alloc(100);
        tm.sample();
        tm.alloc(200);
        tm.sample();
        assert_eq!(tm.live_bytes(), 300);
        assert_eq!(tm.max_bytes(), 300);
        tm.free(250);
        tm.sample();
        assert_eq!(tm.live_bytes(), 50);
        assert_eq!(tm.max_bytes(), 300);
        assert!((tm.avg_bytes() - (100.0 + 300.0 + 50.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn free_saturates() {
        let mut tm = TagMem::new();
        tm.alloc(10);
        tm.free(100);
        assert_eq!(tm.live_bytes(), 0);
    }
}
