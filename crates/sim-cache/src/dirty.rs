//! Dirty-page tracking with per-page cause tags.
//!
//! The store is split into two structures per file: an ordered *index* of
//! 64-page occupancy bitmasks (`BTreeMap<chunk, u64>`) and a flat payload
//! map from page to its cause tags. The write burst of a throttling
//! experiment dirties tens of thousands of random pages; keeping the
//! ordered structure down to one 16-byte word per 64-page chunk makes
//! those inserts cheap, while `take_ranges` still walks pages in
//! ascending order straight off the bitmasks.

use std::collections::BTreeMap;

use sim_core::{CauseSet, FastMap, FileId, SimTime, PAGE_SIZE};

use crate::tagmem::TagMem;

/// One dirty page: who is responsible and since when.
#[derive(Debug, Clone)]
struct DirtyPage {
    causes: CauseSet,
    dirtied_at: SimTime,
}

/// Result of a `dirty_page` call, used to build the buffer-dirty hook
/// event.
#[derive(Debug, Clone)]
pub struct DirtyEvent {
    /// Previous causes if the page was already dirty (an overwrite).
    pub prev: Option<CauseSet>,
    /// Bytes newly dirtied (0 for an overwrite).
    pub new_bytes: u64,
    /// When the page first became dirty.
    pub first_dirtied: SimTime,
}

/// A contiguous run of dirty pages handed to the flush path.
#[derive(Debug, Clone)]
pub struct PageRange {
    /// First page index.
    pub start_page: u64,
    /// Number of pages.
    pub len: u64,
    /// Union of the pages' cause sets.
    pub causes: CauseSet,
    /// Earliest dirty time in the range.
    pub oldest: SimTime,
}

impl PageRange {
    /// Bytes covered.
    pub fn bytes(&self) -> u64 {
        self.len * PAGE_SIZE
    }
}

/// Dirty state of one file: bitmask index + per-page tag payload.
#[derive(Debug, Default)]
struct FileDirty {
    /// Chunk index (`page >> 6`) to 64-page occupancy bitmask, ordered so
    /// writeback can take the lowest pages first.
    chunks: BTreeMap<u64, u64>,
    /// Page to cause tags / dirty time.
    pages: FastMap<u64, DirtyPage>,
}

impl FileDirty {
    /// Append `[page]`'s payload to `out`, coalescing with the previous
    /// range when contiguous.
    fn pull_into(&mut self, page: u64, tagmem: &mut TagMem, out: &mut Vec<PageRange>) {
        let dp = self.pages.remove(&page).expect("bitmask and payload agree");
        tagmem.free(dp.causes.heap_bytes());
        match out.last_mut() {
            Some(r) if r.start_page + r.len == page => {
                r.len += 1;
                r.causes.union_with(&dp.causes);
                r.oldest = r.oldest.min(dp.dirtied_at);
            }
            _ => out.push(PageRange {
                start_page: page,
                len: 1,
                causes: dp.causes,
                oldest: dp.dirtied_at,
            }),
        }
    }
}

/// Per-file dirty page index.
#[derive(Debug, Default)]
pub struct DirtyStore {
    files: FastMap<FileId, FileDirty>,
    total: u64,
}

impl DirtyStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total dirty pages across all files.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total dirty pages recomputed from the per-file maps, ignoring the
    /// incrementally maintained counter. Auditors cross-check this against
    /// [`DirtyStore::total`]; any divergence means a bookkeeping bug.
    pub fn audit_sum(&self) -> u64 {
        self.files
            .values()
            .map(|f| {
                let by_mask: u64 = f.chunks.values().map(|m| m.count_ones() as u64).sum();
                debug_assert_eq!(by_mask, f.pages.len() as u64, "index/payload divergence");
                f.pages.len() as u64
            })
            .sum()
    }

    /// Dirty pages of one file.
    pub fn pages_of(&self, file: FileId) -> u64 {
        self.files
            .get(&file)
            .map(|f| f.pages.len() as u64)
            .unwrap_or(0)
    }

    /// Whether a specific page is dirty.
    pub fn contains(&self, file: FileId, page: u64) -> bool {
        self.files
            .get(&file)
            .is_some_and(|f| f.pages.contains_key(&page))
    }

    /// Prefetched per-file probe: resolves the file once, then answers
    /// per-page dirtiness without re-hashing the file id (the read-miss
    /// scan asks about every page of a syscall range).
    pub fn file_view(&self, file: FileId) -> DirtyFileView<'_> {
        DirtyFileView {
            file: self.files.get(&file),
        }
    }

    /// Mark one page dirty for `causes`.
    pub fn dirty_page(
        &mut self,
        file: FileId,
        page: u64,
        causes: &CauseSet,
        now: SimTime,
        tagmem: &mut TagMem,
    ) -> DirtyEvent {
        let f = self.files.entry(file).or_default();
        match f.pages.get_mut(&page) {
            Some(dp) => {
                let prev = dp.causes.clone();
                tagmem.free(dp.causes.heap_bytes());
                dp.causes.union_with(causes);
                tagmem.alloc(dp.causes.heap_bytes());
                DirtyEvent {
                    prev: Some(prev),
                    new_bytes: 0,
                    first_dirtied: dp.dirtied_at,
                }
            }
            None => {
                tagmem.alloc(causes.heap_bytes());
                f.pages.insert(
                    page,
                    DirtyPage {
                        causes: causes.clone(),
                        dirtied_at: now,
                    },
                );
                *f.chunks.entry(page >> 6).or_insert(0) |= 1u64 << (page & 63);
                self.total += 1;
                DirtyEvent {
                    prev: None,
                    new_bytes: PAGE_SIZE,
                    first_dirtied: now,
                }
            }
        }
    }

    /// Remove up to `max` pages of `file`, lowest page first, coalesced
    /// into contiguous ranges.
    pub fn take_ranges(&mut self, file: FileId, max: u64, tagmem: &mut TagMem) -> Vec<PageRange> {
        let Some(f) = self.files.get_mut(&file) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut left = max;
        while left > 0 {
            let Some((&chunk, &chunk_mask)) = f.chunks.iter().next() else {
                break;
            };
            let mut mask = chunk_mask;
            while mask != 0 && left > 0 {
                let bit = mask.trailing_zeros();
                mask &= !(1u64 << bit);
                left -= 1;
                f.pull_into(chunk * 64 + bit as u64, tagmem, &mut out);
            }
            if mask == 0 {
                f.chunks.remove(&chunk);
            } else {
                // `max` ran out mid-chunk; the leftover bits stay behind.
                *f.chunks.get_mut(&chunk).expect("chunk present") = mask;
            }
        }
        self.total -= max - left;
        if f.pages.is_empty() {
            self.files.remove(&file);
        }
        out
    }

    /// Remove every dirty page of `file`, returning the avoided ranges.
    pub fn free_file(&mut self, file: FileId, tagmem: &mut TagMem) -> Vec<PageRange> {
        let Some(mut f) = self.files.remove(&file) else {
            return Vec::new();
        };
        self.total -= f.pages.len() as u64;
        let mut out = Vec::new();
        let chunks = std::mem::take(&mut f.chunks);
        for (chunk, mut mask) in chunks {
            while mask != 0 {
                let bit = mask.trailing_zeros();
                mask &= !(1u64 << bit);
                f.pull_into(chunk * 64 + bit as u64, tagmem, &mut out);
            }
        }
        out
    }

    /// Files with dirty pages, ordered by their oldest dirty page.
    pub fn files_oldest_first(&self) -> Vec<FileId> {
        let mut v: Vec<(SimTime, FileId)> = self
            .files
            .iter()
            .map(|(id, f)| {
                let oldest = f
                    .pages
                    .values()
                    .map(|d| d.dirtied_at)
                    .min()
                    .unwrap_or(SimTime::MAX);
                (oldest, *id)
            })
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, f)| f).collect()
    }
}

/// Read-only dirtiness probe for one file (see [`DirtyStore::file_view`]).
pub struct DirtyFileView<'a> {
    file: Option<&'a FileDirty>,
}

impl DirtyFileView<'_> {
    /// Whether `page` is dirty.
    #[inline]
    pub fn contains(&self, page: u64) -> bool {
        self.file.is_some_and(|f| f.pages.contains_key(&page))
    }

    /// Whether the file has no dirty pages at all. Range scans check this
    /// once to skip the per-page [`DirtyFileView::contains`] probes (a
    /// hash each) on files that are only ever read.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.file.is_none_or(|f| f.pages.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Pid;

    #[test]
    fn take_ranges_coalesces_contiguous_pages() {
        let mut s = DirtyStore::new();
        let mut tm = TagMem::new();
        let f = FileId(1);
        for p in [0u64, 1, 2, 10, 11, 20] {
            s.dirty_page(f, p, &CauseSet::of(Pid(1)), SimTime::ZERO, &mut tm);
        }
        let ranges = s.take_ranges(f, 100, &mut tm);
        let spans: Vec<(u64, u64)> = ranges.iter().map(|r| (r.start_page, r.len)).collect();
        assert_eq!(spans, vec![(0, 3), (10, 2), (20, 1)]);
        assert_eq!(s.total(), 0);
        assert_eq!(tm.live_bytes(), 0);
    }

    #[test]
    fn take_ranges_respects_max() {
        let mut s = DirtyStore::new();
        let mut tm = TagMem::new();
        let f = FileId(1);
        for p in 0..10 {
            s.dirty_page(f, p, &CauseSet::of(Pid(1)), SimTime::ZERO, &mut tm);
        }
        let ranges = s.take_ranges(f, 4, &mut tm);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].len, 4);
        assert_eq!(s.pages_of(f), 6);
    }

    #[test]
    fn take_ranges_crosses_chunk_boundaries() {
        let mut s = DirtyStore::new();
        let mut tm = TagMem::new();
        let f = FileId(1);
        // A run spanning the 64-page bitmask seam must come out as one range.
        for p in 60..70 {
            s.dirty_page(f, p, &CauseSet::of(Pid(1)), SimTime::ZERO, &mut tm);
        }
        let ranges = s.take_ranges(f, 100, &mut tm);
        let spans: Vec<(u64, u64)> = ranges.iter().map(|r| (r.start_page, r.len)).collect();
        assert_eq!(spans, vec![(60, 10)]);
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn range_unions_causes_of_member_pages() {
        let mut s = DirtyStore::new();
        let mut tm = TagMem::new();
        let f = FileId(1);
        s.dirty_page(f, 0, &CauseSet::of(Pid(1)), SimTime::ZERO, &mut tm);
        s.dirty_page(f, 1, &CauseSet::of(Pid(2)), SimTime::ZERO, &mut tm);
        let ranges = s.take_ranges(f, 10, &mut tm);
        assert_eq!(ranges.len(), 1);
        assert!(ranges[0].causes.contains(Pid(1)));
        assert!(ranges[0].causes.contains(Pid(2)));
    }

    #[test]
    fn oldest_dirty_time_survives_coalescing() {
        let mut s = DirtyStore::new();
        let mut tm = TagMem::new();
        let f = FileId(1);
        s.dirty_page(
            f,
            0,
            &CauseSet::of(Pid(1)),
            SimTime::from_nanos(50),
            &mut tm,
        );
        s.dirty_page(
            f,
            1,
            &CauseSet::of(Pid(1)),
            SimTime::from_nanos(10),
            &mut tm,
        );
        let ranges = s.take_ranges(f, 10, &mut tm);
        assert_eq!(ranges[0].oldest, SimTime::from_nanos(10));
    }
}
