//! Dirty-page tracking with per-page cause tags.

use std::collections::{BTreeMap, HashMap};

use sim_core::{CauseSet, FileId, SimTime, PAGE_SIZE};

use crate::tagmem::TagMem;

/// One dirty page: who is responsible and since when.
#[derive(Debug, Clone)]
struct DirtyPage {
    causes: CauseSet,
    dirtied_at: SimTime,
}

/// Result of a `dirty_page` call, used to build the buffer-dirty hook
/// event.
#[derive(Debug, Clone)]
pub struct DirtyEvent {
    /// Previous causes if the page was already dirty (an overwrite).
    pub prev: Option<CauseSet>,
    /// Bytes newly dirtied (0 for an overwrite).
    pub new_bytes: u64,
    /// When the page first became dirty.
    pub first_dirtied: SimTime,
}

/// A contiguous run of dirty pages handed to the flush path.
#[derive(Debug, Clone)]
pub struct PageRange {
    /// First page index.
    pub start_page: u64,
    /// Number of pages.
    pub len: u64,
    /// Union of the pages' cause sets.
    pub causes: CauseSet,
    /// Earliest dirty time in the range.
    pub oldest: SimTime,
}

impl PageRange {
    /// Bytes covered.
    pub fn bytes(&self) -> u64 {
        self.len * PAGE_SIZE
    }
}

/// Per-file dirty page index.
#[derive(Debug, Default)]
pub struct DirtyStore {
    files: HashMap<FileId, BTreeMap<u64, DirtyPage>>,
    /// (first-dirty time, file) for oldest-first writeback selection.
    total: u64,
}

impl DirtyStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total dirty pages across all files.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total dirty pages recomputed from the per-file maps, ignoring the
    /// incrementally maintained counter. Auditors cross-check this against
    /// [`DirtyStore::total`]; any divergence means a bookkeeping bug.
    pub fn audit_sum(&self) -> u64 {
        self.files.values().map(|m| m.len() as u64).sum()
    }

    /// Dirty pages of one file.
    pub fn pages_of(&self, file: FileId) -> u64 {
        self.files.get(&file).map(|m| m.len() as u64).unwrap_or(0)
    }

    /// Whether a specific page is dirty.
    pub fn contains(&self, file: FileId, page: u64) -> bool {
        self.files.get(&file).is_some_and(|m| m.contains_key(&page))
    }

    /// Mark one page dirty for `causes`.
    pub fn dirty_page(
        &mut self,
        file: FileId,
        page: u64,
        causes: &CauseSet,
        now: SimTime,
        tagmem: &mut TagMem,
    ) -> DirtyEvent {
        let file_map = self.files.entry(file).or_default();
        match file_map.get_mut(&page) {
            Some(dp) => {
                let prev = dp.causes.clone();
                tagmem.free(dp.causes.heap_bytes());
                dp.causes.union_with(causes);
                tagmem.alloc(dp.causes.heap_bytes());
                DirtyEvent {
                    prev: Some(prev),
                    new_bytes: 0,
                    first_dirtied: dp.dirtied_at,
                }
            }
            None => {
                tagmem.alloc(causes.heap_bytes());
                file_map.insert(
                    page,
                    DirtyPage {
                        causes: causes.clone(),
                        dirtied_at: now,
                    },
                );
                self.total += 1;
                DirtyEvent {
                    prev: None,
                    new_bytes: PAGE_SIZE,
                    first_dirtied: now,
                }
            }
        }
    }

    /// Remove up to `max` pages of `file`, lowest page first, coalesced
    /// into contiguous ranges.
    pub fn take_ranges(&mut self, file: FileId, max: u64, tagmem: &mut TagMem) -> Vec<PageRange> {
        let Some(file_map) = self.files.get_mut(&file) else {
            return Vec::new();
        };
        let mut taken: Vec<(u64, DirtyPage)> = Vec::new();
        while (taken.len() as u64) < max {
            let Some((&p, _)) = file_map.iter().next() else {
                break;
            };
            let dp = file_map.remove(&p).expect("just observed");
            tagmem.free(dp.causes.heap_bytes());
            taken.push((p, dp));
        }
        self.total -= taken.len() as u64;
        if file_map.is_empty() {
            self.files.remove(&file);
        }
        coalesce(taken)
    }

    /// Remove every dirty page of `file`, returning the avoided ranges.
    pub fn free_file(&mut self, file: FileId, tagmem: &mut TagMem) -> Vec<PageRange> {
        let Some(file_map) = self.files.remove(&file) else {
            return Vec::new();
        };
        self.total -= file_map.len() as u64;
        let taken: Vec<(u64, DirtyPage)> = file_map.into_iter().collect();
        for (_, dp) in &taken {
            tagmem.free(dp.causes.heap_bytes());
        }
        coalesce(taken)
    }

    /// Files with dirty pages, ordered by their oldest dirty page.
    pub fn files_oldest_first(&self) -> Vec<FileId> {
        let mut v: Vec<(SimTime, FileId)> = self
            .files
            .iter()
            .map(|(f, m)| {
                let oldest = m
                    .values()
                    .map(|d| d.dirtied_at)
                    .min()
                    .unwrap_or(SimTime::MAX);
                (oldest, *f)
            })
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, f)| f).collect()
    }
}

fn coalesce(taken: Vec<(u64, DirtyPage)>) -> Vec<PageRange> {
    let mut out: Vec<PageRange> = Vec::new();
    for (p, dp) in taken {
        match out.last_mut() {
            Some(r) if r.start_page + r.len == p => {
                r.len += 1;
                r.causes.union_with(&dp.causes);
                r.oldest = r.oldest.min(dp.dirtied_at);
            }
            _ => out.push(PageRange {
                start_page: p,
                len: 1,
                causes: dp.causes,
                oldest: dp.dirtied_at,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Pid;

    #[test]
    fn take_ranges_coalesces_contiguous_pages() {
        let mut s = DirtyStore::new();
        let mut tm = TagMem::new();
        let f = FileId(1);
        for p in [0u64, 1, 2, 10, 11, 20] {
            s.dirty_page(f, p, &CauseSet::of(Pid(1)), SimTime::ZERO, &mut tm);
        }
        let ranges = s.take_ranges(f, 100, &mut tm);
        let spans: Vec<(u64, u64)> = ranges.iter().map(|r| (r.start_page, r.len)).collect();
        assert_eq!(spans, vec![(0, 3), (10, 2), (20, 1)]);
        assert_eq!(s.total(), 0);
        assert_eq!(tm.live_bytes(), 0);
    }

    #[test]
    fn take_ranges_respects_max() {
        let mut s = DirtyStore::new();
        let mut tm = TagMem::new();
        let f = FileId(1);
        for p in 0..10 {
            s.dirty_page(f, p, &CauseSet::of(Pid(1)), SimTime::ZERO, &mut tm);
        }
        let ranges = s.take_ranges(f, 4, &mut tm);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].len, 4);
        assert_eq!(s.pages_of(f), 6);
    }

    #[test]
    fn range_unions_causes_of_member_pages() {
        let mut s = DirtyStore::new();
        let mut tm = TagMem::new();
        let f = FileId(1);
        s.dirty_page(f, 0, &CauseSet::of(Pid(1)), SimTime::ZERO, &mut tm);
        s.dirty_page(f, 1, &CauseSet::of(Pid(2)), SimTime::ZERO, &mut tm);
        let ranges = s.take_ranges(f, 10, &mut tm);
        assert_eq!(ranges.len(), 1);
        assert!(ranges[0].causes.contains(Pid(1)));
        assert!(ranges[0].causes.contains(Pid(2)));
    }

    #[test]
    fn oldest_dirty_time_survives_coalescing() {
        let mut s = DirtyStore::new();
        let mut tm = TagMem::new();
        let f = FileId(1);
        s.dirty_page(
            f,
            0,
            &CauseSet::of(Pid(1)),
            SimTime::from_nanos(50),
            &mut tm,
        );
        s.dirty_page(
            f,
            1,
            &CauseSet::of(Pid(1)),
            SimTime::from_nanos(10),
            &mut tm,
        );
        let ranges = s.take_ranges(f, 10, &mut tm);
        assert_eq!(ranges[0].oldest, SimTime::from_nanos(10));
    }
}
