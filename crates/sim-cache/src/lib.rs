#![warn(missing_docs)]
//! The page cache: dirty buffers with cause tags, a clean-page LRU, dirty
//! thresholds, and the tag-memory accounting behind Figure 10.
//!
//! The cache is pure state — the writeback *daemon* (deciding when to
//! flush) lives in `sim-kernel`, and allocation lives in `sim-fs`. This
//! split mirrors Linux: the page cache knows what is dirty and who dirtied
//! it; policy lives elsewhere.

pub mod clean;
pub mod dirty;
pub mod tagmem;

use sim_core::{CauseSet, FileId, SimTime, PAGE_SIZE};
use sim_trace::Tracer;

pub use clean::CleanCache;
pub use dirty::{DirtyEvent, DirtyStore, PageRange};
pub use tagmem::TagMem;

/// Page-cache configuration (the knobs of `/proc/sys/vm`).
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total memory modeled, in bytes.
    pub mem_bytes: u64,
    /// Fraction of memory that may be dirty before writers are throttled
    /// (Linux `dirty_ratio`, default 20%).
    pub dirty_ratio: f64,
    /// Fraction at which background writeback starts (Linux
    /// `dirty_background_ratio`, default 10%).
    pub dirty_background_ratio: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            mem_bytes: 1024 * 1024 * 1024,
            dirty_ratio: 0.20,
            dirty_background_ratio: 0.10,
        }
    }
}

impl CacheConfig {
    /// Dirty-throttle threshold in pages.
    pub fn dirty_limit_pages(&self) -> u64 {
        ((self.mem_bytes as f64 * self.dirty_ratio) / PAGE_SIZE as f64) as u64
    }

    /// Background-writeback threshold in pages.
    pub fn background_pages(&self) -> u64 {
        ((self.mem_bytes as f64 * self.dirty_background_ratio) / PAGE_SIZE as f64) as u64
    }
}

/// The page cache: dirty store + clean LRU + tag accounting.
pub struct PageCache {
    cfg: CacheConfig,
    dirty: DirtyStore,
    clean: CleanCache,
    tagmem: TagMem,
    tracer: Tracer,
}

impl PageCache {
    /// A cache with the given configuration.
    pub fn new(cfg: CacheConfig) -> Self {
        PageCache {
            cfg,
            dirty: DirtyStore::new(),
            clean: CleanCache::new(cfg.mem_bytes / PAGE_SIZE),
            tagmem: TagMem::new(),
            tracer: Tracer::new(),
        }
    }

    /// Share the kernel's tracing handle, so cache activity (dirty
    /// counts, tag-memory footprint) lands in the common registry.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Configuration in effect.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Change the dirty thresholds at runtime (the Figure 10 sweep).
    pub fn set_dirty_ratios(&mut self, dirty: f64, background: f64) {
        self.cfg.dirty_ratio = dirty;
        self.cfg.dirty_background_ratio = background;
    }

    // ---- write path -----------------------------------------------------

    /// Dirty one page on behalf of `causes`. Returns the event describing
    /// what happened (fresh dirty vs. overwrite) so the kernel can fire the
    /// buffer-dirty hook.
    pub fn dirty_page(
        &mut self,
        file: FileId,
        page: u64,
        causes: &CauseSet,
        now: SimTime,
    ) -> DirtyEvent {
        let ev = self
            .dirty
            .dirty_page(file, page, causes, now, &mut self.tagmem);
        // A dirtied page is also resident for reads.
        self.clean.insert(file, page);
        if self.tracer.enabled() {
            let which = if ev.new_bytes > 0 {
                "cache.pages_dirtied"
            } else {
                "cache.overwrites"
            };
            self.tracer.count(which, 1);
            self.tracer
                .gauge("cache.dirty_pages", now, self.dirty.total() as f64);
            self.tracer
                .gauge("cache.tag_bytes", now, self.tagmem.live_bytes() as f64);
        }
        ev
    }

    /// Remove up to `max` dirty pages of `file` starting from its lowest
    /// dirty page, returning contiguous ranges with their merged causes.
    /// Called by the writeback/fsync path as pages are submitted to the
    /// block layer; the pages stay readable (clean) afterwards.
    pub fn take_dirty_ranges(&mut self, file: FileId, max: u64) -> Vec<PageRange> {
        let ranges = self.dirty.take_ranges(file, max, &mut self.tagmem);
        self.tracer
            .count("cache.pages_cleaned", ranges.iter().map(|r| r.len).sum());
        ranges
    }

    /// All dirty pages of `file` (for fsync cost estimation).
    pub fn dirty_pages_of(&self, file: FileId) -> u64 {
        self.dirty.pages_of(file)
    }

    /// Drop every page of `file` (deletion / truncate). Returns the dirty
    /// ranges whose writeback was avoided, for the buffer-free hooks.
    pub fn free_file(&mut self, file: FileId) -> Vec<PageRange> {
        self.clean.remove_file(file);
        let ranges = self.dirty.free_file(file, &mut self.tagmem);
        self.tracer.count(
            "cache.pages_freed_dirty",
            ranges.iter().map(|r| r.len).sum(),
        );
        ranges
    }

    // ---- read path ------------------------------------------------------

    /// Check residency of `[page, page+len)`; returns the sub-ranges that
    /// MISS (must be read from disk). Hits touch the LRU.
    pub fn read_misses(&mut self, file: FileId, page: u64, len: u64) -> Vec<(u64, u64)> {
        let mut misses = Vec::new();
        self.read_misses_into(file, page, len, &mut misses);
        misses
    }

    /// [`PageCache::read_misses`] into a caller-owned buffer (cleared
    /// first), so the per-syscall read path can reuse one allocation.
    pub fn read_misses_into(
        &mut self,
        file: FileId,
        page: u64,
        len: u64,
        misses: &mut Vec<(u64, u64)>,
    ) {
        misses.clear();
        // Resolve both per-file structures once; the page loop below then
        // runs hash-free (dirty pages short-circuit so they do not refresh
        // the clean LRU, exactly as before). On files with no dirty pages
        // at all — streaming readers — miss stretches are crossed in one
        // slice walk rather than a probe per page.
        let dirty = self.dirty.file_view(file);
        let dirty_empty = dirty.is_empty();
        let clean_fh = self.clean.file_handle(file);
        let end = page + len;
        let mut run_start = None;
        let mut p = page;
        while p < end {
            let hit = (!dirty_empty && dirty.contains(p))
                || match clean_fh {
                    Some(fh) => self.clean.touch_at(fh, p),
                    None => false,
                };
            if hit {
                if let Some(s) = run_start.take() {
                    misses.push((s, p - s));
                }
                p += 1;
            } else {
                if run_start.is_none() {
                    run_start = Some(p);
                }
                p += 1;
                if dirty_empty {
                    p += match clean_fh {
                        Some(fh) => self.clean.miss_run_len(fh, p, end - p),
                        None => end - p,
                    };
                }
            }
        }
        if let Some(s) = run_start {
            misses.push((s, end - s));
        }
    }

    /// Install pages after a read completes.
    pub fn fill(&mut self, file: FileId, page: u64, len: u64) {
        self.clean.fill_range(file, page, len);
        self.tracer.count("cache.pages_filled", len);
    }

    // ---- thresholds & accounting -----------------------------------------

    /// Total dirty pages.
    pub fn dirty_total(&self) -> u64 {
        self.dirty.total()
    }

    /// Total dirty pages recomputed from the per-file extent maps.
    /// Must always equal [`PageCache::dirty_total`]; auditors compare the
    /// two to catch drift in the incremental counter.
    pub fn dirty_check_sum(&self) -> u64 {
        self.dirty.audit_sum()
    }

    /// Whether writers must be throttled (`dirty_ratio` exceeded).
    pub fn over_dirty_limit(&self) -> bool {
        self.dirty_total() >= self.cfg.dirty_limit_pages()
    }

    /// Whether background writeback should run.
    pub fn over_background(&self) -> bool {
        self.dirty_total() >= self.cfg.background_pages()
    }

    /// Files with dirty pages, oldest first (writeback order).
    pub fn dirty_files_oldest_first(&self) -> Vec<FileId> {
        self.dirty.files_oldest_first()
    }

    /// Tag-memory accounting (Figure 10).
    pub fn tagmem(&self) -> &TagMem {
        &self.tagmem
    }

    /// Sample current tag memory into the running max/avg statistics.
    pub fn sample_tagmem(&mut self) {
        self.tagmem.sample();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Pid;

    fn cache_1mb() -> PageCache {
        PageCache::new(CacheConfig {
            mem_bytes: 1024 * 1024,
            ..Default::default()
        })
    }

    #[test]
    fn dirty_then_take_roundtrip() {
        let mut c = cache_1mb();
        let f = FileId(1);
        let causes = CauseSet::of(Pid(10));
        for p in 0..8 {
            let ev = c.dirty_page(f, p, &causes, SimTime::ZERO);
            assert!(ev.prev.is_none());
            assert_eq!(ev.new_bytes, PAGE_SIZE);
        }
        assert_eq!(c.dirty_total(), 8);
        let ranges = c.take_dirty_ranges(f, 100);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].start_page, 0);
        assert_eq!(ranges[0].len, 8);
        assert!(ranges[0].causes.contains(Pid(10)));
        assert_eq!(c.dirty_total(), 0);
        // Pages remain readable after cleaning.
        assert!(c.read_misses(f, 0, 8).is_empty());
    }

    #[test]
    fn overwrite_reports_previous_causes() {
        let mut c = cache_1mb();
        let f = FileId(1);
        c.dirty_page(f, 3, &CauseSet::of(Pid(1)), SimTime::ZERO);
        let ev = c.dirty_page(f, 3, &CauseSet::of(Pid(2)), SimTime::from_nanos(5));
        assert_eq!(ev.new_bytes, 0, "overwrite dirties no new bytes");
        let prev = ev.prev.expect("overwrite must report previous causes");
        assert!(prev.contains(Pid(1)));
        assert_eq!(c.dirty_total(), 1);
        // Both writers are now responsible.
        let ranges = c.take_dirty_ranges(f, 10);
        assert!(ranges[0].causes.contains(Pid(1)));
        assert!(ranges[0].causes.contains(Pid(2)));
    }

    #[test]
    fn read_miss_tracking() {
        let mut c = cache_1mb();
        let f = FileId(2);
        assert_eq!(c.read_misses(f, 0, 4), vec![(0, 4)]);
        c.fill(f, 0, 4);
        assert!(c.read_misses(f, 0, 4).is_empty());
        // Partial residency yields the missing tail.
        assert_eq!(c.read_misses(f, 2, 4), vec![(4, 2)]);
    }

    #[test]
    fn dirty_thresholds() {
        let mut c = PageCache::new(CacheConfig {
            mem_bytes: 100 * PAGE_SIZE,
            dirty_ratio: 0.20,
            dirty_background_ratio: 0.10,
        });
        let f = FileId(1);
        for p in 0..9 {
            c.dirty_page(f, p, &CauseSet::of(Pid(1)), SimTime::ZERO);
        }
        assert!(!c.over_background());
        c.dirty_page(f, 9, &CauseSet::of(Pid(1)), SimTime::ZERO);
        assert!(c.over_background());
        assert!(!c.over_dirty_limit());
        for p in 10..20 {
            c.dirty_page(f, p, &CauseSet::of(Pid(1)), SimTime::ZERO);
        }
        assert!(c.over_dirty_limit());
    }

    #[test]
    fn free_file_returns_avoided_writeback() {
        let mut c = cache_1mb();
        let f = FileId(3);
        for p in 0..5 {
            c.dirty_page(f, p, &CauseSet::of(Pid(4)), SimTime::ZERO);
        }
        let freed = c.free_file(f);
        assert_eq!(freed.iter().map(|r| r.len).sum::<u64>(), 5);
        assert_eq!(c.dirty_total(), 0);
        assert_eq!(c.read_misses(f, 0, 5), vec![(0, 5)]);
    }

    #[test]
    fn tagmem_rises_and_falls_with_dirty_tags() {
        let mut c = cache_1mb();
        let f = FileId(1);
        assert_eq!(c.tagmem().live_bytes(), 0);
        for p in 0..16 {
            c.dirty_page(f, p, &CauseSet::of(Pid(1)), SimTime::ZERO);
        }
        let live = c.tagmem().live_bytes();
        assert!(live > 0);
        c.take_dirty_ranges(f, 100);
        assert_eq!(c.tagmem().live_bytes(), 0);
        assert!(c.tagmem().max_bytes() >= live);
    }

    #[test]
    fn lru_evicts_clean_pages_under_pressure() {
        // 16-page cache.
        let mut c = PageCache::new(CacheConfig {
            mem_bytes: 16 * PAGE_SIZE,
            ..Default::default()
        });
        let f = FileId(1);
        c.fill(f, 0, 16);
        assert!(c.read_misses(f, 0, 16).is_empty());
        // Bring in 8 more pages; the oldest 8 must go.
        c.fill(f, 100, 8);
        let misses = c.read_misses(f, 0, 8);
        assert_eq!(misses, vec![(0, 8)]);
    }

    #[test]
    fn writeback_order_is_oldest_file_first() {
        let mut c = cache_1mb();
        c.dirty_page(FileId(2), 0, &CauseSet::of(Pid(1)), SimTime::from_nanos(10));
        c.dirty_page(FileId(1), 0, &CauseSet::of(Pid(1)), SimTime::from_nanos(20));
        assert_eq!(c.dirty_files_oldest_first(), vec![FileId(2), FileId(1)]);
    }
}
