//! Clean-page residency with LRU eviction.
//!
//! Tracked at page granularity with an intrusive LRU list implemented over
//! a `HashMap` + monotonic sequence numbers (a "clock" approximation that
//! is exact enough for the experiments: small files stay resident, streams
//! larger than memory do not).

use std::collections::{BTreeMap, HashMap};

use sim_core::FileId;

/// LRU-managed set of resident clean pages.
#[derive(Debug)]
pub struct CleanCache {
    capacity_pages: u64,
    /// (file, page) -> lru stamp
    pages: HashMap<(FileId, u64), u64>,
    /// lru stamp -> (file, page); BTreeMap gives cheap oldest-first.
    order: BTreeMap<u64, (FileId, u64)>,
    stamp: u64,
}

impl CleanCache {
    /// Cache holding at most `capacity_pages` pages.
    pub fn new(capacity_pages: u64) -> Self {
        CleanCache {
            capacity_pages: capacity_pages.max(1),
            pages: HashMap::new(),
            order: BTreeMap::new(),
            stamp: 0,
        }
    }

    /// Resident page count.
    pub fn len(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Insert (or refresh) a page, evicting the least-recently-used pages
    /// if over capacity.
    pub fn insert(&mut self, file: FileId, page: u64) {
        self.touch_or_insert(file, page, true);
        while self.pages.len() as u64 > self.capacity_pages {
            let Some((&oldest, &key)) = self.order.iter().next() else {
                break;
            };
            self.order.remove(&oldest);
            self.pages.remove(&key);
        }
    }

    /// If resident, refresh recency and return true.
    pub fn touch(&mut self, file: FileId, page: u64) -> bool {
        self.touch_or_insert(file, page, false)
    }

    fn touch_or_insert(&mut self, file: FileId, page: u64, insert: bool) -> bool {
        let key = (file, page);
        match self.pages.get_mut(&key) {
            Some(old_stamp) => {
                self.order.remove(old_stamp);
                self.stamp += 1;
                *old_stamp = self.stamp;
                self.order.insert(self.stamp, key);
                true
            }
            None if insert => {
                self.stamp += 1;
                self.pages.insert(key, self.stamp);
                self.order.insert(self.stamp, key);
                true
            }
            None => false,
        }
    }

    /// Drop all pages of `file`.
    pub fn remove_file(&mut self, file: FileId) {
        let stamps: Vec<u64> = self
            .pages
            .iter()
            .filter(|((f, _), _)| *f == file)
            .map(|(_, &s)| s)
            .collect();
        for s in stamps {
            if let Some(key) = self.order.remove(&s) {
                self.pages.remove(&key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_touch() {
        let mut c = CleanCache::new(4);
        c.insert(FileId(1), 0);
        assert!(c.touch(FileId(1), 0));
        assert!(!c.touch(FileId(1), 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = CleanCache::new(3);
        c.insert(FileId(1), 0);
        c.insert(FileId(1), 1);
        c.insert(FileId(1), 2);
        // Touch page 0 so page 1 becomes the LRU victim.
        c.touch(FileId(1), 0);
        c.insert(FileId(1), 3);
        assert!(c.touch(FileId(1), 0));
        assert!(!c.touch(FileId(1), 1), "page 1 should have been evicted");
        assert!(c.touch(FileId(1), 2));
        assert!(c.touch(FileId(1), 3));
    }

    #[test]
    fn remove_file_clears_only_that_file() {
        let mut c = CleanCache::new(10);
        c.insert(FileId(1), 0);
        c.insert(FileId(2), 0);
        c.remove_file(FileId(1));
        assert!(!c.touch(FileId(1), 0));
        assert!(c.touch(FileId(2), 0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_refreshes_rather_than_duplicates() {
        let mut c = CleanCache::new(2);
        c.insert(FileId(1), 0);
        c.insert(FileId(1), 0);
        c.insert(FileId(1), 1);
        assert_eq!(c.len(), 2);
    }
}
