//! Clean-page residency with LRU eviction.
//!
//! Semantically this is an exact page-granular LRU: every resident page
//! has a recency position, touches move a page to the MRU end, eviction
//! removes the LRU page. The representation is extent-compressed: a run
//! of pages filled consecutively (one streaming read) occupies a single
//! list node covering `[start, start+len)`, because consecutive inserts
//! are adjacent in recency order and stay adjacent until an individual
//! page is touched — at which point the run splits. Eviction shrinks the
//! tail run from its oldest page. Every operation therefore does exactly
//! what the per-page LRU would do (property-tested against a naive model
//! below), but a 256-page fill costs one node and a sequential slot-table
//! write instead of 256 list splices.
//!
//! Residency lookup is a direct array index: each file gets a
//! page-indexed slot table (grown lazily to the highest page touched), so
//! the per-page hot path does no hashing. The only hash left is one
//! [`FastMap`] probe per *call* to resolve the file, and the range entry
//! points ([`CleanCache::fill_range`], [`CleanCache::touch_at`]) hoist
//! even that out of page loops. At capacity, fills recycle evicted
//! nodes, so the streaming steady state touches the allocator not at all.

use sim_core::{FastMap, FileId};

/// Sentinel "null" link / empty slot.
const NIL: u32 = u32::MAX;

/// One run of consecutively-filled pages `[start, start+len)` of one
/// file. Within a run, `start` is the oldest page (runs are created by
/// ascending fills); `prev` points toward MRU, `next` toward LRU.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Handle into `files` (index of the owning file's slot table).
    fh: u32,
    start: u64,
    len: u64,
    prev: u32,
    next: u32,
}

/// Per-file residency table: `slots[page]` holds the covering node.
#[derive(Debug, Default)]
struct FileSlots {
    file: FileId,
    slots: Vec<u32>,
}

/// LRU-managed set of resident clean pages.
#[derive(Debug)]
pub struct CleanCache {
    capacity_pages: u64,
    /// File -> handle into `files`.
    handles: FastMap<FileId, u32>,
    files: Vec<FileSlots>,
    /// Run-node storage; `free` recycles vacated nodes.
    nodes: Vec<Node>,
    free: Vec<u32>,
    /// Most-recently-used end of the list.
    head: u32,
    /// Least-recently-used end (eviction victim).
    tail: u32,
    /// Resident pages (sum of node lengths).
    len: u64,
}

impl CleanCache {
    /// Cache holding at most `capacity_pages` pages.
    pub fn new(capacity_pages: u64) -> Self {
        CleanCache {
            capacity_pages: capacity_pages.max(1),
            handles: FastMap::default(),
            files: Vec::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Resident page count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resolve (or create) the slot-table handle for `file`.
    fn handle(&mut self, file: FileId) -> u32 {
        if let Some(&h) = self.handles.get(&file) {
            return h;
        }
        let h = self.files.len() as u32;
        self.files.push(FileSlots {
            file,
            slots: Vec::new(),
        });
        self.handles.insert(file, h);
        h
    }

    /// Node covering `page`, or `NIL`.
    #[inline]
    fn node_at(&self, fh: u32, page: u64) -> u32 {
        self.files[fh as usize]
            .slots
            .get(page as usize)
            .copied()
            .unwrap_or(NIL)
    }

    /// Point `[start, start+len)` of file `fh` at node `i`.
    fn set_slots(&mut self, fh: u32, start: u64, len: u64, i: u32) {
        let slots = &mut self.files[fh as usize].slots;
        let end = (start + len) as usize;
        if slots.len() < end {
            slots.resize(end, NIL);
        }
        slots[start as usize..end].fill(i);
    }

    /// Unlink node `i` from the recency list.
    fn unlink(&mut self, i: u32) {
        let Node { prev, next, .. } = self.nodes[i as usize];
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Link node `i` at the MRU head.
    fn link_front(&mut self, i: u32) {
        let old = self.head;
        self.nodes[i as usize].prev = NIL;
        self.nodes[i as usize].next = old;
        if old != NIL {
            self.nodes[old as usize].prev = i;
        } else {
            self.tail = i;
        }
        self.head = i;
    }

    /// Link node `i` immediately MRU-ward of `at` (between `at` and
    /// `at`'s prev).
    fn link_before(&mut self, i: u32, at: u32) {
        let prev = self.nodes[at as usize].prev;
        if prev == NIL {
            self.link_front(i);
            return;
        }
        self.nodes[i as usize].prev = prev;
        self.nodes[i as usize].next = at;
        self.nodes[prev as usize].next = i;
        self.nodes[at as usize].prev = i;
    }

    /// Allocate a node (recycling freed ones).
    fn alloc_node(&mut self, node: Node) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Evict `k` LRU pages (oldest first, shrinking tail runs).
    fn evict_pages(&mut self, mut k: u64) {
        while k > 0 {
            let t = self.tail;
            debug_assert_ne!(t, NIL);
            let Node { fh, start, len, .. } = self.nodes[t as usize];
            if len <= k {
                self.set_slots(fh, start, len, NIL);
                self.unlink(t);
                self.free.push(t);
                self.len -= len;
                k -= len;
            } else {
                self.set_slots(fh, start, k, NIL);
                let n = &mut self.nodes[t as usize];
                n.start += k;
                n.len -= k;
                self.len -= k;
                k = 0;
            }
        }
    }

    /// Move resident page `page` (covered by node `i`) to the MRU head,
    /// splitting its run if it sits in the middle.
    fn touch_node(&mut self, fh: u32, i: u32, page: u64) {
        let Node { start, len, .. } = self.nodes[i as usize];
        debug_assert!(page >= start && page < start + len);
        if len == 1 {
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return;
        }
        if page == start {
            // Oldest page of the run: run keeps [start+1, end).
            self.nodes[i as usize].start += 1;
            self.nodes[i as usize].len -= 1;
        } else if page == start + len - 1 {
            // Newest page: run keeps [start, end-1).
            self.nodes[i as usize].len -= 1;
        } else {
            // Middle: the run keeps its older half [start, page); the
            // newer half [page+1, end) becomes a node just MRU-ward of it
            // (those pages were filled later, so they are adjacent on the
            // recency axis).
            let upper_len = start + len - page - 1;
            self.nodes[i as usize].len = page - start;
            let u = self.alloc_node(Node {
                fh,
                start: page + 1,
                len: upper_len,
                prev: NIL,
                next: NIL,
            });
            self.link_before(u, i);
            self.set_slots(fh, page + 1, upper_len, u);
        }
        let single = self.alloc_node(Node {
            fh,
            start: page,
            len: 1,
            prev: NIL,
            next: NIL,
        });
        self.link_front(single);
        self.set_slots(fh, page, 1, single);
    }

    /// Insert (or refresh) a page, evicting the least-recently-used pages
    /// if over capacity.
    pub fn insert(&mut self, file: FileId, page: u64) {
        let fh = self.handle(file);
        self.insert_range_at(fh, page, 1);
    }

    /// Insert (or refresh) `len` consecutive pages in ascending order —
    /// exactly as repeated [`CleanCache::insert`] calls would, but one
    /// run node per stretch of non-resident pages.
    pub fn fill_range(&mut self, file: FileId, page: u64, len: u64) {
        let fh = self.handle(file);
        self.insert_range_at(fh, page, len);
    }

    fn insert_range_at(&mut self, fh: u32, page: u64, len: u64) {
        let end = page + len;
        let mut run_start = None;
        let mut p = page;
        while p < end {
            let i = self.node_at(fh, p);
            if i != NIL {
                if let Some(s) = run_start.take() {
                    self.push_run(fh, s, p - s);
                }
                self.touch_node(fh, i, p);
                p += 1;
            } else {
                if run_start.is_none() {
                    run_start = Some(p);
                }
                // Cross the rest of the non-resident stretch in one slice
                // walk (the common case: a streaming fill of fresh pages).
                p += 1 + self.miss_run_len(fh, p + 1, end - p - 1);
            }
        }
        if let Some(s) = run_start {
            self.push_run(fh, s, end - s);
        }
        if self.len > self.capacity_pages {
            self.evict_pages(self.len - self.capacity_pages);
        }
    }

    /// Place a fresh run `[start, start+len)` at the MRU head.
    fn push_run(&mut self, fh: u32, start: u64, len: u64) {
        let i = self.alloc_node(Node {
            fh,
            start,
            len,
            prev: NIL,
            next: NIL,
        });
        self.link_front(i);
        self.set_slots(fh, start, len, i);
        self.len += len;
    }

    /// If resident, refresh recency and return true.
    pub fn touch(&mut self, file: FileId, page: u64) -> bool {
        let Some(&fh) = self.handles.get(&file) else {
            return false;
        };
        self.touch_at(fh, page)
    }

    /// Slot-table handle of `file`, if it ever held pages. Lets range
    /// scans pay the file lookup once (see [`CleanCache::touch_at`]).
    pub(crate) fn file_handle(&self, file: FileId) -> Option<u32> {
        self.handles.get(&file).copied()
    }

    /// Length of the non-resident run starting at `page`, capped at `max`
    /// pages: range scans use it to cross a miss stretch in one slice walk
    /// instead of a probe call per page. Read-only — misses don't touch
    /// the LRU, so skipping them wholesale is observationally identical.
    pub(crate) fn miss_run_len(&self, fh: u32, page: u64, max: u64) -> u64 {
        let slots = &self.files[fh as usize].slots;
        let start = page as usize;
        if start >= slots.len() {
            // Past the slot table: nothing there was ever resident.
            return max;
        }
        let end = slots.len().min(start + max as usize);
        for (n, &s) in slots[start..end].iter().enumerate() {
            if s != NIL {
                return n as u64;
            }
        }
        // Ran off the end of the table; the stretch beyond it is all miss.
        max
    }

    /// [`CleanCache::touch`] through a prefetched handle: no hashing.
    pub(crate) fn touch_at(&mut self, fh: u32, page: u64) -> bool {
        let i = self.node_at(fh, page);
        if i == NIL {
            return false;
        }
        self.touch_node(fh, i, page);
        true
    }

    /// Drop all pages of `file`. The slot table is kept (cleared) so a
    /// later re-fill reuses its capacity.
    pub fn remove_file(&mut self, file: FileId) {
        let Some(&fh) = self.handles.get(&file) else {
            return;
        };
        // Walk the recency list collecting this file's runs (the list has
        // one entry per run, not per page).
        let mut i = self.head;
        while i != NIL {
            let next = self.nodes[i as usize].next;
            if self.nodes[i as usize].fh == fh {
                self.len -= self.nodes[i as usize].len;
                self.unlink(i);
                self.free.push(i);
            }
            i = next;
        }
        self.files[fh as usize].slots.fill(NIL);
        debug_assert_eq!(self.files[fh as usize].file, file);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimRng;

    #[test]
    fn insert_and_touch() {
        let mut c = CleanCache::new(4);
        c.insert(FileId(1), 0);
        assert!(c.touch(FileId(1), 0));
        assert!(!c.touch(FileId(1), 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = CleanCache::new(3);
        c.insert(FileId(1), 0);
        c.insert(FileId(1), 1);
        c.insert(FileId(1), 2);
        // Touch page 0 so page 1 becomes the LRU victim.
        c.touch(FileId(1), 0);
        c.insert(FileId(1), 3);
        assert!(c.touch(FileId(1), 0));
        assert!(!c.touch(FileId(1), 1), "page 1 should have been evicted");
        assert!(c.touch(FileId(1), 2));
        assert!(c.touch(FileId(1), 3));
    }

    #[test]
    fn remove_file_clears_only_that_file() {
        let mut c = CleanCache::new(10);
        c.insert(FileId(1), 0);
        c.insert(FileId(2), 0);
        c.remove_file(FileId(1));
        assert!(!c.touch(FileId(1), 0));
        assert!(c.touch(FileId(2), 0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_refreshes_rather_than_duplicates() {
        let mut c = CleanCache::new(2);
        c.insert(FileId(1), 0);
        c.insert(FileId(1), 0);
        c.insert(FileId(1), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn fill_range_matches_per_page_inserts() {
        let mut a = CleanCache::new(5);
        let mut b = CleanCache::new(5);
        a.fill_range(FileId(1), 10, 8);
        for p in 10..18 {
            b.insert(FileId(1), p);
        }
        for p in 0..20 {
            assert_eq!(a.touch(FileId(1), p), b.touch(FileId(1), p), "page {p}");
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn middle_touch_splits_run_without_losing_pages() {
        let mut c = CleanCache::new(100);
        c.fill_range(FileId(1), 0, 10);
        assert!(c.touch(FileId(1), 5));
        assert_eq!(c.len(), 10);
        for p in 0..10 {
            assert!(c.touch(FileId(1), p), "page {p} lost in split");
        }
    }

    #[test]
    fn steady_state_stream_recycles_nodes() {
        let mut c = CleanCache::new(512);
        for chunk in 0..200u64 {
            c.fill_range(FileId(1), chunk * 256, 256);
        }
        assert_eq!(c.len(), 512);
        assert!(
            c.nodes.len() < 16,
            "node slab grew past a handful of runs: {}",
            c.nodes.len()
        );
        // The newest two chunks are resident, older ones are gone.
        assert!(c.touch(FileId(1), 199 * 256));
        assert!(!c.touch(FileId(1), 197 * 256));
    }

    /// Exact-LRU reference model: a vector ordered MRU-first.
    #[derive(Default)]
    struct ModelLru {
        cap: usize,
        order: Vec<(FileId, u64)>,
    }

    impl ModelLru {
        fn insert(&mut self, file: FileId, page: u64) {
            if let Some(pos) = self.order.iter().position(|&k| k == (file, page)) {
                self.order.remove(pos);
            } else if self.order.len() >= self.cap {
                self.order.pop();
            }
            self.order.insert(0, (file, page));
        }

        fn touch(&mut self, file: FileId, page: u64) -> bool {
            match self.order.iter().position(|&k| k == (file, page)) {
                Some(pos) => {
                    let k = self.order.remove(pos);
                    self.order.insert(0, k);
                    true
                }
                None => false,
            }
        }

        fn remove_file(&mut self, file: FileId) {
            self.order.retain(|&(f, _)| f != file);
        }
    }

    /// The extent-compressed cache must be observationally identical to
    /// the naive page LRU under fuzzed fills, touches, and removals.
    #[test]
    fn differential_against_naive_page_lru() {
        for seed in 0..12u64 {
            let mut rng = SimRng::seed_from_u64(0xc1ea_ca0e ^ seed);
            let cap = 1 + rng.gen_range(96);
            let mut real = CleanCache::new(cap);
            let mut model = ModelLru {
                cap: cap as usize,
                order: Vec::new(),
            };
            for _ in 0..2_000 {
                let file = FileId(1 + rng.gen_range(3));
                let page = rng.gen_range(64);
                match rng.gen_range(10) {
                    0 => {
                        real.remove_file(file);
                        model.remove_file(file);
                    }
                    1..=4 => {
                        let len = 1 + rng.gen_range(24).min(63 - page);
                        real.fill_range(file, page, len);
                        for p in page..page + len {
                            model.insert(file, p);
                        }
                    }
                    5..=7 => {
                        assert_eq!(
                            real.touch(file, page),
                            model.touch(file, page),
                            "touch divergence (seed {seed})"
                        );
                    }
                    _ => {
                        real.insert(file, page);
                        model.insert(file, page);
                    }
                }
                assert_eq!(real.len(), model.order.len() as u64, "len (seed {seed})");
            }
            // Final sweep: every key agrees. Probe in model order so the
            // touches themselves cannot cause divergence.
            let final_keys = model.order.clone();
            for (f, p) in final_keys {
                assert!(real.touch(f, p), "page ({f:?},{p}) missing (seed {seed})");
                assert!(model.touch(f, p));
            }
        }
    }
}
