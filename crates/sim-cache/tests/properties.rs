//! Randomized tests: dirty-page conservation and residency laws, driven
//! by `SimRng` so the case set is deterministic and dependency-free.

use sim_cache::{CacheConfig, PageCache};
use sim_core::rng::SimRng;
use sim_core::{CauseSet, FileId, Pid, SimTime};

#[derive(Debug, Clone)]
enum Op {
    Dirty { file: u8, page: u16, pid: u8 },
    Take { file: u8, max: u16 },
    Free { file: u8 },
    Fill { file: u8, page: u16, len: u8 },
}

fn rand_ops(rng: &mut SimRng) -> Vec<Op> {
    let n = 1 + rng.gen_range(199) as usize;
    (0..n)
        .map(|_| match rng.gen_range(4) {
            0 => Op::Dirty {
                file: rng.gen_range(4) as u8,
                page: rng.gen_range(512) as u16,
                pid: rng.gen_range(8) as u8,
            },
            1 => Op::Take {
                file: rng.gen_range(4) as u8,
                max: 1 + rng.gen_range(63) as u16,
            },
            2 => Op::Free {
                file: rng.gen_range(4) as u8,
            },
            _ => Op::Fill {
                file: rng.gen_range(4) as u8,
                page: rng.gen_range(512) as u16,
                len: 1 + rng.gen_range(31) as u8,
            },
        })
        .collect()
}

/// The dirty counter always equals (dirtied − taken − freed); tag
/// memory goes to zero when no dirty pages remain; taken ranges never
/// overlap and never exceed what was dirtied.
#[test]
fn dirty_accounting_is_conserved() {
    let mut rng = SimRng::seed_from_u64(0xCAC4E);
    for _ in 0..64 {
        let ops = rand_ops(&mut rng);
        let mut cache = PageCache::new(CacheConfig {
            mem_bytes: 16 << 20,
            ..Default::default()
        });
        let mut model: std::collections::HashSet<(u8, u16)> = Default::default();
        let mut t = 0u64;
        for op in &ops {
            t += 1;
            let now = SimTime::from_nanos(t);
            match *op {
                Op::Dirty { file, page, pid } => {
                    let ev = cache.dirty_page(
                        FileId(file as u64),
                        page as u64,
                        &CauseSet::of(Pid(pid as u32)),
                        now,
                    );
                    let fresh = model.insert((file, page));
                    assert_eq!(ev.prev.is_some(), !fresh, "overwrite detection");
                }
                Op::Take { file, max } => {
                    let ranges = cache.take_dirty_ranges(FileId(file as u64), max as u64);
                    let mut taken = 0;
                    for r in &ranges {
                        for p in r.start_page..r.start_page + r.len {
                            assert!(
                                model.remove(&(file, p as u16)),
                                "took a page that was not dirty"
                            );
                            taken += 1;
                        }
                    }
                    assert!(taken <= max as u64);
                }
                Op::Free { file } => {
                    let freed = cache.free_file(FileId(file as u64));
                    for r in &freed {
                        for p in r.start_page..r.start_page + r.len {
                            assert!(model.remove(&(file, p as u16)));
                        }
                    }
                    assert!(!model.iter().any(|&(f, _)| f == file));
                }
                Op::Fill { file, page, len } => {
                    cache.fill(FileId(file as u64), page as u64, len as u64);
                }
            }
            assert_eq!(
                cache.dirty_total(),
                model.len() as u64,
                "dirty counter drift"
            );
        }
        // Drain everything: tag memory returns to zero.
        for f in 0..4u8 {
            cache.free_file(FileId(f as u64));
        }
        assert_eq!(cache.dirty_total(), 0);
        assert_eq!(cache.tagmem().live_bytes(), 0, "leaked tag bytes");
    }
}

/// A dirty page is always a cache hit; a taken (cleaned) page stays
/// resident.
#[test]
fn dirty_pages_are_always_resident() {
    let mut rng = SimRng::seed_from_u64(0xD1237);
    for _ in 0..64 {
        let n = 1 + rng.gen_range(39) as usize;
        let pages: Vec<u16> = (0..n).map(|_| rng.gen_range(128) as u16).collect();
        let mut cache = PageCache::new(CacheConfig {
            mem_bytes: 64 << 20,
            ..Default::default()
        });
        let f = FileId(1);
        for &p in &pages {
            cache.dirty_page(f, p as u64, &CauseSet::of(Pid(1)), SimTime::ZERO);
            assert!(cache.read_misses(f, p as u64, 1).is_empty());
        }
        cache.take_dirty_ranges(f, u64::MAX);
        for &p in &pages {
            assert!(
                cache.read_misses(f, p as u64, 1).is_empty(),
                "cleaned pages remain readable"
            );
        }
    }
}
