//! Property-based tests: dirty-page conservation and residency laws.

use proptest::prelude::*;
use sim_cache::{CacheConfig, PageCache};
use sim_core::{CauseSet, FileId, Pid, SimTime};

#[derive(Debug, Clone)]
enum Op {
    Dirty { file: u8, page: u16, pid: u8 },
    Take { file: u8, max: u16 },
    Free { file: u8 },
    Fill { file: u8, page: u16, len: u8 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..4, 0u16..512, 0u8..8).prop_map(|(file, page, pid)| Op::Dirty { file, page, pid }),
            (0u8..4, 1u16..64).prop_map(|(file, max)| Op::Take { file, max }),
            (0u8..4).prop_map(|file| Op::Free { file }),
            (0u8..4, 0u16..512, 1u8..32).prop_map(|(file, page, len)| Op::Fill { file, page, len }),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dirty counter always equals (dirtied − taken − freed); tag
    /// memory goes to zero when no dirty pages remain; taken ranges never
    /// overlap and never exceed what was dirtied.
    #[test]
    fn dirty_accounting_is_conserved(ops in ops()) {
        let mut cache = PageCache::new(CacheConfig {
            mem_bytes: 16 << 20,
            ..Default::default()
        });
        let mut model: std::collections::HashSet<(u8, u16)> = Default::default();
        let mut t = 0u64;
        for op in &ops {
            t += 1;
            let now = SimTime::from_nanos(t);
            match *op {
                Op::Dirty { file, page, pid } => {
                    let ev = cache.dirty_page(
                        FileId(file as u64),
                        page as u64,
                        &CauseSet::of(Pid(pid as u32)),
                        now,
                    );
                    let fresh = model.insert((file, page));
                    prop_assert_eq!(ev.prev.is_some(), !fresh, "overwrite detection");
                }
                Op::Take { file, max } => {
                    let ranges = cache.take_dirty_ranges(FileId(file as u64), max as u64);
                    let mut taken = 0;
                    for r in &ranges {
                        for p in r.start_page..r.start_page + r.len {
                            prop_assert!(
                                model.remove(&(file, p as u16)),
                                "took a page that was not dirty"
                            );
                            taken += 1;
                        }
                    }
                    prop_assert!(taken <= max as u64);
                }
                Op::Free { file } => {
                    let freed = cache.free_file(FileId(file as u64));
                    for r in &freed {
                        for p in r.start_page..r.start_page + r.len {
                            prop_assert!(model.remove(&(file, p as u16)));
                        }
                    }
                    prop_assert!(!model.iter().any(|&(f, _)| f == file));
                }
                Op::Fill { file, page, len } => {
                    cache.fill(FileId(file as u64), page as u64, len as u64);
                }
            }
            prop_assert_eq!(cache.dirty_total(), model.len() as u64, "dirty counter drift");
        }
        // Drain everything: tag memory returns to zero.
        for f in 0..4u8 {
            cache.free_file(FileId(f as u64));
        }
        prop_assert_eq!(cache.dirty_total(), 0);
        prop_assert_eq!(cache.tagmem().live_bytes(), 0, "leaked tag bytes");
    }

    /// A dirty page is always a cache hit; a taken (cleaned) page stays
    /// resident.
    #[test]
    fn dirty_pages_are_always_resident(pages in proptest::collection::vec(0u16..128, 1..40)) {
        let mut cache = PageCache::new(CacheConfig {
            mem_bytes: 64 << 20,
            ..Default::default()
        });
        let f = FileId(1);
        for &p in &pages {
            cache.dirty_page(f, p as u64, &CauseSet::of(Pid(1)), SimTime::ZERO);
            prop_assert!(cache.read_misses(f, p as u64, 1).is_empty());
        }
        cache.take_dirty_ranges(f, u64::MAX);
        for &p in &pages {
            prop_assert!(
                cache.read_misses(f, p as u64, 1).is_empty(),
                "cleaned pages remain readable"
            );
        }
    }
}
