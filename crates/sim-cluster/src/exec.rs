//! The conservative parallel-DES executor.
//!
//! **Lookahead.** Every cross-shard message is delivered at least one
//! network link latency after it is sent ([`NetConfig::lookahead`]).
//! Time is therefore cut into windows of one lookahead: a message sent
//! inside window `w` can only be *delivered* in window `w + 1` or later,
//! so every shard can advance through window `w` independently — no
//! event it processes can be caused by another shard inside the same
//! window. At each barrier the coordinator routes outboxes to inboxes
//! (in shard-index order) and injects the next window's open-loop
//! arrivals; both are pure data motion at a fixed point in the round
//! structure, so the schedule is identical at any worker count.
//!
//! **Threading.** This extends the `sim-sweep` executor idiom (scoped
//! std threads, deterministic work assignment, index-keyed results) from
//! *across scenarios* to *within one scenario*. One difference is
//! forced by the model: a [`Shard`]'s `World` holds `Rc`-based state and
//! is not `Send`, so shards cannot migrate between workers the way
//! sweep cells do. Worker `i` builds and permanently owns shards
//! `i, i+jobs, i+2*jobs, …` (static deal instead of work stealing); the
//! only cross-thread traffic is plain-data envelopes and window numbers.
//!
//! **Byte identity.** `jobs = 1` runs the identical per-shard call
//! sequence inline on the caller's thread. Shard construction depends
//! only on `(cfg, idx)`, per-window mailbox contents are assembled by
//! the coordinator in shard-index order in both modes, and each shard's
//! event processing is single-threaded — so the fleet's simulated output
//! is byte-identical at any `--jobs`, which the tests and the CI
//! `cluster-smoke` job assert.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use sim_core::SimTime;

use crate::shard::{Envelope, Shard, ShardResult};
use crate::traffic::Traffic;
use crate::ClusterConfig;

/// Drive the fleet for `cfg.duration` on `jobs` worker threads.
pub fn run_windows(cfg: &ClusterConfig, jobs: usize) -> Vec<ShardResult> {
    let n = cfg.kernels.max(1);
    let la = cfg.net.lookahead().as_nanos().max(1);
    let end_ns = cfg.duration.as_nanos();
    let rounds = end_ns.div_ceil(la);
    let mut traffic = Traffic::new(cfg);

    if jobs <= 1 {
        return run_sequential(cfg, n, la, end_ns, rounds, &mut traffic);
    }
    run_parallel(cfg, n, la, end_ns, rounds, &mut traffic, jobs.min(n))
}

fn window_end(round: u64, la: u64, end_ns: u64) -> SimTime {
    SimTime::from_nanos(((round + 1) * la).min(end_ns))
}

fn run_sequential(
    cfg: &ClusterConfig,
    n: usize,
    la: u64,
    end_ns: u64,
    rounds: u64,
    traffic: &mut Traffic,
) -> Vec<ShardResult> {
    let mut shards: Vec<Shard> = (0..n).map(|i| Shard::new(cfg, i)).collect();
    let mut mail: Vec<Vec<Envelope>> = (0..n).map(|_| Vec::new()).collect();
    for round in 0..rounds {
        let end = window_end(round, la, end_ns);
        traffic.pull_into(end, &mut |env: Envelope| mail[env.to].push(env));
        for (i, shard) in shards.iter_mut().enumerate() {
            shard.deliver(std::mem::take(&mut mail[i]));
            shard.advance(end);
        }
        for shard in shards.iter_mut() {
            for env in shard.take_outbox() {
                mail[env.to].push(env);
            }
        }
    }
    shards.into_iter().map(Shard::finish).collect()
}

#[allow(clippy::too_many_arguments)]
fn run_parallel(
    cfg: &ClusterConfig,
    n: usize,
    la: u64,
    end_ns: u64,
    rounds: u64,
    traffic: &mut Traffic,
    workers: usize,
) -> Vec<ShardResult> {
    // Per-shard slots the coordinator and the owning worker exchange
    // through. Locks are uncontended by construction: the coordinator
    // touches them only while the workers are parked at a barrier.
    let inboxes: Vec<Mutex<Vec<Envelope>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let outboxes: Vec<Mutex<Vec<Envelope>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let results: Vec<Mutex<Option<ShardResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let window_ns = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let start_barrier = Barrier::new(workers + 1);
    let end_barrier = Barrier::new(workers + 1);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let inboxes = &inboxes;
            let outboxes = &outboxes;
            let results = &results;
            let window_ns = &window_ns;
            let done = &done;
            let start_barrier = &start_barrier;
            let end_barrier = &end_barrier;
            scope.spawn(move || {
                // Shards are built here and never leave this thread
                // (they are !Send: worlds hold Rc state).
                let mut mine: Vec<(usize, Shard)> = (w..n)
                    .step_by(workers)
                    .map(|i| (i, Shard::new(cfg, i)))
                    .collect();
                loop {
                    start_barrier.wait();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let end = SimTime::from_nanos(window_ns.load(Ordering::Acquire));
                    for (i, shard) in mine.iter_mut() {
                        let inbox = std::mem::take(&mut *inboxes[*i].lock().unwrap());
                        shard.deliver(inbox);
                        shard.advance(end);
                        *outboxes[*i].lock().unwrap() = shard.take_outbox();
                    }
                    end_barrier.wait();
                }
                for (i, shard) in mine {
                    *results[i].lock().unwrap() = Some(shard.finish());
                }
                end_barrier.wait();
            });
        }

        for round in 0..rounds {
            let end = window_end(round, la, end_ns);
            // Same coordinator order as the sequential loop: previous
            // round's routed envelopes are already in the inboxes; this
            // window's arrivals are appended after them.
            traffic.pull_into(end, &mut |env: Envelope| {
                inboxes[env.to].lock().unwrap().push(env)
            });
            window_ns.store(end.as_nanos(), Ordering::Release);
            start_barrier.wait();
            end_barrier.wait();
            for slot in outboxes.iter() {
                let out = std::mem::take(&mut *slot.lock().unwrap());
                for env in out {
                    inboxes[env.to].lock().unwrap().push(env);
                }
            }
        }
        done.store(true, Ordering::Release);
        start_barrier.wait();
        end_barrier.wait();
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every shard reports a result")
        })
        .collect()
}
