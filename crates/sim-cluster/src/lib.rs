#![warn(missing_docs)]
//! A cluster-scale serving fleet on the split-level storage stack.
//!
//! This crate generalizes the paper's 7-node HDFS case study (§7.3) to
//! a sharded serving fleet: every shard is a full simulated kernel with
//! its own calendar-wheel event queue ([`sim_kernel::World`]), running a
//! replicated KV/log server (leader + followers, commit-on-quorum-fsync
//! — the `minidb` WAL discipline made distributed) next to a batch
//! tenant, under open-loop client traffic (Poisson / diurnal /
//! flash-crowd arrival processes).
//!
//! Shards advance in bounded time windows under a **conservative
//! parallel-DES executor** ([`exec`]): the minimum network link latency
//! is the lookahead, cross-shard messages are routed at window barriers,
//! and the simulated output is byte-identical at any worker count
//! (`--jobs 1` is the proven-equal sequential fallback).
//!
//! Fleet-wide SLOs (per-tier and end-to-end p50/p99/p999) are computed
//! with [`sim_core::stats::Percentiles`] and exported through the
//! [`sim_trace::Registry`] ([`slo`]).

pub mod exec;
pub mod shard;
pub mod slo;
pub mod traffic;

use sim_block::Cfq;
use sim_cache::CacheConfig;
use sim_core::{stream_seed, SimDuration};
use sim_kernel::{DeviceKind, KernelConfig};
use split_core::{BlockOnly, IoSched};
use split_schedulers::SplitToken;

pub use shard::{Envelope, ReqKind, ReqSample, ShardResult};
pub use sim_apps::net::NetConfig;
pub use slo::{samples_between, SloReport, TierSlo};
pub use traffic::{ArrivalGen, ArrivalKind};

/// Scheduler installed on every shard kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterSched {
    /// Split-Token (§5.3) — the paper's full split-level scheduler.
    SplitToken,
    /// Linux CFQ at the block level (the baseline that degrades).
    Cfq,
}

impl ClusterSched {
    /// Instantiate the scheduler.
    pub fn build(self) -> Box<dyn IoSched> {
        match self {
            ClusterSched::SplitToken => Box::new(SplitToken::new()),
            ClusterSched::Cfq => Box::new(BlockOnly::new(Cfq::new())),
        }
    }

    /// CLI / table name.
    pub fn name(self) -> &'static str {
        match self {
            ClusterSched::SplitToken => "split-token",
            ClusterSched::Cfq => "cfq",
        }
    }

    /// Parse a runner `--sched` name.
    pub fn parse(s: &str) -> Option<ClusterSched> {
        Some(match s {
            "split-token" => ClusterSched::SplitToken,
            "cfq" => ClusterSched::Cfq,
            _ => return None,
        })
    }
}

/// Device model attached to every shard kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterDevice {
    /// 7200 RPM rotational disk (the paper's main target).
    Hdd,
    /// Flash SSD.
    Ssd,
}

impl ClusterDevice {
    /// Instantiate the device model.
    pub fn build(self) -> DeviceKind {
        match self {
            ClusterDevice::Hdd => DeviceKind::hdd(),
            ClusterDevice::Ssd => DeviceKind::ssd(),
        }
    }

    /// CLI / table name.
    pub fn name(self) -> &'static str {
        match self {
            ClusterDevice::Hdd => "hdd",
            ClusterDevice::Ssd => "ssd",
        }
    }
}

/// The per-shard batch tenant: a buffered random writer dirtying pages
/// continuously, competing with the latency-SLO serving tenant.
#[derive(Debug, Clone, Copy)]
pub struct BackgroundLoad {
    /// Backing file size.
    pub file_bytes: u64,
    /// Bytes per write call.
    pub req_bytes: u64,
    /// The tenant's own target dirtying rate (bytes/s) — what it
    /// attempts regardless of scheduler.
    pub dirty_rate: u64,
    /// Split-Token rate cap (normalized bytes/s), set below
    /// `dirty_rate` so tokens bind. Under CFQ the tenant runs in the
    /// idle class instead — the best CFQ can do.
    pub rate_cap: u64,
}

/// Fleet configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Shard (kernel instance) count.
    pub kernels: usize,
    /// Replication group size; groups are contiguous shard ranges and
    /// the remainder joins the last group. Quorum is majority.
    pub replication: usize,
    /// Request handlers per shard (the server's concurrency limit).
    pub handlers_per_shard: usize,
    /// Scheduler on every shard.
    pub sched: ClusterSched,
    /// Device on every shard.
    pub device: ClusterDevice,
    /// Modeled RAM per shard.
    pub mem_bytes: u64,
    /// Cores per shard.
    pub cores: u32,
    /// Network model; its minimum link latency is the PDES lookahead.
    pub net: NetConfig,
    /// Arrival process, per replication group.
    pub arrival: ArrivalKind,
    /// Fraction of requests that are gets.
    pub read_fraction: f64,
    /// WAL append size per put.
    pub wal_bytes: u64,
    /// Read size per get.
    pub get_bytes: u64,
    /// Per-shard DB file backing gets.
    pub db_bytes: u64,
    /// Batch tenant, if any.
    pub background: Option<BackgroundLoad>,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Root seed: arrival schedules, request routing, file layouts.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            kernels: 16,
            replication: 3,
            handlers_per_shard: 8,
            sched: ClusterSched::SplitToken,
            device: ClusterDevice::Hdd,
            mem_bytes: 256 * 1024 * 1024,
            cores: 8,
            net: NetConfig::default(),
            arrival: ArrivalKind::Poisson { rate: 30.0 },
            read_fraction: 0.5,
            wal_bytes: 4096,
            get_bytes: 16 * 1024,
            db_bytes: 1024 * 1024 * 1024,
            background: Some(BackgroundLoad {
                file_bytes: 512 * 1024 * 1024,
                req_bytes: 64 * 1024,
                dirty_rate: 4 * 1024 * 1024,
                rate_cap: 1024 * 1024,
            }),
            duration: SimDuration::from_secs(10),
            seed: 0,
        }
    }
}

impl ClusterConfig {
    /// The kernel configuration for shard `idx`.
    pub fn kernel_config(&self, idx: usize) -> KernelConfig {
        KernelConfig {
            cache: CacheConfig {
                mem_bytes: self.mem_bytes,
                ..Default::default()
            },
            cores: self.cores,
            pdflush: true,
            fs_seed: stream_seed(self.seed, 0xF5_0000 + idx as u64),
            ..Default::default()
        }
    }

    /// The fixed small fleet the bench panel runs (`cluster_small`):
    /// 8 kernels, 2 simulated seconds of Poisson traffic. Small enough
    /// for a bench rep, big enough to exercise replication and the
    /// windowed executor.
    pub fn bench_small() -> ClusterConfig {
        ClusterConfig {
            kernels: 8,
            duration: SimDuration::from_secs(2),
            arrival: ArrivalKind::Poisson { rate: 30.0 },
            ..Default::default()
        }
    }

    /// Shape the legacy HDFS figure (`fig21`) from this fleet: worker
    /// count and replication flow from the cluster config, making the
    /// paper's fixed 7-node run one point on the fleet-size axis and a
    /// 1-kernel fleet the degenerate single-shard case.
    pub fn dfs(&self) -> sim_apps::DfsConfig {
        sim_apps::DfsConfig {
            workers: self.kernels.max(1),
            replication: self.replication.clamp(1, self.kernels.max(1)),
            seed: stream_seed(self.seed, 0xDF5),
            ..Default::default()
        }
    }
}

/// How shards are grouped into replication groups.
#[derive(Debug, Clone, Copy)]
pub struct Topology {
    n: usize,
    r: usize,
    groups: usize,
}

impl Topology {
    /// Group `kernels` shards into contiguous groups of `replication`;
    /// the remainder joins the last group.
    pub fn new(kernels: usize, replication: usize) -> Topology {
        let n = kernels.max(1);
        let r = replication.clamp(1, n);
        Topology {
            n,
            r,
            groups: (n / r).max(1),
        }
    }

    /// Number of replication groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Which group shard `i` belongs to.
    pub fn group_of(&self, i: usize) -> usize {
        (i / self.r).min(self.groups - 1)
    }

    /// The shard-index range of group `g`.
    pub fn members(&self, g: usize) -> std::ops::Range<usize> {
        let start = g * self.r;
        let end = if g + 1 == self.groups {
            self.n
        } else {
            start + self.r
        };
        start..end
    }

    /// Group `g`'s leader shard.
    pub fn leader(&self, g: usize) -> usize {
        g * self.r
    }

    /// Majority quorum over group `g`'s members (fsyncs that must land
    /// before a put commits).
    pub fn quorum(&self, g: usize) -> usize {
        let m = self.members(g);
        (m.end - m.start) / 2 + 1
    }
}

/// Everything one fleet run produced.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Shard count.
    pub kernels: usize,
    /// Replication group count.
    pub groups: usize,
    /// Configured group size.
    pub replication: usize,
    /// Scheduler name.
    pub sched: &'static str,
    /// Device name.
    pub device: &'static str,
    /// Arrival process name.
    pub arrival: &'static str,
    /// Simulated seconds.
    pub duration_s: f64,
    /// Every completed request (shard-index order, completion order
    /// within a shard).
    pub samples: Vec<ReqSample>,
    /// Events processed across all shard queues.
    pub events: u64,
    /// Late schedules across all shards (must be zero — nonzero means
    /// the lookahead contract broke).
    pub late: u64,
    /// Requests still in flight when the clock stopped.
    pub inflight: u64,
    /// The SLO table.
    pub slo: SloReport,
}

impl ClusterReport {
    /// Deterministic fleet summary: config line, totals, SLO table.
    /// Byte-identical across `--jobs` values — CI diffs this output.
    pub fn render(&self) -> String {
        let puts = self
            .samples
            .iter()
            .filter(|s| s.kind == ReqKind::Put)
            .count();
        let gets = self.samples.len() - puts;
        let mut out = String::new();
        out.push_str(&format!(
            "Cluster SLO: {} kernel(s) in {} group(s) (r={}), {} on {}, {} arrivals, {:.1}s\n",
            self.kernels,
            self.groups,
            self.replication,
            self.sched,
            self.device,
            self.arrival,
            self.duration_s
        ));
        out.push_str(&format!(
            "  committed: {} put(s), {} get(s); {} in flight at end; {} event(s); {} late\n",
            puts, gets, self.inflight, self.events, self.late
        ));
        out.push_str(&self.slo.render());
        out
    }

    /// Export counters and latency histograms into a metrics registry.
    pub fn registry(&self) -> sim_trace::Registry {
        let mut reg = sim_trace::Registry::new();
        SloReport::export(&self.samples, &mut reg);
        reg.add("cluster.events", self.events);
        reg.add("cluster.late_schedules", self.late);
        reg.add("cluster.inflight_at_end", self.inflight);
        reg
    }
}

/// Run the fleet on `jobs` workers. `jobs = 1` is the sequential
/// fallback; any other value produces byte-identical output (asserted
/// by the crate's tests and the CI smoke job).
pub fn run_cluster(cfg: &ClusterConfig, jobs: usize) -> ClusterReport {
    let topo = Topology::new(cfg.kernels, cfg.replication);
    let results = exec::run_windows(cfg, jobs);
    let mut samples = Vec::new();
    let mut events = 0;
    let mut late = 0;
    let mut inflight = 0;
    for r in results {
        samples.extend(r.samples);
        events += r.events;
        late += r.late;
        inflight += r.inflight;
    }
    let slo = SloReport::compute(&samples);
    ClusterReport {
        kernels: cfg.kernels.max(1),
        groups: topo.groups(),
        replication: cfg.replication.clamp(1, cfg.kernels.max(1)),
        sched: cfg.sched.name(),
        device: cfg.device.name(),
        arrival: cfg.arrival.name(),
        duration_s: cfg.duration.as_secs_f64(),
        samples,
        events,
        late,
        inflight,
        slo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_groups_with_remainder() {
        let t = Topology::new(8, 3);
        assert_eq!(t.groups(), 2);
        assert_eq!(t.members(0), 0..3);
        assert_eq!(t.members(1), 3..8, "remainder joins the last group");
        assert_eq!(t.leader(1), 3);
        assert_eq!(t.quorum(0), 2);
        assert_eq!(t.quorum(1), 3, "majority of 5");
        assert_eq!(t.group_of(7), 1);
    }

    #[test]
    fn degenerate_single_shard_topology() {
        let t = Topology::new(1, 3);
        assert_eq!(t.groups(), 1);
        assert_eq!(t.members(0), 0..1);
        assert_eq!(t.quorum(0), 1, "no followers, commit on local fsync");
    }

    #[test]
    fn fig21_routing_clamps_to_fleet() {
        let fleet = ClusterConfig {
            kernels: 1,
            ..Default::default()
        };
        let dfs = fleet.dfs();
        assert_eq!(dfs.workers, 1);
        assert_eq!(dfs.replication, 1, "degenerate 1-shard case");
        let paper = ClusterConfig {
            kernels: 7,
            ..Default::default()
        };
        assert_eq!(paper.dfs().workers, 7, "the paper's node count");
        assert_eq!(paper.dfs().replication, 3);
    }
}
