//! Fleet-wide SLO reporting: per-tier and end-to-end latency
//! percentiles over the request samples, exported through the
//! `sim-trace` [`Registry`].

use sim_core::stats::Percentiles;
use sim_trace::Registry;

use crate::shard::{ReqKind, ReqSample};

/// Latency percentiles for one tier of the request path.
#[derive(Debug, Clone)]
pub struct TierSlo {
    /// Tier label (`put e2e`, `put wal`, …).
    pub name: &'static str,
    /// Samples in the tier.
    pub count: usize,
    /// Median, ms.
    pub p50: f64,
    /// 99th percentile, ms.
    pub p99: f64,
    /// 99.9th percentile, ms.
    pub p999: f64,
    /// Worst observed, ms.
    pub max: f64,
}

impl TierSlo {
    fn from_values(name: &'static str, values: &[f64]) -> TierSlo {
        let p = Percentiles::from_slice(values);
        TierSlo {
            name,
            count: p.len(),
            p50: p.p50(),
            p99: p.p99(),
            p999: p.p999(),
            max: p.max(),
        }
    }

    fn render_row(&self, out: &mut String) {
        out.push_str(&format!(
            "  {:<14} {:>8} {:>9.2} {:>9.2} {:>9.2} {:>9.2}\n",
            self.name, self.count, self.p50, self.p99, self.p999, self.max
        ));
    }
}

/// The fleet's SLO table: end-to-end and per-tier percentiles for both
/// request classes.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Put end-to-end (client → quorum commit → client).
    pub put_e2e: TierSlo,
    /// Leader WAL write+fsync service tier.
    pub put_wal: TierSlo,
    /// Replication tier (local durability → quorum).
    pub put_repl: TierSlo,
    /// Get end-to-end.
    pub get_e2e: TierSlo,
    /// Replica read service tier.
    pub get_read: TierSlo,
}

impl SloReport {
    /// Compute the table from raw samples.
    pub fn compute(samples: &[ReqSample]) -> SloReport {
        let mut put_e2e = Vec::new();
        let mut put_wal = Vec::new();
        let mut put_repl = Vec::new();
        let mut get_e2e = Vec::new();
        let mut get_read = Vec::new();
        for s in samples {
            match s.kind {
                ReqKind::Put => {
                    put_e2e.push(s.e2e_ms);
                    put_wal.push(s.service_ms);
                    put_repl.push(s.repl_ms);
                }
                ReqKind::Get => {
                    get_e2e.push(s.e2e_ms);
                    get_read.push(s.service_ms);
                }
            }
        }
        SloReport {
            put_e2e: TierSlo::from_values("put e2e", &put_e2e),
            put_wal: TierSlo::from_values("put wal", &put_wal),
            put_repl: TierSlo::from_values("put repl", &put_repl),
            get_e2e: TierSlo::from_values("get e2e", &get_e2e),
            get_read: TierSlo::from_values("get read", &get_read),
        }
    }

    /// The SLO table, header included.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<14} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
            "tier (ms)", "count", "p50", "p99", "p999", "max"
        ));
        for t in self.tiers() {
            t.render_row(&mut out);
        }
        out
    }

    /// All tiers, table order.
    pub fn tiers(&self) -> [&TierSlo; 5] {
        [
            &self.put_e2e,
            &self.put_wal,
            &self.put_repl,
            &self.get_e2e,
            &self.get_read,
        ]
    }

    /// Export every sample into `reg` as latency histograms plus
    /// per-tier counters (`cluster.put_e2e_ms`, …).
    pub fn export(samples: &[ReqSample], reg: &mut Registry) {
        for s in samples {
            match s.kind {
                ReqKind::Put => {
                    reg.add("cluster.puts", 1);
                    reg.observe_ms("cluster.put_e2e_ms", s.e2e_ms);
                    reg.observe_ms("cluster.put_wal_ms", s.service_ms);
                    reg.observe_ms("cluster.put_repl_ms", s.repl_ms);
                }
                ReqKind::Get => {
                    reg.add("cluster.gets", 1);
                    reg.observe_ms("cluster.get_e2e_ms", s.e2e_ms);
                    reg.observe_ms("cluster.get_read_ms", s.service_ms);
                }
            }
        }
    }
}

/// Samples whose *arrival* falls in `[from_s, to_s)` — phase analysis
/// for before/during/after flash-crowd comparisons.
pub fn samples_between(samples: &[ReqSample], from_s: f64, to_s: f64) -> Vec<ReqSample> {
    samples
        .iter()
        .filter(|s| {
            let t = s.arrival.as_secs_f64();
            t >= from_s && t < to_s
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimTime;

    fn sample(kind: ReqKind, arrival_s: f64, e2e: f64) -> ReqSample {
        ReqSample {
            req: 0,
            shard: 0,
            kind,
            arrival: SimTime::from_nanos((arrival_s * 1e9) as u64),
            done: SimTime::ZERO,
            e2e_ms: e2e,
            service_ms: e2e / 2.0,
            repl_ms: e2e / 4.0,
        }
    }

    #[test]
    fn tiers_split_by_kind_and_percentiles_are_ordered() {
        let samples: Vec<ReqSample> = (0..1000)
            .map(|i| {
                let kind = if i % 2 == 0 {
                    ReqKind::Put
                } else {
                    ReqKind::Get
                };
                sample(kind, i as f64 / 100.0, 1.0 + i as f64 / 10.0)
            })
            .collect();
        let slo = SloReport::compute(&samples);
        assert_eq!(slo.put_e2e.count, 500);
        assert_eq!(slo.get_e2e.count, 500);
        for t in slo.tiers() {
            assert!(
                t.p50 <= t.p99 && t.p99 <= t.p999 && t.p999 <= t.max,
                "{t:?}"
            );
        }
    }

    #[test]
    fn phase_filter_is_half_open_on_arrival() {
        let samples = vec![
            sample(ReqKind::Put, 0.5, 1.0),
            sample(ReqKind::Put, 1.0, 1.0),
            sample(ReqKind::Put, 2.0, 1.0),
        ];
        assert_eq!(samples_between(&samples, 1.0, 2.0).len(), 1);
    }

    #[test]
    fn export_counts_and_histograms() {
        let samples = vec![
            sample(ReqKind::Put, 0.0, 4.0),
            sample(ReqKind::Get, 0.0, 2.0),
            sample(ReqKind::Get, 0.0, 3.0),
        ];
        let mut reg = Registry::new();
        SloReport::export(&samples, &mut reg);
        assert_eq!(reg.counter("cluster.puts"), 1);
        assert_eq!(reg.counter("cluster.gets"), 2);
        assert_eq!(reg.histogram("cluster.get_e2e_ms").unwrap().count(), 2);
    }
}
