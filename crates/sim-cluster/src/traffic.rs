//! Open-loop traffic plane: seeded arrival processes generating client
//! load against the fleet.
//!
//! All three processes are non-homogeneous Poisson processes sampled by
//! Lewis–Shedler thinning: candidate arrivals are drawn from a
//! homogeneous process at the envelope rate (the maximum of the rate
//! function) and accepted with probability `rate(t) / envelope`. The
//! generator is fully determined by its seed, so the coordinator can
//! pre-schedule arrivals without any feedback from the fleet — the
//! open-loop property that lets the parallel executor inject traffic at
//! window barriers without causality constraints.

use sim_core::{SimDuration, SimRng, SimTime};

/// An arrival process shape. Rates are requests per second *per
/// replication group* (each group has one leader taking puts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKind {
    /// Homogeneous Poisson at `rate` req/s.
    Poisson {
        /// Mean arrival rate, req/s.
        rate: f64,
    },
    /// Sinusoidal day/night swing: `rate * (1 + amplitude*sin(2πt/period))`.
    Diurnal {
        /// Mean arrival rate, req/s.
        rate: f64,
        /// Relative swing in `[0, 1]`.
        amplitude: f64,
        /// One simulated "day".
        period: SimDuration,
    },
    /// Poisson at `base` with a multiplicative crowd that ramps to
    /// `peak`× over `ramp`, holds for `hold`, and decays back over
    /// `decay`.
    FlashCrowd {
        /// Baseline rate, req/s.
        base: f64,
        /// Peak multiplier (`5.0` = a 5× crowd).
        peak: f64,
        /// When the crowd starts.
        start: SimTime,
        /// Linear ramp-up duration.
        ramp: SimDuration,
        /// Time spent at the peak.
        hold: SimDuration,
        /// Linear decay duration.
        decay: SimDuration,
    },
}

impl ArrivalKind {
    /// The instantaneous rate at `t`, req/s.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match *self {
            ArrivalKind::Poisson { rate } => rate,
            ArrivalKind::Diurnal {
                rate,
                amplitude,
                period,
            } => {
                let phase = t.as_secs_f64() / period.as_secs_f64().max(1e-9);
                rate * (1.0 + amplitude * (2.0 * std::f64::consts::PI * phase).sin())
            }
            ArrivalKind::FlashCrowd {
                base,
                peak,
                start,
                ramp,
                hold,
                decay,
            } => {
                let t = t.as_secs_f64();
                let s = start.as_secs_f64();
                let (r, h, d) = (ramp.as_secs_f64(), hold.as_secs_f64(), decay.as_secs_f64());
                let mult = if t < s {
                    1.0
                } else if t < s + r {
                    1.0 + (peak - 1.0) * (t - s) / r.max(1e-9)
                } else if t < s + r + h {
                    peak
                } else if t < s + r + h + d {
                    peak - (peak - 1.0) * (t - s - r - h) / d.max(1e-9)
                } else {
                    1.0
                };
                base * mult
            }
        }
    }

    /// An upper bound on `rate_at` over all time (the thinning envelope).
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalKind::Poisson { rate } => rate,
            ArrivalKind::Diurnal {
                rate, amplitude, ..
            } => rate * (1.0 + amplitude.abs()),
            ArrivalKind::FlashCrowd { base, peak, .. } => base * peak.max(1.0),
        }
    }

    /// Scale every rate by `k` (the runner's `--rate` override).
    pub fn scaled(self, k: f64) -> ArrivalKind {
        match self {
            ArrivalKind::Poisson { rate } => ArrivalKind::Poisson { rate: rate * k },
            ArrivalKind::Diurnal {
                rate,
                amplitude,
                period,
            } => ArrivalKind::Diurnal {
                rate: rate * k,
                amplitude,
                period,
            },
            ArrivalKind::FlashCrowd {
                base,
                peak,
                start,
                ramp,
                hold,
                decay,
            } => ArrivalKind::FlashCrowd {
                base: base * k,
                peak,
                start,
                ramp,
                hold,
                decay,
            },
        }
    }

    /// CLI name for the runner.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalKind::Poisson { .. } => "poisson",
            ArrivalKind::Diurnal { .. } => "diurnal",
            ArrivalKind::FlashCrowd { .. } => "flash",
        }
    }

    /// Parse a runner `--arrival` name into a default-shaped process at
    /// `rate` req/s per group.
    pub fn parse(name: &str, rate: f64) -> Option<ArrivalKind> {
        Some(match name {
            "poisson" => ArrivalKind::Poisson { rate },
            "diurnal" => ArrivalKind::Diurnal {
                rate,
                amplitude: 0.6,
                period: SimDuration::from_secs(8),
            },
            "flash" => ArrivalKind::FlashCrowd {
                base: rate,
                peak: 5.0,
                start: SimTime::from_nanos(3 * 1_000_000_000),
                ramp: SimDuration::from_millis(500),
                hold: SimDuration::from_secs(3),
                decay: SimDuration::from_secs(1),
            },
            _ => return None,
        })
    }
}

/// A seeded arrival stream: monotone non-decreasing arrival times.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    kind: ArrivalKind,
    rng: SimRng,
    /// Current time along the candidate process, seconds.
    t: f64,
    envelope: f64,
}

impl ArrivalGen {
    /// A generator fully determined by `(kind, seed)`.
    pub fn new(kind: ArrivalKind, seed: u64) -> Self {
        ArrivalGen {
            kind,
            rng: SimRng::seed_from_u64(seed),
            t: 0.0,
            envelope: kind.peak_rate().max(1e-9),
        }
    }

    /// The next arrival time (Lewis–Shedler thinning).
    pub fn next_arrival(&mut self) -> SimTime {
        loop {
            // Exponential gap at the envelope rate. `gen_f64` is in
            // [0, 1); flip to (0, 1] so ln() never sees zero.
            let u = 1.0 - self.rng.gen_f64();
            self.t += -u.ln() / self.envelope;
            let accept = self.rng.gen_f64();
            let candidate = SimTime::from_nanos((self.t * 1e9) as u64);
            if accept * self.envelope <= self.kind.rate_at(candidate) {
                return candidate;
            }
        }
    }

    /// Every arrival in `[0, duration)` — the full open-loop schedule.
    pub fn schedule(kind: ArrivalKind, seed: u64, duration: SimDuration) -> Vec<SimTime> {
        let mut g = ArrivalGen::new(kind, seed);
        let end = SimTime::ZERO + duration;
        let mut out = Vec::new();
        loop {
            let t = g.next_arrival();
            if t >= end {
                return out;
            }
            out.push(t);
        }
    }
}

/// The coordinator-side traffic source: one arrival stream per
/// replication group, turned into client [`Envelope`]s. Entirely
/// open-loop — nothing the fleet does feeds back into it — which is why
/// the parallel executor can inject arrivals at window barriers without
/// any causality constraint.
pub(crate) struct Traffic {
    groups: Vec<GroupTraffic>,
    net: sim_apps::net::NetConfig,
    read_fraction: f64,
    topo: crate::Topology,
    wal_bytes: u64,
}

struct GroupTraffic {
    gen: ArrivalGen,
    /// Request-kind and replica-choice draws, a separate stream so the
    /// arrival schedule itself stays comparable across read fractions.
    rng: SimRng,
    seq: u64,
    /// Next arrival not yet handed out.
    pending: Option<crate::shard::Envelope>,
}

impl Traffic {
    pub(crate) fn new(cfg: &crate::ClusterConfig) -> Traffic {
        let topo = crate::Topology::new(cfg.kernels, cfg.replication);
        let groups = (0..topo.groups())
            .map(|g| GroupTraffic {
                gen: ArrivalGen::new(cfg.arrival, sim_core::stream_seed(cfg.seed, g as u64)),
                rng: SimRng::stream(cfg.seed, 0x7AFF_0000 + g as u64),
                seq: 0,
                pending: None,
            })
            .collect();
        Traffic {
            groups,
            net: cfg.net,
            read_fraction: cfg.read_fraction,
            topo,
            wal_bytes: cfg.wal_bytes,
        }
    }

    /// Hand every envelope delivering at or before `until` to `push`,
    /// groups in index order. Called once per window, one window ahead
    /// of the shards.
    pub(crate) fn pull_into(
        &mut self,
        until: SimTime,
        push: &mut dyn FnMut(crate::shard::Envelope),
    ) {
        use crate::shard::{Envelope, Payload, ReqKind};
        for g in 0..self.groups.len() {
            loop {
                if self.groups[g].pending.is_none() {
                    let gt = &mut self.groups[g];
                    let arrival = gt.gen.next_arrival();
                    let req = ((g as u64) << 40) | gt.seq;
                    gt.seq += 1;
                    let is_get = gt.rng.gen_bool(self.read_fraction);
                    let (kind, bytes) = if is_get {
                        (ReqKind::Get, 64)
                    } else {
                        (ReqKind::Put, self.wal_bytes)
                    };
                    let members = self.topo.members(g);
                    let to = if is_get {
                        let len = (members.end - members.start) as u64;
                        members.start + (gt.rng.next_u64() % len) as usize
                    } else {
                        self.topo.leader(g)
                    };
                    self.groups[g].pending = Some(Envelope {
                        to,
                        deliver_at: self.net.client_deliver_at(arrival, bytes),
                        payload: Payload::Request { req, kind, arrival },
                    });
                }
                let deliver = self.groups[g].pending.as_ref().unwrap().deliver_at;
                if deliver > until {
                    break;
                }
                push(self.groups[g].pending.take().unwrap());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_in(schedule: &[SimTime], from_s: f64, to_s: f64) -> usize {
        schedule
            .iter()
            .filter(|t| {
                let s = t.as_secs_f64();
                s >= from_s && s < to_s
            })
            .count()
    }

    #[test]
    fn same_seed_same_schedule() {
        for kind in [
            ArrivalKind::Poisson { rate: 500.0 },
            ArrivalKind::parse("diurnal", 500.0).unwrap(),
            ArrivalKind::parse("flash", 200.0).unwrap(),
        ] {
            let a = ArrivalGen::schedule(kind, 42, SimDuration::from_secs(5));
            let b = ArrivalGen::schedule(kind, 42, SimDuration::from_secs(5));
            assert_eq!(a, b, "{kind:?} must be seed-deterministic");
            let c = ArrivalGen::schedule(kind, 43, SimDuration::from_secs(5));
            assert_ne!(a, c, "{kind:?} must vary with the seed");
        }
    }

    #[test]
    fn arrivals_are_monotone_nondecreasing() {
        let s = ArrivalGen::schedule(
            ArrivalKind::parse("flash", 300.0).unwrap(),
            9,
            SimDuration::from_secs(10),
        );
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn poisson_mean_rate_property() {
        // 2000 req/s over 10 s → 20_000 expected, σ = √20000 ≈ 141.
        // A ±4σ band (±566) makes a seed-stable test that would still
        // catch a rate bug of even a few percent.
        let s = ArrivalGen::schedule(
            ArrivalKind::Poisson { rate: 2000.0 },
            7,
            SimDuration::from_secs(10),
        );
        let n = s.len() as f64;
        assert!(
            (n - 20_000.0).abs() < 566.0,
            "poisson count {n} too far from 20000"
        );
    }

    #[test]
    fn flash_crowd_peak_shape() {
        let kind = ArrivalKind::FlashCrowd {
            base: 1000.0,
            peak: 5.0,
            start: SimTime::from_nanos(4_000_000_000),
            ramp: SimDuration::from_secs(1),
            hold: SimDuration::from_secs(2),
            decay: SimDuration::from_secs(1),
        };
        let s = ArrivalGen::schedule(kind, 11, SimDuration::from_secs(10));
        // Before the crowd: ~1000/s over [0, 4).
        let before = count_in(&s, 0.0, 4.0) as f64 / 4.0;
        // Hold window [5, 7): ~5000/s.
        let during = count_in(&s, 5.0, 7.0) as f64 / 2.0;
        // After decay [8, 10): back to ~1000/s.
        let after = count_in(&s, 8.0, 10.0) as f64 / 2.0;
        assert!(
            (before - 1000.0).abs() < 150.0,
            "pre-crowd rate {before} should be ~1000/s"
        );
        assert!(
            (during - 5000.0).abs() < 400.0,
            "hold rate {during} should be ~5000/s"
        );
        assert!(
            (after - 1000.0).abs() < 150.0,
            "post-crowd rate {after} should be ~1000/s"
        );
        assert!(during > 4.0 * before, "the crowd must actually peak");
    }

    #[test]
    fn diurnal_swings_around_the_mean() {
        let kind = ArrivalKind::Diurnal {
            rate: 1000.0,
            amplitude: 0.8,
            period: SimDuration::from_secs(8),
        };
        let s = ArrivalGen::schedule(kind, 3, SimDuration::from_secs(8));
        // First half-period is the positive lobe of the sine, the second
        // the negative: their counts must straddle the mean.
        let peak_half = count_in(&s, 0.0, 4.0) as f64 / 4.0;
        let trough_half = count_in(&s, 4.0, 8.0) as f64 / 4.0;
        assert!(peak_half > 1200.0, "peak half {peak_half} should be >mean");
        assert!(
            trough_half < 800.0,
            "trough half {trough_half} should be <mean"
        );
    }

    #[test]
    fn parse_rejects_unknown_names() {
        assert!(ArrivalKind::parse("poisson", 10.0).is_some());
        assert!(ArrivalKind::parse("bursty", 10.0).is_none());
    }
}
