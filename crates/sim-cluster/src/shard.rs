//! One shard: a full simulated kernel (its own calendar-wheel event
//! queue inside a [`World`]) plus the KV/log server state machine that
//! runs on it.
//!
//! A shard is deliberately **not** `Send`: worlds hold `Rc`-based app
//! state and tracers. The parallel executor therefore constructs each
//! shard *on* the worker thread that owns it and never moves it; only
//! plain-data [`Envelope`]s cross threads, at window barriers.
//!
//! ## Request protocol (commit-on-quorum-fsync, minidb-style WAL)
//!
//! A `Put` arriving at a group's leader is forwarded to the followers
//! immediately (`Replicate`), then queued for a local handler which
//! appends to the WAL (`write` + `fsync`). Followers do the same append
//! and answer `RepAck`. The put commits when the leader's own WAL fsync
//! has completed *and* `quorum - 1` acks are in. A `Get` is routed to a
//! deterministic replica and served by one read syscall against the
//! shard's DB file. Handlers are a fixed pool of external processes —
//! the server's concurrency limit — so a flash crowd queues requests
//! exactly like a saturated thread pool would.

use std::collections::{HashMap, VecDeque};

use sim_apps::net::NetConfig;
use sim_block::IoPrio;
use sim_core::{stream_seed, FileId, KernelId, Pid, SimTime, PAGE_SIZE};
use sim_kernel::{AppEvent, InjectTarget, World};
use sim_workloads::PacedWriter;
use split_core::{SchedAttr, SyscallKind};

use crate::{ClusterConfig, ClusterSched, Topology};

/// Payload of a cross-shard (or client-to-shard) message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// A client request entering the fleet.
    Request {
        /// Fleet-unique request id.
        req: u64,
        /// Put (replicated WAL append) or Get (replica read).
        kind: ReqKind,
        /// When the client sent it (for end-to-end latency).
        arrival: SimTime,
    },
    /// Leader → follower WAL replication.
    Replicate {
        /// The put being replicated.
        req: u64,
        /// Shard index to ack back to.
        leader: usize,
    },
    /// Follower → leader fsync acknowledgment.
    RepAck {
        /// The put being acked.
        req: u64,
    },
}

/// Request class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Replicated, durable write.
    Put,
    /// Point read at one replica.
    Get,
}

/// A message in flight between shards (plain data; the only thing that
/// crosses threads in the parallel executor).
#[derive(Debug, Clone, Copy)]
pub struct Envelope {
    /// Destination shard index.
    pub to: usize,
    /// Simulated delivery time (≥ send time + one network lookahead for
    /// shard-to-shard traffic, which is what makes windowed parallel
    /// execution conservative).
    pub deliver_at: SimTime,
    /// What is being delivered.
    pub payload: Payload,
}

/// One completed request, as recorded at the shard that finished it.
#[derive(Debug, Clone, Copy)]
pub struct ReqSample {
    /// Fleet-unique request id.
    pub req: u64,
    /// Shard that completed the request.
    pub shard: usize,
    /// Put or Get.
    pub kind: ReqKind,
    /// Client send time.
    pub arrival: SimTime,
    /// Commit / response time at the server.
    pub done: SimTime,
    /// End-to-end latency seen by the client (includes both network
    /// directions), milliseconds.
    pub e2e_ms: f64,
    /// Local service tier: WAL write+fsync at the leader, or the replica
    /// read for a get, milliseconds.
    pub service_ms: f64,
    /// Replication tier: time from local WAL durability to quorum,
    /// milliseconds (zero for gets and unreplicated groups).
    pub repl_ms: f64,
}

/// What a shard hands back to the coordinator when the run ends.
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// Completed requests in completion order.
    pub samples: Vec<ReqSample>,
    /// Events processed by this shard's queue.
    pub events: u64,
    /// Late schedules (must be zero; nonzero means the lookahead
    /// contract was violated).
    pub late: u64,
    /// Requests still in flight when the clock stopped.
    pub inflight: u64,
}

enum Role {
    Leader,
    Follower { leader: usize },
}

enum Job {
    Wal { req: u64, role: Role },
    Get { req: u64, arrival: SimTime },
}

enum Io {
    WalWrite {
        slot: usize,
        req: u64,
        leader: bool,
        follower_of: Option<usize>,
    },
    WalFsync {
        slot: usize,
        req: u64,
        leader: bool,
        follower_of: Option<usize>,
    },
    GetRead {
        slot: usize,
        req: u64,
        arrival: SimTime,
        started: SimTime,
    },
}

struct PutState {
    arrival: SimTime,
    service_start: Option<SimTime>,
    wal_done: Option<SimTime>,
    acks_left: usize,
}

/// A single shard of the fleet.
pub struct Shard {
    idx: usize,
    world: World,
    k: KernelId,
    net: NetConfig,
    followers: Vec<usize>,
    quorum: usize,
    wal_bytes: u64,
    get_bytes: u64,
    wal_file: FileId,
    wal_limit: u64,
    wal_off: u64,
    db_file: FileId,
    db_pages: u64,
    read_salt: u64,
    handlers: Vec<Pid>,
    free: Vec<usize>,
    queue: VecDeque<Job>,
    io: HashMap<u64, Io>,
    msgs: HashMap<u64, Payload>,
    puts: HashMap<u64, PutState>,
    next_token: u64,
    outbox: Vec<Envelope>,
    samples: Vec<ReqSample>,
}

impl Shard {
    /// Build shard `idx` of the fleet. Deterministic in `(cfg, idx)`
    /// alone, so a shard is identical whether it is built on the main
    /// thread (sequential mode) or a worker (parallel mode).
    pub fn new(cfg: &ClusterConfig, idx: usize) -> Shard {
        let topo = Topology::new(cfg.kernels, cfg.replication);
        let g = topo.group_of(idx);
        let members = topo.members(g);
        let leader = topo.leader(g);
        let followers = if idx == leader {
            members.clone().filter(|&m| m != leader).collect()
        } else {
            Vec::new()
        };
        let quorum = topo.quorum(g);

        let mut world = World::new();
        let k = world.add_kernel(
            cfg.kernel_config(idx),
            cfg.device.build(),
            cfg.sched.build(),
        );

        let wal_limit = 64 * 1024 * 1024;
        let wal_file = world.prealloc_file(k, wal_limit, true);
        let db_file = world.prealloc_file(k, cfg.db_bytes, false);
        let db_pages = (cfg.db_bytes / PAGE_SIZE).max(1);

        let handlers: Vec<Pid> = (0..cfg.handlers_per_shard.max(1))
            .map(|_| world.spawn_external(k))
            .collect();
        let free: Vec<usize> = (0..handlers.len()).rev().collect();

        // The batch tenant: a buffered random writer dirtying pages at
        // its own target rate. Split-Token caps it *below* that rate at
        // the source with tokens; CFQ can only deprioritize it at the
        // block level (idle class), which does nothing about async
        // writeback — the fig01 asymmetry, now fleet-wide.
        if let Some(bg) = cfg.background {
            let bg_file = world.prealloc_file(k, bg.file_bytes, false);
            let seed = stream_seed(cfg.seed, 0xB6_0000 + idx as u64);
            let pid = world.spawn(
                k,
                Box::new(PacedWriter::new(
                    bg_file,
                    bg.file_bytes,
                    bg.req_bytes,
                    bg.dirty_rate,
                    seed,
                )),
            );
            match cfg.sched {
                ClusterSched::SplitToken => {
                    world.configure(k, pid, SchedAttr::TokenRate(bg.rate_cap))
                }
                ClusterSched::Cfq => world.set_ioprio(k, pid, IoPrio::idle()),
            }
        }

        Shard {
            idx,
            world,
            k,
            net: cfg.net,
            followers,
            quorum,
            wal_bytes: cfg.wal_bytes.max(1),
            get_bytes: cfg.get_bytes.max(1),
            wal_file,
            wal_limit,
            wal_off: 0,
            db_file,
            db_pages,
            read_salt: stream_seed(cfg.seed, 0x6E7 + idx as u64),
            handlers,
            free,
            queue: VecDeque::new(),
            io: HashMap::new(),
            msgs: HashMap::new(),
            puts: HashMap::new(),
            next_token: 1,
            outbox: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// Accept a window's worth of envelopes: each becomes an app timer
    /// at its delivery time. The conservative executor guarantees every
    /// `deliver_at` is at or after this shard's clock.
    pub fn deliver(&mut self, inbox: Vec<Envelope>) {
        for env in inbox {
            let token = self.next_token;
            self.next_token += 1;
            self.msgs.insert(token, env.payload);
            self.world.schedule_app_timer(env.deliver_at, token);
        }
    }

    /// Advance this shard's clock to `end`, processing every local event
    /// and message delivery in the window. Cross-shard sends accumulate
    /// in the outbox.
    pub fn advance(&mut self, end: SimTime) {
        loop {
            let events = self.world.run_until_app_events(end);
            if events.is_empty() {
                return;
            }
            for ev in events {
                match ev {
                    AppEvent::Timer { token, now } => self.on_timer(token, now),
                    AppEvent::InjectedDone { token, now } => self.on_io(token, now),
                }
            }
        }
    }

    /// Take the cross-shard messages produced this window.
    pub fn take_outbox(&mut self) -> Vec<Envelope> {
        std::mem::take(&mut self.outbox)
    }

    /// Tear down into the plain-data result the coordinator aggregates.
    pub fn finish(self) -> ShardResult {
        ShardResult {
            samples: self.samples,
            events: self.world.events_processed(),
            late: self.world.late_schedules(),
            inflight: (self.puts.len() + self.queue.len() + self.io.len()) as u64,
        }
    }

    fn on_timer(&mut self, token: u64, now: SimTime) {
        let Some(msg) = self.msgs.remove(&token) else {
            return;
        };
        match msg {
            Payload::Request {
                req,
                kind: ReqKind::Put,
                arrival,
            } => {
                // Forward to followers right away; local WAL work queues
                // for a handler.
                self.puts.insert(
                    req,
                    PutState {
                        arrival,
                        service_start: None,
                        wal_done: None,
                        acks_left: self.quorum.saturating_sub(1),
                    },
                );
                let deliver_at = self.net.deliver_at(now, self.wal_bytes);
                for &f in &self.followers {
                    self.outbox.push(Envelope {
                        to: f,
                        deliver_at,
                        payload: Payload::Replicate {
                            req,
                            leader: self.idx,
                        },
                    });
                }
                self.queue.push_back(Job::Wal {
                    req,
                    role: Role::Leader,
                });
            }
            Payload::Request {
                req,
                kind: ReqKind::Get,
                arrival,
            } => {
                self.queue.push_back(Job::Get { req, arrival });
            }
            Payload::Replicate { req, leader } => {
                self.queue.push_back(Job::Wal {
                    req,
                    role: Role::Follower { leader },
                });
            }
            Payload::RepAck { req } => {
                if let Some(st) = self.puts.get_mut(&req) {
                    st.acks_left = st.acks_left.saturating_sub(1);
                    self.try_commit(req, now);
                }
            }
        }
        self.pump(now);
    }

    fn on_io(&mut self, token: u64, now: SimTime) {
        let Some(io) = self.io.remove(&token) else {
            return;
        };
        match io {
            Io::WalWrite {
                slot,
                req,
                leader,
                follower_of,
            } => {
                let tok = self.next_token;
                self.next_token += 1;
                self.io.insert(
                    tok,
                    Io::WalFsync {
                        slot,
                        req,
                        leader,
                        follower_of,
                    },
                );
                self.world.inject(
                    self.k,
                    self.handlers[slot],
                    SyscallKind::Fsync {
                        file: self.wal_file,
                    },
                    InjectTarget::App { token: tok },
                );
            }
            Io::WalFsync {
                slot,
                req,
                leader,
                follower_of,
            } => {
                self.free.push(slot);
                if leader {
                    if let Some(st) = self.puts.get_mut(&req) {
                        st.wal_done = Some(now);
                    }
                    self.try_commit(req, now);
                } else if let Some(l) = follower_of {
                    self.outbox.push(Envelope {
                        to: l,
                        deliver_at: self.net.deliver_at(now, 64),
                        payload: Payload::RepAck { req },
                    });
                }
                self.pump(now);
            }
            Io::GetRead {
                slot,
                req,
                arrival,
                started,
            } => {
                self.free.push(slot);
                let e2e = now.since(arrival) + self.net.client_latency;
                self.samples.push(ReqSample {
                    req,
                    shard: self.idx,
                    kind: ReqKind::Get,
                    arrival,
                    done: now,
                    e2e_ms: e2e.as_millis_f64(),
                    service_ms: now.since(started).as_millis_f64(),
                    repl_ms: 0.0,
                });
                self.pump(now);
            }
        }
    }

    fn try_commit(&mut self, req: u64, now: SimTime) {
        let commit = matches!(self.puts.get(&req),
            Some(st) if st.acks_left == 0 && st.wal_done.is_some());
        if !commit {
            return;
        }
        let st = self.puts.remove(&req).unwrap();
        let wal_done = st.wal_done.unwrap();
        let service_start = st.service_start.unwrap_or(st.arrival);
        let e2e = now.since(st.arrival) + self.net.client_latency;
        self.samples.push(ReqSample {
            req,
            shard: self.idx,
            kind: ReqKind::Put,
            arrival: st.arrival,
            done: now,
            e2e_ms: e2e.as_millis_f64(),
            service_ms: wal_done.since(service_start).as_millis_f64(),
            repl_ms: now.since(wal_done).as_millis_f64(),
        });
    }

    fn pump(&mut self, now: SimTime) {
        while !self.queue.is_empty() && !self.free.is_empty() {
            let slot = self.free.pop().unwrap();
            let job = self.queue.pop_front().unwrap();
            match job {
                Job::Wal { req, role } => {
                    let (leader, follower_of) = match role {
                        Role::Leader => {
                            if let Some(st) = self.puts.get_mut(&req) {
                                st.service_start = Some(now);
                            }
                            (true, None)
                        }
                        Role::Follower { leader } => (false, Some(leader)),
                    };
                    // Wrap in the first half of the WAL file so
                    // offset + len never crosses the end.
                    let offset = self.wal_off;
                    self.wal_off = (self.wal_off + self.wal_bytes) % (self.wal_limit / 2);
                    let tok = self.next_token;
                    self.next_token += 1;
                    self.io.insert(
                        tok,
                        Io::WalWrite {
                            slot,
                            req,
                            leader,
                            follower_of,
                        },
                    );
                    self.world.inject(
                        self.k,
                        self.handlers[slot],
                        SyscallKind::Write {
                            file: self.wal_file,
                            offset,
                            len: self.wal_bytes,
                        },
                        InjectTarget::App { token: tok },
                    );
                }
                Job::Get { req, arrival } => {
                    let span = sim_core::pages_for_bytes(self.get_bytes);
                    let page = stream_seed(self.read_salt, req)
                        % self.db_pages.saturating_sub(span).max(1);
                    let tok = self.next_token;
                    self.next_token += 1;
                    self.io.insert(
                        tok,
                        Io::GetRead {
                            slot,
                            req,
                            arrival,
                            started: now,
                        },
                    );
                    self.world.inject(
                        self.k,
                        self.handlers[slot],
                        SyscallKind::Read {
                            file: self.db_file,
                            offset: page * PAGE_SIZE,
                            len: self.get_bytes,
                        },
                        InjectTarget::App { token: tok },
                    );
                }
            }
        }
    }
}
