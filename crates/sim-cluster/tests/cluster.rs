//! Fleet-level integration tests: the parallel executor is proven
//! byte-identical to the sequential fallback, the degenerate 1-shard
//! fleet works, and the replicated-commit SLO numbers are sane.

use sim_cluster::{run_cluster, ArrivalKind, ClusterConfig, ClusterSched, ReqKind};
use sim_core::{SimDuration, SimTime};

fn small_fleet(kernels: usize) -> ClusterConfig {
    ClusterConfig {
        kernels,
        duration: SimDuration::from_millis(400),
        arrival: ArrivalKind::Poisson { rate: 60.0 },
        ..Default::default()
    }
}

#[test]
fn parallel_is_byte_identical_to_sequential_on_64_kernels() {
    let cfg = small_fleet(64);
    let seq = run_cluster(&cfg, 1);
    let par = run_cluster(&cfg, 4);
    assert_eq!(
        seq.render(),
        par.render(),
        "jobs=4 must reproduce jobs=1 byte for byte"
    );
    // Beyond the rendered table: the raw sample streams must agree too.
    assert_eq!(seq.samples.len(), par.samples.len());
    for (a, b) in seq.samples.iter().zip(par.samples.iter()) {
        assert_eq!(a.req, b.req);
        assert_eq!(a.shard, b.shard);
        assert_eq!(a.done, b.done);
    }
    assert_eq!(seq.events, par.events);
    assert_eq!(seq.late, 0, "late schedule means the lookahead broke");
}

#[test]
fn worker_count_does_not_leak_into_output() {
    let cfg = small_fleet(9);
    let base = run_cluster(&cfg, 1).render();
    for jobs in [2, 3, 8, 16] {
        assert_eq!(base, run_cluster(&cfg, jobs).render(), "jobs={jobs}");
    }
}

#[test]
fn degenerate_single_shard_fleet_commits_locally() {
    let cfg = small_fleet(1);
    let report = run_cluster(&cfg, 1);
    assert_eq!(report.kernels, 1);
    assert_eq!(report.groups, 1);
    let puts: Vec<_> = report
        .samples
        .iter()
        .filter(|s| s.kind == ReqKind::Put)
        .collect();
    assert!(!puts.is_empty(), "single shard must still commit puts");
    for p in &puts {
        assert_eq!(
            p.repl_ms, 0.0,
            "quorum of one: commit is the local fsync, no replication wait"
        );
    }
}

#[test]
fn replicated_puts_wait_for_quorum() {
    let cfg = small_fleet(6);
    let report = run_cluster(&cfg, 1);
    assert_eq!(report.groups, 2);
    let puts: Vec<_> = report
        .samples
        .iter()
        .filter(|s| s.kind == ReqKind::Put)
        .collect();
    assert!(puts.len() > 10, "got {} puts", puts.len());
    // Commit is max(leader fsync, quorum ack): when the leader's own
    // fsync contends with the batch tenant it can land last (repl_ms =
    // 0), but some commits must be gated by the follower round trip.
    let rtt_ms = 2.0 * cfg.net.link_latency.as_millis_f64();
    let waited = puts.iter().filter(|p| p.repl_ms > 0.0).count();
    assert!(
        waited > 0,
        "no commit ever waited on replication across {} puts",
        puts.len()
    );
    for p in &puts {
        assert!(p.repl_ms >= 0.0);
        assert!(
            p.e2e_ms >= rtt_ms,
            "put committed faster than a network round trip: {:.3}ms",
            p.e2e_ms
        );
    }
}

#[test]
fn gets_and_puts_both_flow_and_slos_are_finite() {
    let cfg = small_fleet(3);
    let report = run_cluster(&cfg, 2);
    let gets = report
        .samples
        .iter()
        .filter(|s| s.kind == ReqKind::Get)
        .count();
    let puts = report.samples.len() - gets;
    assert!(gets > 0 && puts > 0, "gets={gets} puts={puts}");
    for tier in report.slo.tiers() {
        assert!(tier.p50.is_finite() && tier.max.is_finite(), "{tier:?}");
        assert!(tier.p50 <= tier.p99 && tier.p99 <= tier.max, "{tier:?}");
    }
    let reg = report.registry();
    assert_eq!(reg.counter("cluster.puts") as usize, puts);
    assert_eq!(reg.counter("cluster.gets") as usize, gets);
    assert_eq!(reg.counter("cluster.late_schedules"), 0);
}

#[test]
fn cfq_fleet_runs_and_stays_deterministic() {
    let cfg = ClusterConfig {
        sched: ClusterSched::Cfq,
        ..small_fleet(4)
    };
    assert_eq!(run_cluster(&cfg, 1).render(), run_cluster(&cfg, 3).render());
}

#[test]
fn flash_crowd_fleet_is_deterministic_across_jobs() {
    let cfg = ClusterConfig {
        arrival: ArrivalKind::FlashCrowd {
            base: 40.0,
            peak: 5.0,
            start: SimTime::from_nanos(100_000_000),
            ramp: SimDuration::from_millis(50),
            hold: SimDuration::from_millis(150),
            decay: SimDuration::from_millis(50),
        },
        ..small_fleet(8)
    };
    assert_eq!(run_cluster(&cfg, 1).render(), run_cluster(&cfg, 4).render());
}
