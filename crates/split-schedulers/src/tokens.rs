//! Token buckets shared by [`crate::SplitToken`] and [`crate::ScsToken`].
//!
//! Tokens are *normalized bytes* (sequential-equivalent). A bucket refills
//! at a fixed rate, is capped, and may go negative — negative balance is
//! debt that blocks further gated work until refill pays it off.

use std::collections::HashMap;

use sim_core::{Pid, SimDuration, SimTime};
use sim_trace::Tracer;

/// Identifies a bucket: by default each pid has its own; pids may be
/// joined into shared group buckets (VM instances, HDFS accounts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BucketId {
    /// A per-process bucket.
    Proc(Pid),
    /// A shared group bucket.
    Group(u32),
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    rate: f64, // bytes per second
    cap: f64,
    last_refill: SimTime,
}

impl Bucket {
    fn refill(&mut self, now: SimTime) {
        let dt = now.since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.cap);
    }
}

/// All buckets plus the pid → bucket mapping.
#[derive(Debug, Default)]
pub struct TokenBuckets {
    buckets: HashMap<BucketId, Bucket>,
    groups: HashMap<Pid, u32>,
}

impl TokenBuckets {
    /// Empty registry; unknown pids are unthrottled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Which bucket `pid` draws from.
    pub fn bucket_of(&self, pid: Pid) -> BucketId {
        match self.groups.get(&pid) {
            Some(&g) => BucketId::Group(g),
            None => BucketId::Proc(pid),
        }
    }

    /// Throttle `pid` (or its group) to `rate` bytes/second. Creates the
    /// bucket if needed; the default cap is one second of rate.
    pub fn set_rate(&mut self, pid: Pid, rate: u64, now: SimTime) {
        let id = self.bucket_of(pid);
        let fresh = !self.buckets.contains_key(&id);
        let b = self.buckets.entry(id).or_insert(Bucket {
            tokens: 0.0,
            rate: 0.0,
            cap: 0.0,
            last_refill: now,
        });
        b.refill(now);
        b.rate = rate as f64;
        if b.cap == 0.0 {
            b.cap = rate as f64;
        }
        if fresh {
            // A new bucket starts full (classic token-bucket semantics).
            b.tokens = b.cap;
        }
    }

    /// Set the cap on `pid`'s bucket.
    pub fn set_cap(&mut self, pid: Pid, cap: u64, now: SimTime) {
        let id = self.bucket_of(pid);
        if let Some(b) = self.buckets.get_mut(&id) {
            b.refill(now);
            b.cap = cap as f64;
            b.tokens = b.tokens.min(b.cap);
        }
    }

    /// Join `pid` to group `g`. The group bucket must then be configured
    /// via `set_rate` on any member.
    pub fn join_group(&mut self, pid: Pid, g: u32) {
        self.groups.insert(pid, g);
    }

    /// Remove any throttle from `pid`'s bucket binding.
    pub fn unthrottle(&mut self, pid: Pid) {
        let id = self.bucket_of(pid);
        self.buckets.remove(&id);
        self.groups.remove(&pid);
    }

    /// Whether `pid` is subject to throttling at all.
    pub fn is_throttled(&self, pid: Pid) -> bool {
        self.buckets.contains_key(&self.bucket_of(pid))
    }

    /// Charge `cost` normalized bytes to `pid`'s bucket (no-op when
    /// unthrottled). Balance may go negative.
    pub fn charge(&mut self, pid: Pid, cost: f64, now: SimTime) {
        let id = self.bucket_of(pid);
        if let Some(b) = self.buckets.get_mut(&id) {
            b.refill(now);
            b.tokens -= cost;
        }
    }

    /// Refund `cost` (revision in the caller's favour).
    pub fn refund(&mut self, pid: Pid, cost: f64, now: SimTime) {
        let id = self.bucket_of(pid);
        if let Some(b) = self.buckets.get_mut(&id) {
            b.refill(now);
            b.tokens = (b.tokens + cost).min(b.cap);
        }
    }

    /// Current balance (after refill); `None` when unthrottled.
    pub fn balance(&mut self, pid: Pid, now: SimTime) -> Option<f64> {
        let id = self.bucket_of(pid);
        let b = self.buckets.get_mut(&id)?;
        b.refill(now);
        Some(b.tokens)
    }

    /// Whether `pid` may proceed (unthrottled or non-negative balance).
    pub fn may_proceed(&mut self, pid: Pid, now: SimTime) -> bool {
        self.balance(pid, now).is_none_or(|t| t >= 0.0)
    }

    /// Sample every bucket's balance into `tracer` as a `sched.tokens/<key>`
    /// gauge: per-process buckets key by pid, group buckets by `2^32 + g`
    /// (pids are 32-bit, so the ranges can't collide). No-op when tracing
    /// is off; iteration is in sorted bucket order for determinism.
    pub fn sample(&mut self, tracer: &Tracer, now: SimTime) {
        if !tracer.enabled() {
            return;
        }
        let mut ids: Vec<BucketId> = self.buckets.keys().copied().collect();
        ids.sort();
        for id in ids {
            let key = match id {
                BucketId::Proc(p) => p.raw() as u64,
                BucketId::Group(g) => (1u64 << 32) + g as u64,
            };
            let b = self.buckets.get_mut(&id).expect("bucket just listed");
            b.refill(now);
            tracer.gauge_key("sched.tokens", key, now, b.tokens);
        }
    }

    /// Check every bucket's raw ledger fields for corruption: balances,
    /// rates and caps must all be finite, and rate/cap non-negative.
    /// Reads the fields as-is (no refill), so `&self` suffices and the
    /// check itself cannot perturb the accounting it inspects.
    pub fn audit(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let mut ids: Vec<BucketId> = self.buckets.keys().copied().collect();
        ids.sort();
        for id in ids {
            let b = &self.buckets[&id];
            if !b.tokens.is_finite() {
                bad.push(format!("tokens: bucket {id:?} balance is {}", b.tokens));
            }
            if !b.rate.is_finite() || b.rate < 0.0 {
                bad.push(format!("tokens: bucket {id:?} rate is {}", b.rate));
            }
            if !b.cap.is_finite() || b.cap < 0.0 {
                bad.push(format!("tokens: bucket {id:?} cap is {}", b.cap));
            }
        }
        bad
    }

    /// When `pid`'s bucket will next be non-negative (`None` if already,
    /// or if unthrottled, or if the rate is zero — then never).
    pub fn ready_at(&mut self, pid: Pid, now: SimTime) -> Option<SimTime> {
        let id = self.bucket_of(pid);
        let b = self.buckets.get_mut(&id)?;
        b.refill(now);
        if b.tokens >= 0.0 {
            return None;
        }
        if b.rate <= 0.0 {
            return Some(SimTime::MAX);
        }
        let secs = -b.tokens / b.rate;
        // Round up to at least a microsecond: returning `now` itself
        // (possible when the balance is an infinitesimal negative) would
        // let a dispatch loop retry at the same instant forever.
        let wait = SimDuration::from_secs_f64(secs).max(SimDuration::from_micros(1));
        Some(now + wait)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    #[test]
    fn unthrottled_pids_always_proceed() {
        let mut b = TokenBuckets::new();
        assert!(b.may_proceed(Pid(1), t(0)));
        b.charge(Pid(1), 1e12, t(0));
        assert!(b.may_proceed(Pid(1), t(0)));
        assert_eq!(b.balance(Pid(1), t(0)), None);
    }

    #[test]
    fn charge_refill_cycle() {
        let mut b = TokenBuckets::new();
        b.set_rate(Pid(1), 1_000_000, t(0)); // 1 MB/s
                                             // Starts full (1 MB); charge 3 MB → 2 s of debt.
        b.charge(Pid(1), 3e6, t(0));
        assert!(!b.may_proceed(Pid(1), t(0)));
        assert_eq!(b.ready_at(Pid(1), t(0)), Some(t(2)));
        assert!(b.may_proceed(Pid(1), t(2)));
        // Accumulation is capped (default cap = 1 s of rate).
        assert!(b.balance(Pid(1), t(100)).unwrap() <= 1e6 + 1.0);
    }

    #[test]
    fn groups_share_one_bucket() {
        let mut b = TokenBuckets::new();
        b.join_group(Pid(1), 7);
        b.join_group(Pid(2), 7);
        b.set_rate(Pid(1), 1_000_000, t(0));
        b.charge(Pid(1), 5e6, t(0));
        // Pid 2 shares the debt.
        assert!(!b.may_proceed(Pid(2), t(0)));
        assert_eq!(b.bucket_of(Pid(2)), BucketId::Group(7));
    }

    #[test]
    fn refund_respects_cap() {
        let mut b = TokenBuckets::new();
        b.set_rate(Pid(1), 1_000_000, t(0));
        b.refund(Pid(1), 10e6, t(0));
        assert!(b.balance(Pid(1), t(0)).unwrap() <= 1e6 + 1.0);
    }

    #[test]
    fn unthrottle_removes_debt() {
        let mut b = TokenBuckets::new();
        b.set_rate(Pid(1), 1000, t(0));
        b.charge(Pid(1), 1e9, t(0));
        b.unthrottle(Pid(1));
        assert!(b.may_proceed(Pid(1), t(0)));
    }

    #[test]
    fn zero_rate_debt_never_clears() {
        let mut b = TokenBuckets::new();
        b.set_rate(Pid(1), 0, t(0));
        b.charge(Pid(1), 1.0, t(0));
        assert_eq!(b.ready_at(Pid(1), t(0)), Some(SimTime::MAX));
    }

    #[test]
    fn buckets_start_full() {
        let mut b = TokenBuckets::new();
        b.set_rate(Pid(1), 1_000_000, t(0));
        assert!((b.balance(Pid(1), t(0)).unwrap() - 1e6).abs() < 1.0);
    }
}
