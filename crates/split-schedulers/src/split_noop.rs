//! A no-op scheduler implemented *in the split framework*: every hook is
//! wired up and does its bookkeeping, but all I/O is issued immediately in
//! FIFO order. Comparing it against the block-level no-op isolates the
//! framework's own overhead (Figure 9 / §4.3).

use std::collections::VecDeque;

use sim_block::{Dispatch, Request};
use split_core::{BufferDirtied, BufferFreed, Gate, IoSched, SchedCtx, SyscallInfo};

/// Split-framework no-op scheduler.
#[derive(Debug, Default)]
pub struct SplitNoop {
    fifo: VecDeque<Request>,
    /// Hook invocations observed, by level (syscall, memory, block).
    pub hook_counts: [u64; 3],
}

impl SplitNoop {
    /// A fresh instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IoSched for SplitNoop {
    fn name(&self) -> &'static str {
        "split-noop"
    }

    fn syscall_enter(&mut self, _sc: &SyscallInfo, _ctx: &mut SchedCtx<'_>) -> Gate {
        self.hook_counts[0] += 1;
        Gate::Proceed
    }

    fn syscall_exit(&mut self, _sc: &SyscallInfo, _ctx: &mut SchedCtx<'_>) {
        self.hook_counts[0] += 1;
    }

    fn buffer_dirtied(&mut self, _ev: &BufferDirtied, _ctx: &mut SchedCtx<'_>) {
        self.hook_counts[1] += 1;
    }

    fn buffer_freed(&mut self, _ev: &BufferFreed, _ctx: &mut SchedCtx<'_>) {
        self.hook_counts[1] += 1;
    }

    fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
        self.hook_counts[2] += 1;
        self.fifo.push_back(req);
        ctx.kick_dispatch();
    }

    fn block_dispatch(&mut self, _ctx: &mut SchedCtx<'_>) -> Dispatch {
        match self.fifo.pop_front() {
            Some(r) => Dispatch::Issue(r),
            None => Dispatch::Idle,
        }
    }

    fn block_completed(&mut self, _req: &Request, _ctx: &mut SchedCtx<'_>) {
        self.hook_counts[2] += 1;
    }

    fn queued(&self) -> usize {
        self.fifo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{BlockNo, CauseSet, Pid, RequestId, SimTime};
    use sim_device::{HddModel, IoDir};

    #[test]
    fn counts_hooks_and_issues_fifo() {
        let dev = HddModel::new();
        let mut s = SplitNoop::new();
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        for id in 1..=3u64 {
            s.block_add(
                Request {
                    id: RequestId(id),
                    dir: IoDir::Read,
                    start: BlockNo(1000 - id),
                    nblocks: 1,
                    submitter: Pid(1),
                    causes: CauseSet::empty(),
                    sync: true,
                    ioprio: Default::default(),
                    deadline: None,
                    submitted_at: SimTime::ZERO,
                    file: None,
                    kind: Default::default(),
                },
                &mut ctx,
            );
        }
        assert_eq!(s.hook_counts[2], 3);
        match s.block_dispatch(&mut ctx) {
            Dispatch::Issue(r) => assert_eq!(r.id, RequestId(1)),
            other => panic!("{other:?}"),
        }
    }
}
