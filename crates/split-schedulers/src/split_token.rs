//! Split-Token (§5.3): token-bucket throttling with two-phase accounting.
//!
//! * **Prompt charge** — the buffer-dirty hook charges a preliminary,
//!   offset-randomness-based estimate the moment data is dirtied, so a
//!   process cannot flood the write buffer for free (the Figure 1 failure).
//!   Overwrites of already-dirty buffers cost nothing — the flush work is
//!   unchanged (what SCS-Token gets wrong by 837×).
//! * **Revision** — when the file system flushes the data with real disk
//!   locations, the block-level hook replaces the estimate with the true
//!   normalized cost (charging more for fragmentation, refunding
//!   sequentiality).
//! * **Enforcement** — write-like syscalls and block-level *reads* of an
//!   indebted process are held; syscall reads are never gated (cache hits
//!   stay free) and block writes are never gated (journal entanglement,
//!   §3.3).

use std::collections::HashMap;
use std::fmt;

use sim_block::sorted::SortedQueue;
use sim_block::{Dispatch, ReqKind, Request};
use sim_core::{BlockNo, FileId, IoError, Pid, RequestId, SimDuration, SimTime};
use sim_device::IoDir;
use split_core::{BufferDirtied, BufferFreed, Gate, IoSched, SchedAttr, SchedCtx, SyscallInfo};

use crate::tokens::TokenBuckets;

/// Typed failure from the two-phase token account.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccountError {
    /// A reversal hit an account with no outstanding pages: the prompt
    /// charge it would reverse was never made (a duplicate free, or a
    /// revision racing a buffer drop). Dividing through the page count
    /// here used to produce 0/0 = NaN, which poisons every balance it is
    /// added to; the caller must refund nothing instead.
    ZeroPageAccount {
        /// File whose account was empty.
        file: FileId,
        /// Pages the caller tried to reverse.
        pages: u64,
    },
}

impl fmt::Display for AccountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccountError::ZeroPageAccount { file, pages } => write!(
                f,
                "reversal of {pages} page(s) against empty token account for file {}",
                file.0
            ),
        }
    }
}

impl std::error::Error for AccountError {}

/// Split-Token tunables.
#[derive(Debug, Clone, Copy)]
pub struct SplitTokenConfig {
    /// Maintenance tick while calls are held.
    pub tick: SimDuration,
    /// Reads served between write batches at the block level.
    pub read_batch: u32,
}

impl Default for SplitTokenConfig {
    fn default() -> Self {
        SplitTokenConfig {
            tick: SimDuration::from_millis(10),
            read_batch: 16,
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct PrelimOutstanding {
    norm_bytes: f64,
    pages: u64,
}

impl PrelimOutstanding {
    /// Reverse `pages` pages of outstanding prompt charge, returning the
    /// normalized bytes to hand back. An empty account cannot price a
    /// page, so the reversal is a typed error rather than a 0/0 division.
    fn reverse(&mut self, file: FileId, pages: u64) -> Result<f64, AccountError> {
        if pages == 0 {
            return Ok(0.0);
        }
        if self.pages == 0 {
            return Err(AccountError::ZeroPageAccount { file, pages });
        }
        let per_page = self.norm_bytes / self.pages as f64;
        let r = per_page * pages as f64;
        self.norm_bytes = (self.norm_bytes - r).max(0.0);
        self.pages = self.pages.saturating_sub(pages);
        Ok(r)
    }
}

/// The Split-Token scheduler.
pub struct SplitToken {
    cfg: SplitTokenConfig,
    buckets: TokenBuckets,
    /// Per-file last write offset (randomness guess).
    last_offset: HashMap<FileId, u64>,
    /// Outstanding preliminary charges per file, reversed at revision.
    prelim: HashMap<FileId, PrelimOutstanding>,
    /// Net tokens charged per in-flight request, reversed if it fails.
    charged: HashMap<RequestId, f64>,
    /// Account errors observed (reversals against empty accounts that
    /// would previously have produced NaN balances).
    account_errors: Vec<AccountError>,
    held: Vec<Pid>,
    // Block level: per-pid read queues (throttled pids are skipped),
    // one write queue (never throttled).
    reads: HashMap<Pid, (SortedQueue, BlockNo)>,
    writes: SortedQueue,
    write_pos: BlockNo,
    reads_in_batch: u32,
    rr_readers: Vec<Pid>,
    timer_armed: bool,
}

impl SplitToken {
    /// Split-Token with default tunables.
    pub fn new() -> Self {
        Self::with_config(SplitTokenConfig::default())
    }

    /// Explicit tunables.
    pub fn with_config(cfg: SplitTokenConfig) -> Self {
        SplitToken {
            cfg,
            buckets: TokenBuckets::new(),
            last_offset: HashMap::new(),
            prelim: HashMap::new(),
            charged: HashMap::new(),
            account_errors: Vec::new(),
            held: Vec::new(),
            reads: HashMap::new(),
            writes: SortedQueue::new(),
            write_pos: BlockNo(0),
            reads_in_batch: 0,
            rr_readers: Vec::new(),
            timer_armed: false,
        }
    }

    /// Direct bucket access (tests and experiments).
    pub fn buckets_mut(&mut self) -> &mut TokenBuckets {
        &mut self.buckets
    }

    /// Account errors seen so far (empty-account reversals, each of which
    /// was answered with a zero refund instead of a NaN charge).
    pub fn account_errors(&self) -> &[AccountError] {
        &self.account_errors
    }

    fn charge_causes(&mut self, req: &Request, norm: f64, now: SimTime) {
        let causes = if req.causes.is_empty() {
            // Untagged I/O (XFS log task): nobody is charged — exactly the
            // partial-integration gap of §6.
            return;
        } else {
            req.causes.clone()
        };
        for (pid, share) in causes.shares(norm) {
            self.buckets.charge(pid, share, now);
        }
    }

    fn arm_timer(&mut self, ctx: &mut SchedCtx<'_>) {
        if !self.timer_armed {
            self.timer_armed = true;
            ctx.set_timer(ctx.now + self.cfg.tick);
        }
    }

    fn maintenance(&mut self, ctx: &mut SchedCtx<'_>) {
        let now = ctx.now;
        let mut kept = Vec::new();
        for pid in std::mem::take(&mut self.held) {
            if self.buckets.may_proceed(pid, now) {
                ctx.wake(pid);
            } else {
                kept.push(pid);
            }
        }
        self.held = kept;
        if !self.held.is_empty() {
            self.arm_timer(ctx);
        }
        ctx.kick_dispatch();
    }
}

impl Default for SplitToken {
    fn default() -> Self {
        Self::new()
    }
}

impl IoSched for SplitToken {
    fn name(&self) -> &'static str {
        "split-token"
    }

    fn configure(&mut self, pid: Pid, attr: SchedAttr) {
        // Timers/wakes run via the maintenance pass after configure.
        let now = SimTime::ZERO;
        match attr {
            SchedAttr::TokenRate(rate) => self.buckets.set_rate(pid, rate, now),
            SchedAttr::TokenCap(cap) => self.buckets.set_cap(pid, cap, now),
            SchedAttr::TokenGroup(g) => self.buckets.join_group(pid, g),
            SchedAttr::Unthrottled => self.buckets.unthrottle(pid),
            _ => {}
        }
    }

    fn syscall_enter(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) -> Gate {
        if !sc.kind.is_write_like() {
            return Gate::Proceed; // reads are never gated (cache hits free)
        }
        if self.buckets.may_proceed(sc.pid, ctx.now) {
            return Gate::Proceed;
        }
        self.held.push(sc.pid);
        if let Some(at) = self.buckets.ready_at(sc.pid, ctx.now) {
            if at < SimTime::MAX {
                ctx.set_timer(at);
            }
        }
        self.arm_timer(ctx);
        Gate::Hold
    }

    fn buffer_dirtied(&mut self, ev: &BufferDirtied, ctx: &mut SchedCtx<'_>) {
        if ev.new_bytes == 0 {
            return; // overwrite: no new flush work, no charge
        }
        let offset = ev.page * sim_core::PAGE_SIZE;
        let sequential = self.last_offset.get(&ev.file) == Some(&offset);
        self.last_offset.insert(ev.file, offset + ev.new_bytes);
        let seek_equiv = if ctx.device.is_rotational() {
            0.008 * ctx.device.seq_bandwidth()
        } else {
            0.0002 * ctx.device.seq_bandwidth()
        };
        let norm = if sequential {
            ev.new_bytes as f64
        } else {
            ev.new_bytes as f64 + seek_equiv
        };
        for (pid, share) in ev.causes.shares(norm) {
            self.buckets.charge(pid, share, ctx.now);
        }
        self.buckets.sample(ctx.tracer(), ctx.now);
        let p = self.prelim.entry(ev.file).or_default();
        p.norm_bytes += norm;
        p.pages += 1;
    }

    fn buffer_freed(&mut self, ev: &BufferFreed, ctx: &mut SchedCtx<'_>) {
        // The write work evaporated: refund the preliminary charge.
        let pages = ev.bytes / sim_core::PAGE_SIZE;
        let refund = match self.prelim.get_mut(&ev.file) {
            Some(p) => match p.reverse(ev.file, pages) {
                Ok(r) => r,
                Err(e) => {
                    self.account_errors.push(e);
                    0.0
                }
            },
            None => 0.0,
        };
        if refund > 0.0 {
            for (pid, share) in ev.causes.shares(refund) {
                self.buckets.refund(pid, share, ctx.now);
            }
        }
    }

    fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
        match req.dir {
            IoDir::Read => {
                let pid = req.submitter;
                let q = self
                    .reads
                    .entry(pid)
                    .or_insert_with(|| (SortedQueue::new(), BlockNo(0)));
                q.0.insert(req);
                if !self.rr_readers.contains(&pid) {
                    self.rr_readers.push(pid);
                }
            }
            IoDir::Write => self.writes.insert(req),
        }
        ctx.kick_dispatch();
    }

    fn block_dispatch(&mut self, ctx: &mut SchedCtx<'_>) -> Dispatch {
        let now = ctx.now;
        // Reads first (they block callers), round-robin over pids whose
        // bucket allows it.
        if self.reads_in_batch < self.cfg.read_batch || self.writes.is_empty() {
            let n = self.rr_readers.len();
            for _ in 0..n {
                let pid = self.rr_readers.remove(0);
                let has_work = self
                    .reads
                    .get(&pid)
                    .map(|q| !q.0.is_empty())
                    .unwrap_or(false);
                if !has_work {
                    continue; // drops out; re-added on next request
                }
                self.rr_readers.push(pid);
                if !self.buckets.may_proceed(pid, now) {
                    continue; // throttled at the block level (§5.3)
                }
                // Queued-device plane: cap any one tenant to half the
                // hardware queue while a competitor has reads waiting, so
                // a burst cannot seize every NCQ slot. The in-flight
                // analogue of the token throttle; a no-op on the serial
                // plane (no occupancy view) and at depth 1.
                if let Some(occ) = ctx.occupancy() {
                    let cap = (occ.depth / 2).max(1);
                    if occ.depth > 1
                        && occ.of(pid) >= cap
                        && self.reads.iter().any(|(&p, q)| p != pid && !q.0.is_empty())
                    {
                        continue;
                    }
                }
                let q = self.reads.get_mut(&pid).expect("has work");
                let req = q.0.pop_cscan(q.1).expect("non-empty");
                q.1 = req.shape().end();
                let norm = ctx.device.peek_service_time(&req.shape()).as_secs_f64()
                    * ctx.device.seq_bandwidth();
                self.charge_causes(&req, norm, now);
                if !req.causes.is_empty() && norm != 0.0 {
                    self.charged.insert(req.id, norm);
                }
                self.reads_in_batch += 1;
                return Dispatch::Issue(req);
            }
        }
        // Writes are never throttled below the journal.
        self.reads_in_batch = 0;
        if let Some(req) = self.writes.pop_cscan(self.write_pos) {
            self.write_pos = req.shape().end();
            let real = ctx.device.peek_service_time(&req.shape()).as_secs_f64()
                * ctx.device.seq_bandwidth();
            let revised = if req.kind == ReqKind::Data {
                // Replace the preliminary estimate with the real cost.
                let reversal = match req.file {
                    Some(f) => match self.prelim.get_mut(&f).map(|p| p.reverse(f, req.nblocks)) {
                        Some(Ok(r)) => r,
                        Some(Err(e)) => {
                            self.account_errors.push(e);
                            0.0
                        }
                        None => 0.0,
                    },
                    None => 0.0,
                };
                real - reversal
            } else {
                // Journal / checkpoint: no estimate existed; charge fully.
                real
            };
            if revised >= 0.0 {
                self.charge_causes(&req, revised, now);
            } else if !req.causes.is_empty() {
                for (pid, share) in req.causes.shares(-revised) {
                    self.buckets.refund(pid, share, now);
                }
            }
            if !req.causes.is_empty() && revised != 0.0 {
                self.charged.insert(req.id, revised);
            }
            return Dispatch::Issue(req);
        }
        // Everything left is throttled reads: wait for the earliest refill.
        let mut earliest: Option<SimTime> = None;
        for (&pid, q) in &self.reads {
            if q.0.is_empty() {
                continue;
            }
            if let Some(at) = self.buckets.ready_at(pid, now) {
                if at < SimTime::MAX {
                    earliest = Some(earliest.map_or(at, |e| e.min(at)));
                }
            }
        }
        match earliest {
            Some(at) => Dispatch::WaitUntil(at),
            None => Dispatch::Idle,
        }
    }

    fn block_completed(&mut self, req: &Request, ctx: &mut SchedCtx<'_>) {
        self.charged.remove(&req.id);
        self.maintenance(ctx);
    }

    fn block_failed(&mut self, req: &Request, _error: IoError, ctx: &mut SchedCtx<'_>) {
        // The device never did the work: reverse whatever dispatch-time
        // accounting charged (or re-collect a dispatch-time refund), so a
        // failing workload is not also billed for it.
        if let Some(net) = self.charged.remove(&req.id) {
            if net > 0.0 {
                for (pid, share) in req.causes.shares(net) {
                    self.buckets.refund(pid, share, ctx.now);
                }
            } else {
                for (pid, share) in req.causes.shares(-net) {
                    self.buckets.charge(pid, share, ctx.now);
                }
            }
        }
        self.maintenance(ctx);
    }

    fn timer_fired(&mut self, ctx: &mut SchedCtx<'_>) {
        self.timer_armed = false;
        self.maintenance(ctx);
    }

    fn queued(&self) -> usize {
        self.writes.len() + self.reads.values().map(|q| q.0.len()).sum::<usize>()
    }

    fn audit(&self, quiesced: bool) -> Vec<String> {
        let mut bad = self.buckets.audit();
        let mut files: Vec<&FileId> = self.prelim.keys().collect();
        files.sort();
        for f in files {
            let p = &self.prelim[f];
            if !p.norm_bytes.is_finite() || p.norm_bytes < 0.0 {
                bad.push(format!(
                    "split-token: prelim account {f:?} holds {} normalized bytes",
                    p.norm_bytes
                ));
            }
            // An account with no pages left cannot carry a material charge:
            // its entire balance was priced per page.
            if p.pages == 0 && p.norm_bytes > 1e-6 {
                bad.push(format!(
                    "split-token: prelim account {f:?} has 0 pages but {} normalized bytes",
                    p.norm_bytes
                ));
            }
        }
        let mut ids: Vec<&RequestId> = self.charged.keys().collect();
        ids.sort();
        for id in ids {
            let net = self.charged[id];
            if !net.is_finite() {
                bad.push(format!("split-token: request {id:?} carries charge {net}"));
            }
        }
        // At quiescence every dispatch-time charge must have been settled
        // by block_completed or refunded by block_failed — a leftover entry
        // means charges minus refunds no longer equals dispatched cost.
        if quiesced && !self.charged.is_empty() {
            bad.push(format!(
                "split-token: {} unsettled dispatch charge(s) at quiescence",
                self.charged.len()
            ));
        }
        // `account_errors` are deliberately NOT violations: an empty-account
        // reversal is answered with a zero refund and recorded — the ledger
        // stays consistent, which is exactly what the checks above verify.
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{CauseSet, FileId, RequestId};
    use sim_device::HddModel;
    use split_core::SyscallKind;

    fn write_info(pid: u32) -> SyscallInfo {
        SyscallInfo {
            pid: Pid(pid),
            kind: SyscallKind::Write {
                file: FileId(1),
                offset: 0,
                len: 4096,
            },
            ioprio: Default::default(),
            cached: None,
        }
    }

    fn dirty(file: u64, page: u64, pid: u32, new_bytes: u64) -> BufferDirtied {
        BufferDirtied {
            file: FileId(file),
            page,
            causes: CauseSet::of(Pid(pid)),
            prev: if new_bytes == 0 {
                Some(CauseSet::of(Pid(pid)))
            } else {
                None
            },
            block: None,
            new_bytes,
        }
    }

    #[test]
    fn unthrottled_pids_never_hold() {
        let dev = HddModel::new();
        let mut s = SplitToken::new();
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        assert_eq!(s.syscall_enter(&write_info(1), &mut ctx), Gate::Proceed);
    }

    #[test]
    fn prompt_charge_gates_the_next_write() {
        let dev = HddModel::new();
        let mut s = SplitToken::new();
        s.configure(Pid(1), SchedAttr::TokenRate(1_000_000)); // 1 MB/s
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        // A random page costs ~8 ms × 110 MB/s ≈ 880 KB normalized.
        // Dirty several: debt.
        for i in 0..4 {
            s.buffer_dirtied(&dirty(1, i * 1000, 1, 4096), &mut ctx);
        }
        assert_eq!(s.syscall_enter(&write_info(1), &mut ctx), Gate::Hold);
    }

    #[test]
    fn overwrites_are_free() {
        let dev = HddModel::new();
        let mut s = SplitToken::new();
        s.configure(Pid(1), SchedAttr::TokenRate(1_000_000));
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        for _ in 0..10_000 {
            s.buffer_dirtied(&dirty(1, 0, 1, 0), &mut ctx);
        }
        assert_eq!(
            s.syscall_enter(&write_info(1), &mut ctx),
            Gate::Proceed,
            "re-dirtying the same buffer must not be charged"
        );
    }

    #[test]
    fn buffer_free_refunds() {
        let dev = HddModel::new();
        let mut s = SplitToken::new();
        s.configure(Pid(1), SchedAttr::TokenRate(1_000_000));
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        // Two scattered pages: ~1.7 MB normalized against a 1 MB bucket.
        s.buffer_dirtied(&dirty(1, 5000, 1, 4096), &mut ctx);
        s.buffer_dirtied(&dirty(1, 9000, 1, 4096), &mut ctx);
        let before = s.buckets.balance(Pid(1), SimTime::ZERO).unwrap();
        assert!(before < 0.0);
        s.buffer_freed(
            &BufferFreed {
                file: FileId(1),
                page: 5000,
                causes: CauseSet::of(Pid(1)),
                bytes: 4096,
            },
            &mut ctx,
        );
        let after = s.buckets.balance(Pid(1), SimTime::ZERO).unwrap();
        assert!(after > before, "deleted buffers refund tokens");
    }

    #[test]
    fn throttled_reads_skipped_at_block_level_but_writes_flow() {
        let dev = HddModel::new();
        let mut s = SplitToken::new();
        s.configure(Pid(1), SchedAttr::TokenRate(1000));
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        // Deep debt.
        s.buckets.charge(Pid(1), 1e9, SimTime::ZERO);
        let r = Request {
            id: RequestId(1),
            dir: IoDir::Read,
            start: BlockNo(100),
            nblocks: 1,
            submitter: Pid(1),
            causes: CauseSet::of(Pid(1)),
            sync: true,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: ReqKind::Data,
        };
        let w = Request {
            id: RequestId(2),
            dir: IoDir::Write,
            causes: CauseSet::of(Pid(1)),
            sync: false,
            ..r.clone()
        };
        s.block_add(r, &mut ctx);
        s.block_add(w, &mut ctx);
        // The write goes out despite the debt; the read waits.
        match s.block_dispatch(&mut ctx) {
            Dispatch::Issue(req) => assert_eq!(req.id, RequestId(2)),
            other => panic!("{other:?}"),
        }
        match s.block_dispatch(&mut ctx) {
            Dispatch::WaitUntil(_) => {}
            other => panic!("read should wait for refill: {other:?}"),
        }
        assert_eq!(s.queued(), 1);
    }

    #[test]
    fn zero_page_account_reversal_is_a_typed_error_not_nan() {
        let mut p = PrelimOutstanding::default();
        assert_eq!(
            p.reverse(FileId(7), 3),
            Err(AccountError::ZeroPageAccount {
                file: FileId(7),
                pages: 3
            })
        );
        // Reversing zero pages is a legitimate no-op even when empty.
        assert_eq!(p.reverse(FileId(7), 0), Ok(0.0));
        // And a populated account divides cleanly.
        p.norm_bytes = 8192.0;
        p.pages = 2;
        assert_eq!(p.reverse(FileId(7), 1), Ok(4096.0));
        assert_eq!(p.pages, 1);
    }

    #[test]
    fn freeing_never_charged_buffers_records_error_and_refunds_nothing() {
        let dev = HddModel::new();
        let mut s = SplitToken::new();
        s.configure(Pid(1), SchedAttr::TokenRate(1_000_000));
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        // Dirty one page of file 1, then free *two* pages: the account
        // empties on the first and the second reversal hits zero pages.
        s.buffer_dirtied(&dirty(1, 5000, 1, 4096), &mut ctx);
        let before = s.buckets.balance(Pid(1), SimTime::ZERO).unwrap();
        for _ in 0..2 {
            s.buffer_freed(
                &BufferFreed {
                    file: FileId(1),
                    page: 5000,
                    causes: CauseSet::of(Pid(1)),
                    bytes: 4096,
                },
                &mut ctx,
            );
        }
        let after = s.buckets.balance(Pid(1), SimTime::ZERO).unwrap();
        assert!(after.is_finite(), "NaN must never reach the bucket");
        assert!(after >= before, "the one real page was refunded");
        assert_eq!(s.account_errors().len(), 1);
        assert!(matches!(
            s.account_errors()[0],
            AccountError::ZeroPageAccount {
                file: FileId(1),
                pages: 1
            }
        ));
    }

    #[test]
    fn failed_requests_refund_the_dispatch_charge() {
        let dev = HddModel::new();
        let mut s = SplitToken::new();
        s.configure(Pid(1), SchedAttr::TokenRate(1_000_000));
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        let r = Request {
            id: RequestId(1),
            dir: IoDir::Read,
            start: BlockNo(100),
            nblocks: 8,
            submitter: Pid(1),
            causes: CauseSet::of(Pid(1)),
            sync: true,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: ReqKind::Data,
        };
        s.block_add(r, &mut ctx);
        let req = match s.block_dispatch(&mut ctx) {
            Dispatch::Issue(req) => req,
            other => panic!("{other:?}"),
        };
        let charged = s.buckets.balance(Pid(1), SimTime::ZERO).unwrap();
        s.block_failed(
            &req,
            sim_core::IoError::new(sim_core::IoErrorKind::TransientDevice),
            &mut ctx,
        );
        let refunded = s.buckets.balance(Pid(1), SimTime::ZERO).unwrap();
        assert!(
            refunded > charged,
            "failed I/O must hand the tokens back: {charged} -> {refunded}"
        );
    }

    #[test]
    fn occupancy_cap_skips_a_reader_holding_half_the_queue() {
        use split_core::QueueOccupancy;
        let dev = HddModel::new();
        let mut s = SplitToken::new();
        let rd = |id: u64, pid: u32, start: u64| Request {
            id: RequestId(id),
            dir: IoDir::Read,
            start: BlockNo(start),
            nblocks: 8,
            submitter: Pid(pid),
            causes: CauseSet::of(Pid(pid)),
            sync: true,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: ReqKind::Data,
        };
        // Pid 1 already holds half an 8-deep queue; pid 2 holds nothing
        // and has a read waiting, so pid 1 must be skipped.
        let occ = QueueOccupancy {
            depth: 8,
            in_flight: 4,
            staged: 0,
            per_pid: vec![(Pid(1), 4)],
        };
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev).with_occupancy(&occ);
        s.block_add(rd(1, 1, 100), &mut ctx);
        s.block_add(rd(2, 2, 900), &mut ctx);
        match s.block_dispatch(&mut ctx) {
            Dispatch::Issue(req) => assert_eq!(req.submitter, Pid(2), "capped pid skipped"),
            other => panic!("{other:?}"),
        }
        // With the competitor served, pid 1's turn comes even while it
        // holds its slots (no competitor with queued reads → no cap).
        match s.block_dispatch(&mut ctx) {
            Dispatch::Issue(req) => assert_eq!(req.submitter, Pid(1)),
            other => panic!("{other:?}"),
        }
        // Depth 1 never caps (that plane is byte-identical to serial).
        let shallow = QueueOccupancy {
            depth: 1,
            in_flight: 1,
            staged: 0,
            per_pid: vec![(Pid(1), 1)],
        };
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev).with_occupancy(&shallow);
        s.block_add(rd(3, 1, 200), &mut ctx);
        s.block_add(rd(4, 2, 1000), &mut ctx);
        let issued = match s.block_dispatch(&mut ctx) {
            Dispatch::Issue(req) => req,
            other => panic!("{other:?}"),
        };
        assert_eq!(issued.dir, IoDir::Read);
    }

    #[test]
    fn untagged_journal_io_charges_nobody() {
        let dev = HddModel::new();
        let mut s = SplitToken::new();
        s.configure(Pid(1), SchedAttr::TokenRate(1_000_000));
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        let w = Request {
            id: RequestId(1),
            dir: IoDir::Write,
            start: BlockNo(9999),
            nblocks: 64,
            submitter: Pid(50),
            causes: CauseSet::empty(), // XFS partial integration
            sync: true,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: ReqKind::Journal,
        };
        s.block_add(w, &mut ctx);
        let _ = s.block_dispatch(&mut ctx);
        assert!(
            s.buckets.balance(Pid(1), SimTime::ZERO).unwrap() >= 0.0,
            "no one was charged for untagged log I/O"
        );
    }
}
