//! Stride scheduling (Waldspurger & Weihl), the proportional-share core
//! of AFQ. Each client has a weight; consuming `cost` advances its pass by
//! `cost / weight`. The client with the smallest pass is served next, so
//! long-run service is proportional to weight.

use std::collections::HashMap;

use sim_core::Pid;

/// A set of stride-scheduled clients.
#[derive(Debug, Default)]
pub struct StrideSet {
    passes: HashMap<Pid, f64>,
    weights: HashMap<Pid, f64>,
    vtime: f64,
}

impl StrideSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a client's weight (tickets). Weight must be positive.
    pub fn set_weight(&mut self, pid: Pid, weight: f64) {
        debug_assert!(weight > 0.0);
        self.weights.insert(pid, weight.max(1e-9));
    }

    /// A client's weight (default 1.0).
    pub fn weight(&self, pid: Pid) -> f64 {
        self.weights.get(&pid).copied().unwrap_or(1.0)
    }

    /// Charge `cost` to `pid`: its pass advances by `cost / weight`.
    /// A first-time (or long-idle) client starts at the current virtual
    /// time so it cannot hoard credit.
    pub fn charge(&mut self, pid: Pid, cost: f64) {
        let w = self.weight(pid);
        let pass = self.passes.entry(pid).or_insert(self.vtime);
        *pass = pass.max(self.vtime) + cost / w;
    }

    /// A client's pass (activated at the current vtime if new).
    pub fn pass(&mut self, pid: Pid) -> f64 {
        let vt = self.vtime;
        *self.passes.entry(pid).or_insert(vt)
    }

    /// Advance the virtual time to the minimum pass among `active`
    /// clients (those with pending work). Idle clients do not hold the
    /// clock back.
    pub fn advance_vtime<'a>(&mut self, active: impl Iterator<Item = &'a Pid>) {
        let mut min: Option<f64> = None;
        for pid in active {
            let p = self.pass(*pid);
            min = Some(match min {
                Some(m) => m.min(p),
                None => p,
            });
        }
        if let Some(m) = min {
            self.vtime = self.vtime.max(m);
        }
    }

    /// Current virtual time.
    pub fn vtime(&self) -> f64 {
        self.vtime
    }

    /// Among `candidates`, the one with the smallest pass (ties broken by
    /// pid for determinism).
    pub fn pick_min<'a>(&mut self, candidates: impl Iterator<Item = &'a Pid>) -> Option<Pid> {
        let mut best: Option<(f64, Pid)> = None;
        for &pid in candidates {
            let p = self.pass(pid);
            let better = match best {
                None => true,
                Some((bp, bpid)) => p < bp || (p == bp && pid < bpid),
            };
            if better {
                best = Some((p, pid));
            }
        }
        best.map(|(_, pid)| pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_is_proportional_to_weight() {
        let mut s = StrideSet::new();
        s.set_weight(Pid(1), 4.0);
        s.set_weight(Pid(2), 1.0);
        let clients = [Pid(1), Pid(2)];
        let mut served = HashMap::new();
        for _ in 0..500 {
            let pick = s.pick_min(clients.iter()).unwrap();
            *served.entry(pick).or_insert(0u32) += 1;
            s.charge(pick, 1.0);
            s.advance_vtime(clients.iter());
        }
        let hi = served[&Pid(1)] as f64;
        let lo = served[&Pid(2)] as f64;
        let ratio = hi / lo;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn late_joiner_starts_at_vtime() {
        let mut s = StrideSet::new();
        s.set_weight(Pid(1), 1.0);
        for _ in 0..100 {
            s.charge(Pid(1), 1.0);
            s.advance_vtime([Pid(1)].iter());
        }
        // Pid 2 joins now; it must not have 100 units of credit.
        let p2 = s.pass(Pid(2));
        assert!(p2 >= 99.0, "joiner starts near vtime, got {p2}");
    }

    #[test]
    fn pick_min_is_deterministic_on_ties() {
        let mut s = StrideSet::new();
        let c = [Pid(3), Pid(1), Pid(2)];
        assert_eq!(s.pick_min(c.iter()), Some(Pid(1)));
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut s = StrideSet::new();
        assert_eq!(s.pick_min([].iter()), None);
    }
}
