//! Split-Deadline (§5.2): deadlines attached to the operations
//! applications actually wait on — fsyncs — instead of to block writes.
//!
//! * At the **memory level**, the scheduler tracks an estimated flush cost
//!   per file (buffer-dirty hook + the preliminary randomness model).
//! * At the **syscall level**, an fsync whose estimated cost would blow
//!   other processes' deadlines is *held*; the scheduler kicks
//!   asynchronous writeback of the file (no synchronization point) and
//!   admits the fsync once the remaining dirty cost fits.
//! * At the **block level**, reads carry deadlines (expired reads jump the
//!   sweep), fsync-critical sync writes are served promptly, and async
//!   writeback fills the gaps.
//!
//! With `manage_writeback` the scheduler also paces background writeback
//! itself (the kernel's pdflush is disabled), which removes the tail
//! latencies the paper attributes to untimely pdflush bursts (§7.1.2,
//! Figure 19).

use std::collections::{BTreeMap, HashMap, VecDeque};

use sim_block::sorted::SortedQueue;
use sim_block::{Dispatch, ReqKind, Request};
use sim_core::{BlockNo, FileId, Pid, RequestId, SimDuration, SimTime};
use sim_device::IoDir;
use split_core::{
    BufferDirtied, BufferFreed, Gate, IoSched, SchedAttr, SchedCtx, SyscallInfo, SyscallKind,
};

/// Split-Deadline tunables.
#[derive(Debug, Clone, Copy)]
pub struct SplitDeadlineConfig {
    /// Default fsync deadline for unconfigured processes.
    pub default_fsync_deadline: SimDuration,
    /// An fsync is admitted when its estimated flush cost is below this
    /// fraction of the smallest configured fsync deadline.
    pub admit_fraction: f64,
    /// Maintenance tick.
    pub tick: SimDuration,
    /// Whether the scheduler owns background writeback (pdflush off).
    pub manage_writeback: bool,
    /// When managing writeback: start flushing above this many dirty
    /// cost-seconds.
    pub wb_high_cost: f64,
    /// Pages per writeback kick.
    pub wb_batch: u64,
    /// Hold a process's write syscalls once *its own* outstanding flush
    /// cost (attributed through cause tags) exceeds this multiple of the
    /// fsync admit threshold — pacing bulk writers without punishing
    /// cheap sequential ones. The scheduler-owned-writeback mode paces
    /// tightly (1x); the Split-Pdflush variant only bounds how much a
    /// pdflush burst can flush at once, so it is coarser (§7.1.2).
    pub write_throttle_mult: f64,
    /// Reads served between async-write batches.
    pub read_batch: u32,
}

impl Default for SplitDeadlineConfig {
    fn default() -> Self {
        SplitDeadlineConfig {
            default_fsync_deadline: SimDuration::from_secs(1),
            admit_fraction: 0.5,
            tick: SimDuration::from_millis(20),
            manage_writeback: true,
            wb_high_cost: 0.25,
            wb_batch: 16,
            write_throttle_mult: 1.0,
            read_batch: 16,
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct FileCost {
    secs: f64,
    pages: u64,
}

impl FileCost {
    fn per_page(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.secs / self.pages as f64
        }
    }
}

#[derive(Debug)]
struct HeldFsync {
    pid: Pid,
    file: FileId,
    deadline: SimTime,
}

/// The Split-Deadline scheduler.
pub struct SplitDeadline {
    cfg: SplitDeadlineConfig,
    fsync_deadlines: HashMap<Pid, SimDuration>,
    /// Estimated flush cost per file, maintained from the buffer-dirty
    /// hook and drained as data writes reach the block level.
    file_cost: HashMap<FileId, FileCost>,
    /// Last written offset per file (randomness detection).
    last_offset: HashMap<FileId, u64>,
    /// Outstanding flush cost per cause (who put the backlog there).
    pid_cost: HashMap<Pid, f64>,
    held_fsyncs: Vec<HeldFsync>,
    held_writes: VecDeque<Pid>,
    // Block level.
    reads: SortedQueue,
    read_expiry: BTreeMap<(SimTime, RequestId), BlockNo>,
    read_pos: BlockNo,
    sync_writes: VecDeque<Request>,
    async_writes: SortedQueue,
    async_pos: BlockNo,
    reads_in_batch: u32,
    timer_armed: bool,
    seek_equiv_secs: f64,
}

impl SplitDeadline {
    /// Split-Deadline with default tunables (scheduler-owned writeback).
    pub fn new() -> Self {
        Self::with_config(SplitDeadlineConfig::default())
    }

    /// The Split-Pdflush variant of Figure 19: pdflush keeps running and
    /// the scheduler merely throttles writers.
    pub fn pdflush_variant() -> Self {
        Self::with_config(SplitDeadlineConfig {
            manage_writeback: false,
            write_throttle_mult: 4.0,
            ..Default::default()
        })
    }

    /// Explicit tunables.
    pub fn with_config(cfg: SplitDeadlineConfig) -> Self {
        SplitDeadline {
            cfg,
            fsync_deadlines: HashMap::new(),
            file_cost: HashMap::new(),
            last_offset: HashMap::new(),
            pid_cost: HashMap::new(),
            held_fsyncs: Vec::new(),
            held_writes: VecDeque::new(),
            reads: SortedQueue::new(),
            read_expiry: BTreeMap::new(),
            read_pos: BlockNo(0),
            sync_writes: VecDeque::new(),
            async_writes: SortedQueue::new(),
            async_pos: BlockNo(0),
            reads_in_batch: 0,
            timer_armed: false,
            seek_equiv_secs: 0.008,
        }
    }

    /// Whether the kernel's pdflush should run for this configuration.
    pub fn wants_pdflush(&self) -> bool {
        !self.cfg.manage_writeback
    }

    fn total_cost(&self) -> f64 {
        self.file_cost.values().map(|c| c.secs).sum()
    }

    fn min_deadline(&self) -> SimDuration {
        self.fsync_deadlines
            .values()
            .copied()
            .min()
            .unwrap_or(self.cfg.default_fsync_deadline)
    }

    fn admit_threshold(&self) -> f64 {
        self.min_deadline().as_secs_f64() * self.cfg.admit_fraction
    }

    /// Per-cause outstanding-cost budget above which a writer is held.
    fn write_throttle_cost(&self) -> f64 {
        self.admit_threshold() * self.cfg.write_throttle_mult
    }

    fn arm_timer(&mut self, ctx: &mut SchedCtx<'_>) {
        if !self.timer_armed {
            self.timer_armed = true;
            ctx.set_timer(ctx.now + self.cfg.tick);
        }
    }

    fn cost_of(&self, file: FileId) -> f64 {
        self.file_cost.get(&file).map(|c| c.secs).unwrap_or(0.0)
    }

    /// Data left the cache for the block layer: reduce the file's flush
    /// estimate and the responsible pids' attributed backlog.
    fn drain_estimate(&mut self, req: &Request) {
        if req.kind != ReqKind::Data {
            return;
        }
        let Some(file) = req.file else { return };
        let drained = if let Some(c) = self.file_cost.get_mut(&file) {
            let pp = c.per_page();
            let d = (pp * req.nblocks as f64).min(c.secs);
            c.secs -= d;
            c.pages = c.pages.saturating_sub(req.nblocks);
            d
        } else {
            0.0
        };
        if drained > 0.0 && !req.causes.is_empty() {
            for (pid, share) in req.causes.shares(drained) {
                if let Some(v) = self.pid_cost.get_mut(&pid) {
                    *v = (*v - share).max(0.0);
                }
            }
        }
    }

    /// Whether more background flushing should be requested: never build
    /// an async backlog larger than one kick — everything queued at the
    /// block level is data the next journal commit must wait for.
    fn wb_ready(&self) -> bool {
        self.async_writes.len() < self.cfg.wb_batch as usize
    }

    /// Re-examine held fsyncs and writes; admit what now fits.
    fn maintenance(&mut self, ctx: &mut SchedCtx<'_>) {
        // Held fsyncs: earliest deadline first.
        self.held_fsyncs.sort_by_key(|h| h.deadline);
        let threshold = self.admit_threshold();
        let mut kept = Vec::new();
        for h in std::mem::take(&mut self.held_fsyncs) {
            let cost = self.cost_of(h.file);
            // Admit when the remaining flush fits, or when the deadline
            // has grown so close that waiting longer cannot help.
            let deadline_pressure = ctx.now + SimDuration::from_secs_f64(cost) >= h.deadline;
            if cost <= threshold || deadline_pressure {
                ctx.wake(h.pid);
            } else {
                // Keep draining the file asynchronously (bounded backlog).
                if self.async_writes.len() < self.cfg.wb_batch as usize {
                    ctx.start_writeback(Some(h.file), self.cfg.wb_batch);
                }
                kept.push(h);
            }
        }
        self.held_fsyncs = kept;

        // Held writers: release those whose own backlog has drained.
        let mut still_held = VecDeque::new();
        while let Some(pid) = self.held_writes.pop_front() {
            if self.pid_cost.get(&pid).copied().unwrap_or(0.0) < self.write_throttle_cost() {
                ctx.wake(pid);
            } else {
                still_held.push_back(pid);
            }
        }
        self.held_writes = still_held;

        // Scheduler-owned background writeback, paced by the backlog.
        if self.cfg.manage_writeback && self.total_cost() > self.cfg.wb_high_cost && self.wb_ready()
        {
            ctx.start_writeback(None, self.cfg.wb_batch);
        }

        if !self.held_fsyncs.is_empty()
            || !self.held_writes.is_empty()
            || (self.cfg.manage_writeback && self.total_cost() > self.cfg.wb_high_cost)
        {
            self.arm_timer(ctx);
        }
    }
}

impl Default for SplitDeadline {
    fn default() -> Self {
        Self::new()
    }
}

impl IoSched for SplitDeadline {
    fn name(&self) -> &'static str {
        "split-deadline"
    }

    fn configure(&mut self, pid: Pid, attr: SchedAttr) {
        if let SchedAttr::FsyncDeadline(d) = attr {
            self.fsync_deadlines.insert(pid, d);
        }
        // Read deadlines ride on the requests themselves (the kernel
        // stamps them); nothing to store here.
    }

    fn syscall_enter(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) -> Gate {
        match sc.kind {
            SyscallKind::Fsync { file } => {
                let budget = self
                    .fsync_deadlines
                    .get(&sc.pid)
                    .copied()
                    .unwrap_or(self.cfg.default_fsync_deadline);
                let cost = self.cost_of(file);
                if cost <= self.admit_threshold() {
                    return Gate::Proceed;
                }
                // Too expensive: drain it asynchronously first (§5.2).
                if self.wb_ready() {
                    ctx.start_writeback(Some(file), self.cfg.wb_batch);
                }
                self.held_fsyncs.push(HeldFsync {
                    pid: sc.pid,
                    file,
                    deadline: ctx.now + budget,
                });
                self.arm_timer(ctx);
                Gate::Hold
            }
            SyscallKind::Write { .. } => {
                // Pace a writer once *its own* flush backlog would endanger
                // the shortest fsync deadline. A burst of buffered writes
                // entangles everyone's next fsync through ordered mode, so
                // admission control is the only defence — and the cause
                // tags say exactly whose backlog it is.
                let mine = self.pid_cost.get(&sc.pid).copied().unwrap_or(0.0);
                if mine > self.write_throttle_cost() {
                    self.held_writes.push_back(sc.pid);
                    if self.wb_ready() {
                        ctx.start_writeback(None, self.cfg.wb_batch);
                    }
                    self.arm_timer(ctx);
                    return Gate::Hold;
                }
                Gate::Proceed
            }
            _ => Gate::Proceed,
        }
    }

    fn buffer_dirtied(&mut self, ev: &BufferDirtied, ctx: &mut SchedCtx<'_>) {
        self.seek_equiv_secs = if ctx.device.is_rotational() {
            0.008
        } else {
            0.0002
        };
        if ev.new_bytes == 0 {
            return; // overwrite: flush work unchanged
        }
        self.arm_timer(ctx);
        let offset = ev.page * sim_core::PAGE_SIZE;
        let sequential = self.last_offset.get(&ev.file) == Some(&offset);
        self.last_offset.insert(ev.file, offset + ev.new_bytes);
        let transfer = ev.new_bytes as f64 / ctx.device.seq_bandwidth();
        let secs = if sequential {
            transfer
        } else {
            transfer + self.seek_equiv_secs
        };
        let c = self.file_cost.entry(ev.file).or_default();
        c.secs += secs;
        c.pages += 1;
        for (pid, share) in ev.causes.shares(secs) {
            *self.pid_cost.entry(pid).or_insert(0.0) += share;
        }
        if self.cfg.manage_writeback && self.total_cost() > self.cfg.wb_high_cost {
            ctx.start_writeback(None, self.cfg.wb_batch);
            self.arm_timer(ctx);
        }
    }

    fn buffer_freed(&mut self, ev: &BufferFreed, _ctx: &mut SchedCtx<'_>) {
        let pages = ev.bytes / sim_core::PAGE_SIZE;
        if let Some(c) = self.file_cost.get_mut(&ev.file) {
            let pp = c.per_page();
            c.secs = (c.secs - pp * pages as f64).max(0.0);
            c.pages = c.pages.saturating_sub(pages);
        }
    }

    fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
        match (req.dir, req.sync) {
            (IoDir::Read, _) => {
                let dl = req.deadline.unwrap_or(SimTime::MAX);
                self.read_expiry.insert((dl, req.id), req.start);
                self.reads.insert(req);
            }
            (IoDir::Write, true) => {
                self.drain_estimate(&req);
                self.sync_writes.push_back(req);
            }
            (IoDir::Write, false) => {
                self.drain_estimate(&req);
                self.async_writes.insert(req);
            }
        }
        ctx.kick_dispatch();
    }

    fn block_dispatch(&mut self, ctx: &mut SchedCtx<'_>) -> Dispatch {
        // 1. Expired read deadlines jump everything.
        if let Some((&(dl, id), &start)) = self.read_expiry.iter().next() {
            if dl <= ctx.now {
                self.read_expiry.remove(&(dl, id));
                if let Some(req) = self.reads.remove(start, id) {
                    self.read_pos = req.shape().end();
                    return Dispatch::Issue(req);
                }
            }
        }
        // 2. Sync writes (fsync data + journal) are the critical path.
        if let Some(req) = self.sync_writes.pop_front() {
            return Dispatch::Issue(req);
        }
        // 3. Reads, with a batch cap so async writeback is not starved.
        if self.reads_in_batch < self.cfg.read_batch || self.async_writes.is_empty() {
            if let Some(req) = self.reads.pop_cscan(self.read_pos) {
                self.read_expiry
                    .remove(&(req.deadline.unwrap_or(SimTime::MAX), req.id));
                self.read_pos = req.shape().end();
                self.reads_in_batch += 1;
                return Dispatch::Issue(req);
            }
        }
        // 4. Async writeback.
        self.reads_in_batch = 0;
        match self.async_writes.pop_cscan(self.async_pos) {
            Some(req) => {
                self.async_pos = req.shape().end();
                Dispatch::Issue(req)
            }
            None => Dispatch::Idle,
        }
    }

    fn block_completed(&mut self, _req: &Request, ctx: &mut SchedCtx<'_>) {
        self.maintenance(ctx);
    }

    fn timer_fired(&mut self, ctx: &mut SchedCtx<'_>) {
        self.timer_armed = false;
        self.maintenance(ctx);
        ctx.kick_dispatch();
    }

    fn queued(&self) -> usize {
        self.reads.len() + self.sync_writes.len() + self.async_writes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::CauseSet;
    use sim_device::HddModel;
    use split_core::SchedCmd;

    fn ctx_at(dev: &HddModel, ns: u64) -> SchedCtx<'_> {
        SchedCtx::new(SimTime::from_nanos(ns), dev)
    }

    fn fsync_info(pid: u32, file: u64) -> SyscallInfo {
        SyscallInfo {
            pid: Pid(pid),
            kind: SyscallKind::Fsync { file: FileId(file) },
            ioprio: Default::default(),
            cached: None,
        }
    }

    fn dirty(file: u64, page: u64) -> BufferDirtied {
        BufferDirtied {
            file: FileId(file),
            page,
            causes: CauseSet::of(Pid(9)),
            prev: None,
            block: None,
            new_bytes: sim_core::PAGE_SIZE,
        }
    }

    #[test]
    fn small_fsyncs_proceed_immediately() {
        let dev = HddModel::new();
        let mut s = SplitDeadline::new();
        let mut ctx = ctx_at(&dev, 0);
        // One sequentially-appended page: tiny cost.
        s.buffer_dirtied(&dirty(1, 0), &mut ctx);
        assert_eq!(s.syscall_enter(&fsync_info(1, 1), &mut ctx), Gate::Proceed);
    }

    #[test]
    fn expensive_fsyncs_are_held_and_drained() {
        let dev = HddModel::new();
        let mut s = SplitDeadline::new();
        s.configure(
            Pid(1),
            SchedAttr::FsyncDeadline(SimDuration::from_millis(100)),
        );
        let mut ctx = ctx_at(&dev, 0);
        // 200 scattered pages: ~1.6 s of estimated random-write cost.
        for i in 0..200 {
            s.buffer_dirtied(&dirty(2, i * 100), &mut ctx);
        }
        assert!(s.cost_of(FileId(2)) > 1.0);
        let g = s.syscall_enter(&fsync_info(1, 2), &mut ctx);
        assert_eq!(g, Gate::Hold);
        let cmds = ctx.drain();
        assert!(
            cmds.iter().any(|c| matches!(
                c,
                SchedCmd::StartWriteback { file: Some(f), .. } if *f == FileId(2)
            )),
            "must kick async writeback: {cmds:?}"
        );
    }

    #[test]
    fn draining_the_file_admits_the_fsync() {
        let dev = HddModel::new();
        let mut s = SplitDeadline::new();
        s.configure(
            Pid(1),
            SchedAttr::FsyncDeadline(SimDuration::from_millis(500)),
        );
        let mut ctx = ctx_at(&dev, 0);
        for i in 0..100 {
            s.buffer_dirtied(&dirty(3, i * 50), &mut ctx);
        }
        assert_eq!(s.syscall_enter(&fsync_info(1, 3), &mut ctx), Gate::Hold);
        // Async writeback submits the file's data to the block level,
        // draining the estimate.
        let req = Request {
            id: RequestId(1),
            dir: IoDir::Write,
            start: BlockNo(10),
            nblocks: 100,
            submitter: Pid(2),
            causes: CauseSet::of(Pid(9)),
            sync: false,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: Some(FileId(3)),
            kind: ReqKind::Data,
        };
        let mut ctx2 = ctx_at(&dev, 1000);
        s.block_add(req.clone(), &mut ctx2);
        s.block_completed(&req, &mut ctx2);
        let cmds = ctx2.drain();
        assert!(
            cmds.iter()
                .any(|c| matches!(c, SchedCmd::Wake(p) if *p == Pid(1))),
            "{cmds:?}"
        );
    }

    #[test]
    fn deadline_pressure_forces_admission() {
        let dev = HddModel::new();
        let mut s = SplitDeadline::new();
        s.configure(
            Pid(1),
            SchedAttr::FsyncDeadline(SimDuration::from_millis(50)),
        );
        let mut ctx = ctx_at(&dev, 0);
        for i in 0..500 {
            s.buffer_dirtied(&dirty(4, i * 100), &mut ctx);
        }
        assert_eq!(s.syscall_enter(&fsync_info(1, 4), &mut ctx), Gate::Hold);
        // Well past the deadline, maintenance stops waiting.
        let mut late = ctx_at(&dev, 10_000_000_000);
        s.timer_fired(&mut late);
        let cmds = late.drain();
        assert!(cmds
            .iter()
            .any(|c| matches!(c, SchedCmd::Wake(p) if *p == Pid(1))));
    }

    #[test]
    fn expired_reads_jump_sync_writes() {
        let dev = HddModel::new();
        let mut s = SplitDeadline::new();
        let mut ctx = ctx_at(&dev, 0);
        let mut w = Request {
            id: RequestId(1),
            dir: IoDir::Write,
            start: BlockNo(500),
            nblocks: 1,
            submitter: Pid(1),
            causes: CauseSet::empty(),
            sync: true,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: ReqKind::Journal,
        };
        s.block_add(w.clone(), &mut ctx);
        w.id = RequestId(2);
        let r = Request {
            id: RequestId(3),
            dir: IoDir::Read,
            start: BlockNo(100),
            nblocks: 1,
            submitter: Pid(2),
            causes: CauseSet::empty(),
            sync: true,
            ioprio: Default::default(),
            deadline: Some(SimTime::from_nanos(10)),
            submitted_at: SimTime::ZERO,
            file: None,
            kind: ReqKind::Data,
        };
        s.block_add(r, &mut ctx);
        // Past the read's deadline, it is served before the sync write.
        let mut late = ctx_at(&dev, 100);
        match s.block_dispatch(&mut late) {
            Dispatch::Issue(req) => assert_eq!(req.id, RequestId(3)),
            other => panic!("{other:?}"),
        }
        // Then the sync write.
        match s.block_dispatch(&mut late) {
            Dispatch::Issue(req) => assert_eq!(req.id, RequestId(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pdflush_variant_throttles_writers() {
        let dev = HddModel::new();
        let mut s = SplitDeadline::pdflush_variant();
        assert!(s.wants_pdflush());
        let mut ctx = ctx_at(&dev, 0);
        // Pid 7 exceeds its own write-throttle budget with scattered
        // dirtying (the dirty() fixture attributes to Pid 9 — use a
        // matching causes set here).
        for i in 0..1000 {
            let mut ev = dirty(5, i * 64);
            ev.causes = CauseSet::of(Pid(7));
            s.buffer_dirtied(&ev, &mut ctx);
        }
        let sc = SyscallInfo {
            pid: Pid(7),
            kind: SyscallKind::Write {
                file: FileId(5),
                offset: 0,
                len: 4096,
            },
            ioprio: Default::default(),
            cached: None,
        };
        assert_eq!(s.syscall_enter(&sc, &mut ctx), Gate::Hold);
    }
}
