//! SCS-Token: the system-call-scheduling token bucket of Craciunas et al.
//! (§2.3.3), the baseline Split-Token is compared against.
//!
//! All accounting and enforcement happens at the syscall layer:
//!
//! * writes are charged their raw byte count at entry — no knowledge of
//!   overwrites (so re-dirtying cached buffers is billed again and again)
//!   and no knowledge of amplification or randomness (so 4 KB random
//!   writes are billed like 4 KB sequential ones);
//! * reads are charged bytes at exit, and only when they missed the cache
//!   (the paper notes SCS needed a file-system modification for this);
//!   random reads are thus billed like sequential reads — far below their
//!   device cost, which is why isolation fails (Figure 6);
//! * metadata calls are billed a fixed guess, because their real cost is
//!   invisible above the file system (§3.3).
//!
//! The block level is a plain FIFO: SCS does no scheduling there. Run it
//! with `KernelConfig::gate_reads = true` so reads pass through the gate
//! (and pay the per-call bookkeeping cost on every read).

use sim_block::{Dispatch, Request};
use sim_core::{Pid, SimDuration, SimTime};
use split_core::{Gate, IoSched, SchedAttr, SchedCtx, SyscallInfo, SyscallKind};

use crate::tokens::TokenBuckets;

/// Bytes billed for a metadata call (a guess; SCS cannot know).
const META_GUESS_BYTES: f64 = 4096.0;

/// The SCS-Token scheduler.
pub struct ScsToken {
    buckets: TokenBuckets,
    held: Vec<Pid>,
    fifo: std::collections::VecDeque<Request>,
    timer_armed: bool,
    tick: SimDuration,
}

impl ScsToken {
    /// A fresh SCS-Token instance.
    pub fn new() -> Self {
        ScsToken {
            buckets: TokenBuckets::new(),
            held: Vec::new(),
            fifo: std::collections::VecDeque::new(),
            timer_armed: false,
            tick: SimDuration::from_millis(10),
        }
    }

    /// Direct bucket access (tests and experiments).
    pub fn buckets_mut(&mut self) -> &mut TokenBuckets {
        &mut self.buckets
    }

    fn maintenance(&mut self, ctx: &mut SchedCtx<'_>) {
        let now = ctx.now;
        let mut kept = Vec::new();
        for pid in std::mem::take(&mut self.held) {
            if self.buckets.may_proceed(pid, now) {
                ctx.wake(pid);
            } else {
                kept.push(pid);
            }
        }
        self.held = kept;
        if !self.held.is_empty() && !self.timer_armed {
            self.timer_armed = true;
            ctx.set_timer(now + self.tick);
        }
    }
}

impl Default for ScsToken {
    fn default() -> Self {
        Self::new()
    }
}

impl IoSched for ScsToken {
    fn name(&self) -> &'static str {
        "scs-token"
    }

    fn configure(&mut self, pid: Pid, attr: SchedAttr) {
        let now = SimTime::ZERO;
        match attr {
            SchedAttr::TokenRate(rate) => self.buckets.set_rate(pid, rate, now),
            SchedAttr::TokenCap(cap) => self.buckets.set_cap(pid, cap, now),
            SchedAttr::TokenGroup(g) => self.buckets.join_group(pid, g),
            SchedAttr::Unthrottled => self.buckets.unthrottle(pid),
            _ => {}
        }
    }

    fn syscall_enter(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) -> Gate {
        // Charge what SCS can see: bytes.
        match sc.kind {
            SyscallKind::Write { len, .. } => {
                self.buckets.charge(sc.pid, len as f64, ctx.now);
            }
            SyscallKind::Create | SyscallKind::Mkdir | SyscallKind::Unlink { .. } => {
                self.buckets.charge(sc.pid, META_GUESS_BYTES, ctx.now);
            }
            // Reads are charged at exit (cache-hit knowledge); fsync is
            // billed nothing — SCS cannot estimate its cost.
            SyscallKind::Read { .. } | SyscallKind::Fsync { .. } => {}
        }
        self.buckets.sample(ctx.tracer(), ctx.now);
        if self.buckets.may_proceed(sc.pid, ctx.now) {
            return Gate::Proceed;
        }
        self.held.push(sc.pid);
        if let Some(at) = self.buckets.ready_at(sc.pid, ctx.now) {
            if at < SimTime::MAX {
                ctx.set_timer(at);
            }
        }
        Gate::Hold
    }

    fn syscall_exit(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) {
        if let SyscallKind::Read { len, .. } = sc.kind {
            if sc.cached == Some(false) {
                self.buckets.charge(sc.pid, len as f64, ctx.now);
            }
        }
    }

    fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
        self.fifo.push_back(req);
        ctx.kick_dispatch();
    }

    fn block_dispatch(&mut self, _ctx: &mut SchedCtx<'_>) -> Dispatch {
        match self.fifo.pop_front() {
            Some(r) => Dispatch::Issue(r),
            None => Dispatch::Idle,
        }
    }

    fn block_completed(&mut self, _req: &Request, ctx: &mut SchedCtx<'_>) {
        self.maintenance(ctx);
    }

    fn timer_fired(&mut self, ctx: &mut SchedCtx<'_>) {
        self.timer_armed = false;
        self.maintenance(ctx);
        ctx.kick_dispatch();
    }

    fn queued(&self) -> usize {
        self.fifo.len()
    }

    fn audit(&self, quiesced: bool) -> Vec<String> {
        let mut bad = self.buckets.audit();
        if quiesced && !self.fifo.is_empty() {
            bad.push(format!(
                "scs-token: {} request(s) queued at quiescence",
                self.fifo.len()
            ));
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::FileId;
    use sim_device::HddModel;

    fn info(pid: u32, kind: SyscallKind, cached: Option<bool>) -> SyscallInfo {
        SyscallInfo {
            pid: Pid(pid),
            kind,
            ioprio: Default::default(),
            cached,
        }
    }

    #[test]
    fn writes_charged_raw_bytes_even_for_overwrites() {
        let dev = HddModel::new();
        let mut s = ScsToken::new();
        s.configure(Pid(1), SchedAttr::TokenRate(1_000_000));
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        let w = SyscallKind::Write {
            file: FileId(1),
            offset: 0,
            len: 1_000_000,
        };
        // Same offset repeatedly — SCS cannot tell it is an overwrite.
        assert_eq!(s.syscall_enter(&info(1, w, None), &mut ctx), Gate::Proceed);
        assert_eq!(
            s.syscall_enter(&info(1, w, None), &mut ctx),
            Gate::Hold,
            "second 1 MB write exceeds the 1 MB/s budget"
        );
    }

    #[test]
    fn cached_reads_are_not_charged() {
        let dev = HddModel::new();
        let mut s = ScsToken::new();
        s.configure(Pid(1), SchedAttr::TokenRate(1000));
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        let r = SyscallKind::Read {
            file: FileId(1),
            offset: 0,
            len: 1_000_000,
        };
        for _ in 0..100 {
            s.syscall_exit(&info(1, r, Some(true)), &mut ctx);
        }
        assert!(s.buckets.may_proceed(Pid(1), SimTime::ZERO));
        // A missed read is charged.
        s.syscall_exit(&info(1, r, Some(false)), &mut ctx);
        assert!(!s.buckets.may_proceed(Pid(1), SimTime::ZERO));
    }

    #[test]
    fn fsync_costs_nothing_at_the_gate() {
        let dev = HddModel::new();
        let mut s = ScsToken::new();
        s.configure(Pid(1), SchedAttr::TokenRate(1000));
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        let f = SyscallKind::Fsync { file: FileId(1) };
        assert_eq!(s.syscall_enter(&info(1, f, None), &mut ctx), Gate::Proceed);
        assert!(s.buckets.may_proceed(Pid(1), SimTime::ZERO));
    }

    #[test]
    fn block_level_is_fifo() {
        use sim_core::{BlockNo, CauseSet, RequestId};
        let dev = HddModel::new();
        let mut s = ScsToken::new();
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        for (id, start) in [(1u64, 900u64), (2, 10)] {
            s.block_add(
                Request {
                    id: RequestId(id),
                    dir: sim_device::IoDir::Read,
                    start: BlockNo(start),
                    nblocks: 1,
                    submitter: Pid(1),
                    causes: CauseSet::empty(),
                    sync: true,
                    ioprio: Default::default(),
                    deadline: None,
                    submitted_at: SimTime::ZERO,
                    file: None,
                    kind: Default::default(),
                },
                &mut ctx,
            );
        }
        match s.block_dispatch(&mut ctx) {
            Dispatch::Issue(r) => assert_eq!(r.id, RequestId(1)),
            other => panic!("{other:?}"),
        }
    }
}
