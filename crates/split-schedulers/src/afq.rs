//! AFQ — Actually Fair Queuing (§5.1).
//!
//! Proportional sharing with cause-tag accounting across two levels:
//!
//! * **block level** — reads are queued per process and the process with
//!   the smallest *pass* (stride scheduling) is served next, with
//!   CFQ-style anticipation so sequential streams stay sequential; block
//!   writes are dispatched immediately, because beneath the journal a
//!   low-priority block may be a prerequisite for a high-priority fsync.
//! * **system-call level** — write-like calls (write, fsync, creat, mkdir,
//!   unlink) are held whenever the caller's pass has run ahead of the
//!   virtual time by more than a small window.
//!
//! Accounting uses both memory- and block-level hooks (§3.2): a cheap
//! prompt estimate is charged the moment a buffer is dirtied, and the
//! difference to the real device cost is settled — against the request's
//! *causes*, not its submitter — when the request is dispatched. The
//! virtual time advances only with *real dispatched device time* divided
//! by the total active weight, which paces total admission to the drain
//! rate and shares it in proportion to priority.

use std::collections::VecDeque;

use sim_block::{Dispatch, IoPrio, ReqKind, Request};
use sim_core::{BlockNo, FastMap, Pid, SimDuration, SimTime};
use sim_device::IoDir;
use split_core::{BufferDirtied, Gate, IoSched, SchedAttr, SchedCtx, SyscallInfo};

use sim_block::sorted::SortedQueue;

/// AFQ tunables.
#[derive(Debug, Clone, Copy)]
pub struct AfqConfig {
    /// How far (in weighted disk-seconds) a process may run ahead of the
    /// virtual time before its write-like syscalls are held.
    pub window: f64,
    /// Disk-seconds of reads served from one process before re-picking.
    pub read_quantum: f64,
    /// Anticipation window on the active reader.
    pub idle_window: SimDuration,
    /// Gate re-check period while calls are held.
    pub tick: SimDuration,
    /// Fraction of real device time credited to the virtual clock. Below
    /// 1.0, total admission runs slightly under the drain rate, so a
    /// write-buffer backlog always shrinks and the gate — not the
    /// kernel's FIFO dirty throttle — ends up governing fairness. The
    /// cost is the small throughput gap the paper also observes for AFQ.
    pub vtime_margin: f64,
}

impl Default for AfqConfig {
    fn default() -> Self {
        AfqConfig {
            window: 0.02,
            read_quantum: 0.10,
            idle_window: SimDuration::from_millis(4),
            tick: SimDuration::from_millis(5),
            vtime_margin: 1.0,
        }
    }
}

struct ReadQueue {
    requests: SortedQueue,
    pos: BlockNo,
}

/// The AFQ scheduler.
pub struct Afq {
    cfg: AfqConfig,
    weights: FastMap<Pid, f64>,
    passes: FastMap<Pid, f64>,
    /// Virtual time: cumulative dispatched device seconds over the active
    /// weight at the time of each dispatch.
    vtime: f64,
    reads: FastMap<Pid, ReadQueue>,
    writes: VecDeque<Request>,
    active: Option<(Pid, f64, Option<SimTime>)>,
    held: Vec<Pid>,
    /// Requests dispatched to the device and not yet completed.
    inflight: u32,
    /// When the disk last did anything on our behalf.
    last_activity: SimTime,
    /// When each client last consumed disk budget — a writer with recent
    /// charges is competing for the disk even if nothing of its is queued
    /// at the block level right now (its work sits in the write buffer).
    last_charge: FastMap<Pid, SimTime>,
    timer_armed: bool,
}

/// How long a client stays "active" after its last charge.
const ACTIVE_WINDOW: SimDuration = SimDuration::from_millis(100);

impl Afq {
    /// AFQ with default tunables.
    pub fn new() -> Self {
        Self::with_config(AfqConfig::default())
    }

    /// AFQ with explicit tunables.
    pub fn with_config(cfg: AfqConfig) -> Self {
        Afq {
            cfg,
            weights: FastMap::default(),
            passes: FastMap::default(),
            vtime: 0.0,
            reads: FastMap::default(),
            writes: VecDeque::new(),
            active: None,
            held: Vec::new(),
            inflight: 0,
            last_activity: SimTime::ZERO,
            last_charge: FastMap::default(),
            timer_armed: false,
        }
    }

    fn weight(&self, pid: Pid) -> f64 {
        self.weights.get(&pid).copied().unwrap_or(4.0)
    }

    /// A client's pass; a first-time client starts at the current vtime.
    /// Queries never drag a lagging pass forward — relative debt between
    /// backlogged clients is what stride fairness is made of. Idle clients
    /// catch up on their next charge (`max(pass, vtime)` there).
    fn pass(&mut self, pid: Pid) -> f64 {
        let vt = self.vtime;
        *self.passes.entry(pid).or_insert(vt)
    }

    fn charge(&mut self, pid: Pid, secs: f64, now: SimTime) {
        let w = self.weight(pid);
        let vt = self.vtime;
        let p = self.passes.entry(pid).or_insert(vt);
        *p = p.max(vt) + secs / w;
        self.last_charge.insert(pid, now);
    }

    fn charge_causes(
        &mut self,
        causes: &sim_core::CauseSet,
        submitter: Pid,
        secs: f64,
        now: SimTime,
    ) {
        if causes.is_empty() {
            self.charge(submitter, secs, now);
        } else {
            let shares: Vec<(Pid, f64)> = causes.shares(secs).collect();
            for (pid, share) in shares {
                self.charge(pid, share, now);
            }
        }
    }

    /// Total weight of clients currently competing for the disk: held
    /// callers, readers with queued requests, and anyone who consumed
    /// budget within the recent window (buffered writers).
    fn active_weight(&self, now: SimTime) -> f64 {
        let mut seen: Vec<Pid> = Vec::new();
        for pid in &self.held {
            if !seen.contains(pid) {
                seen.push(*pid);
            }
        }
        for (pid, q) in &self.reads {
            if !q.requests.is_empty() && !seen.contains(pid) {
                seen.push(*pid);
            }
        }
        for (pid, &t) in &self.last_charge {
            if now.since(t) <= ACTIVE_WINDOW && !seen.contains(pid) {
                seen.push(*pid);
            }
        }
        seen.iter().map(|p| self.weight(*p)).sum::<f64>().max(1.0)
    }

    /// Advance the virtual time by `secs` of real device time.
    fn advance_vtime(&mut self, secs: f64, now: SimTime) {
        self.vtime += secs * self.cfg.vtime_margin / self.active_weight(now);
    }

    fn readers_with_work(&self) -> Vec<Pid> {
        let mut v: Vec<Pid> = self
            .reads
            .iter()
            .filter(|(_, q)| !q.requests.is_empty())
            .map(|(&p, _)| p)
            .collect();
        v.sort_unstable();
        v
    }

    /// Wake held syscalls that are back within their fair share.
    fn release_holds(&mut self, ctx: &mut SchedCtx<'_>) {
        if self.held.is_empty() {
            return;
        }
        // If the disk has been truly idle — nothing queued, nothing in
        // flight, nothing dispatched recently — fairness cannot require
        // waiting: jump the clock to the most underserved client. (A
        // momentarily empty queue with a request on the platter does NOT
        // count: write-dispatch-immediately drains the queue constantly.)
        let disk_has_work = !self.writes.is_empty()
            || !self.readers_with_work().is_empty()
            || self.inflight > 0
            || ctx.now.since(self.last_activity) < SimDuration::from_millis(10);
        if !disk_has_work {
            let min_pass = self
                .held
                .clone()
                .into_iter()
                .map(|p| self.pass(p))
                .fold(f64::INFINITY, f64::min);
            if min_pass.is_finite() {
                self.vtime = self.vtime.max(min_pass);
            }
        }
        let vt = self.vtime;
        let window = self.cfg.window;
        let mut held = std::mem::take(&mut self.held);
        // Release in pass order so the most underserved goes first.
        held.sort_by(|a, b| {
            let pa = self.pass(*a);
            let pb = self.pass(*b);
            pa.partial_cmp(&pb).expect("finite").then(a.cmp(b))
        });
        let mut kept = Vec::new();
        for pid in held {
            if self.pass(pid) <= vt + window {
                ctx.wake(pid);
            } else {
                kept.push(pid);
            }
        }
        self.held = kept;
        if !self.held.is_empty() && !self.timer_armed {
            self.timer_armed = true;
            ctx.set_timer(ctx.now + self.cfg.tick);
        }
    }

    /// Pick the reader with the smallest pass.
    fn pick_reader(&mut self) -> Option<Pid> {
        let candidates = self.readers_with_work();
        let mut best: Option<(f64, Pid)> = None;
        for pid in candidates {
            let p = self.pass(pid);
            let better = match best {
                None => true,
                Some((bp, bpid)) => p < bp || (p == bp && pid < bpid),
            };
            if better {
                best = Some((p, pid));
            }
        }
        best.map(|(_, p)| p)
    }
}

impl Default for Afq {
    fn default() -> Self {
        Self::new()
    }
}

impl IoSched for Afq {
    fn name(&self) -> &'static str {
        "afq"
    }

    fn configure(&mut self, pid: Pid, attr: SchedAttr) {
        if let SchedAttr::Prio(p) = attr {
            self.weights.insert(pid, weight_of(p));
        }
    }

    fn syscall_enter(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) -> Gate {
        if !sc.kind.is_write_like() {
            return Gate::Proceed;
        }
        // Keep the weight in sync even if configure was never called.
        self.weights.insert(sc.pid, weight_of(sc.ioprio));
        if self.pass(sc.pid) <= self.vtime + self.cfg.window {
            Gate::Proceed
        } else {
            self.held.push(sc.pid);
            if !self.timer_armed {
                self.timer_armed = true;
                ctx.set_timer(ctx.now + self.cfg.tick);
            }
            Gate::Hold
        }
    }

    fn buffer_dirtied(&mut self, ev: &BufferDirtied, ctx: &mut SchedCtx<'_>) {
        if ev.new_bytes == 0 {
            return; // overwrites add no flush work
        }
        // Prompt estimate: the sequential-transfer cost of the new bytes.
        // The real (seek-aware) cost is settled at dispatch.
        let secs = ev.new_bytes as f64 / ctx.device.seq_bandwidth();
        let causes = ev.causes.clone();
        self.charge_causes(&causes, Pid(0), secs, ctx.now);
    }

    fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
        if req.is_read() {
            let q = self
                .reads
                .entry(req.submitter)
                .or_insert_with(|| ReadQueue {
                    requests: SortedQueue::new(),
                    pos: BlockNo(0),
                });
            q.requests.insert(req);
        } else {
            self.writes.push_back(req);
        }
        ctx.kick_dispatch();
    }

    fn block_dispatch(&mut self, ctx: &mut SchedCtx<'_>) -> Dispatch {
        // Writes go out immediately (journal prerequisites, §5.1).
        if let Some(req) = self.writes.pop_front() {
            let real = ctx.device.peek_service_time(&req.shape()).as_secs_f64();
            // Settle: data writes were prompt-charged their sequential
            // transfer cost; charge only the difference.
            let prompt = if req.kind == ReqKind::Data && req.dir == IoDir::Write {
                req.bytes() as f64 / ctx.device.seq_bandwidth()
            } else {
                0.0
            };
            let causes = req.causes.clone();
            let submitter = req.submitter;
            self.charge_causes(&causes, submitter, real - prompt, ctx.now);
            self.advance_vtime(real, ctx.now);
            self.inflight += 1;
            self.last_activity = ctx.now;
            return Dispatch::Issue(req);
        }
        // Serve the active reader within its quantum, with anticipation.
        if let Some((pid, quantum, anticipating)) = self.active {
            if quantum > 0.0 {
                let has_work = self
                    .reads
                    .get(&pid)
                    .map(|q| !q.requests.is_empty())
                    .unwrap_or(false);
                if has_work {
                    let q = self.reads.get_mut(&pid).expect("checked");
                    let req = q.requests.pop_cscan(q.pos).expect("non-empty");
                    q.pos = req.shape().end();
                    let secs = ctx.device.peek_service_time(&req.shape()).as_secs_f64();
                    let causes = req.causes.clone();
                    self.charge_causes(&causes, req.submitter, secs, ctx.now);
                    self.advance_vtime(secs, ctx.now);
                    self.inflight += 1;
                    self.last_activity = ctx.now;
                    self.active = Some((pid, quantum - secs, None));
                    return Dispatch::Issue(req);
                }
                let until = match anticipating {
                    Some(t) => t,
                    None => {
                        let t = ctx.now + self.cfg.idle_window;
                        self.active = Some((pid, quantum, Some(t)));
                        t
                    }
                };
                if ctx.now < until {
                    return Dispatch::WaitUntil(until);
                }
            }
            self.active = None;
        }
        // Pick the most underserved reader.
        let Some(pid) = self.pick_reader() else {
            return Dispatch::Idle;
        };
        let q = self.reads.get_mut(&pid).expect("has work");
        let req = q.requests.pop_cscan(q.pos).expect("non-empty");
        q.pos = req.shape().end();
        let secs = ctx.device.peek_service_time(&req.shape()).as_secs_f64();
        let causes = req.causes.clone();
        self.charge_causes(&causes, req.submitter, secs, ctx.now);
        self.advance_vtime(secs, ctx.now);
        self.inflight += 1;
        self.last_activity = ctx.now;
        self.active = Some((pid, self.cfg.read_quantum - secs, None));
        Dispatch::Issue(req)
    }

    fn block_completed(&mut self, _req: &Request, ctx: &mut SchedCtx<'_>) {
        self.inflight = self.inflight.saturating_sub(1);
        self.last_activity = ctx.now;
        self.release_holds(ctx);
    }

    fn timer_fired(&mut self, ctx: &mut SchedCtx<'_>) {
        self.timer_armed = false;
        self.release_holds(ctx);
        ctx.kick_dispatch();
    }

    fn pick_dirty_waiter(&mut self, waiters: &[Pid]) -> usize {
        let mut best = 0;
        let mut best_pass = f64::INFINITY;
        for (i, &pid) in waiters.iter().enumerate() {
            let p = self.pass(pid);
            if p < best_pass {
                best_pass = p;
                best = i;
            }
        }
        best
    }

    fn queued(&self) -> usize {
        self.writes.len() + self.reads.values().map(|q| q.requests.len()).sum::<usize>()
    }
}

fn weight_of(prio: IoPrio) -> f64 {
    prio.weight() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{CauseSet, RequestId};
    use sim_device::HddModel;

    fn read(id: u64, pid: u32, start: u64) -> Request {
        Request {
            id: RequestId(id),
            dir: IoDir::Read,
            start: BlockNo(start),
            nblocks: 1,
            submitter: Pid(pid),
            causes: CauseSet::of(Pid(pid)),
            sync: true,
            ioprio: IoPrio::DEFAULT,
            deadline: None,
            submitted_at: SimTime::ZERO,
            file: None,
            kind: Default::default(),
        }
    }

    fn write(id: u64, pid: u32, start: u64) -> Request {
        Request {
            dir: IoDir::Write,
            sync: false,
            kind: ReqKind::Journal,
            ..read(id, pid, start)
        }
    }

    fn write_info(pid: u32, prio: IoPrio) -> SyscallInfo {
        SyscallInfo {
            pid: Pid(pid),
            kind: split_core::SyscallKind::Write {
                file: sim_core::FileId(1),
                offset: 0,
                len: 4096,
            },
            ioprio: prio,
            cached: None,
        }
    }

    #[test]
    fn writes_dispatch_before_reads() {
        let dev = HddModel::new();
        let mut a = Afq::new();
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        a.block_add(read(1, 1, 100), &mut ctx);
        a.block_add(write(2, 2, 500), &mut ctx);
        match a.block_dispatch(&mut ctx) {
            Dispatch::Issue(r) => assert_eq!(r.id, RequestId(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gate_holds_over_budget_writers() {
        let dev = HddModel::new();
        let mut a = Afq::new();
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        a.configure(Pid(1), SchedAttr::Prio(IoPrio::best_effort(0)));
        a.charge(Pid(1), 10.0, SimTime::ZERO);
        assert_eq!(
            a.syscall_enter(&write_info(1, IoPrio::best_effort(0)), &mut ctx),
            Gate::Hold
        );
        assert_eq!(a.held.len(), 1);
    }

    #[test]
    fn vtime_advances_with_dispatched_disk_time_only() {
        let dev = HddModel::new();
        let mut a = Afq::new();
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        let v0 = a.vtime;
        // Memory-level charging does not move the clock…
        a.buffer_dirtied(
            &BufferDirtied {
                file: sim_core::FileId(1),
                page: 0,
                causes: CauseSet::of(Pid(1)),
                prev: None,
                block: None,
                new_bytes: 1 << 20,
            },
            &mut ctx,
        );
        assert_eq!(a.vtime, v0);
        // …but dispatching a request does.
        a.block_add(write(1, 1, 1000), &mut ctx);
        let _ = a.block_dispatch(&mut ctx);
        assert!(a.vtime > v0);
    }

    #[test]
    fn idle_disk_releases_the_most_underserved_hold() {
        let dev = HddModel::new();
        let mut a = Afq::new();
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        a.charge(Pid(1), 0.5, SimTime::ZERO);
        a.charge(Pid(2), 0.1, SimTime::ZERO);
        assert_eq!(
            a.syscall_enter(&write_info(1, IoPrio::DEFAULT), &mut ctx),
            Gate::Hold
        );
        assert_eq!(
            a.syscall_enter(&write_info(2, IoPrio::DEFAULT), &mut ctx),
            Gate::Hold
        );
        // Fire the timer well past the activity window so the disk
        // counts as idle.
        let mut ctx2 = SchedCtx::new(SimTime::from_nanos(50_000_000), &dev);
        a.timer_fired(&mut ctx2);
        let cmds = ctx2.drain();
        // With the disk idle, the clock jumps to the minimum pass: pid 2
        // (less debt) is released; pid 1 stays held.
        assert!(cmds
            .iter()
            .any(|c| matches!(c, split_core::SchedCmd::Wake(p) if *p == Pid(2))));
        assert!(!cmds
            .iter()
            .any(|c| matches!(c, split_core::SchedCmd::Wake(p) if *p == Pid(1))));
    }

    #[test]
    fn prompt_charges_accumulate_per_weight() {
        let dev = HddModel::new();
        let mut a = Afq::new();
        let mut ctx = SchedCtx::new(SimTime::ZERO, &dev);
        a.configure(Pid(1), SchedAttr::Prio(IoPrio::best_effort(0))); // w=8
        a.configure(Pid(2), SchedAttr::Prio(IoPrio::best_effort(7))); // w=1
        for pid in [1u32, 2] {
            a.buffer_dirtied(
                &BufferDirtied {
                    file: sim_core::FileId(pid as u64),
                    page: 0,
                    causes: CauseSet::of(Pid(pid)),
                    prev: None,
                    block: None,
                    new_bytes: 8 << 20,
                },
                &mut ctx,
            );
        }
        // Same bytes, but the low-priority pid's pass advanced 8× more.
        let p1 = a.pass(Pid(1));
        let p2 = a.pass(Pid(2));
        assert!((p2 / p1 - 8.0).abs() < 0.01, "p1 {p1} p2 {p2}");
    }

    #[test]
    fn stride_respects_weights_at_block_level() {
        let dev = HddModel::new();
        let mut a = Afq::with_config(AfqConfig {
            read_quantum: 0.0001,
            idle_window: SimDuration::ZERO,
            ..Default::default()
        });
        a.configure(Pid(1), SchedAttr::Prio(IoPrio::best_effort(0))); // w=8
        a.configure(Pid(2), SchedAttr::Prio(IoPrio::best_effort(7))); // w=1
        let mut served: FastMap<Pid, u32> = FastMap::default();
        let mut id = 0u64;
        for round in 0..200 {
            let mut ctx = SchedCtx::new(SimTime::from_nanos(round), &dev);
            for pid in [1u32, 2] {
                id += 1;
                a.block_add(read(id, pid, 1_000_000 * pid as u64 + id), &mut ctx);
            }
            if let Dispatch::Issue(r) = a.block_dispatch(&mut ctx) {
                *served.entry(r.submitter).or_insert(0) += 1;
            }
        }
        let hi = served[&Pid(1)] as f64;
        let lo = served[&Pid(2)] as f64;
        assert!(hi / lo > 3.0, "hi {hi} lo {lo}");
    }
}
