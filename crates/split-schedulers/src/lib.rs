#![warn(missing_docs)]
//! The schedulers built on the split framework (§5 of the paper), plus the
//! SCS-Token baseline:
//!
//! * [`Afq`] — Actually Fair Queuing: stride scheduling at the syscall and
//!   block levels with cause-tag accounting (§5.1).
//! * [`SplitDeadline`] — fsync deadlines at the syscall level, read
//!   deadlines at the block level, with dirty-cost estimation and
//!   asynchronous-writeback spreading (§5.2).
//! * [`SplitToken`] — token buckets with prompt memory-level charging and
//!   block-level revision (§5.3).
//! * [`ScsToken`] — the system-call-scheduling baseline of Craciunas et
//!   al., which charges raw bytes at the syscall layer (§2.3.3).

pub mod afq;
pub mod scs_token;
pub mod split_deadline;
pub mod split_noop;
pub mod split_token;
pub mod stride;
pub mod tokens;

pub use afq::Afq;
pub use scs_token::ScsToken;
pub use split_deadline::{SplitDeadline, SplitDeadlineConfig};
pub use split_noop::SplitNoop;
pub use split_token::{AccountError, SplitToken, SplitTokenConfig};
pub use stride::StrideSet;
pub use tokens::{BucketId, TokenBuckets};
