//! End-to-end fault injection: a [`DeviceFaultPlane`] installed on the
//! kernel's physical device, with errors propagating up through the block
//! layer and file system to the process as [`Outcome::Failed`].

use std::cell::RefCell;
use std::rc::Rc;

use sim_block::BlockDeadline;
use sim_core::{IoErrorKind, SimDuration, SimTime};
use sim_fault::DeviceFaultPlane;
use sim_kernel::{DeviceKind, KernelConfig, Outcome, ProcAction, World};
use split_core::{BlockOnly, SyscallKind};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Write 4 KB then fsync, forever, recording every syscall outcome.
fn fsync_loop(
    file: sim_core::FileId,
    log: Rc<RefCell<Vec<Outcome>>>,
) -> impl FnMut(SimTime, &Outcome) -> ProcAction {
    let mut step = 0u64;
    move |_now, last| {
        if step > 0 {
            log.borrow_mut().push(*last);
        }
        let a = match step % 2 {
            0 => ProcAction::Syscall(SyscallKind::Write {
                file,
                offset: (step / 2) * 4 * KB,
                len: 4 * KB,
            }),
            _ => ProcAction::Syscall(SyscallKind::Fsync { file }),
        };
        step += 1;
        a
    }
}

fn fsync_world() -> (World, sim_core::KernelId, sim_core::FileId) {
    let mut w = World::new();
    let k = w.add_kernel(
        KernelConfig::default(),
        DeviceKind::hdd(),
        Box::new(BlockOnly::new(BlockDeadline::new())),
    );
    let file = w.prealloc_file(k, 64 * MB, true);
    (w, k, file)
}

#[test]
fn every_write_failing_aborts_the_journal_and_fails_fsyncs() {
    let (mut w, k, file) = fsync_world();
    w.kernel_mut(k)
        .install_fault_plane(DeviceFaultPlane::with_seed(7).transient_rate(1.0));
    let log = Rc::new(RefCell::new(Vec::new()));
    w.spawn(k, Box::new(fsync_loop(file, log.clone())));
    w.run_for(SimDuration::from_secs(2));

    let stats = &w.kernel(k).stats;
    assert!(stats.io_errors > 0, "device failures must be counted");
    assert_eq!(stats.journal_aborts, 1, "journal aborts exactly once");
    let aborted = w.kernel(k).fs().journal_aborted();
    assert!(aborted.is_some(), "fs must remember the abort");
    assert_eq!(aborted.unwrap().kind, IoErrorKind::JournalAborted);

    let log = log.borrow();
    let failed = log
        .iter()
        .filter(|o| matches!(o, Outcome::Failed(_)))
        .count();
    let synced = log.iter().filter(|o| matches!(o, Outcome::Synced)).count();
    assert!(
        failed > 2,
        "fsyncs must fail, got {failed} of {}",
        log.len()
    );
    assert_eq!(synced, 0, "no fsync may report durability");
    // Once aborted, fsync fails fast instead of wedging the process.
    assert!(
        log.len() > 20,
        "process keeps running: {} outcomes",
        log.len()
    );
}

#[test]
fn single_data_write_failure_fails_one_fsync_only() {
    let (mut w, k, file) = fsync_world();
    // The very first physical write is the fsync's ordered data flush.
    w.kernel_mut(k)
        .install_fault_plane(DeviceFaultPlane::new().fail_write(0));
    let log = Rc::new(RefCell::new(Vec::new()));
    w.spawn(k, Box::new(fsync_loop(file, log.clone())));
    w.run_for(SimDuration::from_secs(2));

    let stats = &w.kernel(k).stats;
    assert_eq!(stats.io_errors, 1, "exactly the planned failure");
    assert_eq!(stats.journal_aborts, 0, "data errors must not abort");
    assert!(w.kernel(k).fs().journal_aborted().is_none());

    let log = log.borrow();
    let failed: Vec<usize> = log
        .iter()
        .enumerate()
        .filter(|(_, o)| matches!(o, Outcome::Failed(_)))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(failed.len(), 1, "one fsync fails: {failed:?}");
    let synced = log.iter().filter(|o| matches!(o, Outcome::Synced)).count();
    assert!(synced > 10, "later fsyncs succeed, got {synced}");
}

#[test]
fn latency_spikes_slow_fsyncs_without_failing_them() {
    let latency_with = |plane: Option<DeviceFaultPlane>| {
        let (mut w, k, file) = fsync_world();
        if let Some(p) = plane {
            w.kernel_mut(k).install_fault_plane(p);
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let pid = w.spawn(k, Box::new(fsync_loop(file, log.clone())));
        w.run_for(SimDuration::from_secs(2));
        assert!(
            log.borrow()
                .iter()
                .all(|o| !matches!(o, Outcome::Failed(_))),
            "spikes must not fail I/O"
        );
        assert_eq!(w.kernel(k).stats.io_errors, 0);
        let st = w.kernel(k).stats.proc(pid).unwrap();
        st.fsyncs.first().map(|&(_, lat)| lat).unwrap()
    };
    let base = latency_with(None);
    let spiked = latency_with(Some(DeviceFaultPlane::new().spike_write(0, 50.0)));
    assert!(
        spiked.as_secs_f64() > 2.0 * base.as_secs_f64(),
        "a 50x spike on the first write must show up: {base:?} vs {spiked:?}"
    );
}

#[test]
fn failed_reads_reach_the_reader_as_eio() {
    let mut w = World::new();
    let k = w.add_kernel(
        KernelConfig::default(),
        DeviceKind::hdd(),
        Box::new(BlockOnly::new(BlockDeadline::new())),
    );
    let file = w.prealloc_file(k, 64 * MB, true);
    // Reads never consume fault-plane write slots; a transient rate of 1.0
    // would hit writes only, so instead verify reads pass through untouched.
    w.kernel_mut(k)
        .install_fault_plane(DeviceFaultPlane::with_seed(3).transient_rate(1.0));
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut offset = 0u64;
    let l2 = log.clone();
    let reader = move |_now: SimTime, last: &Outcome| {
        l2.borrow_mut().push(*last);
        let a = ProcAction::Syscall(SyscallKind::Read {
            file,
            offset,
            len: 64 * KB,
        });
        offset = (offset + 64 * KB) % (64 * MB);
        a
    };
    w.spawn(k, Box::new(reader));
    w.run_for(SimDuration::from_millis(500));
    let log = log.borrow();
    let ok = log
        .iter()
        .filter(|o| matches!(o, Outcome::Read { .. }))
        .count();
    assert!(ok > 10, "reads are unaffected by write-only faults: {ok}");
    assert_eq!(w.kernel(k).stats.journal_aborts, 0);
}
