//! Focused behavioural tests of kernel mechanics: gating, dirty
//! throttling, unlink, journal timers, and hook routing.

use std::cell::RefCell;
use std::rc::Rc;

use sim_block::{Dispatch, Noop, Request};
use sim_cache::CacheConfig;
use sim_core::{FileId, Pid, SimDuration, SimTime};
use sim_kernel::{DeviceKind, KernelConfig, Outcome, ProcAction, World};
use split_core::{BlockOnly, BufferFreed, Gate, IoSched, SchedCtx, SyscallInfo, SyscallKind};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// A scheduler that holds every Nth gated call for a fixed time.
struct HoldEveryN {
    fifo: std::collections::VecDeque<Request>,
    n: u64,
    seen: u64,
    held: Vec<Pid>,
    hold_for: SimDuration,
}

impl IoSched for HoldEveryN {
    fn name(&self) -> &'static str {
        "hold-every-n"
    }
    fn syscall_enter(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) -> Gate {
        self.seen += 1;
        if self.seen.is_multiple_of(self.n) {
            self.held.push(sc.pid);
            ctx.set_timer(ctx.now + self.hold_for);
            Gate::Hold
        } else {
            Gate::Proceed
        }
    }
    fn timer_fired(&mut self, ctx: &mut SchedCtx<'_>) {
        for pid in self.held.drain(..) {
            ctx.wake(pid);
        }
    }
    fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
        self.fifo.push_back(req);
        ctx.kick_dispatch();
    }
    fn block_dispatch(&mut self, _ctx: &mut SchedCtx<'_>) -> Dispatch {
        match self.fifo.pop_front() {
            Some(r) => Dispatch::Issue(r),
            None => Dispatch::Idle,
        }
    }
    fn queued(&self) -> usize {
        self.fifo.len()
    }
}

#[test]
fn held_syscalls_accumulate_gated_time_and_resume() {
    let mut w = World::new();
    let k = w.add_kernel(
        KernelConfig::default(),
        DeviceKind::ssd(),
        Box::new(HoldEveryN {
            fifo: Default::default(),
            n: 3,
            seen: 0,
            held: Vec::new(),
            hold_for: SimDuration::from_millis(5),
        }),
    );
    let f = w.prealloc_file(k, 64 * MB, true);
    let mut offset = 0;
    let writer = move |_n: SimTime, _l: &Outcome| {
        let a = ProcAction::Syscall(SyscallKind::Write {
            file: f,
            offset,
            len: 4 * KB,
        });
        offset = (offset + 4 * KB) % (64 * MB);
        a
    };
    let pid = w.spawn(k, Box::new(writer));
    w.run_for(SimDuration::from_secs(1));
    let st = w.kernel(k).stats.proc(pid).unwrap();
    assert!(st.writes > 50, "writer made progress: {}", st.writes);
    // Roughly every third call was held ~5 ms.
    assert!(
        st.gated_time > SimDuration::from_millis(100),
        "gated time should accumulate: {:?}",
        st.gated_time
    );
}

#[test]
fn unlink_fires_buffer_free_hooks_with_the_dirty_causes() {
    struct FreeLog {
        fifo: std::collections::VecDeque<Request>,
        freed: Rc<RefCell<Vec<BufferFreed>>>,
    }
    impl IoSched for FreeLog {
        fn name(&self) -> &'static str {
            "free-log"
        }
        fn buffer_freed(&mut self, ev: &BufferFreed, _ctx: &mut SchedCtx<'_>) {
            self.freed.borrow_mut().push(ev.clone());
        }
        fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
            self.fifo.push_back(req);
            ctx.kick_dispatch();
        }
        fn block_dispatch(&mut self, _ctx: &mut SchedCtx<'_>) -> Dispatch {
            match self.fifo.pop_front() {
                Some(r) => Dispatch::Issue(r),
                None => Dispatch::Idle,
            }
        }
        fn queued(&self) -> usize {
            self.fifo.len()
        }
    }
    let freed = Rc::new(RefCell::new(Vec::new()));
    let mut w = World::new();
    let k = w.add_kernel(
        KernelConfig::default(),
        DeviceKind::hdd(),
        Box::new(FreeLog {
            fifo: Default::default(),
            freed: freed.clone(),
        }),
    );
    let f = w.prealloc_file(k, 16 * MB, true);
    // Dirty eight pages, then unlink before writeback can run.
    let mut step = 0;
    let app = move |_n: SimTime, _l: &Outcome| {
        step += 1;
        match step {
            1..=8 => ProcAction::Syscall(SyscallKind::Write {
                file: f,
                offset: (step - 1) * 4 * KB,
                len: 4 * KB,
            }),
            9 => ProcAction::Syscall(SyscallKind::Unlink { file: f }),
            _ => ProcAction::Exit,
        }
    };
    let pid = w.spawn(k, Box::new(app));
    w.run_for(SimDuration::from_millis(50));
    let freed = freed.borrow();
    let bytes: u64 = freed.iter().map(|e| e.bytes).sum();
    assert_eq!(bytes, 8 * 4 * KB, "all eight dirty pages were freed");
    for ev in freed.iter() {
        assert!(ev.causes.contains(pid), "freed causes point at the writer");
    }
}

#[test]
fn journal_timer_commits_without_any_fsync() {
    let mut w = World::new();
    let k = w.add_kernel(
        KernelConfig::default(),
        DeviceKind::hdd(),
        Box::new(BlockOnly::new(Noop::new())),
    );
    let f = w.prealloc_file(k, 16 * MB, true);
    // One buffered write, then sleep forever — no fsync.
    let mut wrote = false;
    let app = move |_n: SimTime, _l: &Outcome| {
        if !wrote {
            wrote = true;
            ProcAction::Syscall(SyscallKind::Write {
                file: f,
                offset: 0,
                len: 4 * KB,
            })
        } else {
            ProcAction::Sleep(SimDuration::from_secs(60))
        }
    };
    w.spawn(k, Box::new(app));
    // Within the 5 s commit interval: nothing dispatched beyond maybe
    // writeback. After it: journal I/O must have happened.
    w.run_for(SimDuration::from_secs(8));
    let dispatched = w.kernel(k).stats.requests_dispatched;
    assert!(
        dispatched >= 3,
        "periodic commit should write data + log + commit record: {dispatched}"
    );
}

#[test]
fn scs_style_gating_applies_to_reads_when_configured() {
    struct HoldReads {
        fifo: std::collections::VecDeque<Request>,
        held_reads: Rc<RefCell<u64>>,
    }
    impl IoSched for HoldReads {
        fn name(&self) -> &'static str {
            "hold-reads"
        }
        fn syscall_enter(&mut self, sc: &SyscallInfo, ctx: &mut SchedCtx<'_>) -> Gate {
            if matches!(sc.kind, SyscallKind::Read { .. }) {
                *self.held_reads.borrow_mut() += 1;
                ctx.wake(sc.pid); // release immediately; we just count
                Gate::Hold
            } else {
                Gate::Proceed
            }
        }
        fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
            self.fifo.push_back(req);
            ctx.kick_dispatch();
        }
        fn block_dispatch(&mut self, _ctx: &mut SchedCtx<'_>) -> Dispatch {
            match self.fifo.pop_front() {
                Some(r) => Dispatch::Issue(r),
                None => Dispatch::Idle,
            }
        }
        fn queued(&self) -> usize {
            self.fifo.len()
        }
    }
    let held = Rc::new(RefCell::new(0u64));
    let mut w = World::new();
    let cfg = KernelConfig {
        gate_reads: true, // the SCS architecture
        ..Default::default()
    };
    let k = w.add_kernel(
        cfg,
        DeviceKind::ssd(),
        Box::new(HoldReads {
            fifo: Default::default(),
            held_reads: held.clone(),
        }),
    );
    let f = w.prealloc_file(k, 16 * MB, true);
    let mut offset = 0;
    let reader = move |_n: SimTime, _l: &Outcome| {
        let a = ProcAction::Syscall(SyscallKind::Read {
            file: f,
            offset,
            len: 64 * KB,
        });
        offset = (offset + 64 * KB) % (16 * MB);
        a
    };
    let pid = w.spawn(k, Box::new(reader));
    w.run_for(SimDuration::from_millis(100));
    assert!(
        *held.borrow() > 10,
        "reads passed the gate: {}",
        held.borrow()
    );
    let st = w.kernel(k).stats.proc(pid).unwrap();
    assert!(st.reads > 10, "and still completed: {}", st.reads);
}

#[test]
fn reads_bypass_the_gate_in_the_split_architecture() {
    struct PanicOnRead {
        fifo: std::collections::VecDeque<Request>,
    }
    impl IoSched for PanicOnRead {
        fn name(&self) -> &'static str {
            "panic-on-read-gate"
        }
        fn syscall_enter(&mut self, sc: &SyscallInfo, _ctx: &mut SchedCtx<'_>) -> Gate {
            assert!(
                !matches!(sc.kind, SyscallKind::Read { .. }),
                "split framework must not gate reads"
            );
            Gate::Proceed
        }
        fn block_add(&mut self, req: Request, ctx: &mut SchedCtx<'_>) {
            self.fifo.push_back(req);
            ctx.kick_dispatch();
        }
        fn block_dispatch(&mut self, _ctx: &mut SchedCtx<'_>) -> Dispatch {
            match self.fifo.pop_front() {
                Some(r) => Dispatch::Issue(r),
                None => Dispatch::Idle,
            }
        }
        fn queued(&self) -> usize {
            self.fifo.len()
        }
    }
    let mut w = World::new();
    let k = w.add_kernel(
        KernelConfig::default(), // gate_reads: false
        DeviceKind::ssd(),
        Box::new(PanicOnRead {
            fifo: Default::default(),
        }),
    );
    let f = w.prealloc_file(k, 8 * MB, true);
    let mut toggle = false;
    let app = move |_n: SimTime, _l: &Outcome| {
        toggle = !toggle;
        if toggle {
            ProcAction::Syscall(SyscallKind::Read {
                file: f,
                offset: 0,
                len: 4 * KB,
            })
        } else {
            ProcAction::Syscall(SyscallKind::Write {
                file: f,
                offset: 0,
                len: 4 * KB,
            })
        }
    };
    let pid = w.spawn(k, Box::new(app));
    w.run_for(SimDuration::from_millis(50));
    let st = w.kernel(k).stats.proc(pid).unwrap();
    assert!(st.reads > 5 && st.writes > 5);
}

#[test]
fn dirty_throttle_bounds_buffered_data() {
    let mut w = World::new();
    let cfg = KernelConfig {
        cache: CacheConfig {
            mem_bytes: 64 * MB, // dirty limit = 12.8 MB
            ..Default::default()
        },
        ..Default::default()
    };
    let k = w.add_kernel(
        cfg,
        DeviceKind::hdd(),
        Box::new(BlockOnly::new(Noop::new())),
    );
    let f = w.prealloc_file(k, 1 << 30, true);
    let mut offset = 0;
    let writer = move |_n: SimTime, _l: &Outcome| {
        let a = ProcAction::Syscall(SyscallKind::Write {
            file: f,
            offset,
            len: MB,
        });
        offset += MB;
        a
    };
    w.spawn(k, Box::new(writer));
    w.run_for(SimDuration::from_secs(1));
    let limit_pages = w.kernel(k).cache().config().dirty_limit_pages();
    let dirty = w.kernel(k).cache().dirty_total();
    assert!(
        dirty <= limit_pages + 256,
        "dirty pages {dirty} must stay near the {limit_pages}-page limit"
    );
}

#[test]
fn sparse_reads_of_never_written_files_return_zeroes_without_io() {
    let mut w = World::new();
    let k = w.add_kernel(
        KernelConfig::default(),
        DeviceKind::hdd(),
        Box::new(BlockOnly::new(Noop::new())),
    );
    // A freshly created (empty, unallocated) file.
    let created: Rc<RefCell<Option<FileId>>> = Rc::new(RefCell::new(None));
    let created2 = created.clone();
    let mut step = 0;
    let app = move |_n: SimTime, last: &Outcome| {
        step += 1;
        if let Outcome::Created(f) = last {
            *created2.borrow_mut() = Some(*f);
        }
        match step {
            1 => ProcAction::Syscall(SyscallKind::Create),
            2..=10 => {
                let f = created2.borrow().expect("created");
                ProcAction::Syscall(SyscallKind::Read {
                    file: f,
                    offset: (step - 2) * 4 * KB,
                    len: 4 * KB,
                })
            }
            _ => ProcAction::Exit,
        }
    };
    let pid = w.spawn(k, Box::new(app));
    w.run_for(SimDuration::from_millis(100));
    let st = w.kernel(k).stats.proc(pid).unwrap();
    assert_eq!(st.reads, 9, "all hole reads completed");
    // No device traffic needed for holes (journal traffic may exist for
    // the creat, but no Data reads).
    assert_eq!(
        w.kernel(k)
            .stats
            .disk_time
            .get(&pid)
            .copied()
            .unwrap_or(0.0)
            .round() as u64,
        0,
        "hole reads cost no disk time"
    );
}
