//! End-to-end tests of the full stack: processes → syscalls → cache →
//! fs → block layer → device, under the baseline block schedulers.

use sim_block::{BlockDeadline, Cfq, IoPrio, Noop};
use sim_cache::CacheConfig;
use sim_core::{FileId, SimDuration, SimTime};
use sim_kernel::{DeviceKind, KernelConfig, Outcome, ProcAction, World};
use split_core::{BlockOnly, SyscallKind};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

fn world_with(
    sched: Box<dyn split_core::IoSched>,
    device: DeviceKind,
) -> (World, sim_core::KernelId) {
    let mut w = World::new();
    let k = w.add_kernel(KernelConfig::default(), device, sched);
    (w, k)
}

/// A sequential reader over a preallocated file, wrapping at EOF.
fn seq_reader(
    file: FileId,
    file_bytes: u64,
    req: u64,
) -> impl FnMut(SimTime, &Outcome) -> ProcAction {
    let mut offset = 0u64;
    move |_now, _last| {
        if offset + req > file_bytes {
            offset = 0;
        }
        let a = ProcAction::Syscall(SyscallKind::Read {
            file,
            offset,
            len: req,
        });
        offset += req;
        a
    }
}

#[test]
fn sequential_read_reaches_device_bandwidth() {
    let (mut w, k) = world_with(Box::new(BlockOnly::new(Noop::new())), DeviceKind::hdd());
    let file = w.prealloc_file(k, 8 * 1024 * MB, true);
    let pid = w.spawn(k, Box::new(seq_reader(file, 8 * 1024 * MB, MB)));
    w.run_for(SimDuration::from_secs(2));
    let mbps = w.kernel(k).stats.read_mbps(pid, SimDuration::from_secs(2));
    assert!(
        (80.0..120.0).contains(&mbps),
        "sequential HDD read should run near 110 MB/s, got {mbps:.1}"
    );
}

#[test]
fn random_read_is_orders_of_magnitude_slower() {
    let (mut w, k) = world_with(Box::new(BlockOnly::new(Noop::new())), DeviceKind::hdd());
    let file = w.prealloc_file(k, 8 * 1024 * MB, true);
    let mut rng = sim_core::SimRng::seed_from_u64(42);
    let mut rand_reader = move |_now: SimTime, _l: &Outcome| {
        let page = rng.gen_range(8 * 1024 * MB / 4096);
        ProcAction::Syscall(SyscallKind::Read {
            file,
            offset: page * 4096,
            len: 4 * KB,
        })
    };
    let pid = w.spawn(
        k,
        Box::new(move |n: SimTime, l: &Outcome| rand_reader(n, l)),
    );
    w.run_for(SimDuration::from_secs(2));
    let mbps = w.kernel(k).stats.read_mbps(pid, SimDuration::from_secs(2));
    assert!(mbps < 2.0, "random 4 KB reads on HDD: got {mbps:.2} MB/s");
    assert!(mbps > 0.1, "but the reader must make progress: {mbps:.3}");
}

#[test]
fn cached_reads_run_at_memory_speed() {
    let (mut w, k) = world_with(Box::new(BlockOnly::new(Noop::new())), DeviceKind::hdd());
    // A 64 MB file fits comfortably in the 1 GB default cache.
    let file = w.prealloc_file(k, 64 * MB, true);
    let pid = w.spawn(k, Box::new(seq_reader(file, 64 * MB, 64 * KB)));
    w.run_for(SimDuration::from_secs(2));
    let mbps = w.kernel(k).stats.read_mbps(pid, SimDuration::from_secs(2));
    // First pass reads from disk; every later pass is cache hits at
    // CPU-copy speed (~2 GB/s with default costs).
    assert!(mbps > 500.0, "cached rereads should be fast, got {mbps:.0}");
}

#[test]
fn buffered_writes_absorb_at_memory_speed_until_dirty_limit() {
    let (mut w, k) = world_with(Box::new(BlockOnly::new(Noop::new())), DeviceKind::hdd());
    let file = w.prealloc_file(k, 4 * 1024 * MB, true);
    let mut offset = 0u64;
    let writer = move |_now: SimTime, _l: &Outcome| {
        let a = ProcAction::Syscall(SyscallKind::Write {
            file,
            offset,
            len: MB,
        });
        offset += MB;
        a
    };
    let pid = w.spawn(k, Box::new(writer));
    w.run_for(SimDuration::from_millis(200));
    let fast = w.kernel(k).stats.proc(pid).unwrap().write_bytes;
    // 1 GB memory, 20% dirty ratio = ~200 MB absorbed quickly (plus drain).
    assert!(
        fast >= 190 * MB,
        "should absorb ~dirty_limit quickly, got {} MB",
        fast / MB
    );
    w.run_for(SimDuration::from_secs(2));
    let later = w.kernel(k).stats.proc(pid).unwrap().write_bytes;
    // After the limit, progress is bounded by device drain (~110 MB/s).
    let drain_mb = (later - fast) / MB;
    assert!(
        drain_mb < 400,
        "post-limit progress should be disk-bound, got {drain_mb} MB in 2 s"
    );
    assert!(drain_mb > 50, "but writeback must drain: {drain_mb} MB");
}

#[test]
fn fsync_is_durable_and_resumes_the_process() {
    let (mut w, k) = world_with(
        Box::new(BlockOnly::new(BlockDeadline::new())),
        DeviceKind::hdd(),
    );
    let file = w.prealloc_file(k, 64 * MB, true);
    let mut step = 0u64;
    let app = move |_now: SimTime, _l: &Outcome| {
        let a = match step % 2 {
            0 => ProcAction::Syscall(SyscallKind::Write {
                file,
                offset: (step / 2) * 4 * KB,
                len: 4 * KB,
            }),
            _ => ProcAction::Syscall(SyscallKind::Fsync { file }),
        };
        step += 1;
        a
    };
    let pid = w.spawn(k, Box::new(app));
    w.run_for(SimDuration::from_secs(2));
    let st = w.kernel(k).stats.proc(pid).unwrap();
    assert!(st.fsyncs.len() > 10, "got {} fsyncs", st.fsyncs.len());
    for (_, lat) in &st.fsyncs {
        assert!(*lat > SimDuration::ZERO);
        assert!(*lat < SimDuration::from_secs(1), "fsync took {lat:?}");
    }
    // fsync on HDD costs at least a couple of writes.
    let (_, first) = st.fsyncs[0];
    assert!(first >= SimDuration::from_micros(100));
}

#[test]
fn cfq_gives_higher_priority_readers_more_throughput() {
    let (mut w, k) = world_with(Box::new(BlockOnly::new(Cfq::new())), DeviceKind::hdd());
    let mut pids = Vec::new();
    for level in [0u8, 7] {
        let file = w.prealloc_file(k, 2 * 1024 * MB, true);
        let pid = w.spawn(k, Box::new(seq_reader(file, 2 * 1024 * MB, MB)));
        w.set_ioprio(k, pid, IoPrio::best_effort(level));
        pids.push(pid);
    }
    w.run_for(SimDuration::from_secs(4));
    let hi = w.kernel(k).stats.proc(pids[0]).unwrap().read_bytes;
    let lo = w.kernel(k).stats.proc(pids[1]).unwrap().read_bytes;
    assert!(
        hi as f64 > 2.0 * lo as f64,
        "prio 0 should far outrun prio 7: {} vs {} MB",
        hi / MB,
        lo / MB
    );
    assert!(lo > 0, "low priority must not starve completely");
}

#[test]
fn creat_loop_commits_metadata() {
    let (mut w, k) = world_with(
        Box::new(BlockOnly::new(BlockDeadline::new())),
        DeviceKind::hdd(),
    );
    let app = move |_now: SimTime, last: &Outcome| {
        if let Outcome::Created(f) = last {
            ProcAction::Syscall(SyscallKind::Fsync { file: *f })
        } else {
            ProcAction::Syscall(SyscallKind::Create)
        }
    };
    let pid = w.spawn(k, Box::new(app));
    w.run_for(SimDuration::from_secs(1));
    let st = w.kernel(k).stats.proc(pid).unwrap();
    assert!(st.meta_ops.len() > 5, "creats: {}", st.meta_ops.len());
    assert!(
        st.fsyncs.len() > 5,
        "fsync-after-creat: {}",
        st.fsyncs.len()
    );
    // Journal I/O happened (fsync of metadata-only files forces commits).
    assert!(w.kernel(k).stats.requests_dispatched > 10);
}

#[test]
fn spin_threads_slow_io_via_cpu_contention() {
    // An I/O-bound reader plus many spinning threads on an 8-core machine.
    let mut results = Vec::new();
    for spinners in [0usize, 256] {
        let (mut w, k) = world_with(Box::new(BlockOnly::new(Noop::new())), DeviceKind::ssd());
        let file = w.prealloc_file(k, 1024 * MB, true);
        let pid = w.spawn(k, Box::new(seq_reader(file, 1024 * MB, 64 * KB)));
        for _ in 0..spinners {
            w.spawn(
                k,
                Box::new(|_now: SimTime, _l: &Outcome| {
                    ProcAction::Compute(SimDuration::from_millis(1))
                }),
            );
        }
        w.run_for(SimDuration::from_secs(1));
        results.push(w.kernel(k).stats.read_mbps(pid, SimDuration::from_secs(1)));
    }
    assert!(
        results[0] > 3.0 * results[1],
        "256 spinners should crush reader throughput: {results:?}"
    );
}

#[test]
fn guest_kernel_reads_through_virtual_disk() {
    let mut w = World::new();
    // Host: HDD + noop.
    let host = w.add_kernel(
        KernelConfig::default(),
        DeviceKind::hdd(),
        Box::new(BlockOnly::new(Noop::new())),
    );
    // Disk image on the host.
    let image = w.prealloc_file(host, 2 * 1024 * MB, true);
    let vmm_pid = w.spawn_external(host);
    // Guest: small cache so guest reads miss, virtual device.
    let guest = w.add_kernel(
        KernelConfig {
            cache: CacheConfig {
                mem_bytes: 64 * MB,
                ..Default::default()
            },
            ..Default::default()
        },
        DeviceKind::virtio(host, image, vmm_pid),
        Box::new(BlockOnly::new(Noop::new())),
    );
    let gfile = w.prealloc_file(guest, 1024 * MB, true);
    let pid = w.spawn(guest, Box::new(seq_reader(gfile, 1024 * MB, 128 * KB)));
    w.run_for(SimDuration::from_secs(1));
    let guest_read = w.kernel(guest).stats.proc(pid).unwrap().read_bytes;
    assert!(
        guest_read > 20 * MB,
        "guest read {} MB through the virtual disk",
        guest_read / MB
    );
    // The host actually did the I/O on behalf of the VMM process.
    let host_vmm = w.kernel(host).stats.proc(vmm_pid).unwrap();
    assert!(host_vmm.read_bytes > 0 || host_vmm.reads > 0);
    assert_eq!(
        host_vmm.reads + host_vmm.writes,
        host_vmm.reads,
        "reads only"
    );
}

#[test]
fn per_process_stats_track_gated_time_zero_without_gating() {
    let (mut w, k) = world_with(Box::new(BlockOnly::new(Noop::new())), DeviceKind::ssd());
    let file = w.prealloc_file(k, 16 * MB, true);
    let mut offset = 0;
    let writer = move |_n: SimTime, _l: &Outcome| {
        let a = ProcAction::Syscall(SyscallKind::Write {
            file,
            offset,
            len: 4 * KB,
        });
        offset = (offset + 4 * KB) % (16 * MB);
        a
    };
    let pid = w.spawn(k, Box::new(writer));
    w.run_for(SimDuration::from_millis(100));
    let st = w.kernel(k).stats.proc(pid).unwrap();
    assert_eq!(st.gated_time, SimDuration::ZERO);
    assert!(st.writes > 100);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let (mut w, k) = world_with(Box::new(BlockOnly::new(Cfq::new())), DeviceKind::hdd());
        let file = w.prealloc_file(k, 512 * MB, false);
        let pid = w.spawn(k, Box::new(seq_reader(file, 512 * MB, 256 * KB)));
        w.run_for(SimDuration::from_millis(500));
        (
            w.kernel(k).stats.proc(pid).unwrap().read_bytes,
            w.kernel(k).stats.requests_dispatched,
        )
    };
    assert_eq!(run(), run(), "same seed, same result");
}
