#![warn(missing_docs)]
//! The simulated kernel: processes, system calls, CPU contention, the
//! writeback daemon, and the event loop tying the page cache, file system,
//! scheduler and device together.
//!
//! A [`World`] owns one or more [`Kernel`]s (several for the QEMU and HDFS
//! scenarios) and a single deterministic event queue. Processes are state
//! machines implementing [`ProcessLogic`]; each kernel executes their
//! system calls exactly the way the paper describes the Linux stack:
//!
//! * gated syscalls (`write`, `fsync`, `creat`, `mkdir`, `unlink`) pass
//!   through the scheduler's syscall-entry hook, which may park the caller;
//! * buffered writes dirty tagged pages and are throttled against
//!   `dirty_ratio`;
//! * reads are served from the cache or turned into sync block requests;
//! * the writeback daemon (pdflush) and the journal task submit delegated
//!   I/O under proxy tags;
//! * the block layer is driven by whatever [`split_core::IoSched`] the
//!   kernel was built with.

pub mod cpu;
pub mod kernel;
pub mod process;
pub mod stats;
pub mod trace;
pub mod world;

pub use cpu::{CpuCosts, CpuModel};
pub use kernel::{DeviceKind, FsChoice, Kernel, KernelConfig, QueuePlane};
pub use process::{Outcome, ProcAction, ProcessLogic};
pub use stats::{KernelStats, ProcStats};
pub use trace::{RequestTrace, TraceRecord};
pub use world::{AppEvent, Event, InjectTarget, World};
