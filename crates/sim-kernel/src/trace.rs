//! Request-level block tracing, re-exported from [`sim_trace`]. The
//! implementation moved there so the flat per-request table and the
//! span layer share one recording path (`Tracer::record_block`);
//! existing `use sim_kernel::trace::*` call sites keep working.

pub use sim_trace::{RequestTrace, TraceRecord};
