//! Optional request-level tracing: when enabled on a kernel, every block
//! request's dispatch is recorded with its submitter, cause tags, location
//! and service time. Experiments use it to export the raw series behind
//! the figures (e.g. Figure 12's latency timeline) and tests use it to
//! assert on exact I/O interleavings.

use sim_block::{ReqKind, Request};
use sim_core::{CauseSet, FileId, Pid, SimDuration, SimTime};
use sim_device::IoDir;

/// One traced block request.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// When the request was dispatched to the device.
    pub dispatched_at: SimTime,
    /// When it entered the block layer.
    pub submitted_at: SimTime,
    /// Device service time (zero for virtual devices).
    pub service: SimDuration,
    /// Direction.
    pub dir: IoDir,
    /// Data / journal / metadata.
    pub kind: ReqKind,
    /// Submitting task.
    pub submitter: Pid,
    /// Responsible processes.
    pub causes: CauseSet,
    /// Start block.
    pub start: u64,
    /// Blocks.
    pub nblocks: u64,
    /// Owning file, if known.
    pub file: Option<FileId>,
}

impl TraceRecord {
    /// Queueing delay: dispatch minus submission.
    pub fn queue_delay(&self) -> SimDuration {
        self.dispatched_at.since(self.submitted_at)
    }
}

/// A bounded in-memory trace of dispatched requests.
#[derive(Debug, Default)]
pub struct RequestTrace {
    records: Vec<TraceRecord>,
    cap: usize,
    dropped: u64,
}

impl RequestTrace {
    /// A trace holding at most `cap` records (older records are kept;
    /// overflow is counted, not silently ignored).
    pub fn with_capacity(cap: usize) -> Self {
        RequestTrace {
            records: Vec::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    pub(crate) fn record(&mut self, req: &Request, service: SimDuration, now: SimTime) {
        if self.records.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord {
            dispatched_at: now,
            submitted_at: req.submitted_at,
            service,
            dir: req.dir,
            kind: req.kind,
            submitter: req.submitter,
            causes: req.causes.clone(),
            start: req.start.raw(),
            nblocks: req.nblocks,
            file: req.file,
        });
    }

    /// The recorded requests, in dispatch order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Requests that did not fit in the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Export as CSV (header + one row per record).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "dispatched_s,submitted_s,service_ms,queue_ms,dir,kind,submitter,causes,start,nblocks,file\n",
        );
        for r in &self.records {
            let causes: Vec<String> = r.causes.iter().map(|p| p.raw().to_string()).collect();
            out.push_str(&format!(
                "{:.6},{:.6},{:.3},{:.3},{:?},{:?},{},{},{},{},{}\n",
                r.dispatched_at.as_secs_f64(),
                r.submitted_at.as_secs_f64(),
                r.service.as_millis_f64(),
                r.queue_delay().as_millis_f64(),
                r.dir,
                r.kind,
                r.submitter.raw(),
                causes.join("|"),
                r.start,
                r.nblocks,
                r.file.map(|f| f.raw().to_string()).unwrap_or_default(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{BlockNo, RequestId};

    fn req(id: u64, start: u64) -> Request {
        Request {
            id: RequestId(id),
            dir: IoDir::Write,
            start: BlockNo(start),
            nblocks: 4,
            submitter: Pid(7),
            causes: CauseSet::from_pids([Pid(1), Pid(2)]),
            sync: false,
            ioprio: Default::default(),
            deadline: None,
            submitted_at: SimTime::from_nanos(1_000_000),
            file: Some(FileId(9)),
            kind: ReqKind::Data,
        }
    }

    #[test]
    fn records_and_exports_csv() {
        let mut t = RequestTrace::with_capacity(10);
        t.record(&req(1, 100), SimDuration::from_millis(5), SimTime::from_nanos(3_000_000));
        assert_eq!(t.records().len(), 1);
        let r = &t.records()[0];
        assert_eq!(r.queue_delay(), SimDuration::from_millis(2));
        let csv = t.to_csv();
        assert!(csv.starts_with("dispatched_s,"));
        assert!(csv.contains("1|2"), "cause list exported: {csv}");
        assert!(csv.contains(",9\n"), "file id exported");
    }

    #[test]
    fn capacity_is_respected_and_counted() {
        let mut t = RequestTrace::with_capacity(2);
        for i in 0..5 {
            t.record(&req(i, i * 10), SimDuration::ZERO, SimTime::from_nanos(i));
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
    }
}
