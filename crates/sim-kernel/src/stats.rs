//! Measurement plumbing: per-process and per-kernel counters the
//! experiments read after (or during) a run.

use sim_core::stats::TimeSeries;
use sim_core::FastMap;
use sim_core::{Pid, SimDuration, SimTime};

/// Per-process counters.
#[derive(Debug, Default, Clone)]
pub struct ProcStats {
    /// Bytes returned by completed read syscalls.
    pub read_bytes: u64,
    /// Bytes accepted by completed write syscalls.
    pub write_bytes: u64,
    /// Completed read syscalls.
    pub reads: u64,
    /// Completed write syscalls.
    pub writes: u64,
    /// Completed fsyncs with their (completion time, latency).
    pub fsyncs: Vec<(SimTime, SimDuration)>,
    /// Completed creat/mkdir/unlink calls, with completion times.
    pub meta_ops: Vec<SimTime>,
    /// Total time spent parked at the syscall gate.
    pub gated_time: SimDuration,
    /// Syscalls that returned `Outcome::Failed` (fault injection).
    pub io_errors: u64,
}

/// Per-kernel counters.
#[derive(Debug, Default)]
pub struct KernelStats {
    /// Per-process stats.
    pub procs: FastMap<Pid, ProcStats>,
    /// Block requests seen, by submitter best-effort priority level
    /// (Figure 3's right panel).
    pub req_prio_hist: [u64; 8],
    /// Disk busy seconds charged to each pid through request cause tags.
    pub disk_time: FastMap<Pid, f64>,
    /// Total block requests dispatched.
    pub requests_dispatched: u64,
    /// Total bytes moved by the device.
    pub device_bytes: u64,
    /// Optional per-pid throughput time series (read-completion bytes).
    pub read_ts: FastMap<Pid, TimeSeries>,
    /// Optional per-pid write-syscall time series.
    pub write_ts: FastMap<Pid, TimeSeries>,
    /// Block requests failed by the fault plane.
    pub io_errors: u64,
    /// Journal aborts observed (fault injection).
    pub journal_aborts: u64,
}

impl KernelStats {
    /// Stats row for `pid` (creating it if needed).
    pub fn proc_mut(&mut self, pid: Pid) -> &mut ProcStats {
        self.procs.entry(pid).or_default()
    }

    /// Stats row for `pid`, if it ever did anything.
    pub fn proc(&self, pid: Pid) -> Option<&ProcStats> {
        self.procs.get(&pid)
    }

    /// Read throughput of `pid` in MB/s over `window`.
    pub fn read_mbps(&self, pid: Pid, window: SimDuration) -> f64 {
        let bytes = self.procs.get(&pid).map(|p| p.read_bytes).unwrap_or(0);
        bytes as f64 / 1e6 / window.as_secs_f64()
    }

    /// Write throughput of `pid` in MB/s over `window`.
    pub fn write_mbps(&self, pid: Pid, window: SimDuration) -> f64 {
        let bytes = self.procs.get(&pid).map(|p| p.write_bytes).unwrap_or(0);
        bytes as f64 / 1e6 / window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_helpers() {
        let mut s = KernelStats::default();
        s.proc_mut(Pid(1)).read_bytes = 10_000_000;
        s.proc_mut(Pid(1)).write_bytes = 5_000_000;
        assert!((s.read_mbps(Pid(1), SimDuration::from_secs(2)) - 5.0).abs() < 1e-9);
        assert!((s.write_mbps(Pid(1), SimDuration::from_secs(1)) - 5.0).abs() < 1e-9);
        assert_eq!(s.read_mbps(Pid(9), SimDuration::from_secs(1)), 0.0);
    }
}
