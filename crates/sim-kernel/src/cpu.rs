//! A coarse CPU model: compute bursts and per-syscall CPU costs are
//! stretched by the ratio of runnable tasks to cores, sampled when the
//! burst starts. This is what makes hundreds of spinning threads slow an
//! I/O-bound process even though they issue no I/O (Figure 15).

use sim_core::SimDuration;

/// Per-syscall CPU cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct CpuCosts {
    /// Fixed entry/exit cost of any system call.
    pub syscall_base: SimDuration,
    /// Cost to copy one 4 KB page between user and kernel space (bounds
    /// cached-read throughput).
    pub per_page_copy: SimDuration,
    /// Extra cost a scheduler's syscall-level bookkeeping adds per gated
    /// call (SCS pays this on *every* call including reads; split
    /// schedulers only on write-like calls). The default reflects the
    /// paper's observation that SCS's per-call traffic-shaping logic is
    /// expensive enough to cost it 2.3x on cached reads (§5.3), and that
    /// AFQ's per-write bookkeeping makes it slightly slower than CFQ on
    /// in-memory overwrites (Figure 11d).
    pub sched_bookkeeping: SimDuration,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            syscall_base: SimDuration::from_micros(2),
            per_page_copy: SimDuration::from_micros(2),
            sched_bookkeeping: SimDuration::from_micros(25),
        }
    }
}

/// Runnable-task accounting.
#[derive(Debug, Clone)]
pub struct CpuModel {
    cores: u32,
    runnable: u32,
}

impl CpuModel {
    /// A machine with `cores` cores.
    pub fn new(cores: u32) -> Self {
        CpuModel {
            cores: cores.max(1),
            runnable: 0,
        }
    }

    /// A task became runnable.
    pub fn task_runnable(&mut self) {
        self.runnable += 1;
    }

    /// A task blocked / exited.
    pub fn task_blocked(&mut self) {
        debug_assert!(self.runnable > 0, "runnable underflow");
        self.runnable = self.runnable.saturating_sub(1);
    }

    /// Currently runnable tasks.
    pub fn runnable(&self) -> u32 {
        self.runnable
    }

    /// Core count.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Contention factor: 1.0 while the machine has spare cores, then the
    /// oversubscription ratio.
    pub fn contention(&self) -> f64 {
        if self.runnable <= self.cores {
            1.0
        } else {
            self.runnable as f64 / self.cores as f64
        }
    }

    /// Stretch a CPU burst by the current contention.
    pub fn stretch(&self, d: SimDuration) -> SimDuration {
        d.mul_f64(self.contention())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_contention_below_core_count() {
        let mut c = CpuModel::new(8);
        for _ in 0..8 {
            c.task_runnable();
        }
        assert_eq!(c.contention(), 1.0);
        let d = SimDuration::from_micros(10);
        assert_eq!(c.stretch(d), d);
    }

    #[test]
    fn oversubscription_stretches_time() {
        let mut c = CpuModel::new(4);
        for _ in 0..16 {
            c.task_runnable();
        }
        assert_eq!(c.contention(), 4.0);
        assert_eq!(
            c.stretch(SimDuration::from_micros(10)),
            SimDuration::from_micros(40)
        );
        for _ in 0..12 {
            c.task_blocked();
        }
        assert_eq!(c.contention(), 1.0);
    }

    #[test]
    fn blocked_saturates() {
        let mut c = CpuModel::new(1);
        c.task_runnable();
        c.task_blocked();
        assert_eq!(c.runnable(), 0);
    }
}
