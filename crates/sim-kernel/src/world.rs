//! The simulation world: the event queue plus one or more kernels, with
//! cross-kernel routing for the nested-VM and distributed scenarios.

use sim_core::{EventQueue, FileId, KernelId, Pid, RequestId, SimDuration, SimTime};
use split_core::{IoSched, SchedAttr, SyscallKind};

use crate::kernel::{DeviceKind, Kernel, KernelConfig};
use crate::process::ProcessLogic;

/// Everything that can happen in a world.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A process is runnable again.
    ProcStep {
        /// Kernel.
        k: KernelId,
        /// Process.
        pid: Pid,
    },
    /// The device finished a request.
    DeviceDone {
        /// Kernel.
        k: KernelId,
        /// Request.
        req: RequestId,
    },
    /// Re-poll block dispatch (after a scheduler `WaitUntil`).
    DispatchRetry {
        /// Kernel.
        k: KernelId,
    },
    /// A scheduler timer fired.
    SchedTimer {
        /// Kernel.
        k: KernelId,
    },
    /// The file system's periodic tick (journal commit interval).
    FsTimer {
        /// Kernel.
        k: KernelId,
    },
    /// The writeback daemon's poll tick.
    WritebackTick {
        /// Kernel.
        k: KernelId,
    },
    /// An application-level timer (drained via [`World::drain_app_events`]).
    AppTimer {
        /// Caller-chosen correlation token.
        token: u64,
    },
}

/// Where the completion of an injected syscall should be reported.
#[derive(Debug, Clone, Copy)]
pub enum InjectTarget {
    /// It backs a guest kernel's virtual-disk request.
    GuestVirtio {
        /// Guest kernel.
        guest: KernelId,
        /// Guest block request.
        req: RequestId,
    },
    /// An application driver (HDFS) is waiting; reported as an
    /// [`AppEvent::InjectedDone`].
    App {
        /// Caller-chosen correlation token.
        token: u64,
    },
}

/// Events surfaced to application drivers outside the kernels.
#[derive(Debug, Clone, Copy)]
pub enum AppEvent {
    /// An injected syscall completed.
    InjectedDone {
        /// The token passed at injection.
        token: u64,
        /// Completion time.
        now: SimTime,
    },
    /// An application timer fired.
    Timer {
        /// The token passed at scheduling.
        token: u64,
        /// Fire time.
        now: SimTime,
    },
}

/// Cross-kernel actions produced inside a kernel and executed by the world.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CrossAction {
    InjectSyscall {
        kernel: KernelId,
        pid: Pid,
        kind: SyscallKind,
        target: InjectTarget,
    },
    VirtioDone {
        guest: KernelId,
        req: RequestId,
    },
}

/// Shared plumbing passed into kernel methods: the event queue plus the
/// cross-kernel and application outboxes.
pub struct Bus {
    /// The world's event queue.
    pub q: EventQueue<Event>,
    /// Application events awaiting [`World::drain_app_events`].
    pub app_events: Vec<AppEvent>,
    pub(crate) cross: Vec<CrossAction>,
}

/// A deterministic simulation world.
pub struct World {
    bus: Bus,
    kernels: Vec<Kernel>,
}

impl Default for World {
    fn default() -> Self {
        Self::new()
    }
}

impl World {
    /// An empty world at t = 0. If a self-profiler is installed on the
    /// current thread (see [`sim_core::prof::install_thread`]) the event
    /// queue picks it up; profiling observes wall-clock time only and
    /// never changes simulation output.
    pub fn new() -> Self {
        let mut q = EventQueue::new();
        if let Some(p) = sim_core::prof::thread_profiler() {
            q.set_profiler(p);
        }
        World {
            bus: Bus {
                q,
                app_events: Vec::new(),
                cross: Vec::new(),
            },
            kernels: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.bus.q.now()
    }

    /// Events processed by the world's queue so far (throughput
    /// benchmarks report events per wall-clock second from this).
    pub fn events_processed(&self) -> u64 {
        self.bus.q.events_processed()
    }

    /// Add a machine; returns its id.
    pub fn add_kernel(
        &mut self,
        cfg: KernelConfig,
        device: DeviceKind,
        sched: Box<dyn IoSched>,
    ) -> KernelId {
        let id = KernelId(self.kernels.len() as u32);
        let mut k = Kernel::new(id, cfg, device, sched);
        k.start_timers(&mut self.bus);
        self.kernels.push(k);
        id
    }

    /// Immutable access to a kernel.
    pub fn kernel(&self, k: KernelId) -> &Kernel {
        &self.kernels[k.raw() as usize]
    }

    /// Turn on span/metrics tracing for kernel `k`.
    pub fn enable_tracing(&mut self, k: KernelId) {
        self.kernels[k.raw() as usize].enable_tracing();
    }

    /// Kernel `k`'s tracer (spans, counters, gauges, histograms).
    pub fn tracer(&self, k: KernelId) -> &sim_trace::Tracer {
        self.kernels[k.raw() as usize].tracer()
    }

    /// Mutable access to a kernel (experiment setup).
    pub fn kernel_mut(&mut self, k: KernelId) -> &mut Kernel {
        &mut self.kernels[k.raw() as usize]
    }

    /// Run kernel `k`'s auditors with the quiescence flag set; call after
    /// the event queue drains (see [`World::run_to_idle`]).
    pub fn audit_quiesce(&mut self, k: KernelId) {
        self.kernels[k.raw() as usize].audit_quiesce(&self.bus);
    }

    /// How many events were scheduled in the past and clamped to `now`
    /// (should stay zero; the event-queue auditor reports increases and
    /// the check harness's drain gate fails the run).
    pub fn late_schedules(&self) -> u64 {
        self.bus.q.late_schedules()
    }

    /// Deliberately schedule one app timer behind the clock, tripping
    /// the late-schedule counter exactly as a buggy release-build caller
    /// would. Only useful to `runner check --inject-late`, which proves
    /// the gate turns a nonzero [`World::late_schedules`] into a failed
    /// run. No-op at t = 0, where no earlier time exists.
    pub fn inject_late_schedule(&mut self) {
        let now = self.now();
        if now == SimTime::ZERO {
            return;
        }
        let past = SimTime::from_nanos(now.as_nanos() - 1);
        self.bus
            .q
            .schedule_unchecked(past, Event::AppTimer { token: u64::MAX });
    }

    /// Spawn a workload process on kernel `k`.
    pub fn spawn(&mut self, k: KernelId, logic: Box<dyn ProcessLogic>) -> Pid {
        let pid = self.kernels[k.raw() as usize].spawn(logic, &mut self.bus);
        self.settle();
        pid
    }

    /// Spawn an external (injection-driven) process on kernel `k`.
    pub fn spawn_external(&mut self, k: KernelId) -> Pid {
        self.kernels[k.raw() as usize].spawn_external()
    }

    /// Inject a syscall into an external process.
    pub fn inject(&mut self, k: KernelId, pid: Pid, kind: SyscallKind, target: InjectTarget) {
        self.kernels[k.raw() as usize].inject(pid, kind, target, &mut self.bus);
        self.settle();
    }

    /// Forward a scheduler attribute on kernel `k`.
    pub fn configure(&mut self, k: KernelId, pid: Pid, attr: SchedAttr) {
        self.kernels[k.raw() as usize].sched_configure(pid, attr, &mut self.bus);
        self.settle();
    }

    /// Set a process's I/O priority on kernel `k`.
    pub fn set_ioprio(&mut self, k: KernelId, pid: Pid, prio: sim_block::IoPrio) {
        self.kernels[k.raw() as usize].set_ioprio(pid, prio, &mut self.bus);
        self.settle();
    }

    /// Create a preallocated file on kernel `k`.
    pub fn prealloc_file(&mut self, k: KernelId, bytes: u64, contiguous: bool) -> FileId {
        self.kernels[k.raw() as usize].prealloc_file(bytes, contiguous)
    }

    /// Schedule an application timer.
    pub fn schedule_app_timer(&mut self, at: SimTime, token: u64) {
        self.bus
            .q
            .schedule(at.max(self.now()), Event::AppTimer { token });
    }

    /// Take the accumulated application events.
    pub fn drain_app_events(&mut self) -> Vec<AppEvent> {
        std::mem::take(&mut self.bus.app_events)
    }

    /// Run until at least one application event is pending (or the
    /// deadline / queue exhaustion), then return the drained events.
    /// Application drivers (the HDFS layer) alternate this with
    /// injections.
    pub fn run_until_app_events(&mut self, deadline: SimTime) -> Vec<AppEvent> {
        while self.bus.app_events.is_empty() {
            let Some(t) = self.bus.q.peek_time() else {
                break;
            };
            if t > deadline {
                break;
            }
            if !self.step() {
                break;
            }
        }
        self.drain_app_events()
    }

    /// Process a single event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.bus.q.pop() else {
            return false;
        };
        match ev.payload {
            Event::AppTimer { token } => {
                self.bus.app_events.push(AppEvent::Timer {
                    token,
                    now: ev.time,
                });
            }
            other => {
                let k = match other {
                    Event::ProcStep { k, .. }
                    | Event::DeviceDone { k, .. }
                    | Event::DispatchRetry { k }
                    | Event::SchedTimer { k }
                    | Event::FsTimer { k }
                    | Event::WritebackTick { k } => k,
                    Event::AppTimer { .. } => unreachable!(),
                };
                self.kernels[k.raw() as usize].handle(other, &mut self.bus);
            }
        }
        self.settle();
        true
    }

    /// Execute the pending cross-kernel actions (and any they cascade
    /// into).
    fn settle(&mut self) {
        while let Some(action) = {
            let bus = &mut self.bus;
            if bus.cross.is_empty() {
                None
            } else {
                Some(bus.cross.remove(0))
            }
        } {
            match action {
                CrossAction::InjectSyscall {
                    kernel,
                    pid,
                    kind,
                    target,
                } => {
                    self.kernels[kernel.raw() as usize].inject(pid, kind, target, &mut self.bus);
                }
                CrossAction::VirtioDone { guest, req } => {
                    self.kernels[guest.raw() as usize].virtio_done(req, &mut self.bus);
                }
            }
        }
    }

    /// Run until the queue is exhausted or `deadline` is reached; stops
    /// *before* processing any event beyond the deadline.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.bus.q.peek_time() {
            if t > deadline {
                break;
            }
            if !self.step() {
                break;
            }
        }
    }

    /// Run for a span of simulated time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now() + d;
        self.run_until(deadline);
    }

    /// Run until the queue empties (every process exited, no timers).
    /// Periodic kernel timers never stop, so this is only useful in
    /// worlds without kernels — prefer `run_until`.
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }
}
