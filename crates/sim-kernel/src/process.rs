//! The process model: a workload is a state machine that, each time it is
//! scheduled, returns its next action (a system call, a CPU burst, a sleep,
//! or exit).

use sim_core::{FileId, IoError, SimDuration, SimTime};
use split_core::SyscallKind;

/// What a process does next.
#[derive(Debug, Clone, Copy)]
pub enum ProcAction {
    /// Issue a system call (blocks until it completes).
    Syscall(SyscallKind),
    /// Burn CPU for the given amount of *uncontended* time; actual wall
    /// time is scaled by CPU contention.
    Compute(SimDuration),
    /// Sleep (not runnable) for the given time.
    Sleep(SimDuration),
    /// Terminate.
    Exit,
}

/// What the last action produced; handed to [`ProcessLogic::next`].
#[derive(Debug, Clone, Copy)]
pub enum Outcome {
    /// First scheduling, or completion of a compute/sleep.
    None,
    /// A read returned this many bytes.
    Read {
        /// Bytes delivered.
        bytes: u64,
        /// Whether every page came from the cache.
        all_cached: bool,
    },
    /// A write was buffered.
    Written {
        /// Bytes accepted.
        bytes: u64,
    },
    /// An fsync became durable.
    Synced,
    /// A creat returned the new file.
    Created(FileId),
    /// A mkdir/unlink finished.
    MetaDone,
    /// The call failed with an I/O error (fault injection): a read against
    /// a failed device request, or an fsync whose data or journal write
    /// was lost — the simulator's `EIO`.
    Failed(IoError),
}

/// A workload: the simulator calls `next` every time the process is
/// runnable again, passing the current time and the previous action's
/// outcome.
///
/// Implementations record their own measurements (latencies, counts)
/// internally — everything runs single-threaded, so an
/// `Rc<RefCell<Vec<_>>>` shared with the experiment harness is the usual
/// pattern.
pub trait ProcessLogic {
    /// Decide the next action.
    fn next(&mut self, now: SimTime, last: &Outcome) -> ProcAction;
}

impl<F: FnMut(SimTime, &Outcome) -> ProcAction> ProcessLogic for F {
    fn next(&mut self, now: SimTime, last: &Outcome) -> ProcAction {
        self(now, last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_process_logic() {
        let mut calls = 0;
        let mut p = |_now: SimTime, _last: &Outcome| {
            calls += 1;
            ProcAction::Exit
        };
        let a = ProcessLogic::next(&mut p, SimTime::ZERO, &Outcome::None);
        assert!(matches!(a, ProcAction::Exit));
        assert_eq!(calls, 1);
    }
}
