//! One machine's storage stack: processes → syscall layer → page cache →
//! file system → block layer → device, with the scheduler's hooks woven
//! through all of it.

use std::collections::VecDeque;

use sim_block::{Dispatch, IoPrio, MqDispatch, PrioClass, QueueOccupancy, ReqKind, Request};
use sim_cache::{CacheConfig, PageCache};
use sim_check::{AuditCheckpoint, AuditEvent, AuditPlane};
use sim_core::prof::{self, Phase, Profiler};
use sim_core::stats::TimeSeries;
use sim_core::{
    CauseSet, ChaosConfig, ChaosPlane, FileId, IdAlloc, IoError, IoErrorKind, KernelId, Pid,
    RequestId, SimDuration, SimTime, PAGE_SIZE,
};
use sim_core::{FastMap, FastSet};
use sim_device::{DiskModel, HddModel, QueuedDevice, QueuedDeviceConfig, SsdModel};
use sim_fault::{DeviceFaultPlane, Fault, WriteStep};
use sim_fs::{Extent, FileSystem, FsConfig, FsEvent, FsOutput, IoToken, JournaledFs};
use sim_trace::{slot_name, Layer, RequestTrace, SpanId, Tracer};
use split_core::{
    BufferDirtied, BufferFreed, Gate, IoSched, SchedAttr, SchedCmd, SchedCtx, SyscallInfo,
    SyscallKind,
};

use crate::cpu::{CpuCosts, CpuModel};
use crate::process::{Outcome, ProcAction, ProcessLogic};
use crate::stats::KernelStats;
use crate::world::{AppEvent, Bus, CrossAction, Event, InjectTarget};

/// The device backing a kernel's block layer.
pub enum DeviceKind {
    /// A physical disk model.
    Physical(Box<dyn DiskModel>),
    /// A virtual disk backed by a file on another (host) kernel — the
    /// QEMU configuration of §7.2. Guest block requests become host file
    /// syscalls issued by the host-side VMM process.
    Virtual {
        /// Host kernel.
        host: KernelId,
        /// Host file acting as the disk image.
        host_file: FileId,
        /// Host-side VMM process issuing the I/O.
        host_pid: Pid,
        /// Stand-in model for scheduler cost peeks inside the guest.
        peek: SsdModel,
    },
}

impl DeviceKind {
    /// A default hard disk.
    pub fn hdd() -> Self {
        DeviceKind::Physical(Box::new(HddModel::new()))
    }

    /// A default SSD.
    pub fn ssd() -> Self {
        DeviceKind::Physical(Box::new(SsdModel::new()))
    }

    /// A virtual disk (see [`DeviceKind::Virtual`]).
    pub fn virtio(host: KernelId, host_file: FileId, host_pid: Pid) -> Self {
        DeviceKind::Virtual {
            host,
            host_file,
            host_pid,
            peek: SsdModel::new(),
        }
    }

    fn peek(&self) -> &dyn DiskModel {
        match self {
            DeviceKind::Physical(m) => m.as_ref(),
            DeviceKind::Virtual { peek, .. } => peek,
        }
    }

    fn capacity_blocks(&self) -> u64 {
        self.peek().capacity_blocks()
    }
}

/// The device a built kernel actually drives: [`DeviceKind`] resolved
/// against the configured [`QueuePlane`].
enum ActiveDevice {
    /// Legacy single-slot physical device.
    Serial(Box<dyn DiskModel>),
    /// Physical device behind the queued plane: blk-mq software queues
    /// in front of a multi-slot hardware queue.
    Queued {
        /// The multi-request device front-end.
        dev: QueuedDevice,
        /// Per-process software queues + the live occupancy picture.
        mq: MqDispatch,
    },
    /// Virtual disk backed by a host file; always single-slot here (the
    /// host's own block layer provides any queueing).
    Virtual {
        host: KernelId,
        host_file: FileId,
        host_pid: Pid,
        peek: SsdModel,
    },
}

impl ActiveDevice {
    fn resolve(device: DeviceKind, queue: QueuePlane) -> Self {
        match device {
            DeviceKind::Physical(m) => match queue {
                QueuePlane::Serial => ActiveDevice::Serial(m),
                QueuePlane::Queued { depth } => {
                    let depth = depth.max(1);
                    ActiveDevice::Queued {
                        dev: QueuedDevice::new(m, QueuedDeviceConfig::with_depth(depth)),
                        mq: MqDispatch::new(depth),
                    }
                }
            },
            DeviceKind::Virtual {
                host,
                host_file,
                host_pid,
                peek,
            } => ActiveDevice::Virtual {
                host,
                host_file,
                host_pid,
                peek,
            },
        }
    }

    fn peek(&self) -> &dyn DiskModel {
        match self {
            ActiveDevice::Serial(m) => m.as_ref(),
            ActiveDevice::Queued { dev, .. } => dev.model(),
            ActiveDevice::Virtual { peek, .. } => peek,
        }
    }

    /// The hardware-queue occupancy picture, on the queued plane only.
    fn occupancy(&self) -> Option<&QueueOccupancy> {
        match self {
            ActiveDevice::Queued { mq, .. } => Some(mq.occupancy()),
            _ => None,
        }
    }
}

/// How the block layer drives a physical device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePlane {
    /// The legacy single-slot path: one request on the device at a time,
    /// submit → finish. The historical behaviour, byte for byte.
    Serial,
    /// The queued-device plane: per-process software queues
    /// ([`MqDispatch`]) feeding a hardware queue of `depth` slots
    /// ([`QueuedDevice`] — NCQ reordering on rotational models, channel
    /// parallelism on flash). `depth = 1` is byte-identical to
    /// [`QueuePlane::Serial`]. Virtual (host-backed) disks ignore this
    /// setting: their queueing lives in the host's own block layer.
    Queued {
        /// Hardware queue depth (NCQ tags / NVMe slots), at least 1.
        depth: u32,
    },
}

/// Which file system to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsChoice {
    /// ext4, fully integrated with the split framework.
    Ext4,
    /// XFS, partially integrated (untagged log task).
    Xfs,
}

/// Kernel construction parameters.
pub struct KernelConfig {
    /// File system.
    pub fs: FsChoice,
    /// Page-cache configuration.
    pub cache: CacheConfig,
    /// CPU cores.
    pub cores: u32,
    /// Whether the background writeback daemon (pdflush) runs on its own.
    /// Split-Deadline disables it to take full control of writeback
    /// (§7.1.2).
    pub pdflush: bool,
    /// Whether read syscalls pass through the scheduler's entry gate.
    /// False for block and split schedulers (the paper schedules reads
    /// below the cache); true for the SCS architecture.
    pub gate_reads: bool,
    /// CPU cost parameters.
    pub cpu: CpuCosts,
    /// Pages per background writeback pass.
    pub wb_batch_pages: u64,
    /// Background writeback poll interval.
    pub wb_tick: SimDuration,
    /// Extra entropy folded into the file system's layout RNG seed. Zero
    /// (the default) keeps the historical on-disk layout; sweeps set it to
    /// vary allocator and metadata placement across replicates.
    pub fs_seed: u64,
    /// Cross-layer invariant auditors. `None` (the default) keeps every
    /// hot path free of audit bookkeeping, mirroring the fault plane.
    pub audit: Option<AuditPlane>,
    /// Adversarial timing perturbation (the chaos plane). `None` (the
    /// default) keeps every run byte-identical to a build without the
    /// plane; `Some` jitters writeback wakeups, CPU slices, journal
    /// commit timing, and queued-device completion order within legal
    /// bounds (see [`sim_core::chaos`]).
    pub chaos: Option<ChaosConfig>,
    /// How the block layer drives a physical device (serial single-slot
    /// or the queued multi-request plane).
    pub queue: QueuePlane,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            fs: FsChoice::Ext4,
            cache: CacheConfig::default(),
            cores: 8,
            pdflush: true,
            gate_reads: false,
            cpu: CpuCosts::default(),
            wb_batch_pages: 2048,
            wb_tick: SimDuration::from_millis(200),
            fs_seed: 0,
            audit: None,
            chaos: None,
            queue: QueuePlane::Serial,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ProcAttrs {
    ioprio: IoPrio,
    read_deadline: Option<SimDuration>,
    write_deadline: Option<SimDuration>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    Fresh,
    Computing,
    Sleeping,
    GateWait,
    DirtyWait,
    IoWait,
    PostCpu,
    ExternalIdle,
    Exited,
}

struct CurSyscall {
    kind: SyscallKind,
    entered: SimTime,
    gate_since: Option<SimTime>,
    gated: bool,
    pending_io: FastSet<RequestId>,
    /// The syscall-layer span covering this call.
    span: SpanId,
    /// An open gate-wait or dirty-wait child span, if parked.
    wait_span: SpanId,
    /// First I/O error hit by this call's requests (fault injection); the
    /// call completes with `Outcome::Failed` once its I/O drains.
    error: Option<IoError>,
}

struct Proc {
    logic: Option<Box<dyn ProcessLogic>>,
    state: PState,
    cur: Option<CurSyscall>,
    last: Outcome,
    inject_target: Option<InjectTarget>,
}

#[derive(Default)]
struct ReqMeta {
    fs_token: Option<IoToken>,
    reader: Option<Pid>,
    fill: Option<(FileId, u64, u64)>,
    dirty_pages: u64,
    /// Block-layer queue span (submit → dispatch).
    queue_span: SpanId,
    /// Device service span (dispatch → completion).
    device_span: SpanId,
    /// Set at dispatch when the fault plane failed this request; routed to
    /// `io_failed`/`block_failed` instead of the success paths.
    failed: Option<IoError>,
    /// Fault-plane service-time multiplier, staged at dispatch for the
    /// queued plane (the device applies it when the request enters
    /// service, which may be later).
    spike: Option<f64>,
    /// Parent for the per-slot device span on the queued plane, stashed
    /// at dispatch (the slot span opens at device acceptance).
    span_parent: SpanId,
}

/// One simulated machine.
pub struct Kernel {
    /// This kernel's id in the world.
    pub id: KernelId,
    cfg: KernelConfig,
    sched: Box<dyn IoSched>,
    device: ActiveDevice,
    inflight: Option<(Request, SimDuration)>,
    /// In-flight requests on the queued plane, keyed by id (the device
    /// tracks ordering; this map only parks the request bodies and their
    /// committed service times until completion).
    q_inflight: FastMap<RequestId, (Request, SimDuration)>,
    req_meta: FastMap<RequestId, ReqMeta>,
    req_ids: IdAlloc,
    fs: JournaledFs,
    cache: PageCache,
    procs: FastMap<Pid, Proc>,
    attrs: FastMap<Pid, ProcAttrs>,
    pid_alloc: u32,
    cpu: CpuModel,
    dirty_waiters: VecDeque<Pid>,
    /// Dirty pages submitted to the block layer but not yet on media;
    /// still counted against the dirty threshold.
    wb_inflight_pages: u64,
    wb_active: bool,
    dispatching: bool,
    journal_pid: Pid,
    writeback_pid: Pid,
    /// Measurements.
    pub stats: KernelStats,
    tracer: Tracer,
    /// Fault-injection plan, if installed. `None` (the default) keeps the
    /// dispatch path byte-for-byte identical to the fault-free build.
    fault_plane: Option<DeviceFaultPlane>,
    /// Invariant auditors, if installed (same opt-in contract as the
    /// fault plane).
    audit: Option<AuditPlane>,
    /// Chaos plane, if installed (same opt-in contract as the fault
    /// plane). Its completion-jitter stream lives inside the queued
    /// device when one exists.
    chaos: Option<ChaosPlane>,
    /// Self-profiler plane, picked up from the thread at construction
    /// (see [`sim_core::prof::install_thread`]). `None` (the default)
    /// keeps hot paths free of profiling beyond one `Option` check;
    /// when present it only reads wall-clock time, never sim state.
    prof: Option<Profiler>,
    /// Reusable buffers for the read hot path: cache-miss runs and the
    /// extents backing each run.
    read_miss_scratch: Vec<(u64, u64)>,
    read_extent_scratch: Vec<Extent>,
    /// Recycled allocations for per-syscall / per-hook state: emptied
    /// `pending_io` sets and `SchedCtx` command buffers go back here and
    /// come out on the next use with their capacity intact. Pools (not
    /// single slots) because hook applications nest: `apply_cmds` can
    /// re-enter `with_sched` while the outer buffer is still out.
    pending_io_pool: Vec<FastSet<RequestId>>,
    sched_cmd_pool: Vec<Vec<SchedCmd>>,
}

impl Kernel {
    /// Build a kernel. Called through [`crate::World::add_kernel`].
    pub(crate) fn new(
        id: KernelId,
        mut cfg: KernelConfig,
        device: DeviceKind,
        sched: Box<dyn IoSched>,
    ) -> Self {
        let audit = cfg.audit.take();
        let journal_pid = Pid(1);
        let writeback_pid = Pid(2);
        let blocks = device.capacity_blocks();
        // One tracer per kernel, shared (disabled by default) with every
        // layer so spans opened in the fs or cache join the kernel's tree.
        let tracer = Tracer::for_kernel(id.raw());
        tracer.label_task(journal_pid, "journal");
        tracer.label_task(writeback_pid, "writeback");
        let mut fs_cfg = match cfg.fs {
            FsChoice::Ext4 => FsConfig::ext4(blocks),
            FsChoice::Xfs => FsConfig::xfs(blocks),
        };
        fs_cfg.seed ^= cfg.fs_seed;
        let mut fs = JournaledFs::new(fs_cfg, journal_pid, writeback_pid);
        fs.set_tracer(tracer.clone());
        let mut cache = PageCache::new(cfg.cache);
        cache.set_tracer(tracer.clone());
        let cores = cfg.cores;
        let mut device = ActiveDevice::resolve(device, cfg.queue);
        let chaos = cfg.chaos.as_ref().map(ChaosPlane::new);
        let chaos = chaos.map(|mut plane| {
            // On the queued plane the completion-jitter stream moves into
            // the device, which stretches service times where it already
            // applies fault spikes; the serial plane keeps the stream
            // here and applies it at issue.
            if let ActiveDevice::Queued { dev, .. } = &mut device {
                if let Some(jitter) = plane.take_completion_jitter() {
                    dev.install_chaos(jitter);
                }
            }
            plane
        });
        Kernel {
            id,
            cfg,
            sched,
            device,
            inflight: None,
            q_inflight: FastMap::default(),
            req_meta: FastMap::default(),
            req_ids: IdAlloc::new(),
            fs,
            cache,
            procs: FastMap::default(),
            attrs: FastMap::default(),
            pid_alloc: 10,
            cpu: CpuModel::new(cores),
            dirty_waiters: VecDeque::new(),
            wb_inflight_pages: 0,
            wb_active: false,
            dispatching: false,
            journal_pid,
            writeback_pid,
            stats: KernelStats::default(),
            tracer,
            fault_plane: None,
            audit,
            chaos,
            prof: prof::thread_profiler(),
            read_miss_scratch: Vec::new(),
            read_extent_scratch: Vec::new(),
            pending_io_pool: Vec::new(),
            sched_cmd_pool: Vec::new(),
        }
    }

    // ---- public API used by World and experiments -------------------------

    /// Spawn a workload process; its first step fires immediately.
    pub fn spawn(&mut self, logic: Box<dyn ProcessLogic>, bus: &mut Bus) -> Pid {
        let pid = self.alloc_pid();
        self.procs.insert(
            pid,
            Proc {
                logic: Some(logic),
                state: PState::Fresh,
                cur: None,
                last: Outcome::None,
                inject_target: None,
            },
        );
        bus.q
            .schedule(bus.q.now(), Event::ProcStep { k: self.id, pid });
        pid
    }

    /// Create a process with no logic of its own; syscalls are injected
    /// into it (VMM host process, HDFS datanode handlers).
    pub fn spawn_external(&mut self) -> Pid {
        let pid = self.alloc_pid();
        self.procs.insert(
            pid,
            Proc {
                logic: None,
                state: PState::ExternalIdle,
                cur: None,
                last: Outcome::None,
                inject_target: None,
            },
        );
        pid
    }

    fn alloc_pid(&mut self) -> Pid {
        let pid = Pid(self.pid_alloc);
        self.pid_alloc += 1;
        pid
    }

    /// Set a process's I/O priority (the `ionice` analogue). Forwarded to
    /// the scheduler as well.
    ///
    /// # Panics
    ///
    /// Rejects priorities with a zero service weight here, at configure
    /// time, so the elevators can rely on `weight >= 1` instead of
    /// clamping deep inside their slice arithmetic.
    pub fn set_ioprio(&mut self, pid: Pid, prio: IoPrio, bus: &mut Bus) {
        assert!(prio.weight() > 0, "I/O priority weight must be positive");
        self.attrs.entry(pid).or_default().ioprio = prio;
        self.sched_configure(pid, SchedAttr::Prio(prio), bus);
    }

    /// Per-process default block-read deadline.
    pub fn set_read_deadline(&mut self, pid: Pid, d: SimDuration, bus: &mut Bus) {
        self.attrs.entry(pid).or_default().read_deadline = Some(d);
        self.sched_configure(pid, SchedAttr::ReadDeadline(d), bus);
    }

    /// Per-process default block-write deadline.
    pub fn set_write_deadline(&mut self, pid: Pid, d: SimDuration, bus: &mut Bus) {
        self.attrs.entry(pid).or_default().write_deadline = Some(d);
        self.sched_configure(pid, SchedAttr::WriteDeadline(d), bus);
    }

    /// Forward an attribute straight to the scheduler.
    pub fn sched_configure(&mut self, pid: Pid, attr: SchedAttr, bus: &mut Bus) {
        self.sched.configure(pid, attr);
        // Configuration may unblock things (e.g. a raised token rate).
        self.run_sched_maintenance(bus);
    }

    /// Create a preallocated file (fixture).
    pub fn prealloc_file(&mut self, bytes: u64, contiguous: bool) -> FileId {
        self.fs.prealloc_file(bytes, contiguous)
    }

    /// Track a throughput time series for `pid`'s completed reads.
    pub fn track_read_ts(&mut self, pid: Pid, bucket: SimDuration) {
        self.stats.read_ts.insert(pid, TimeSeries::new(bucket));
    }

    /// Track a throughput time series for `pid`'s completed writes.
    pub fn track_write_ts(&mut self, pid: Pid, bucket: SimDuration) {
        self.stats.write_ts.insert(pid, TimeSeries::new(bucket));
    }

    /// The page cache (assertions and experiment setup).
    pub fn cache(&self) -> &PageCache {
        &self.cache
    }

    /// Mutable page-cache access (dirty-ratio sweeps).
    pub fn cache_mut(&mut self) -> &mut PageCache {
        &mut self.cache
    }

    /// The file system.
    pub fn fs(&self) -> &JournaledFs {
        &self.fs
    }

    /// The scheduler.
    pub fn sched(&self) -> &dyn IoSched {
        self.sched.as_ref()
    }

    /// Turn on span + metrics tracing for this kernel's entire stack
    /// (syscall gate, cache, fs journal, block queue, device service).
    /// Export with [`Kernel::tracer`] (`chrome_json`, `spans_csv`, ...).
    pub fn enable_tracing(&mut self) {
        self.tracer.set_enabled(true);
    }

    /// The tracing handle shared by every layer of this kernel.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Record every dispatched request into an in-memory trace
    /// (capacity-bounded, oldest kept); retrieve it with
    /// [`Kernel::trace_records`] or [`Kernel::trace_csv`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer
            .install_block_trace(RequestTrace::with_capacity(capacity));
    }

    /// Like [`Kernel::enable_trace`], but as a ring buffer that keeps the
    /// *newest* `capacity` dispatches — for long runs where the interesting
    /// window is the end.
    pub fn enable_trace_ring(&mut self, capacity: usize) {
        self.tracer
            .install_block_trace(RequestTrace::ring(capacity));
    }

    /// Snapshot of the recorded block dispatches, if tracing was enabled.
    pub fn trace_records(&self) -> Option<Vec<crate::trace::TraceRecord>> {
        self.tracer
            .with_block_trace(|t| t.iter().cloned().collect())
    }

    /// CSV export of the block trace, if tracing was enabled.
    pub fn trace_csv(&self) -> Option<String> {
        self.tracer.with_block_trace(|t| t.to_csv())
    }

    /// Install a device fault plan. Only physical devices are affected;
    /// requests on a virtual (host-backed) disk fail through the host's
    /// own plane instead.
    pub fn install_fault_plane(&mut self, plane: DeviceFaultPlane) {
        self.fault_plane = Some(plane);
    }

    /// The installed fault plane, if any (inspect its injection log).
    pub fn fault_plane(&self) -> Option<&DeviceFaultPlane> {
        self.fault_plane.as_ref()
    }

    /// Install an invariant auditor plane (alternative to
    /// [`KernelConfig::audit`] for kernels built before the plane exists).
    pub fn install_audit_plane(&mut self, plane: AuditPlane) {
        self.audit = Some(plane);
    }

    /// The installed auditor plane, if any (inspect its violations).
    pub fn audit_plane(&self) -> Option<&AuditPlane> {
        self.audit.as_ref()
    }

    /// Whether the block layer is fully drained: nothing queued in the
    /// scheduler and nothing on the device. The check harness requires
    /// this before declaring quiescence.
    pub fn block_idle(&self) -> bool {
        let device_idle = match &self.device {
            ActiveDevice::Queued { dev, mq } => dev.in_flight() == 0 && mq.staged() == 0,
            _ => self.inflight.is_none(),
        };
        device_idle && self.sched.queued() == 0
    }

    /// Run the auditors' final checkpoint with the quiescence flag set;
    /// call once after the event queue drains.
    pub fn audit_quiesce(&mut self, bus: &Bus) {
        self.audit_checkpoint(bus, true);
    }

    /// Feed one audit event to the plane, if installed.
    fn audit_event(&mut self, now: SimTime, ev: AuditEvent<'_>) {
        if let Some(plane) = self.audit.as_mut() {
            plane.observe(now, &ev);
        }
    }

    /// Snapshot cross-layer counters for the plane's checkpoint auditors.
    fn audit_checkpoint(&mut self, bus: &Bus, quiesced: bool) {
        if self.audit.is_none() {
            return;
        }
        let sched_errors = self.sched.audit(quiesced);
        let cp = AuditCheckpoint {
            now: bus.q.now(),
            cache_dirty_total: self.cache.dirty_total(),
            cache_dirty_sum: self.cache.dirty_check_sum(),
            sched_errors: &sched_errors,
            late_events: bus.q.late_schedules(),
            quiesced,
        };
        self.audit.as_mut().expect("checked above").checkpoint(&cp);
    }

    /// The writeback daemon's pid.
    pub fn writeback_pid(&self) -> Pid {
        self.writeback_pid
    }

    /// The journal task's pid.
    pub fn journal_pid(&self) -> Pid {
        self.journal_pid
    }

    /// Arm the kernel's periodic timers; called once by the world.
    pub(crate) fn start_timers(&mut self, bus: &mut Bus) {
        let now = bus.q.now();
        let fs_at = self.next_fs_timer(now);
        bus.q.schedule(fs_at, Event::FsTimer { k: self.id });
        let wb = self.next_wb_tick();
        bus.q
            .schedule(now + wb, Event::WritebackTick { k: self.id });
    }

    /// When the journal timer fires next, chaos jitter applied. The
    /// perturbed instant is always strictly after `now`.
    fn next_fs_timer(&mut self, now: SimTime) -> SimTime {
        let at = self.fs.next_timer(now);
        match self.chaos.as_mut() {
            Some(c) => now + c.journal_tick(at.since(now)),
            None => at,
        }
    }

    /// The writeback daemon's next poll interval, chaos jitter applied.
    fn next_wb_tick(&mut self) -> SimDuration {
        match self.chaos.as_mut() {
            Some(c) => c.wb_tick(self.cfg.wb_tick),
            None => self.cfg.wb_tick,
        }
    }

    /// Extra chaos wakeup delay for one CPU slice (zero without chaos):
    /// the analogue of scx_chaos stretching scheduling latency.
    fn chaos_cpu_delay(&mut self) -> SimDuration {
        match self.chaos.as_mut() {
            Some(c) => c.cpu_delay(),
            None => SimDuration::ZERO,
        }
    }

    /// Begin an injected syscall on an external process.
    pub(crate) fn inject(
        &mut self,
        pid: Pid,
        kind: SyscallKind,
        target: InjectTarget,
        bus: &mut Bus,
    ) {
        {
            let proc = self.procs.get_mut(&pid).expect("external proc exists");
            debug_assert_eq!(proc.state, PState::ExternalIdle, "one syscall at a time");
            proc.inject_target = Some(target);
        }
        self.begin_syscall(pid, kind, bus);
    }

    // ---- event handling ---------------------------------------------------

    /// Route one event.
    pub(crate) fn handle(&mut self, ev: Event, bus: &mut Bus) {
        match ev {
            Event::ProcStep { pid, .. } => self.proc_step(pid, bus),
            Event::DeviceDone { req, .. } => self.device_done(req, bus),
            Event::DispatchRetry { .. } => self.try_dispatch(bus),
            Event::SchedTimer { .. } => {
                self.with_sched(bus, |s, ctx| s.timer_fired(ctx));
                self.try_dispatch(bus);
            }
            Event::FsTimer { .. } => {
                let now = bus.q.now();
                let t0 = prof::tick(&self.prof);
                let out = self.fs.timer(&mut self.cache, now);
                prof::tock(&self.prof, Phase::Journal, t0);
                self.absorb(out, bus);
                let at = self.next_fs_timer(now);
                bus.q.schedule(at, Event::FsTimer { k: self.id });
            }
            Event::WritebackTick { .. } => {
                if self.cfg.pdflush && self.cache.over_background() {
                    self.kick_writeback(bus);
                }
                let tick = self.next_wb_tick();
                bus.q
                    .schedule(bus.q.now() + tick, Event::WritebackTick { k: self.id });
            }
            Event::AppTimer { .. } => unreachable!("app timers are handled by the world"),
        }
    }

    /// Completion of a virtual-disk request (host syscall finished).
    pub(crate) fn virtio_done(&mut self, req_id: RequestId, bus: &mut Bus) {
        let Some((req, _)) = self.inflight.take() else {
            return;
        };
        debug_assert_eq!(req.id, req_id);
        if self.audit.is_some() {
            let now = bus.q.now();
            self.audit_event(
                now,
                AuditEvent::SlotReleased {
                    req: &req,
                    slot: 0,
                    in_flight: 0,
                },
            );
        }
        self.finish_request(req, SimDuration::ZERO, bus);
    }

    // ---- process scheduling -----------------------------------------------

    fn proc_step(&mut self, pid: Pid, bus: &mut Bus) {
        let state = match self.procs.get(&pid) {
            Some(p) => p.state,
            None => return,
        };
        match state {
            PState::Computing | PState::PostCpu => self.cpu.task_blocked(),
            PState::Fresh | PState::Sleeping => {}
            // A stale step for a process that moved into a wait.
            _ => return,
        }
        let (action, last) = {
            let proc = self.procs.get_mut(&pid).expect("checked");
            let last = std::mem::replace(&mut proc.last, Outcome::None);
            let Some(logic) = proc.logic.as_mut() else {
                proc.state = PState::ExternalIdle;
                return;
            };
            (logic.next(bus.q.now(), &last), last)
        };
        let _ = last;
        match action {
            ProcAction::Exit => {
                self.procs.get_mut(&pid).expect("checked").state = PState::Exited;
            }
            ProcAction::Compute(d) => {
                self.cpu.task_runnable();
                let stretched = self.cpu.stretch(d) + self.chaos_cpu_delay();
                self.procs.get_mut(&pid).expect("checked").state = PState::Computing;
                bus.q
                    .schedule(bus.q.now() + stretched, Event::ProcStep { k: self.id, pid });
            }
            ProcAction::Sleep(d) => {
                self.procs.get_mut(&pid).expect("checked").state = PState::Sleeping;
                bus.q
                    .schedule(bus.q.now() + d, Event::ProcStep { k: self.id, pid });
            }
            ProcAction::Syscall(kind) => self.begin_syscall(pid, kind, bus),
        }
    }

    fn ioprio_of(&self, pid: Pid) -> IoPrio {
        self.attrs.get(&pid).map(|a| a.ioprio).unwrap_or_default()
    }

    fn cur_mut(&mut self, pid: Pid) -> &mut CurSyscall {
        self.procs
            .get_mut(&pid)
            .expect("proc exists")
            .cur
            .as_mut()
            .expect("syscall in flight")
    }

    /// Close `pid`'s open gate-wait / dirty-wait span, if any.
    fn end_wait_span(&mut self, pid: Pid, now: SimTime) {
        let ws = self
            .procs
            .get_mut(&pid)
            .and_then(|p| p.cur.as_mut())
            .map(|c| std::mem::take(&mut c.wait_span))
            .unwrap_or(SpanId::NONE);
        self.tracer.end(ws, now);
    }

    fn begin_syscall(&mut self, pid: Pid, kind: SyscallKind, bus: &mut Bus) {
        let now = bus.q.now();
        self.audit_event(now, AuditEvent::SyscallEnter { pid, kind: &kind });
        {
            let proc = self.procs.get_mut(&pid).expect("proc exists");
            let gated = kind.is_write_like() || self.cfg.gate_reads;
            proc.cur = Some(CurSyscall {
                kind,
                entered: now,
                gate_since: None,
                gated,
                pending_io: self.pending_io_pool.pop().unwrap_or_default(),
                span: SpanId::NONE,
                wait_span: SpanId::NONE,
                error: None,
            });
        }
        if self.tracer.enabled() {
            let span = self.tracer.begin_current(
                Layer::Syscall,
                kind.name(),
                pid,
                &CauseSet::of(pid),
                now,
            );
            self.tracer.count(syscall_count_name(kind), 1);
            self.cur_mut(pid).span = span;
        }
        let gated = kind.is_write_like() || self.cfg.gate_reads;
        if gated {
            let info = SyscallInfo {
                pid,
                kind,
                ioprio: self.ioprio_of(pid),
                cached: None,
            };
            // Park the caller BEFORE applying the hook's commands: a
            // scheduler may `wake(pid)` from inside `syscall_enter`
            // (hold-then-release-immediately patterns), and that wake must
            // find the task already parked.
            let (gate, cmds) = {
                let buf = self.sched_cmd_pool.pop().unwrap_or_default();
                let sched = self.sched.as_mut();
                let dev = self.device.peek();
                let mut ctx =
                    SchedCtx::traced(now, dev, self.tracer.clone()).with_commands_buf(buf);
                if let Some(occ) = self.device.occupancy() {
                    ctx = ctx.with_occupancy(occ);
                }
                let gate = sched.syscall_enter(&info, &mut ctx);
                (gate, ctx.drain())
            };
            if gate == Gate::Hold {
                let proc = self.procs.get_mut(&pid).expect("proc exists");
                proc.state = PState::GateWait;
                proc.cur.as_mut().expect("just set").gate_since = Some(now);
                if self.tracer.enabled() {
                    let ws =
                        self.tracer
                            .begin(Layer::Gate, "gate_wait", pid, &CauseSet::of(pid), now);
                    self.tracer.count("gate.holds", 1);
                    self.cur_mut(pid).wait_span = ws;
                }
                self.apply_cmds(cmds, bus);
                self.try_dispatch(bus);
                return;
            }
            self.apply_cmds(cmds, bus);
        }
        self.syscall_body(pid, bus);
    }

    fn syscall_body(&mut self, pid: Pid, bus: &mut Bus) {
        let now = bus.q.now();
        let kind = self.procs[&pid].cur.as_ref().expect("in syscall").kind;
        let costs = self.cfg.cpu;
        match kind {
            SyscallKind::Write { file, offset, len } => {
                // Dirty throttling: Linux blocks writers over dirty_ratio.
                if self.effective_dirty() >= self.cache.config().dirty_limit_pages() {
                    self.procs.get_mut(&pid).expect("exists").state = PState::DirtyWait;
                    self.dirty_waiters.push_back(pid);
                    if self.tracer.enabled() && self.cur_mut(pid).wait_span.is_none() {
                        let ws = self.tracer.begin(
                            Layer::Cache,
                            "dirty_wait",
                            pid,
                            &CauseSet::of(pid),
                            now,
                        );
                        self.tracer.count("cache.dirty_throttled", 1);
                        self.cur_mut(pid).wait_span = ws;
                    }
                    self.kick_writeback(bus);
                    return;
                }
                let causes = CauseSet::of(pid);
                let first = offset / PAGE_SIZE;
                let last = (offset + len.max(1) - 1) / PAGE_SIZE;
                for page in first..=last {
                    let t0 = prof::tick(&self.prof);
                    let ev = self.cache.dirty_page(file, page, &causes, now);
                    prof::tock(&self.prof, Phase::Cache, t0);
                    let block = self.fs.allocated_block(file, page);
                    let bd = BufferDirtied {
                        file,
                        page,
                        causes: causes.clone(),
                        prev: ev.prev,
                        block,
                        new_bytes: ev.new_bytes,
                    };
                    self.with_sched(bus, |s, ctx| s.buffer_dirtied(&bd, ctx));
                }
                self.fs.note_write(file, &causes, offset, len, now);
                if self.cfg.pdflush && self.cache.over_background() {
                    self.kick_writeback(bus);
                }
                let pages = last - first + 1;
                let cpu = costs.syscall_base
                    + SimDuration::from_nanos(costs.per_page_copy.as_nanos() * pages);
                self.complete_syscall(pid, Outcome::Written { bytes: len }, cpu, bus);
            }
            SyscallKind::Read { file, offset, len } => {
                let first = offset / PAGE_SIZE;
                let last = (offset + len.max(1) - 1) / PAGE_SIZE;
                let npages = last - first + 1;
                let mut misses = std::mem::take(&mut self.read_miss_scratch);
                let t0 = prof::tick(&self.prof);
                self.cache
                    .read_misses_into(file, first, npages, &mut misses);
                prof::tock(&self.prof, Phase::Cache, t0);
                let cpu = costs.syscall_base
                    + SimDuration::from_nanos(costs.per_page_copy.as_nanos() * npages);
                if misses.is_empty() {
                    self.read_miss_scratch = misses;
                    self.complete_syscall(
                        pid,
                        Outcome::Read {
                            bytes: len,
                            all_cached: true,
                        },
                        cpu,
                        bus,
                    );
                    return;
                }
                let rd = self.attrs.get(&pid).and_then(|a| a.read_deadline);
                let mut issued = false;
                let mut extents = std::mem::take(&mut self.read_extent_scratch);
                for &(page, plen) in &misses {
                    self.fs.blocks_for_read_into(file, page, plen, &mut extents);
                    for e in &extents {
                        let id = RequestId(self.req_ids.next());
                        let req = Request {
                            id,
                            dir: sim_device::IoDir::Read,
                            start: e.start,
                            nblocks: e.len,
                            submitter: pid,
                            causes: CauseSet::of(pid),
                            sync: true,
                            ioprio: self.ioprio_of(pid),
                            deadline: rd.map(|d| now + d),
                            submitted_at: now,
                            file: Some(file),
                            kind: ReqKind::Data,
                        };
                        self.req_meta.insert(
                            id,
                            ReqMeta {
                                reader: Some(pid),
                                fill: Some((file, e.page, e.len)),
                                ..Default::default()
                            },
                        );
                        self.procs
                            .get_mut(&pid)
                            .expect("exists")
                            .cur
                            .as_mut()
                            .expect("in syscall")
                            .pending_io
                            .insert(id);
                        issued = true;
                        self.add_request(req, &WriteStep::Untracked, bus);
                    }
                }
                self.read_miss_scratch = misses;
                self.read_extent_scratch = extents;
                if issued {
                    self.procs.get_mut(&pid).expect("exists").state = PState::IoWait;
                    self.try_dispatch(bus);
                } else {
                    // Sparse holes: zero-fill, no I/O.
                    self.complete_syscall(
                        pid,
                        Outcome::Read {
                            bytes: len,
                            all_cached: true,
                        },
                        cpu,
                        bus,
                    );
                }
            }
            SyscallKind::Fsync { file } => {
                let t0 = prof::tick(&self.prof);
                let out = self.fs.fsync(file, pid, &mut self.cache, now);
                prof::tock(&self.prof, Phase::Journal, t0);
                self.procs.get_mut(&pid).expect("exists").state = PState::IoWait;
                self.absorb(out, bus);
            }
            SyscallKind::Create => {
                let (fid, out) = self.fs.create_file(pid, now);
                self.absorb(out, bus);
                self.complete_syscall(pid, Outcome::Created(fid), costs.syscall_base, bus);
            }
            SyscallKind::Mkdir => {
                let out = self.fs.mkdir(pid, now);
                self.absorb(out, bus);
                self.complete_syscall(pid, Outcome::MetaDone, costs.syscall_base, bus);
            }
            SyscallKind::Unlink { file } => {
                let out = self.fs.unlink(file, pid, &mut self.cache, now);
                self.absorb(out, bus);
                self.complete_syscall(pid, Outcome::MetaDone, costs.syscall_base, bus);
            }
        }
    }

    fn complete_syscall(&mut self, pid: Pid, outcome: Outcome, cpu: SimDuration, bus: &mut Bus) {
        let now = bus.q.now();
        let (kind, entered, gate_since, gated, span, wait_span) = {
            let proc = self.procs.get_mut(&pid).expect("proc exists");
            let cur = proc.cur.take().expect("syscall in flight");
            let mut pio = cur.pending_io;
            pio.clear();
            self.pending_io_pool.push(pio);
            (
                cur.kind,
                cur.entered,
                cur.gate_since,
                cur.gated,
                cur.span,
                cur.wait_span,
            )
        };
        self.tracer.end(wait_span, now);
        self.tracer.end_current(pid, span, now);
        self.tracer
            .observe(syscall_hist_name(kind), now.since(entered));
        // Scheduler bookkeeping runs on every gated call (SCS pays it on
        // reads too; split schedulers only on write-like calls).
        let cpu = if gated {
            cpu + self.cfg.cpu.sched_bookkeeping
        } else {
            cpu
        };
        // Stats.
        {
            let st = self.stats.proc_mut(pid);
            match outcome {
                Outcome::Read { bytes, .. } => {
                    st.reads += 1;
                    st.read_bytes += bytes;
                }
                Outcome::Written { bytes } => {
                    st.writes += 1;
                    st.write_bytes += bytes;
                }
                Outcome::Synced => st.fsyncs.push((now, now.since(entered))),
                Outcome::Created(_) | Outcome::MetaDone => st.meta_ops.push(now),
                Outcome::Failed(_) => st.io_errors += 1,
                Outcome::None => {}
            }
            if let Some(g) = gate_since {
                st.gated_time += now.since(g);
            }
        }
        if let Outcome::Read { bytes, .. } = outcome {
            if let Some(ts) = self.stats.read_ts.get_mut(&pid) {
                ts.record(now, bytes);
            }
        }
        if let Outcome::Written { bytes } = outcome {
            if let Some(ts) = self.stats.write_ts.get_mut(&pid) {
                ts.record(now, bytes);
            }
        }
        // Exit hook.
        let cached = match outcome {
            Outcome::Read { all_cached, .. } => Some(all_cached),
            _ => None,
        };
        let info = SyscallInfo {
            pid,
            kind,
            ioprio: self.ioprio_of(pid),
            cached,
        };
        self.with_sched(bus, |s, ctx| s.syscall_exit(&info, ctx));
        self.audit_event(now, AuditEvent::SyscallExit { pid });
        self.audit_checkpoint(bus, false);

        let proc = self.procs.get_mut(&pid).expect("proc exists");
        proc.last = outcome;
        if let Some(target) = proc.inject_target.take() {
            proc.state = PState::ExternalIdle;
            match target {
                InjectTarget::GuestVirtio { guest, req } => {
                    bus.cross.push(CrossAction::VirtioDone { guest, req });
                }
                InjectTarget::App { token } => {
                    bus.app_events.push(AppEvent::InjectedDone { token, now });
                }
            }
        } else {
            proc.state = PState::PostCpu;
            self.cpu.task_runnable();
            let stretched = self.cpu.stretch(cpu) + self.chaos_cpu_delay();
            bus.q
                .schedule(now + stretched, Event::ProcStep { k: self.id, pid });
        }
    }

    // ---- block layer ------------------------------------------------------

    fn add_request(&mut self, req: Request, step: &WriteStep, bus: &mut Bus) {
        if self.audit.is_some() {
            let now = bus.q.now();
            self.audit_event(now, AuditEvent::BlockSubmitted { req: &req, step });
        }
        if req.ioprio.class == PrioClass::BestEffort {
            self.stats.req_prio_hist[req.ioprio.level.min(7) as usize] += 1;
        }
        if self.tracer.enabled() {
            let now = bus.q.now();
            // Parent under the submitter's current span: the syscall for
            // direct reads/fsync flushes, the commit or writeback-pass
            // span for delegated I/O — delegation stays visible.
            let qs = self
                .tracer
                .begin(Layer::Block, "queue", req.submitter, &req.causes, now);
            self.tracer.set_arg(qs, req.id.raw());
            self.req_meta.entry(req.id).or_default().queue_span = qs;
            self.tracer.count("block.submitted", 1);
            self.tracer
                .gauge("block.queue_depth", now, (self.sched.queued() + 1) as f64);
        }
        self.with_sched(bus, |s, ctx| s.block_add(req, ctx));
    }

    fn try_dispatch(&mut self, bus: &mut Bus) {
        if self.dispatching {
            return;
        }
        self.dispatching = true;
        loop {
            if !self.device_can_accept() {
                break;
            }
            let d = self.with_sched(bus, |s, ctx| s.block_dispatch(ctx));
            match d {
                Dispatch::Issue(req) => self.issue(req, bus),
                Dispatch::WaitUntil(t) => {
                    // Never re-poll at the same instant: a scheduler that
                    // answers `WaitUntil(now)` must still make time pass.
                    let at = t.max(bus.q.now() + SimDuration::from_micros(1));
                    bus.q.schedule(at, Event::DispatchRetry { k: self.id });
                    break;
                }
                Dispatch::Idle => break,
            }
        }
        self.dispatching = false;
    }

    /// Room for another request below the elevator? The serial and
    /// virtio planes hold one; the queued plane admits up to `depth`
    /// counting both hardware slots and software staging, so staged
    /// requests can never outrun the tags they will need.
    fn device_can_accept(&self) -> bool {
        match &self.device {
            ActiveDevice::Queued { dev, mq } => {
                dev.in_flight() + mq.staged() < dev.depth() as usize
            }
            _ => self.inflight.is_none(),
        }
    }

    /// One request leaves the elevator for the device.
    fn issue(&mut self, req: Request, bus: &mut Bus) {
        self.stats.requests_dispatched += 1;
        self.stats.device_bytes = self.stats.device_bytes.saturating_add(req.bytes());
        if self.audit.is_some() {
            let now = bus.q.now();
            self.audit_event(now, AuditEvent::BlockDispatched { req: &req });
        }
        let queued_plane = matches!(self.device, ActiveDevice::Queued { .. });
        let mut span_parent = SpanId::NONE;
        if self.tracer.enabled() {
            let now = bus.q.now();
            let qs = self
                .req_meta
                .get_mut(&req.id)
                .map(|m| std::mem::take(&mut m.queue_span))
                .unwrap_or(SpanId::NONE);
            self.tracer.end(qs, now);
            // The device span is the queue span's *sibling* (same
            // parent), so queueing and service read as consecutive
            // phases of one request. On the queued plane the span opens
            // later, when the device accepts the request into a slot.
            span_parent = self.tracer.parent_of(qs);
            if !queued_plane {
                let ds = self.tracer.begin_child(
                    span_parent,
                    Layer::Device,
                    "service",
                    req.submitter,
                    &req.causes,
                    now,
                );
                self.tracer.set_arg(ds, req.id.raw());
                self.req_meta.entry(req.id).or_default().device_span = ds;
            }
            self.tracer.count("block.dispatched", 1);
            self.tracer
                .observe("block.queue_ms", now.since(req.submitted_at));
        }
        // Pull what the issue needs out of the device in one borrow, so
        // the audit/tracer calls below can take `&mut self` freely.
        enum Plan {
            Serial(SimDuration),
            Queued,
            Virtual(KernelId, FileId, Pid),
        }
        let plan = match &mut self.device {
            ActiveDevice::Serial(model) => Plan::Serial(model.service_time(&req.shape())),
            ActiveDevice::Queued { .. } => Plan::Queued,
            ActiveDevice::Virtual {
                host,
                host_file,
                host_pid,
                ..
            } => Plan::Virtual(*host, *host_file, *host_pid),
        };
        match plan {
            Plan::Serial(mut service) => {
                if let Some(plane) = self.fault_plane.as_mut() {
                    match plane.on_request(req.id, &req.shape()) {
                        Some(Fault::Spike { factor }) => {
                            service = service.mul_f64(factor.max(1.0));
                        }
                        Some(Fault::Transient) => {
                            self.req_meta.entry(req.id).or_default().failed =
                                Some(IoError::for_request(IoErrorKind::TransientDevice, req.id));
                        }
                        Some(Fault::Torn { .. }) => {
                            self.req_meta.entry(req.id).or_default().failed =
                                Some(IoError::for_request(IoErrorKind::TornWrite, req.id));
                        }
                        None => {}
                    }
                }
                if let Some(c) = self.chaos.as_mut() {
                    // Serial-plane completion chaos: stretch the service
                    // time exactly like a fault spike (never shrink).
                    service = service.mul_f64(c.service_stretch().max(1.0));
                }
                if self.audit.is_some() {
                    let now = bus.q.now();
                    self.audit_event(
                        now,
                        AuditEvent::SlotAcquired {
                            req: &req,
                            slot: 0,
                            in_flight: 1,
                            depth: 1,
                        },
                    );
                }
                let id = req.id;
                self.inflight = Some((req, service));
                bus.q.schedule(
                    bus.q.now() + service,
                    Event::DeviceDone {
                        k: self.id,
                        req: id,
                    },
                );
            }
            Plan::Queued => {
                // The fault plane rolls at dispatch (same per-request
                // order as the serial plane); a spike is staged on the
                // request and applied when it enters service.
                if let Some(plane) = self.fault_plane.as_mut() {
                    match plane.on_request(req.id, &req.shape()) {
                        Some(Fault::Spike { factor }) => {
                            self.req_meta.entry(req.id).or_default().spike = Some(factor);
                        }
                        Some(Fault::Transient) => {
                            self.req_meta.entry(req.id).or_default().failed =
                                Some(IoError::for_request(IoErrorKind::TransientDevice, req.id));
                        }
                        Some(Fault::Torn { .. }) => {
                            self.req_meta.entry(req.id).or_default().failed =
                                Some(IoError::for_request(IoErrorKind::TornWrite, req.id));
                        }
                        None => {}
                    }
                }
                self.req_meta.entry(req.id).or_default().span_parent = span_parent;
                let ActiveDevice::Queued { mq, .. } = &mut self.device else {
                    unreachable!("plan chosen on the queued plane");
                };
                mq.submit(req);
                self.pump_queued(bus);
            }
            Plan::Virtual(host, host_file, host_pid) => {
                let kind = match req.dir {
                    sim_device::IoDir::Read => SyscallKind::Read {
                        file: host_file,
                        offset: req.start.raw().saturating_mul(PAGE_SIZE),
                        len: req.bytes(),
                    },
                    sim_device::IoDir::Write => SyscallKind::Write {
                        file: host_file,
                        offset: req.start.raw().saturating_mul(PAGE_SIZE),
                        len: req.bytes(),
                    },
                };
                bus.cross.push(CrossAction::InjectSyscall {
                    kernel: host,
                    pid: host_pid,
                    kind,
                    target: InjectTarget::GuestVirtio {
                        guest: self.id,
                        req: req.id,
                    },
                });
                if self.audit.is_some() {
                    let now = bus.q.now();
                    self.audit_event(
                        now,
                        AuditEvent::SlotAcquired {
                            req: &req,
                            slot: 0,
                            in_flight: 1,
                            depth: 1,
                        },
                    );
                }
                self.inflight = Some((req, SimDuration::ZERO));
            }
        }
    }

    /// Drain staged requests into free hardware-queue slots, then turn
    /// whatever the device moved into service into DES completions.
    fn pump_queued(&mut self, bus: &mut Bus) {
        // Sample occupancy before (staged backlog) and after (what the
        // pump pushed into flight), so the profiler's high watermarks
        // see both sides of the drain.
        if let (Some(p), ActiveDevice::Queued { dev, mq }) = (&self.prof, &self.device) {
            p.sample_mq(mq.staged(), dev.in_flight());
        }
        let t0 = prof::tick(&self.prof);
        self.pump_queued_inner(bus);
        prof::tock(&self.prof, Phase::MqPump, t0);
        if let (Some(p), ActiveDevice::Queued { dev, mq }) = (&self.prof, &self.device) {
            p.sample_mq(mq.staged(), dev.in_flight());
        }
    }

    fn pump_queued_inner(&mut self, bus: &mut Bus) {
        let now = bus.q.now();
        loop {
            let (req, slot, started, in_flight, depth) = {
                let ActiveDevice::Queued { dev, mq } = &mut self.device else {
                    return;
                };
                if !dev.can_accept() {
                    return;
                }
                if let Some(c) = self.chaos.as_mut() {
                    // Completion-order chaos: rotate which software queue
                    // feeds the device next. Per-pid FIFO is untouched.
                    mq.rotate(c.mq_rotation(mq.queue_count()));
                }
                let Some(req) = mq.pop_next() else { return };
                let spike = self.req_meta.get(&req.id).and_then(|m| m.spike);
                let (slot, started) = dev.accept(req.id, req.shape(), spike);
                mq.note_accepted(req.submitter);
                (req, slot, started, dev.in_flight() as u32, dev.depth())
            };
            if self.audit.is_some() {
                self.audit_event(
                    now,
                    AuditEvent::SlotAcquired {
                        req: &req,
                        slot,
                        in_flight,
                        depth,
                    },
                );
            }
            if self.tracer.enabled() {
                self.tracer
                    .gauge("device.queue_depth", now, in_flight as f64);
                let parent = self
                    .req_meta
                    .get(&req.id)
                    .map(|m| m.span_parent)
                    .unwrap_or(SpanId::NONE);
                let ds = self.tracer.begin_child(
                    parent,
                    Layer::Device,
                    slot_name(slot),
                    req.submitter,
                    &req.causes,
                    now,
                );
                self.tracer.set_arg(ds, req.id.raw());
                self.req_meta.entry(req.id).or_default().device_span = ds;
            }
            self.q_inflight.insert(req.id, (req, SimDuration::ZERO));
            self.schedule_started(started, now, bus);
        }
    }

    /// Record committed service times and schedule completion events for
    /// requests the device just moved into service.
    fn schedule_started(&mut self, started: Vec<sim_device::Started>, now: SimTime, bus: &mut Bus) {
        for s in started {
            if let Some(entry) = self.q_inflight.get_mut(&s.id) {
                entry.1 = s.service;
            }
            bus.q.schedule(
                now + s.service,
                Event::DeviceDone {
                    k: self.id,
                    req: s.id,
                },
            );
        }
    }

    fn device_done(&mut self, req_id: RequestId, bus: &mut Bus) {
        if matches!(self.device, ActiveDevice::Queued { .. }) {
            self.device_done_queued(req_id, bus);
            return;
        }
        let Some((req, service)) = self.inflight.take() else {
            return;
        };
        debug_assert_eq!(req.id, req_id);
        if self.audit.is_some() {
            let now = bus.q.now();
            self.audit_event(
                now,
                AuditEvent::SlotReleased {
                    req: &req,
                    slot: 0,
                    in_flight: 0,
                },
            );
        }
        self.finish_request(req, service, bus);
    }

    fn device_done_queued(&mut self, req_id: RequestId, bus: &mut Bus) {
        let Some((req, service)) = self.q_inflight.remove(&req_id) else {
            return;
        };
        let now = bus.q.now();
        let (slot, started, in_flight) = {
            let ActiveDevice::Queued { dev, mq } = &mut self.device else {
                unreachable!("routed here on the queued plane");
            };
            let (slot, started) = dev.complete(req_id);
            mq.note_done(req.submitter);
            (slot, started, dev.in_flight() as u32)
        };
        if self.audit.is_some() {
            self.audit_event(
                now,
                AuditEvent::SlotReleased {
                    req: &req,
                    slot,
                    in_flight,
                },
            );
        }
        if self.tracer.enabled() {
            self.tracer
                .gauge("device.queue_depth", now, in_flight as f64);
        }
        self.schedule_started(started, now, bus);
        self.finish_request(req, service, bus);
    }

    fn finish_request(&mut self, req: Request, service: SimDuration, bus: &mut Bus) {
        let now = bus.q.now();
        self.tracer.record_block(&req, service, now);
        if self.tracer.enabled() {
            self.tracer.count("block.completed", 1);
            self.tracer.observe("device.service_ms", service);
            self.tracer
                .gauge("block.queue_depth", now, self.sched.queued() as f64);
        }
        // Charge disk time to the causes (fair-share accounting).
        if service > SimDuration::ZERO {
            let secs = service.as_secs_f64();
            let causes = if req.causes.is_empty() {
                CauseSet::of(req.submitter)
            } else {
                req.causes.clone()
            };
            for (pid, share) in causes.shares(secs) {
                let total = self.stats.disk_time.entry(pid).or_insert(0.0);
                *total += share;
                let total = *total;
                self.tracer
                    .gauge_key("disk.time_s", pid.raw() as u64, now, total);
            }
        }
        let failed = self.req_meta.get(&req.id).and_then(|m| m.failed);
        // Audit the completion BEFORE the scheduler and fs hooks run, so a
        // TxnCommitted generated by absorbing this request's fs token is
        // observed after its commit record finished.
        self.audit_event(
            now,
            AuditEvent::BlockFinished {
                req: &req,
                failed: failed.is_some(),
            },
        );
        if let Some(err) = failed {
            self.stats.io_errors += 1;
            self.with_sched(bus, |s, ctx| s.block_failed(&req, err, ctx));
        } else {
            self.with_sched(bus, |s, ctx| s.block_completed(&req, ctx));
        }
        if let Some(meta) = self.req_meta.remove(&req.id) {
            self.tracer.end(meta.device_span, now);
            if meta.dirty_pages > 0 {
                self.wb_inflight_pages = self.wb_inflight_pages.saturating_sub(meta.dirty_pages);
            }
            if let Some(tok) = meta.fs_token {
                let now = bus.q.now();
                let out = match failed {
                    Some(err) => self.fs.io_failed(tok, err, &mut self.cache, now),
                    None => self.fs.io_completed(tok, &mut self.cache, now),
                };
                self.absorb(out, bus);
            }
            if let Some((file, page, len)) = meta.fill {
                // A failed read fills nothing; the reader gets the error.
                if failed.is_none() {
                    self.cache.fill(file, page, len);
                }
            }
            if let Some(pid) = meta.reader {
                let done = {
                    let proc = self.procs.get_mut(&pid).expect("reader exists");
                    if let Some(cur) = proc.cur.as_mut() {
                        if let Some(err) = failed {
                            cur.error.get_or_insert(err);
                        }
                        cur.pending_io.remove(&req.id);
                        cur.pending_io.is_empty()
                    } else {
                        false
                    }
                };
                if done {
                    let (len, cpu, error) = {
                        let cur = self.procs[&pid].cur.as_ref().expect("in syscall");
                        let len = match cur.kind {
                            SyscallKind::Read { len, .. } => len,
                            _ => 0,
                        };
                        let pages = sim_core::pages_for_bytes(len);
                        (
                            len,
                            self.cfg.cpu.syscall_base
                                + SimDuration::from_nanos(
                                    self.cfg.cpu.per_page_copy.as_nanos() * pages,
                                ),
                            cur.error,
                        )
                    };
                    let outcome = match error {
                        Some(e) => Outcome::Failed(e),
                        None => Outcome::Read {
                            bytes: len,
                            all_cached: false,
                        },
                    };
                    self.complete_syscall(pid, outcome, cpu, bus);
                }
            }
        }
        self.wake_dirty_waiters(bus);
        self.cache.sample_tagmem();
        self.audit_checkpoint(bus, false);
        self.try_dispatch(bus);
    }

    // ---- writeback & dirty throttling --------------------------------------

    fn effective_dirty(&self) -> u64 {
        self.cache.dirty_total() + self.wb_inflight_pages
    }

    fn kick_writeback(&mut self, bus: &mut Bus) {
        if self.wb_active {
            return;
        }
        self.wb_active = true;
        let now = bus.q.now();
        let t0 = prof::tick(&self.prof);
        let out = self.fs.writeback(
            None,
            self.cfg.wb_batch_pages,
            self.writeback_pid,
            &mut self.cache,
            now,
        );
        prof::tock(&self.prof, Phase::Writeback, t0);
        self.absorb(out, bus);
    }

    /// Explicit writeback trigger (scheduler `StartWriteback` command).
    fn scheduled_writeback(&mut self, file: Option<FileId>, max_pages: u64, bus: &mut Bus) {
        let now = bus.q.now();
        let t0 = prof::tick(&self.prof);
        let out = self
            .fs
            .writeback(file, max_pages, self.writeback_pid, &mut self.cache, now);
        prof::tock(&self.prof, Phase::Writeback, t0);
        self.absorb(out, bus);
    }

    fn wake_dirty_waiters(&mut self, bus: &mut Bus) {
        while !self.dirty_waiters.is_empty()
            && self.effective_dirty() < self.cache.config().dirty_limit_pages()
        {
            // The scheduler chooses the admission order (default: FIFO).
            let waiters: Vec<Pid> = self.dirty_waiters.iter().copied().collect();
            let idx = self
                .sched
                .pick_dirty_waiter(&waiters)
                .min(waiters.len() - 1);
            let pid = self.dirty_waiters.remove(idx).expect("bounded index");
            if self
                .procs
                .get(&pid)
                .map(|p| p.state == PState::DirtyWait)
                .unwrap_or(false)
            {
                self.procs.get_mut(&pid).expect("exists").state = PState::IoWait;
                self.end_wait_span(pid, bus.q.now());
                self.syscall_body(pid, bus);
            }
        }
    }

    // ---- scheduler plumbing -------------------------------------------------

    fn with_sched<R>(
        &mut self,
        bus: &mut Bus,
        f: impl FnOnce(&mut dyn IoSched, &mut SchedCtx<'_>) -> R,
    ) -> R {
        let now = bus.q.now();
        let t0 = prof::tick(&self.prof);
        let (r, cmds) = {
            let buf = self.sched_cmd_pool.pop().unwrap_or_default();
            let sched = self.sched.as_mut();
            let dev = self.device.peek();
            let mut ctx = SchedCtx::traced(now, dev, self.tracer.clone()).with_commands_buf(buf);
            if let Some(occ) = self.device.occupancy() {
                ctx = ctx.with_occupancy(occ);
            }
            let r = f(sched, &mut ctx);
            let cmds = ctx.drain();
            (r, cmds)
        };
        prof::tock(&self.prof, Phase::Sched, t0);
        self.apply_cmds(cmds, bus);
        r
    }

    fn run_sched_maintenance(&mut self, bus: &mut Bus) {
        self.with_sched(bus, |s, ctx| s.timer_fired(ctx));
        self.try_dispatch(bus);
    }

    fn apply_cmds(&mut self, mut cmds: Vec<SchedCmd>, bus: &mut Bus) {
        for cmd in cmds.drain(..) {
            match cmd {
                SchedCmd::Wake(pid) => self.gate_wake(pid, bus),
                SchedCmd::Timer(at) => {
                    bus.q
                        .schedule(at.max(bus.q.now()), Event::SchedTimer { k: self.id });
                }
                SchedCmd::StartWriteback { file, max_pages } => {
                    self.scheduled_writeback(file, max_pages, bus);
                }
                SchedCmd::KickDispatch => self.try_dispatch(bus),
            }
        }
        self.sched_cmd_pool.push(cmds);
    }

    fn gate_wake(&mut self, pid: Pid, bus: &mut Bus) {
        let ok = self
            .procs
            .get(&pid)
            .map(|p| p.state == PState::GateWait)
            .unwrap_or(false);
        if !ok {
            return;
        }
        self.procs.get_mut(&pid).expect("exists").state = PState::IoWait;
        self.end_wait_span(pid, bus.q.now());
        self.syscall_body(pid, bus);
    }

    fn absorb(&mut self, out: FsOutput, bus: &mut Bus) {
        let now = bus.q.now();
        for (file, range) in out.freed {
            let bf = BufferFreed {
                file,
                page: range.start_page,
                causes: range.causes.clone(),
                bytes: range.bytes(),
            };
            self.with_sched(bus, |s, ctx| s.buffer_freed(&bf, ctx));
        }
        for mut io in out.ios {
            let step = std::mem::take(&mut io.step);
            let id = RequestId(self.req_ids.next());
            let attrs = self.attrs.get(&io.submitter).copied().unwrap_or_default();
            let deadline = match io.dir {
                sim_device::IoDir::Read => attrs.read_deadline.map(|d| now + d),
                sim_device::IoDir::Write => attrs.write_deadline.map(|d| now + d),
            };
            let dirty_pages = if io.kind == ReqKind::Data && io.dir == sim_device::IoDir::Write {
                io.nblocks
            } else {
                0
            };
            self.wb_inflight_pages += dirty_pages;
            self.req_meta.insert(
                id,
                ReqMeta {
                    fs_token: Some(io.token),
                    dirty_pages,
                    ..Default::default()
                },
            );
            let req = Request {
                id,
                dir: io.dir,
                start: io.start,
                nblocks: io.nblocks,
                submitter: io.submitter,
                causes: io.causes,
                sync: io.sync,
                ioprio: attrs.ioprio,
                deadline,
                submitted_at: now,
                file: io.file,
                kind: io.kind,
            };
            self.add_request(req, &step, bus);
        }
        for ev in out.events {
            match ev {
                FsEvent::FsyncDone { waiter, .. } => {
                    let in_fsync = self
                        .procs
                        .get(&waiter)
                        .and_then(|p| p.cur.as_ref())
                        .map(|c| matches!(c.kind, SyscallKind::Fsync { .. }))
                        .unwrap_or(false);
                    if in_fsync {
                        let cpu = self.cfg.cpu.syscall_base;
                        self.complete_syscall(waiter, Outcome::Synced, cpu, bus);
                    }
                }
                FsEvent::FsyncFailed { waiter, error, .. } => {
                    let in_fsync = self
                        .procs
                        .get(&waiter)
                        .and_then(|p| p.cur.as_ref())
                        .map(|c| matches!(c.kind, SyscallKind::Fsync { .. }))
                        .unwrap_or(false);
                    if in_fsync {
                        let cpu = self.cfg.cpu.syscall_base;
                        self.complete_syscall(waiter, Outcome::Failed(error), cpu, bus);
                    }
                }
                FsEvent::WritebackDone { .. } => {
                    self.wb_active = false;
                    if self.cfg.pdflush && self.cache.over_background() {
                        self.kick_writeback(bus);
                    }
                }
                FsEvent::TxnCommitted { txn } => {
                    self.audit_event(now, AuditEvent::TxnCommitted { txn });
                }
                FsEvent::JournalAborted { txn, .. } => {
                    self.stats.journal_aborts += 1;
                    self.audit_event(now, AuditEvent::JournalAborted { txn });
                }
            }
        }
        self.wake_dirty_waiters(bus);
        self.try_dispatch(bus);
    }
}

/// Per-kind syscall counter names (static, so counting stays alloc-free).
fn syscall_count_name(kind: SyscallKind) -> &'static str {
    match kind {
        SyscallKind::Read { .. } => "syscall.read",
        SyscallKind::Write { .. } => "syscall.write",
        SyscallKind::Fsync { .. } => "syscall.fsync",
        SyscallKind::Create => "syscall.creat",
        SyscallKind::Mkdir => "syscall.mkdir",
        SyscallKind::Unlink { .. } => "syscall.unlink",
    }
}

/// Per-kind syscall latency histogram names.
fn syscall_hist_name(kind: SyscallKind) -> &'static str {
    match kind {
        SyscallKind::Read { .. } => "syscall.read_ms",
        SyscallKind::Write { .. } => "syscall.write_ms",
        SyscallKind::Fsync { .. } => "syscall.fsync_ms",
        SyscallKind::Create => "syscall.creat_ms",
        SyscallKind::Mkdir => "syscall.mkdir_ms",
        SyscallKind::Unlink { .. } => "syscall.unlink_ms",
    }
}
