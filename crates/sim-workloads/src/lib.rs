#![warn(missing_docs)]
//! Reusable workload processes — the A's and B's of the paper's
//! experiments, expressed as [`ProcessLogic`] state machines.

use sim_core::{FileId, SimDuration, SimRng, SimTime, PAGE_SIZE};
use sim_kernel::{Outcome, ProcAction, ProcessLogic};
use split_core::SyscallKind;

/// Sequentially reads a file in `req` chunks, wrapping at EOF, forever.
pub struct SeqReader {
    file: FileId,
    bytes: u64,
    req: u64,
    offset: u64,
}

impl SeqReader {
    /// Reader over `[0, bytes)` of `file`.
    pub fn new(file: FileId, bytes: u64, req: u64) -> Self {
        SeqReader {
            file,
            bytes,
            req: req.max(1),
            offset: 0,
        }
    }
}

impl ProcessLogic for SeqReader {
    fn next(&mut self, _now: SimTime, _last: &Outcome) -> ProcAction {
        if self.offset + self.req > self.bytes {
            self.offset = 0;
        }
        let a = ProcAction::Syscall(SyscallKind::Read {
            file: self.file,
            offset: self.offset,
            len: self.req,
        });
        self.offset += self.req;
        a
    }
}

/// Reads `req` bytes at page-aligned uniformly random offsets, forever.
pub struct RandReader {
    file: FileId,
    pages: u64,
    req: u64,
    rng: SimRng,
}

impl RandReader {
    /// Random reader over a file of `bytes` bytes.
    pub fn new(file: FileId, bytes: u64, req: u64, seed: u64) -> Self {
        RandReader {
            file,
            pages: (bytes / PAGE_SIZE).max(1),
            req: req.max(1),
            rng: SimRng::seed_from_u64(seed),
        }
    }
}

impl ProcessLogic for RandReader {
    fn next(&mut self, _now: SimTime, _last: &Outcome) -> ProcAction {
        let span = sim_core::pages_for_bytes(self.req);
        let page = self.rng.gen_range(self.pages.saturating_sub(span).max(1));
        ProcAction::Syscall(SyscallKind::Read {
            file: self.file,
            offset: page * PAGE_SIZE,
            len: self.req,
        })
    }
}

/// Appends to (or rewrites) a file sequentially in `req` chunks, wrapping
/// at `bytes` so the file never outgrows its region.
pub struct SeqWriter {
    file: FileId,
    bytes: u64,
    req: u64,
    offset: u64,
}

impl SeqWriter {
    /// Sequential writer cycling over `[0, bytes)`.
    pub fn new(file: FileId, bytes: u64, req: u64) -> Self {
        SeqWriter {
            file,
            bytes,
            req: req.max(1),
            offset: 0,
        }
    }
}

impl ProcessLogic for SeqWriter {
    fn next(&mut self, _now: SimTime, _last: &Outcome) -> ProcAction {
        if self.offset + self.req > self.bytes {
            self.offset = 0;
        }
        let a = ProcAction::Syscall(SyscallKind::Write {
            file: self.file,
            offset: self.offset,
            len: self.req,
        });
        self.offset += self.req;
        a
    }
}

/// Writes `req` bytes at page-aligned random offsets, forever.
pub struct RandWriter {
    file: FileId,
    pages: u64,
    req: u64,
    rng: SimRng,
}

impl RandWriter {
    /// Random writer over a file of `bytes` bytes.
    pub fn new(file: FileId, bytes: u64, req: u64, seed: u64) -> Self {
        RandWriter {
            file,
            pages: (bytes / PAGE_SIZE).max(1),
            req: req.max(1),
            rng: SimRng::seed_from_u64(seed),
        }
    }
}

impl ProcessLogic for RandWriter {
    fn next(&mut self, _now: SimTime, _last: &Outcome) -> ProcAction {
        let span = sim_core::pages_for_bytes(self.req);
        let page = self.rng.gen_range(self.pages.saturating_sub(span).max(1));
        ProcAction::Syscall(SyscallKind::Write {
            file: self.file,
            offset: page * PAGE_SIZE,
            len: self.req,
        })
    }
}

/// The B workload of Figures 6/13/16: repeatedly access `run` bytes
/// sequentially, then seek to a new random offset. Reads or writes.
pub struct RunPattern {
    file: FileId,
    pages: u64,
    run: u64,
    write: bool,
    rng: SimRng,
    cur_offset: u64,
    left_in_run: u64,
    req: u64,
}

impl RunPattern {
    /// Run-pattern accessor: `run` bytes per run over a `bytes` file.
    pub fn new(file: FileId, bytes: u64, run: u64, write: bool, seed: u64) -> Self {
        RunPattern {
            file,
            pages: (bytes / PAGE_SIZE).max(1),
            run: run.max(PAGE_SIZE),
            write,
            rng: SimRng::seed_from_u64(seed),
            cur_offset: 0,
            left_in_run: 0,
            req: 64 * 1024,
        }
    }
}

impl ProcessLogic for RunPattern {
    fn next(&mut self, _now: SimTime, _last: &Outcome) -> ProcAction {
        if self.left_in_run == 0 {
            let span = sim_core::pages_for_bytes(self.run);
            let page = self.rng.gen_range(self.pages.saturating_sub(span).max(1));
            self.cur_offset = page * PAGE_SIZE;
            self.left_in_run = self.run;
        }
        let len = self.left_in_run.min(self.req);
        let offset = self.cur_offset;
        self.cur_offset += len;
        self.left_in_run -= len;
        let kind = if self.write {
            SyscallKind::Write {
                file: self.file,
                offset,
                len,
            }
        } else {
            SyscallKind::Read {
                file: self.file,
                offset,
                len,
            }
        };
        ProcAction::Syscall(kind)
    }
}

/// Buffered random writes self-paced to a target dirty rate: write
/// `req` bytes at a random page-aligned offset, sleep, repeat, so the
/// *attempted* dirtying rate is `rate` bytes/second. A scheduler cap
/// below `rate` (Split-Token) slows the writer further; without one
/// (CFQ idle class) the full rate reaches the page cache and becomes
/// writeback.
pub struct PacedWriter {
    file: FileId,
    pages: u64,
    req: u64,
    pause: SimDuration,
    rng: SimRng,
    write_next: bool,
}

impl PacedWriter {
    /// Paced writer over a file of `bytes` bytes, targeting `rate`
    /// bytes/second of dirtying.
    pub fn new(file: FileId, bytes: u64, req: u64, rate: u64, seed: u64) -> Self {
        let req = req.max(1);
        let pause_ns = req.saturating_mul(1_000_000_000) / rate.max(1);
        PacedWriter {
            file,
            pages: (bytes / PAGE_SIZE).max(1),
            req,
            pause: SimDuration::from_nanos(pause_ns),
            rng: SimRng::seed_from_u64(seed),
            write_next: true,
        }
    }
}

impl ProcessLogic for PacedWriter {
    fn next(&mut self, _now: SimTime, _last: &Outcome) -> ProcAction {
        if self.write_next {
            self.write_next = false;
            let span = sim_core::pages_for_bytes(self.req);
            let page = self.rng.gen_range(self.pages.saturating_sub(span).max(1));
            ProcAction::Syscall(SyscallKind::Write {
                file: self.file,
                offset: page * PAGE_SIZE,
                len: self.req,
            })
        } else {
            self.write_next = true;
            ProcAction::Sleep(self.pause)
        }
    }
}

/// Appends one block and fsyncs, forever — the database-log workload (A
/// in Figures 5 and 12).
pub struct FsyncAppender {
    file: FileId,
    block: u64,
    offset: u64,
    think: SimDuration,
    state: u8,
}

impl FsyncAppender {
    /// Appender writing `block` bytes per iteration with `think` time
    /// between iterations.
    pub fn new(file: FileId, block: u64, think: SimDuration) -> Self {
        FsyncAppender {
            file,
            block: block.max(1),
            offset: 0,
            think,
            state: 0,
        }
    }
}

impl ProcessLogic for FsyncAppender {
    fn next(&mut self, _now: SimTime, _last: &Outcome) -> ProcAction {
        match self.state {
            0 => {
                self.state = 1;
                let a = ProcAction::Syscall(SyscallKind::Write {
                    file: self.file,
                    offset: self.offset,
                    len: self.block,
                });
                self.offset += self.block;
                a
            }
            1 => {
                self.state = 2;
                ProcAction::Syscall(SyscallKind::Fsync { file: self.file })
            }
            _ => {
                self.state = 0;
                if self.think > SimDuration::ZERO {
                    ProcAction::Sleep(self.think)
                } else {
                    self.next(_now, _last)
                }
            }
        }
    }
}

/// Writes `nblocks` random blocks, then fsyncs, then pauses — the
/// checkpoint workload (B in Figures 5 and 12).
pub struct BatchRandFsyncer {
    file: FileId,
    pages: u64,
    nblocks: u64,
    pause: SimDuration,
    rng: SimRng,
    written: u64,
    state: u8,
}

impl BatchRandFsyncer {
    /// Batch random writer: `nblocks` 4 KB blocks per batch over a file of
    /// `bytes`, pausing `pause` between batches.
    pub fn new(file: FileId, bytes: u64, nblocks: u64, pause: SimDuration, seed: u64) -> Self {
        BatchRandFsyncer {
            file,
            pages: (bytes / PAGE_SIZE).max(1),
            nblocks: nblocks.max(1),
            pause,
            rng: SimRng::seed_from_u64(seed),
            written: 0,
            state: 0,
        }
    }
}

impl ProcessLogic for BatchRandFsyncer {
    fn next(&mut self, _now: SimTime, _last: &Outcome) -> ProcAction {
        match self.state {
            0 => {
                if self.written < self.nblocks {
                    self.written += 1;
                    let page = self.rng.gen_range(self.pages);
                    ProcAction::Syscall(SyscallKind::Write {
                        file: self.file,
                        offset: page * PAGE_SIZE,
                        len: PAGE_SIZE,
                    })
                } else {
                    self.state = 1;
                    ProcAction::Syscall(SyscallKind::Fsync { file: self.file })
                }
            }
            _ => {
                self.state = 0;
                self.written = 0;
                ProcAction::Sleep(self.pause)
            }
        }
    }
}

/// Sleeps until `start`, then issues random writes as fast as possible
/// for `duration`, then exits — the one-second write burst of Figure 1.
pub struct BurstWriter {
    file: FileId,
    pages: u64,
    req: u64,
    start: SimTime,
    duration: SimDuration,
    rng: SimRng,
    started: bool,
}

impl BurstWriter {
    /// Burst writer over a file of `bytes` bytes.
    pub fn new(
        file: FileId,
        bytes: u64,
        req: u64,
        start: SimTime,
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        BurstWriter {
            file,
            pages: (bytes / PAGE_SIZE).max(1),
            req: req.max(1),
            start,
            duration,
            rng: SimRng::seed_from_u64(seed),
            started: false,
        }
    }
}

impl ProcessLogic for BurstWriter {
    fn next(&mut self, now: SimTime, _last: &Outcome) -> ProcAction {
        if !self.started {
            self.started = true;
            return ProcAction::Sleep(self.start.since(now));
        }
        if now > self.start + self.duration {
            return ProcAction::Exit;
        }
        let span = sim_core::pages_for_bytes(self.req);
        let page = self.rng.gen_range(self.pages.saturating_sub(span).max(1));
        ProcAction::Syscall(SyscallKind::Write {
            file: self.file,
            offset: page * PAGE_SIZE,
            len: self.req,
        })
    }
}

/// Overwrites the same region in memory forever (Figure 11d, the
/// "write-mem" workload): pure page-cache traffic once the dirty set
/// exists.
pub struct MemOverwriter {
    file: FileId,
    region: u64,
    req: u64,
    offset: u64,
}

impl MemOverwriter {
    /// Overwriter cycling over the first `region` bytes of `file`.
    pub fn new(file: FileId, region: u64, req: u64) -> Self {
        MemOverwriter {
            file,
            region: region.max(PAGE_SIZE),
            req: req.max(1),
            offset: 0,
        }
    }
}

impl ProcessLogic for MemOverwriter {
    fn next(&mut self, _now: SimTime, _last: &Outcome) -> ProcAction {
        if self.offset + self.req > self.region {
            self.offset = 0;
        }
        let a = ProcAction::Syscall(SyscallKind::Write {
            file: self.file,
            offset: self.offset,
            len: self.req,
        });
        self.offset += self.req;
        a
    }
}

/// Burns CPU forever in 1 ms slices (Figure 15's spin loop).
pub struct Spinner;

impl ProcessLogic for Spinner {
    fn next(&mut self, _now: SimTime, _last: &Outcome) -> ProcAction {
        ProcAction::Compute(SimDuration::from_millis(1))
    }
}

/// Creates an empty file, fsyncs it durable, sleeps, repeats — the
/// metadata workload of Figure 17.
pub struct CreatFsyncLoop {
    sleep: SimDuration,
    state: u8,
    last_file: Option<FileId>,
}

impl CreatFsyncLoop {
    /// Creat+fsync loop sleeping `sleep` between files.
    pub fn new(sleep: SimDuration) -> Self {
        CreatFsyncLoop {
            sleep,
            state: 0,
            last_file: None,
        }
    }
}

impl ProcessLogic for CreatFsyncLoop {
    fn next(&mut self, _now: SimTime, last: &Outcome) -> ProcAction {
        match self.state {
            0 => {
                self.state = 1;
                ProcAction::Syscall(SyscallKind::Create)
            }
            1 => {
                if let Outcome::Created(f) = last {
                    self.last_file = Some(*f);
                }
                self.state = 2;
                match self.last_file {
                    Some(f) => ProcAction::Syscall(SyscallKind::Fsync { file: f }),
                    // The creat failed (fault injection): skip the fsync
                    // and go around again rather than panicking.
                    None => ProcAction::Sleep(self.sleep.max(SimDuration::from_micros(1))),
                }
            }
            _ => {
                self.state = 0;
                if self.sleep > SimDuration::ZERO {
                    ProcAction::Sleep(self.sleep)
                } else {
                    ProcAction::Syscall(SyscallKind::Create)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut dyn ProcessLogic, steps: usize) -> Vec<ProcAction> {
        let mut out = Vec::new();
        for i in 0..steps {
            let now = SimTime::from_nanos(i as u64 * 1000);
            out.push(p.next(now, &Outcome::None));
        }
        out
    }

    fn offsets_of(actions: &[ProcAction]) -> Vec<u64> {
        actions
            .iter()
            .filter_map(|a| match a {
                ProcAction::Syscall(SyscallKind::Read { offset, .. })
                | ProcAction::Syscall(SyscallKind::Write { offset, .. }) => Some(*offset),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn seq_reader_walks_and_wraps() {
        let mut r = SeqReader::new(FileId(1), 4096 * 4, 4096);
        let offs = offsets_of(&drive(&mut r, 6));
        assert_eq!(offs, vec![0, 4096, 8192, 12288, 0, 4096]);
    }

    #[test]
    fn rand_writer_is_page_aligned_and_in_bounds() {
        let mut w = RandWriter::new(FileId(1), 1 << 20, 4096, 7);
        for off in offsets_of(&drive(&mut w, 100)) {
            assert_eq!(off % 4096, 0);
            assert!(off < 1 << 20);
        }
    }

    #[test]
    fn run_pattern_alternates_runs_and_seeks() {
        let mut b = RunPattern::new(FileId(1), 1 << 30, 256 * 1024, false, 3);
        let offs = offsets_of(&drive(&mut b, 8));
        // Within a run, offsets are contiguous in 64 KB steps.
        assert_eq!(offs[1], offs[0] + 65536);
        assert_eq!(offs[2], offs[1] + 65536);
        assert_eq!(offs[3], offs[2] + 65536);
        // After 4 × 64 KB = 256 KB, a new random run starts.
        assert_ne!(offs[4], offs[3] + 65536);
    }

    #[test]
    fn fsync_appender_cycles_write_fsync() {
        let mut a = FsyncAppender::new(FileId(2), 4096, SimDuration::ZERO);
        let acts = drive(&mut a, 4);
        assert!(matches!(
            acts[0],
            ProcAction::Syscall(SyscallKind::Write { offset: 0, .. })
        ));
        assert!(matches!(
            acts[1],
            ProcAction::Syscall(SyscallKind::Fsync { .. })
        ));
        assert!(matches!(
            acts[2],
            ProcAction::Syscall(SyscallKind::Write { offset: 4096, .. })
        ));
    }

    #[test]
    fn batch_fsyncer_writes_n_then_syncs() {
        let mut b = BatchRandFsyncer::new(FileId(3), 1 << 20, 3, SimDuration::from_millis(1), 5);
        let acts = drive(&mut b, 5);
        assert!(acts[..3]
            .iter()
            .all(|a| matches!(a, ProcAction::Syscall(SyscallKind::Write { .. }))));
        assert!(matches!(
            acts[3],
            ProcAction::Syscall(SyscallKind::Fsync { .. })
        ));
        assert!(matches!(acts[4], ProcAction::Sleep(_)));
    }

    #[test]
    fn burst_writer_sleeps_then_bursts_then_exits() {
        let start = SimTime::from_nanos(1_000_000_000);
        let mut b = BurstWriter::new(
            FileId(1),
            1 << 30,
            65536,
            start,
            SimDuration::from_secs(1),
            9,
        );
        assert!(matches!(
            b.next(SimTime::ZERO, &Outcome::None),
            ProcAction::Sleep(_)
        ));
        assert!(matches!(
            b.next(start, &Outcome::None),
            ProcAction::Syscall(SyscallKind::Write { .. })
        ));
        assert!(matches!(
            b.next(SimTime::from_nanos(3_000_000_000), &Outcome::None),
            ProcAction::Exit
        ));
    }

    #[test]
    fn creat_loop_uses_the_created_file() {
        let mut c = CreatFsyncLoop::new(SimDuration::from_millis(1));
        assert!(matches!(
            c.next(SimTime::ZERO, &Outcome::None),
            ProcAction::Syscall(SyscallKind::Create)
        ));
        let a = c.next(SimTime::ZERO, &Outcome::Created(FileId(42)));
        match a {
            ProcAction::Syscall(SyscallKind::Fsync { file }) => assert_eq!(file, FileId(42)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mem_overwriter_stays_in_region() {
        let mut m = MemOverwriter::new(FileId(1), 8 * 4096, 4096);
        for off in offsets_of(&drive(&mut m, 20)) {
            assert!(off < 8 * 4096);
        }
    }

    #[test]
    fn paced_writer_alternates_and_paces_to_the_rate() {
        // 64 KiB per write at 4 MiB/s → 1/64th of a second between writes.
        let mut p = PacedWriter::new(FileId(1), 1 << 20, 64 * 1024, 4 * 1024 * 1024, 7);
        match p.next(SimTime::ZERO, &Outcome::None) {
            ProcAction::Syscall(SyscallKind::Write { len, .. }) => assert_eq!(len, 64 * 1024),
            other => panic!("{other:?}"),
        }
        match p.next(SimTime::ZERO, &Outcome::None) {
            ProcAction::Sleep(d) => assert_eq!(d.as_nanos(), 1_000_000_000 / 64),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            p.next(SimTime::ZERO, &Outcome::None),
            ProcAction::Syscall(SyscallKind::Write { .. })
        ));
    }
}
