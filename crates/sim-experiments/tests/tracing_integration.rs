//! Cross-layer tracing integration: run a real contention workload
//! (small log appends + fsync vs. large random checkpoints, the Figure
//! 12 shape) with span tracing enabled and check the whole
//! observability pipeline end to end — span-tree integrity, the Chrome
//! exporter, cause-tag round-tripping, the latency decomposition, and
//! that tracing is pure observation (it never perturbs the simulation).

use sim_core::{KernelId, Pid};
use sim_core::{SimDuration, SimTime};
use sim_experiments::{build_world, SchedChoice, Setup, KB, MB};
use sim_kernel::World;
use sim_trace::{fsync_breakdown, Layer};
use sim_workloads::{BatchRandFsyncer, FsyncAppender};
use split_core::SchedAttr;

/// Figure-12-shaped world: A appends and fsyncs, B checkpoints.
fn contention_world(trace: bool) -> (World, KernelId, Pid, Pid) {
    let (mut w, k) = build_world(Setup::new(SchedChoice::SplitDeadline));
    if trace {
        w.enable_tracing(k);
    }
    let a_file = w.prealloc_file(k, 64 * MB, true);
    let b_file = w.prealloc_file(k, 256 * MB, true);
    let a = w.spawn(
        k,
        Box::new(FsyncAppender::new(
            a_file,
            4 * KB,
            SimDuration::from_millis(20),
        )),
    );
    let b = w.spawn(
        k,
        Box::new(BatchRandFsyncer::new(
            b_file,
            256 * MB,
            512,
            SimDuration::from_millis(100),
            0xb12,
        )),
    );
    w.configure(
        k,
        a,
        SchedAttr::FsyncDeadline(SimDuration::from_millis(100)),
    );
    w.configure(
        k,
        b,
        SchedAttr::FsyncDeadline(SimDuration::from_millis(400)),
    );
    w.run_for(SimDuration::from_secs(8));
    (w, k, a, b)
}

#[test]
fn spans_cover_at_least_four_layers() {
    let (w, k, _, _) = contention_world(true);
    let spans = w.tracer(k).spans();
    assert!(
        spans.len() > 100,
        "expected a real trace, got {}",
        spans.len()
    );
    let mut layers: Vec<Layer> = spans.iter().map(|s| s.layer).collect();
    layers.sort_by_key(|l| l.name());
    layers.dedup();
    assert!(
        layers.len() >= 4,
        "spans must come from >= 4 layers, got {layers:?}"
    );
}

#[test]
fn span_tree_parent_child_integrity() {
    let (w, k, _, _) = contention_world(true);
    let spans = w.tracer(k).spans();
    // Span ids are dense and 1-based: spans[i].id == i + 1.
    for (i, s) in spans.iter().enumerate() {
        assert_eq!(s.id.raw(), i as u64 + 1, "dense ids");
    }
    for s in &spans {
        if s.parent.is_none() {
            continue;
        }
        let p = &spans[(s.parent.raw() - 1) as usize];
        assert!(
            p.start <= s.start,
            "child {:?}/{} starts before its parent {:?}/{}",
            s.layer,
            s.name,
            p.layer,
            p.name
        );
        // A parent never crosses layers upward past the syscall root.
        assert_ne!(p.id, s.id, "no self-parenting");
    }
    // The cross-layer links actually exist: some block-layer queue span
    // must be parented to a higher-layer span.
    assert!(
        spans.iter().any(|s| s.layer == Layer::Block
            && !s.parent.is_none()
            && spans[(s.parent.raw() - 1) as usize].layer != Layer::Block),
        "queue spans must link up into syscall/journal/writeback spans"
    );
}

#[test]
fn chrome_export_is_valid_json_with_monotone_timestamps() {
    let (w, k, _, _) = contention_world(true);
    let json = w.tracer(k).chrome_json();
    sim_trace::json::validate(&json).expect("chrome export must be well-formed JSON");
    // Events are emitted sorted by timestamp: scan the "ts": values in
    // document order and check they never go backwards.
    let mut last = f64::MIN;
    let mut seen = 0usize;
    for chunk in json.split("\"ts\":").skip(1) {
        let end = chunk.find(',').expect("ts field is comma-terminated");
        let ts: f64 = chunk[..end].parse().expect("ts parses as a number");
        assert!(ts >= last, "timestamps must be monotone: {ts} after {last}");
        last = ts;
        seen += 1;
    }
    assert!(seen > 100, "expected many events, saw {seen}");
}

#[test]
fn causes_round_trip_through_chrome_args() {
    let (w, k, _, _) = contention_world(true);
    let spans = w.tracer(k).spans();
    // Journal commits under contention carry multiple processes' causes
    // (entanglement); check at least one such span exists and that its
    // cause set survives verbatim into the Chrome args.
    let entangled = spans
        .iter()
        .filter(|s| s.end.is_some() && s.causes.iter().count() >= 2)
        .max_by_key(|s| s.causes.iter().count())
        .expect("contention must produce a multi-cause span");
    let tag: Vec<String> = entangled
        .causes
        .iter()
        .map(|p| p.raw().to_string())
        .collect();
    let needle = format!("\"causes\":\"{}\"", tag.join("|"));
    let json = w.tracer(k).chrome_json();
    assert!(
        json.contains(&needle),
        "chrome args must carry the cause tag {needle}"
    );
}

#[test]
fn breakdown_components_sum_to_end_to_end() {
    let (w, k, _, _) = contention_world(true);
    let b = fsync_breakdown(&w.tracer(k).spans());
    assert!(
        b.count > 10,
        "expected many completed fsyncs, got {}",
        b.count
    );
    let sum = b.components_sum_ms();
    assert!(
        (sum - b.total_ms).abs() <= 0.05 * b.total_ms,
        "components {sum} ms must sum to end-to-end {} ms",
        b.total_ms
    );
}

#[test]
fn tracing_is_pure_observation() {
    // The same workload with tracing on and off must produce bit-equal
    // simulated outcomes — instrumentation can observe but not perturb.
    let sample = |traced: bool| -> Vec<(u64, u64)> {
        let (w, k, a, _) = contention_world(traced);
        let st = w.kernel(k).stats.proc(a).expect("A ran");
        st.fsyncs
            .iter()
            .map(|(t, d)| (t.as_nanos(), d.as_nanos()))
            .collect()
    };
    let traced = sample(true);
    let plain = sample(false);
    assert!(!traced.is_empty());
    assert_eq!(traced, plain, "tracing must not change simulated behavior");
}

#[test]
fn metrics_registry_populates_across_layers() {
    let (w, k, _, _) = contention_world(true);
    w.tracer(k).with_registry(|reg| {
        for counter in ["syscall.fsync", "block.submitted", "journal.commits"] {
            assert!(reg.counter(counter) > 0, "counter {counter} must tick");
        }
        assert!(
            reg.gauges()
                .any(|(name, _)| name.starts_with("sched.tokens") || name == "block.queue_depth"),
            "gauge series must be recorded"
        );
    });
}

#[test]
fn fsync_latency_histogram_matches_sample_count() {
    let (w, k, a, b) = contention_world(true);
    let fsyncs_done = [a, b]
        .iter()
        .filter_map(|&p| w.kernel(k).stats.proc(p))
        .map(|s| s.fsyncs.len() as u64)
        .sum::<u64>();
    let hist_count = w
        .tracer(k)
        .with_registry(|reg| reg.histogram("syscall.fsync_ms").map(|h| h.count()));
    assert_eq!(
        hist_count,
        Some(fsyncs_done),
        "every fsync must be observed"
    );
}

#[test]
fn time_is_simulated_not_wall_clock() {
    // A quick sanity check that the clock driving spans is SimTime: the
    // last span cannot end after the world's final simulated instant.
    let (w, k, _, _) = contention_world(true);
    let horizon = w.now();
    for s in w.tracer(k).spans() {
        if let Some(end) = s.end {
            assert!(
                end <= horizon,
                "span ends at {end:?} past horizon {horizon:?}"
            );
        }
        assert!(s.start >= SimTime::ZERO);
    }
}
