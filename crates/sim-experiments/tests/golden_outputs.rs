//! Golden-output regression tests: the exact legacy stdout of selected
//! figures at seed 0 is snapshotted under `tests/golden/` and must stay
//! byte-identical. The simulation is deterministic, so any diff means a
//! behavior change — intended changes regenerate the snapshots with
//! `UPDATE_GOLDEN=1 cargo test -p sim-experiments --test golden_outputs`.

use sim_experiments::registry::{run_cell, CellRequest, FigureId, Profile};

fn check(fig: FigureId, file: &str) {
    let out = run_cell(&CellRequest::new(fig, Profile::Quick, 0)).summary;
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &out).expect("write snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {} ({e}); run with UPDATE_GOLDEN=1", file));
    assert_eq!(
        out,
        want,
        "{} output drifted from its seed-0 snapshot; if the change is \
         intended, regenerate with UPDATE_GOLDEN=1",
        fig.name()
    );
}

#[test]
fn fig01_output_is_byte_identical_at_seed_0() {
    check(FigureId::Fig01, "fig01_seed0.txt");
}

#[test]
fn fig01_qd_output_is_byte_identical_at_seed_0() {
    check(FigureId::Fig01Qd, "fig01_qd_seed0.txt");
}

#[test]
fn fig12_output_is_byte_identical_at_seed_0() {
    check(FigureId::Fig12, "fig12_seed0.txt");
}

#[test]
fn fig19_output_is_byte_identical_at_seed_0() {
    check(FigureId::Fig19, "fig19_seed0.txt");
}
