//! Figure 14 — Split-Token vs SCS-Token over six B workloads.
//!
//! B ∈ {read, write} × {random, sequential, memory}, throttled to 1 MB/s
//! of normalized I/O; A reads sequentially, unthrottled. Left panel: A's
//! slowdown (isolation). Right panel: B's own throughput (a throttled
//! process should still get the best performance its budget allows —
//! memory workloads should *not* be throttled at all, which is where
//! SCS-Token loses by orders of magnitude on "write-mem").

use sim_core::{Pid, SimDuration};
use sim_kernel::World;
use sim_workloads::{MemOverwriter, RandReader, RandWriter, SeqReader, SeqWriter};
use split_core::SchedAttr;

use crate::setup::{build_world, SchedChoice, Setup};
use crate::table::{f1, Table};
use crate::{GB, KB, MB};

/// The six B workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BWorkload {
    /// 4 KB random reads from a big (uncached) file.
    ReadRand,
    /// Sequential reads from a big file.
    ReadSeq,
    /// Repeated reads of a small, fully cached file.
    ReadMem,
    /// 4 KB random writes to a big file.
    WriteRand,
    /// Sequential writes.
    WriteSeq,
    /// Overwrites confined to the cache.
    WriteMem,
}

impl BWorkload {
    /// All six, in the paper's order.
    pub fn all() -> [BWorkload; 6] {
        [
            BWorkload::ReadRand,
            BWorkload::ReadSeq,
            BWorkload::ReadMem,
            BWorkload::WriteRand,
            BWorkload::WriteSeq,
            BWorkload::WriteMem,
        ]
    }

    /// Label used in the figure.
    pub fn label(self) -> &'static str {
        match self {
            BWorkload::ReadRand => "read-rand",
            BWorkload::ReadSeq => "read-seq",
            BWorkload::ReadMem => "read-mem",
            BWorkload::WriteRand => "write-rand",
            BWorkload::WriteSeq => "write-seq",
            BWorkload::WriteMem => "write-mem",
        }
    }

    /// Whether B's metric is write throughput.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            BWorkload::WriteRand | BWorkload::WriteSeq | BWorkload::WriteMem
        )
    }

    /// Spawn the workload on `k`, returning B's pid. `seed` varies the
    /// random-access streams (0 = historical run).
    pub fn spawn(self, w: &mut World, k: sim_core::KernelId, seed: u64) -> Pid {
        match self {
            BWorkload::ReadRand => {
                let f = w.prealloc_file(k, 2 * GB, false);
                w.spawn(
                    k,
                    Box::new(RandReader::new(f, 2 * GB, 4 * KB, seed ^ 0xb14)),
                )
            }
            BWorkload::ReadSeq => {
                let f = w.prealloc_file(k, 2 * GB, true);
                w.spawn(k, Box::new(SeqReader::new(f, 2 * GB, 256 * KB)))
            }
            BWorkload::ReadMem => {
                let f = w.prealloc_file(k, 32 * MB, true);
                // The working set is memory-resident (the paper's point is
                // that cache hits are free): warm it.
                w.kernel_mut(k)
                    .cache_mut()
                    .fill(f, 0, 32 * MB / sim_core::PAGE_SIZE);
                w.spawn(k, Box::new(SeqReader::new(f, 32 * MB, 64 * KB)))
            }
            BWorkload::WriteRand => {
                let f = w.prealloc_file(k, 2 * GB, false);
                w.spawn(
                    k,
                    Box::new(RandWriter::new(f, 2 * GB, 4 * KB, seed ^ 0xb14)),
                )
            }
            BWorkload::WriteSeq => {
                let f = w.prealloc_file(k, 2 * GB, true);
                w.spawn(k, Box::new(SeqWriter::new(f, 2 * GB, 256 * KB)))
            }
            BWorkload::WriteMem => {
                let f = w.prealloc_file(k, 32 * MB, true);
                w.spawn(k, Box::new(MemOverwriter::new(f, 4 * MB, 64 * KB)))
            }
        }
    }
}

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated time per point.
    pub duration: SimDuration,
    /// B's throttle (normalized bytes/second).
    pub b_rate: u64,
    /// A's file size.
    pub a_file: u64,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(10),
            b_rate: MB,
            a_file: 4 * GB,
            seed: 0,
        }
    }

    /// Paper-scale run.
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(30),
            ..Self::quick()
        }
    }
}

/// One (scheduler, workload) outcome.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// B workload.
    pub workload: BWorkload,
    /// A's throughput (MB/s).
    pub a_mbps: f64,
    /// B's throughput (MB/s).
    pub b_mbps: f64,
}

/// Full figure.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// A's solo throughput (the isolation baseline).
    pub a_alone_mbps: f64,
    /// SCS-Token points.
    pub scs: Vec<Point>,
    /// Split-Token points.
    pub split: Vec<Point>,
}

/// Measure A alone (no B).
pub fn a_alone(cfg: &Config) -> f64 {
    let (mut w, k) = build_world(Setup::new(SchedChoice::SplitToken).seed(cfg.seed));
    let a_file = w.prealloc_file(k, cfg.a_file, true);
    let a = w.spawn(k, Box::new(SeqReader::new(a_file, cfg.a_file, MB)));
    w.run_for(cfg.duration);
    w.kernel(k).stats.read_mbps(a, cfg.duration)
}

/// Run one point.
pub fn run_point(cfg: &Config, sched: SchedChoice, wl: BWorkload) -> Point {
    let (mut w, k) = build_world(Setup::new(sched).seed(cfg.seed));
    let a_file = w.prealloc_file(k, cfg.a_file, true);
    let a = w.spawn(k, Box::new(SeqReader::new(a_file, cfg.a_file, MB)));
    let b = wl.spawn(&mut w, k, cfg.seed);
    w.configure(k, b, SchedAttr::TokenRate(cfg.b_rate));
    w.run_for(cfg.duration);
    let stats = &w.kernel(k).stats;
    Point {
        workload: wl,
        a_mbps: stats.read_mbps(a, cfg.duration),
        b_mbps: if wl.is_write() {
            stats.write_mbps(b, cfg.duration)
        } else {
            stats.read_mbps(b, cfg.duration)
        },
    }
}

/// Run the full comparison.
pub fn run(cfg: &Config) -> FigResult {
    let a_alone_mbps = a_alone(cfg);
    let scs = BWorkload::all()
        .iter()
        .map(|&wl| run_point(cfg, SchedChoice::ScsToken, wl))
        .collect();
    let split = BWorkload::all()
        .iter()
        .map(|&wl| run_point(cfg, SchedChoice::SplitToken, wl))
        .collect();
    FigResult {
        a_alone_mbps,
        scs,
        split,
    }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 14 — Split-Token vs SCS-Token (A alone: {} MB/s; B capped at 1 MB/s)",
            f1(self.a_alone_mbps)
        )?;
        let mut t = Table::new([
            "B workload",
            "A slowdown scs %",
            "A slowdown split %",
            "B scs MB/s",
            "B split MB/s",
        ]);
        for (s, p) in self.scs.iter().zip(&self.split) {
            let slow = |a: f64| (1.0 - a / self.a_alone_mbps) * 100.0;
            t.row([
                p.workload.label().to_string(),
                f1(slow(s.a_mbps)),
                f1(slow(p.a_mbps)),
                f1(s.b_mbps),
                f1(p.b_mbps),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_token_isolates_a_where_scs_fails_on_random_reads() {
        let cfg = Config::quick();
        let scs = run_point(&cfg, SchedChoice::ScsToken, BWorkload::ReadRand);
        let split = run_point(&cfg, SchedChoice::SplitToken, BWorkload::ReadRand);
        assert!(
            split.a_mbps > 2.0 * scs.a_mbps,
            "split A {} vs scs A {}",
            split.a_mbps,
            scs.a_mbps
        );
    }

    #[test]
    fn write_mem_is_orders_of_magnitude_faster_under_split_token() {
        let cfg = Config::quick();
        let scs = run_point(&cfg, SchedChoice::ScsToken, BWorkload::WriteMem);
        let split = run_point(&cfg, SchedChoice::SplitToken, BWorkload::WriteMem);
        // SCS charges every overwrite its raw bytes → B pinned to ~1 MB/s.
        assert!(
            scs.b_mbps < 3.0,
            "SCS must throttle the overwriter: {}",
            scs.b_mbps
        );
        // Split charges nothing for overwrites → B runs at memory speed.
        assert!(
            split.b_mbps > 100.0 * scs.b_mbps,
            "split B {} vs scs B {}",
            split.b_mbps,
            scs.b_mbps
        );
    }

    #[test]
    fn read_mem_not_throttled_by_either_but_faster_under_split() {
        let cfg = Config::quick();
        let scs = run_point(&cfg, SchedChoice::ScsToken, BWorkload::ReadMem);
        let split = run_point(&cfg, SchedChoice::SplitToken, BWorkload::ReadMem);
        assert!(
            scs.b_mbps > 100.0,
            "SCS cached reads are free: {}",
            scs.b_mbps
        );
        // Split skips the per-read scheduler logic entirely.
        assert!(
            split.b_mbps > 1.2 * scs.b_mbps,
            "split B {} vs scs B {}",
            split.b_mbps,
            scs.b_mbps
        );
    }

    #[test]
    fn throttled_b_stays_near_its_budget_for_disk_workloads_under_split() {
        let cfg = Config::quick();
        let p = run_point(&cfg, SchedChoice::SplitToken, BWorkload::WriteSeq);
        // 1 MB/s normalized budget → B's sequential writes land near 1
        // MB/s (within a generous factor for bucket burst).
        assert!(
            p.b_mbps < 4.0,
            "sequential writer must be near its 1 MB/s cap: {}",
            p.b_mbps
        );
        assert!(p.b_mbps > 0.3, "but must make progress: {}", p.b_mbps);
    }
}
