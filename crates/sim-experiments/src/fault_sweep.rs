//! Fault-injection sweep (`runner --faults` / `faults`): the trust
//! experiment behind every other figure. Two passes:
//!
//! 1. **Crash-point sweep** — drive the ordered-mode journal through a
//!    three-transaction workload, cut power after *every* completed
//!    write, replay the journal against a [`DiskImage`] shadow and run
//!    the consistency checker. Every point must uphold the paper's
//!    ordered-mode guarantees (committed-and-acked transactions durable,
//!    no metadata over stale data, torn logs never replayed).
//! 2. **Device-fault sweep** — run the full stack (processes → cache →
//!    fs → scheduler → device) with a [`DeviceFaultPlane`] failing the
//!    n-th device write, for each n, and record how the error surfaced:
//!    an `EIO` to the fsyncing process, a journal abort, or both. The
//!    stack must degrade (fail syscalls) rather than panic or wedge.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use sim_block::BlockDeadline;
use sim_cache::{CacheConfig, PageCache};
use sim_core::{CauseSet, FileId, Pid, SimDuration, SimTime, TxnId};
use sim_device::IoDir;
use sim_fault::{DeviceFaultPlane, DiskImage};
use sim_fs::{FileSystem, FsEvent, FsOutput, IoReq, JournaledFs};
use sim_kernel::{DeviceKind, KernelConfig, Outcome, ProcAction, World};
use split_core::{BlockOnly, SyscallKind};

use crate::table::Table;
use crate::{KB, MB};

/// Sweep sizes.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Device write ops to sweep the injected failure across.
    pub fault_points: u64,
    /// Simulated run length per device-fault point.
    pub duration: SimDuration,
}

impl Config {
    /// Seconds-scale profile for tests and the default runner.
    pub fn quick() -> Self {
        Config {
            fault_points: 8,
            duration: SimDuration::from_millis(500),
        }
    }

    /// Longer profile for `--paper`.
    pub fn paper() -> Self {
        Config {
            fault_points: 24,
            duration: SimDuration::from_secs(2),
        }
    }
}

/// One power-cut point of the crash sweep.
#[derive(Debug, Clone, Copy)]
pub struct CrashPoint {
    /// Writes completed before the cut.
    pub completions: usize,
    /// Transactions journal replay recovered.
    pub recovered: usize,
    /// Durability promises made before the cut.
    pub acked: usize,
    /// Ordered-mode violations the checker found (must be 0).
    pub violations: usize,
}

/// One device-fault point of the full-stack sweep.
#[derive(Debug, Clone, Copy)]
pub struct FaultPoint {
    /// Which device write op failed.
    pub nth_write: u64,
    /// Block requests the fault plane failed.
    pub io_errors: u64,
    /// Journal aborts that followed.
    pub journal_aborts: u64,
    /// Fsyncs that still completed durably.
    pub fsyncs_ok: usize,
    /// Fsyncs that returned the simulator's `EIO`.
    pub fsyncs_failed: usize,
}

/// Both sweeps.
#[derive(Debug, Clone)]
pub struct FaultSweepResult {
    /// Power-cut sweep over the fsync/commit protocol (both crash modes:
    /// in-flight writes lost, and torn to a one-block prefix).
    pub crash_points: Vec<CrashPoint>,
    /// Single-device-write-failure sweep through the whole stack.
    pub fault_points: Vec<FaultPoint>,
}

impl FaultSweepResult {
    /// Total ordered-mode violations across every crash point (0 = pass).
    pub fn total_violations(&self) -> usize {
        self.crash_points.iter().map(|p| p.violations).sum()
    }
}

// ---------------------------------------------------------------------
// Pass 1: protocol crash sweep against the DiskImage shadow.
// ---------------------------------------------------------------------

const JPID: Pid = Pid(1000);
const WBPID: Pid = Pid(1001);
const A: Pid = Pid(1);
const B: Pid = Pid(2);

/// Minimal completer: feeds the fs FIFO completions while mirroring every
/// write into the shadow image (same protocol driver as the sim-fs
/// crash-consistency tests).
struct ProtocolRun {
    fs: JournaledFs,
    cache: PageCache,
    pending: VecDeque<IoReq>,
    events: Vec<FsEvent>,
    image: DiskImage,
    acked: Vec<TxnId>,
    now: SimTime,
    fa: FileId,
    fb: FileId,
    phase: u8,
}

impl ProtocolRun {
    fn new() -> Self {
        let mut r = ProtocolRun {
            fs: JournaledFs::new_ext4(1 << 27, JPID, WBPID),
            cache: PageCache::new(CacheConfig::default()),
            pending: VecDeque::new(),
            events: Vec::new(),
            image: DiskImage::new(),
            acked: Vec::new(),
            now: SimTime::ZERO,
            fa: FileId(0),
            fb: FileId(0),
            phase: 0,
        };
        let (fa, out) = r.fs.create_file(A, r.now);
        r.absorb(out);
        let (fb, out) = r.fs.create_file(B, r.now);
        r.absorb(out);
        r.fa = fa;
        r.fb = fb;
        r
    }

    fn absorb(&mut self, out: FsOutput) {
        for io in &out.ios {
            if io.dir == IoDir::Write {
                self.image
                    .submit(io.token.0, io.step.clone(), io.start, io.nblocks);
            }
        }
        for ev in &out.events {
            if let FsEvent::TxnCommitted { txn } = ev {
                self.acked.push(*txn);
            }
        }
        self.pending.extend(out.ios);
        self.events.extend(out.events);
    }

    fn write(&mut self, file: FileId, pid: Pid, offset: u64, len: u64) {
        let causes = CauseSet::of(pid);
        for p in offset / sim_core::PAGE_SIZE..=(offset + len - 1) / sim_core::PAGE_SIZE {
            self.cache.dirty_page(file, p, &causes, self.now);
        }
        self.fs.note_write(file, &causes, offset, len, self.now);
    }

    fn fsync(&mut self, file: FileId, pid: Pid) {
        let out = self.fs.fsync(file, pid, &mut self.cache, self.now);
        self.absorb(out);
    }

    fn fsync_done_for(&self, pid: Pid) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FsEvent::FsyncDone { waiter, .. } if *waiter == pid))
    }

    fn advance_workload(&mut self) {
        let page = sim_core::PAGE_SIZE;
        match self.phase {
            0 => {
                self.phase = 1;
                self.write(self.fa, A, 0, 2 * page);
                self.write(self.fb, B, 0, 8 * page);
                self.fsync(self.fa, A);
            }
            1 if self.fsync_done_for(A) => {
                self.phase = 2;
                self.write(self.fb, B, 8 * page, 4 * page);
                self.fsync(self.fb, B);
            }
            2 if self.fsync_done_for(B) => {
                self.phase = 3;
                self.write(self.fa, A, 0, page);
                self.fsync(self.fa, A);
            }
            _ => {}
        }
    }

    fn run(&mut self, stop_after: Option<usize>) -> usize {
        let mut done = 0;
        loop {
            self.advance_workload();
            if Some(done) == stop_after {
                return done;
            }
            let Some(io) = self.pending.pop_front() else {
                return done;
            };
            self.now += SimDuration::from_micros(100);
            if io.dir == IoDir::Write {
                self.image.complete(io.token.0);
            }
            let out = self.fs.io_completed(io.token, &mut self.cache, self.now);
            self.absorb(out);
            done += 1;
        }
    }
}

fn crash_sweep() -> Vec<CrashPoint> {
    let total = {
        let mut reference = ProtocolRun::new();
        reference.run(None)
    };
    let mut points = Vec::new();
    // Every cut point, in both crash modes: clean loss and a one-block
    // torn prefix (the commit record, one block, stays atomic).
    for torn in [None, Some(1)] {
        for k in 0..=total {
            let mut r = ProtocolRun::new();
            r.run(Some(k));
            r.image.crash(torn);
            let recovery = r.image.recover();
            let violations = r.image.check(&r.acked);
            points.push(CrashPoint {
                completions: k,
                recovered: recovery.recovered.len(),
                acked: r.acked.len(),
                violations: violations.len(),
            });
        }
    }
    points
}

// ---------------------------------------------------------------------
// Pass 2: device faults through the full stack.
// ---------------------------------------------------------------------

fn fault_point(nth: u64, duration: SimDuration) -> FaultPoint {
    let mut w = World::new();
    let k = w.add_kernel(
        KernelConfig::default(),
        DeviceKind::hdd(),
        Box::new(BlockOnly::new(BlockDeadline::new())),
    );
    w.kernel_mut(k)
        .install_fault_plane(DeviceFaultPlane::new().fail_write(nth));
    let file = w.prealloc_file(k, 64 * MB, true);
    let outcomes: Rc<RefCell<(usize, usize)>> = Rc::default();
    let log = outcomes.clone();
    let mut step = 0u64;
    let app = move |_now: SimTime, last: &Outcome| {
        match last {
            Outcome::Synced => log.borrow_mut().0 += 1,
            Outcome::Failed(_) => log.borrow_mut().1 += 1,
            _ => {}
        }
        let a = match step % 2 {
            0 => ProcAction::Syscall(SyscallKind::Write {
                file,
                offset: (step / 2) * 4 * KB,
                len: 4 * KB,
            }),
            _ => ProcAction::Syscall(SyscallKind::Fsync { file }),
        };
        step += 1;
        a
    };
    w.spawn(k, Box::new(app));
    w.run_for(duration);
    let stats = &w.kernel(k).stats;
    let (fsyncs_ok, fsyncs_failed) = *outcomes.borrow();
    FaultPoint {
        nth_write: nth,
        io_errors: stats.io_errors,
        journal_aborts: stats.journal_aborts,
        fsyncs_ok,
        fsyncs_failed,
    }
}

/// Run both sweeps.
pub fn run(cfg: &Config) -> FaultSweepResult {
    FaultSweepResult {
        crash_points: crash_sweep(),
        fault_points: (0..cfg.fault_points)
            .map(|n| fault_point(n, cfg.duration))
            .collect(),
    }
}

impl fmt::Display for FaultSweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fault sweep: power-cut replay + single-device-write failures"
        )?;
        let half = self.crash_points.len() / 2;
        writeln!(
            f,
            "crash sweep: {} cut points x 2 crash modes, {} violation(s)",
            half,
            self.total_violations()
        )?;
        let mut t = Table::new(["cut after", "recovered", "acked", "violations"]);
        for p in self.crash_points.iter().take(half) {
            t.row([
                p.completions.to_string(),
                p.recovered.to_string(),
                p.acked.to_string(),
                p.violations.to_string(),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(f)?;
        let mut t = Table::new([
            "failed write",
            "io errors",
            "journal aborts",
            "fsyncs ok",
            "fsyncs EIO",
        ]);
        for p in &self.fault_points {
            t.row([
                p.nth_write.to_string(),
                p.io_errors.to_string(),
                p.journal_aborts.to_string(),
                p.fsyncs_ok.to_string(),
                p.fsyncs_failed.to_string(),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_sweep_passes_the_checker_at_every_injection_point() {
        let r = run(&Config::quick());
        assert_eq!(r.total_violations(), 0, "{r}");
        assert!(r.crash_points.len() >= 20, "sweep must cover the protocol");
        let last = r.crash_points[r.crash_points.len() / 2 - 1];
        assert!(last.recovered >= 3, "full run recovers all txns: {last:?}");
    }

    #[test]
    fn every_device_fault_point_degrades_without_wedging() {
        let r = run(&Config::quick());
        for p in &r.fault_points {
            assert_eq!(p.io_errors, 1, "exactly the planned failure: {p:?}");
            assert!(
                p.fsyncs_ok + p.fsyncs_failed > 0,
                "the workload must keep making syscall progress: {p:?}"
            );
            assert!(p.journal_aborts <= 1, "{p:?}");
            if p.journal_aborts == 1 {
                assert!(p.fsyncs_failed > 0, "an abort must fail fsyncs: {p:?}");
            }
        }
        // The sweep must hit both failure modes somewhere: a data-write
        // failure (EIO, journal healthy) and a journal-write failure
        // (abort).
        assert!(r.fault_points.iter().any(|p| p.journal_aborts == 0));
        assert!(r.fault_points.iter().any(|p| p.journal_aborts == 1));
    }
}
