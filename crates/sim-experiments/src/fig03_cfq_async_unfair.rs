//! Figure 3 — CFQ Throughput (async writes).
//!
//! Eight threads with priorities 0–7 each write sequentially to their own
//! file. Because the writeback thread (a priority-4 task) submits all the
//! writes, CFQ sees every request at priority 4 and shares the disk
//! equally — the "Completely Fair Scheduler" is not even slightly fair
//! for buffered writes. The right panel reproduces the observed
//! submitter-priority histogram.

use sim_block::IoPrio;
use sim_core::{Pid, SimDuration};
use sim_workloads::SeqWriter;

use crate::setup::{build_world, SchedChoice, Setup};
use crate::table::{f1, Table};
use crate::{GB, MB};

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Simulated run time.
    pub duration: SimDuration,
    /// Per-thread file size region.
    pub file_bytes: u64,
    /// Write syscall size.
    pub req: u64,
    /// Experiment seed (0 = historical run).
    pub seed: u64,
}

impl Config {
    /// Small run for tests.
    pub fn quick() -> Self {
        Config {
            duration: SimDuration::from_secs(20),
            file_bytes: 2 * GB,
            req: MB,
            seed: 0,
        }
    }

    /// Paper-scale run.
    pub fn paper() -> Self {
        Config {
            duration: SimDuration::from_secs(60),
            ..Self::quick()
        }
    }
}

/// Result of the experiment.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// Throughput share (%) per priority level 0..8, CFQ.
    pub share_pct: [f64; 8],
    /// The goal distribution (∝ priority weight).
    pub goal_pct: [f64; 8],
    /// Fraction of block requests CFQ saw at each best-effort level.
    pub observed_prio_pct: [f64; 8],
    /// Mean relative deviation from the goal (the paper reports 82%).
    pub deviation: f64,
}

/// Goal share for best-effort level `p` under CFQ weights.
pub fn goal_shares() -> [f64; 8] {
    let mut g = [0.0; 8];
    let total: u32 = (0..8).map(|p| IoPrio::best_effort(p).weight()).sum();
    for (p, slot) in g.iter_mut().enumerate() {
        *slot = IoPrio::best_effort(p as u8).weight() as f64 / total as f64 * 100.0;
    }
    g
}

/// Mean relative deviation between achieved and goal shares.
pub fn mean_deviation(actual: &[f64; 8], goal: &[f64; 8]) -> f64 {
    let mut dev = 0.0;
    for i in 0..8 {
        dev += (actual[i] - goal[i]).abs() / goal[i];
    }
    dev / 8.0
}

/// Run the experiment (CFQ).
pub fn run(cfg: &Config) -> FigResult {
    let (mut w, k) = build_world(Setup::new(SchedChoice::Cfq).seed(cfg.seed));
    let mut pids: Vec<Pid> = Vec::new();
    for level in 0..8u8 {
        let file = w.prealloc_file(k, cfg.file_bytes, true);
        let pid = w.spawn(k, Box::new(SeqWriter::new(file, cfg.file_bytes, cfg.req)));
        w.set_ioprio(k, pid, IoPrio::best_effort(level));
        pids.push(pid);
    }
    w.run_for(cfg.duration);
    let stats = &w.kernel(k).stats;
    let bytes: Vec<u64> = pids
        .iter()
        .map(|p| stats.proc(*p).map(|s| s.write_bytes).unwrap_or(0))
        .collect();
    let total: u64 = bytes.iter().sum::<u64>().max(1);
    let mut share_pct = [0.0; 8];
    for (i, b) in bytes.iter().enumerate() {
        share_pct[i] = *b as f64 / total as f64 * 100.0;
    }
    let hist = stats.req_prio_hist;
    let hist_total: u64 = hist.iter().sum::<u64>().max(1);
    let mut observed_prio_pct = [0.0; 8];
    for (i, h) in hist.iter().enumerate() {
        observed_prio_pct[i] = *h as f64 / hist_total as f64 * 100.0;
    }
    let goal_pct = goal_shares();
    FigResult {
        share_pct,
        goal_pct,
        observed_prio_pct,
        deviation: mean_deviation(&share_pct, &goal_pct),
    }
}

impl std::fmt::Display for FigResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 3 — CFQ async-write (un)fairness")?;
        let mut t = Table::new(["prio", "goal %", "CFQ share %", "requests seen at prio %"]);
        for p in 0..8 {
            t.row([
                p.to_string(),
                f1(self.goal_pct[p]),
                f1(self.share_pct[p]),
                f1(self.observed_prio_pct[p]),
            ]);
        }
        writeln!(f, "{}", t.render())?;
        writeln!(
            f,
            "mean deviation from goal: {:.0}%",
            self.deviation * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfq_ignores_write_priorities_because_of_delegation() {
        let r = run(&Config::quick());
        // All eight threads end up roughly equal...
        let max = r.share_pct.iter().cloned().fold(f64::MIN, f64::max);
        let min = r.share_pct.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 1.6,
            "shares should be near-equal under CFQ: {:?}",
            r.share_pct
        );
        // ...which is far from the goal distribution.
        assert!(
            r.deviation > 0.4,
            "deviation should be large: {}",
            r.deviation
        );
        // And the reason: CFQ saw (almost) everything at priority 4.
        assert!(
            r.observed_prio_pct[4] > 90.0,
            "writeback submits at prio 4: {:?}",
            r.observed_prio_pct
        );
    }

    #[test]
    fn goal_shares_sum_to_100() {
        let g = goal_shares();
        let sum: f64 = g.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!(g[0] > g[7]);
    }
}
